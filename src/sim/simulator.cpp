#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>

#include "core/require.h"

namespace epm::sim {

// ---------------------------------------------------------------------------
// CalendarSimulator
// ---------------------------------------------------------------------------

namespace {

/// Ascending (when, seq) order for bucket sorts and merges.
struct EarlierEntry {
  template <typename E>
  bool operator()(const E& a, const E& b) const {
    if (a.when_s != b.when_s) return a.when_s < b.when_s;
    return a.seq < b.seq;
  }
};

}  // namespace

CalendarSimulator::CalendarSimulator() { buckets_.resize(kMinBuckets); }

CalendarSimulator::~CalendarSimulator() = default;

std::uint32_t CalendarSimulator::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  if ((slot_capacity_ & (kChunkSize - 1)) == 0) {
    chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
  }
  return slot_capacity_++;
}

void CalendarSimulator::free_slot(std::uint32_t slot) {
  Node& n = node(slot);
  n.fn = EventFn{};
  n.status = Status::kFree;
  ++n.gen;  // invalidates outstanding handles to this slot
  free_slots_.push_back(slot);
}

void CalendarSimulator::insert_entry(const Entry& entry) {
  // Bucket placement goes through the *index* (a monotone function of time),
  // so boundary rounding can never reorder entries across the cursor.
  if (entry.when_s >= wheel_end_s()) {
    overflow_.push(entry);
    return;
  }
  std::size_t idx = 0;
  if (entry.when_s > base_s_) {
    idx = static_cast<std::size_t>((entry.when_s - base_s_) * inv_width_s_);
  }
  if (idx >= buckets_.size()) {
    overflow_.push(entry);  // floating-point edge of the wheel horizon
    return;
  }
  ++wheel_count_;
  if (idx < next_bucket_) {
    // Due before the loaded window's end: joins the working list, merged in
    // (when, seq) order before the next pop.
    cur_adds_.push_back(entry);
  } else {
    buckets_[idx].push_back(entry);
  }
  if (wheel_count_ > 2 * buckets_.size() && buckets_.size() < kMaxBuckets) {
    resize_wheel(buckets_.size() * 2);
  }
}

EventHandle CalendarSimulator::push(double when_s, double period_s, EventFn fn) {
  require(when_s >= now_s_, "Simulator: cannot schedule in the past");
  require(static_cast<bool>(fn), "Simulator: empty event function");
  const std::uint32_t slot = acquire_slot();
  Node& n = node(slot);
  n.when_s = when_s;
  n.seq = next_seq_++;
  n.period_s = period_s;
  n.status = Status::kPending;
  n.fn = std::move(fn);
  ++live_count_;
  insert_entry(Entry{when_s, n.seq, slot});
  return EventHandle{handle_id(slot, n.gen)};
}

EventHandle CalendarSimulator::schedule_at(double when_s, EventFn fn) {
  return push(when_s, 0.0, std::move(fn));
}

EventHandle CalendarSimulator::schedule_after(double delay_s, EventFn fn) {
  require(delay_s >= 0.0, "Simulator: negative delay");
  return push(now_s_ + delay_s, 0.0, std::move(fn));
}

EventHandle CalendarSimulator::schedule_periodic(double first_s, double period_s,
                                                 EventFn fn) {
  require(period_s > 0.0, "Simulator: period must be positive");
  return push(first_s, period_s, std::move(fn));
}

void CalendarSimulator::begin_batch(double when_s) {
  require(when_s >= now_s_, "Simulator: cannot schedule in the past");
  // Resolve the destination once; batch_push() reuses it for every event.
  batch_in_overflow_ = when_s >= wheel_end_s();
  batch_bucket_ = 0;
  if (!batch_in_overflow_) {
    std::size_t idx = 0;
    if (when_s > base_s_) {
      idx = static_cast<std::size_t>((when_s - base_s_) * inv_width_s_);
    }
    if (idx >= buckets_.size()) {
      batch_in_overflow_ = true;
    } else {
      batch_bucket_ = idx;
    }
  }
}

void CalendarSimulator::batch_push(double when_s, EventFn fn) {
  require(static_cast<bool>(fn), "Simulator: empty event function");
  const std::uint32_t slot = acquire_slot();
  Node& n = node(slot);
  n.when_s = when_s;
  n.seq = next_seq_++;
  n.period_s = 0.0;
  n.status = Status::kPending;
  n.fn = std::move(fn);
  ++live_count_;
  const Entry entry{when_s, n.seq, slot};
  if (batch_in_overflow_) {
    overflow_.push(entry);
    return;
  }
  ++wheel_count_;
  if (batch_bucket_ < next_bucket_) {
    cur_adds_.push_back(entry);
  } else {
    buckets_[batch_bucket_].push_back(entry);
  }
}

void CalendarSimulator::end_batch() {
  if (wheel_count_ > 2 * buckets_.size() && buckets_.size() < kMaxBuckets) {
    resize_wheel(buckets_.size() * 2);
  }
}

void CalendarSimulator::cancel(EventHandle handle) {
  if (!handle.valid()) return;
  const auto slot = static_cast<std::uint32_t>((handle.id_ & 0xffffffffULL) - 1);
  const auto gen = static_cast<std::uint32_t>(handle.id_ >> 32);
  if (slot >= slot_capacity_) return;
  Node& n = node(slot);
  if (n.gen != gen || n.status != Status::kPending) return;
  n.status = Status::kCancelled;
  --live_count_;
  // The calendar entry drains lazily; free_slot() recycles the slot then.
}

void CalendarSimulator::merge_adds() {
  std::sort(cur_adds_.begin(), cur_adds_.end(), EarlierEntry{});
  cur_.erase(cur_.begin(),
             cur_.begin() + static_cast<std::ptrdiff_t>(cur_pos_));
  cur_pos_ = 0;
  const auto mid = static_cast<std::ptrdiff_t>(cur_.size());
  cur_.insert(cur_.end(), cur_adds_.begin(), cur_adds_.end());
  std::inplace_merge(cur_.begin(), cur_.begin() + mid, cur_.end(),
                     EarlierEntry{});
  cur_adds_.clear();
}

void CalendarSimulator::rebase_from_overflow() {
  const double min_when = overflow_.top().when_s;
  double base = std::floor(min_when / width_s_) * width_s_;
  if (!(base <= min_when) || !std::isfinite(base)) base = min_when;
  base_s_ = base;
  next_bucket_ = 0;
  const double end = wheel_end_s();
  while (!overflow_.empty() && overflow_.top().when_s < end) {
    const Entry entry = overflow_.top();
    overflow_.pop();
    std::size_t idx = 0;
    if (entry.when_s > base_s_) {
      idx = static_cast<std::size_t>((entry.when_s - base_s_) * inv_width_s_);
    }
    if (idx >= buckets_.size()) idx = buckets_.size() - 1;
    buckets_[idx].push_back(entry);
    ++wheel_count_;
  }
}

void CalendarSimulator::resize_wheel(std::size_t target_buckets) {
  // Gather every wheel entry (the unconsumed working list, pending adds,
  // and all buckets) and rebuild with occupancy-adapted geometry.
  std::vector<Entry> entries;
  entries.reserve(wheel_count_);
  entries.insert(entries.end(),
                 cur_.begin() + static_cast<std::ptrdiff_t>(cur_pos_),
                 cur_.end());
  entries.insert(entries.end(), cur_adds_.begin(), cur_adds_.end());
  for (auto& bucket : buckets_) {
    entries.insert(entries.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  cur_.clear();
  cur_pos_ = 0;
  cur_adds_.clear();

  buckets_.resize(target_buckets);
  if (!entries.empty()) {
    double lo = entries.front().when_s;
    double hi = lo;
    for (const Entry& e : entries) {
      lo = std::min(lo, e.when_s);
      hi = std::max(hi, e.when_s);
    }
    const double span = hi - lo;
    if (span > 0.0) {
      // Two average inter-event gaps per bucket: ~O(1) events per bucket
      // once the distribution is roughly uniform (Brown's heuristic).
      width_s_ = std::max(span * 2.0 / static_cast<double>(entries.size()),
                          1e-12);
      inv_width_s_ = 1.0 / width_s_;
    }
    double base = std::floor(lo / width_s_) * width_s_;
    if (!(base <= lo) || !std::isfinite(base)) base = lo;
    base_s_ = base;
  }
  next_bucket_ = 0;
  wheel_count_ = 0;
  for (const Entry& e : entries) {
    if (e.when_s >= wheel_end_s()) {
      overflow_.push(e);
      continue;
    }
    std::size_t idx = 0;
    if (e.when_s > base_s_) {
      idx = static_cast<std::size_t>((e.when_s - base_s_) * inv_width_s_);
    }
    if (idx >= buckets_.size()) idx = buckets_.size() - 1;
    buckets_[idx].push_back(e);
    ++wheel_count_;
  }
  // The new horizon can reach past the old one; overflow entries now inside
  // it must move into the wheel or they would fire after later bucket
  // entries.
  while (!overflow_.empty() && overflow_.top().when_s < wheel_end_s()) {
    const Entry e = overflow_.top();
    overflow_.pop();
    std::size_t idx = 0;
    if (e.when_s > base_s_) {
      idx = static_cast<std::size_t>((e.when_s - base_s_) * inv_width_s_);
    }
    if (idx >= buckets_.size()) idx = buckets_.size() - 1;
    buckets_[idx].push_back(e);
    ++wheel_count_;
  }
}

bool CalendarSimulator::ensure_head() {
  for (;;) {
    if (!cur_adds_.empty()) merge_adds();
    if (cur_pos_ < cur_.size()) {
      const Entry& head = cur_[cur_pos_];
      if (node(head.slot).status == Status::kCancelled) {
        free_slot(head.slot);
        ++cur_pos_;
        --wheel_count_;
        continue;
      }
      return true;
    }
    cur_.clear();
    cur_pos_ = 0;
    while (next_bucket_ < buckets_.size() && buckets_[next_bucket_].empty()) {
      ++next_bucket_;
    }
    if (next_bucket_ < buckets_.size()) {
      cur_.swap(buckets_[next_bucket_]);
      ++next_bucket_;
      if (cur_.size() > 1) std::sort(cur_.begin(), cur_.end(), EarlierEntry{});
      // Start the node loads for this bucket now; by the time each entry
      // fires, its (otherwise cold) slab line is already in flight.
      for (const Entry& e : cur_) {
        __builtin_prefetch(&node(e.slot), 1);
      }
      if (next_bucket_ < buckets_.size() && !buckets_[next_bucket_].empty()) {
        __builtin_prefetch(buckets_[next_bucket_].data(), 0);
      }
      continue;
    }
    if (overflow_.empty()) return false;
    rebase_from_overflow();
  }
}

bool CalendarSimulator::step() {
  if (!ensure_head()) return false;
  const Entry e = cur_[cur_pos_++];
  --wheel_count_;
  Node& n = node(e.slot);  // chunked slab: stable across nested schedules
  ensure(e.when_s >= now_s_, "Simulator: time went backwards");
  now_s_ = e.when_s;
  if (n.period_s > 0.0) {
    n.seq = next_seq_++;
    n.when_s = e.when_s + n.period_s;
    insert_entry(Entry{n.when_s, n.seq, e.slot});
    n.fn();
  } else {
    n.status = Status::kFiring;  // self-cancel during the callback is a no-op
    --live_count_;
    n.fn();
    free_slot(e.slot);
  }
  return true;
}

std::size_t CalendarSimulator::run_until(double until_s) {
  std::size_t ran = 0;
  while (ensure_head() && cur_[cur_pos_].when_s <= until_s) {
    if (step()) ++ran;
  }
  if (now_s_ < until_s) now_s_ = until_s;
  return ran;
}

std::size_t CalendarSimulator::run_before(double until_s) {
  std::size_t ran = 0;
  while (ensure_head() && cur_[cur_pos_].when_s < until_s) {
    if (step()) ++ran;
  }
  return ran;
}

double CalendarSimulator::next_time() {
  if (!ensure_head()) return std::numeric_limits<double>::infinity();
  return cur_[cur_pos_].when_s;
}

std::size_t CalendarSimulator::run_all() {
  std::size_t ran = 0;
  while (step()) ++ran;
  return ran;
}

void CalendarSimulator::restore_clock(double now_s) {
  require(std::isfinite(now_s) && now_s >= 0.0,
          "Simulator: restore_clock needs a finite time >= 0");
  require(live_count_ == 0,
          "Simulator: restore_clock requires an idle kernel (pending() == 0)");
  // pending() == 0 still leaves cancelled entries parked in the calendar;
  // sweep their slots back to the freelist before touching the geometry.
  for (std::uint32_t slot = 0; slot < slot_capacity_; ++slot) {
    if (node(slot).status == Status::kCancelled) free_slot(slot);
  }
  for (auto& bucket : buckets_) bucket.clear();
  cur_.clear();
  cur_pos_ = 0;
  cur_adds_.clear();
  while (!overflow_.empty()) overflow_.pop();
  wheel_count_ = 0;
  next_bucket_ = 0;
  double base = std::floor(now_s / width_s_) * width_s_;
  if (!(base <= now_s) || !std::isfinite(base)) base = now_s;
  base_s_ = base;
  now_s_ = now_s;
}

// ---------------------------------------------------------------------------
// HeapSimulator (the pre-calendar baseline)
// ---------------------------------------------------------------------------

EventHandle HeapSimulator::push(double when_s, double period_s, Callback fn) {
  require(when_s >= now_s_, "Simulator: cannot schedule in the past");
  require(static_cast<bool>(fn), "Simulator: empty event function");
  const std::uint64_t id = next_id_++;
  queue_.push(Event{when_s, next_seq_++, id, period_s, std::move(fn)});
  return EventHandle{id};
}

namespace {

/// Adapts a move-only EventFn to the copyable std::function the baseline
/// stores. Only the explicit-EventFn overloads pay this indirection.
HeapSimulator::Callback wrap(EventFn fn) {
  auto shared = std::make_shared<EventFn>(std::move(fn));
  return [shared] { (*shared)(); };
}

}  // namespace

EventHandle HeapSimulator::schedule_at(double when_s, Callback fn) {
  return push(when_s, 0.0, std::move(fn));
}

EventHandle HeapSimulator::schedule_at(double when_s, EventFn fn) {
  require(static_cast<bool>(fn), "Simulator: empty event function");
  return push(when_s, 0.0, wrap(std::move(fn)));
}

EventHandle HeapSimulator::schedule_after(double delay_s, Callback fn) {
  require(delay_s >= 0.0, "Simulator: negative delay");
  return push(now_s_ + delay_s, 0.0, std::move(fn));
}

EventHandle HeapSimulator::schedule_after(double delay_s, EventFn fn) {
  require(delay_s >= 0.0, "Simulator: negative delay");
  require(static_cast<bool>(fn), "Simulator: empty event function");
  return push(now_s_ + delay_s, 0.0, wrap(std::move(fn)));
}

EventHandle HeapSimulator::schedule_periodic(double first_s, double period_s,
                                             Callback fn) {
  require(period_s > 0.0, "Simulator: period must be positive");
  return push(first_s, period_s, std::move(fn));
}

EventHandle HeapSimulator::schedule_periodic(double first_s, double period_s,
                                             EventFn fn) {
  require(period_s > 0.0, "Simulator: period must be positive");
  require(static_cast<bool>(fn), "Simulator: empty event function");
  return push(first_s, period_s, wrap(std::move(fn)));
}

void HeapSimulator::cancel(EventHandle handle) {
  if (!handle.valid()) return;
  cancelled_.insert(handle.id_);
}

bool HeapSimulator::is_cancelled(std::uint64_t id) const {
  return cancelled_.count(id) > 0;
}

void HeapSimulator::drain_cancelled_top() {
  while (!queue_.empty() && is_cancelled(queue_.top().id)) {
    cancelled_.erase(queue_.top().id);
    queue_.pop();
  }
}

bool HeapSimulator::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    // At most one queued instance exists per id (periodic events are
    // re-queued only after firing), so a drained id can be forgotten now.
    if (cancelled_.erase(ev.id) > 0) continue;
    ensure(ev.when_s >= now_s_, "Simulator: time went backwards");
    now_s_ = ev.when_s;
    if (ev.period_s > 0.0) {
      queue_.push(Event{ev.when_s + ev.period_s, next_seq_++, ev.id, ev.period_s, ev.fn});
    }
    ev.fn();
    if (ev.period_s <= 0.0 && !cancelled_.empty()) {
      // A one-shot that cancelled itself from its own callback can never be
      // drained from the queue again; drop the tombstone so pending() stays
      // exact.
      cancelled_.erase(ev.id);
    }
    return true;
  }
  return false;
}

std::size_t HeapSimulator::run_until(double until_s) {
  std::size_t ran = 0;
  for (;;) {
    // A cancelled tombstone at the top must not satisfy the time check on
    // behalf of a later live event.
    drain_cancelled_top();
    if (queue_.empty() || queue_.top().when_s > until_s) break;
    if (step()) ++ran;
  }
  if (now_s_ < until_s) now_s_ = until_s;
  return ran;
}

std::size_t HeapSimulator::run_before(double until_s) {
  std::size_t ran = 0;
  for (;;) {
    drain_cancelled_top();
    if (queue_.empty() || queue_.top().when_s >= until_s) break;
    if (step()) ++ran;
  }
  return ran;
}

double HeapSimulator::next_time() {
  drain_cancelled_top();
  return queue_.empty() ? std::numeric_limits<double>::infinity()
                        : queue_.top().when_s;
}

std::size_t HeapSimulator::run_all() {
  std::size_t ran = 0;
  while (step()) ++ran;
  return ran;
}

void HeapSimulator::restore_clock(double now_s) {
  require(std::isfinite(now_s) && now_s >= 0.0,
          "Simulator: restore_clock needs a finite time >= 0");
  require(pending() == 0,
          "Simulator: restore_clock requires an idle kernel (pending() == 0)");
  queue_ = {};  // only cancelled tombstones remain; drop them with the heap
  cancelled_.clear();
  now_s_ = now_s;
}

}  // namespace epm::sim
