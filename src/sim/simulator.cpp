#include "sim/simulator.h"

#include "core/require.h"

namespace epm::sim {

EventHandle Simulator::push(double when_s, double period_s, EventFn fn) {
  require(when_s >= now_s_, "Simulator: cannot schedule in the past");
  require(static_cast<bool>(fn), "Simulator: empty event function");
  const std::uint64_t id = next_id_++;
  queue_.push(Event{when_s, next_seq_++, id, period_s, std::move(fn)});
  return EventHandle{id};
}

EventHandle Simulator::schedule_at(double when_s, EventFn fn) {
  return push(when_s, 0.0, std::move(fn));
}

EventHandle Simulator::schedule_after(double delay_s, EventFn fn) {
  require(delay_s >= 0.0, "Simulator: negative delay");
  return push(now_s_ + delay_s, 0.0, std::move(fn));
}

EventHandle Simulator::schedule_periodic(double first_s, double period_s, EventFn fn) {
  require(period_s > 0.0, "Simulator: period must be positive");
  return push(first_s, period_s, std::move(fn));
}

void Simulator::cancel(EventHandle handle) {
  if (!handle.valid()) return;
  cancelled_.insert(handle.id_);
}

bool Simulator::is_cancelled(std::uint64_t id) const {
  return cancelled_.count(id) > 0;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    // At most one queued instance exists per id (periodic events are
    // re-queued only after firing), so a drained id can be forgotten now.
    if (cancelled_.erase(ev.id) > 0) continue;
    ensure(ev.when_s >= now_s_, "Simulator: time went backwards");
    now_s_ = ev.when_s;
    if (ev.period_s > 0.0) {
      queue_.push(Event{ev.when_s + ev.period_s, next_seq_++, ev.id, ev.period_s, ev.fn});
    }
    ev.fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run_until(double until_s) {
  std::size_t ran = 0;
  while (!queue_.empty() && queue_.top().when_s <= until_s) {
    if (step()) ++ran;
  }
  if (now_s_ < until_s) now_s_ = until_s;
  return ran;
}

std::size_t Simulator::run_all() {
  std::size_t ran = 0;
  while (step()) ++ran;
  return ran;
}

}  // namespace epm::sim
