// DVFS governors (paper §4.2).
//
// Each governor observes the last epoch and chooses the uniform P-state for
// the next one. Three of the surveyed policy families are implemented:
//   * StaticGovernor            — pin a P-state (baseline)
//   * OndemandGovernor          — utilization-band frequency stepping; the
//                                 "DVS oblivious to On/Off" actor in §5.1's
//                                 instability scenario
//   * ResponseTimePiGovernor    — feedback control on response time with
//                                 request batching flavor (ref [21],
//                                 Elnozahy et al.)
//   * PerfSettingGovernor       — deadline-style performance setting: the
//                                 slowest state predicted to still meet the
//                                 response target (ref [22], Vertigo)
#pragma once

#include <cstddef>
#include <string>

#include "cluster/service_cluster.h"

namespace epm::dvfs {

/// Interface: observe the finished epoch, command the next P-state.
class DvfsGovernor {
 public:
  virtual ~DvfsGovernor() = default;
  virtual std::string name() const = 0;
  /// Returns the P-state to apply for the next epoch.
  virtual std::size_t decide(const cluster::ServiceCluster& cluster,
                             const cluster::EpochResult& last) = 0;
};

class StaticGovernor final : public DvfsGovernor {
 public:
  explicit StaticGovernor(std::size_t pstate);
  std::string name() const override { return "static"; }
  std::size_t decide(const cluster::ServiceCluster&, const cluster::EpochResult&) override {
    return pstate_;
  }

 private:
  std::size_t pstate_;
};

struct OndemandConfig {
  double upscale_utilization = 0.80;   ///< above this, step faster
  double downscale_utilization = 0.45; ///< below this, step slower
};

class OndemandGovernor final : public DvfsGovernor {
 public:
  OndemandGovernor(std::size_t initial_pstate, OndemandConfig config);
  std::string name() const override { return "ondemand"; }
  std::size_t decide(const cluster::ServiceCluster& cluster,
                     const cluster::EpochResult& last) override;
  std::size_t current() const { return pstate_; }

 private:
  std::size_t pstate_;
  OndemandConfig config_;
};

struct ResponseTimePiConfig {
  double kp = 0.6;  ///< proportional gain on relative response error
  double ki = 0.2;  ///< integral gain
  double integral_clamp = 2.0;
};

class ResponseTimePiGovernor final : public DvfsGovernor {
 public:
  explicit ResponseTimePiGovernor(ResponseTimePiConfig config = {});
  std::string name() const override { return "pi-response"; }
  std::size_t decide(const cluster::ServiceCluster& cluster,
                     const cluster::EpochResult& last) override;

 private:
  ResponseTimePiConfig config_;
  double integral_ = 0.0;
  double speed_ = 1.0;  ///< continuous speed fraction, mapped to a P-state
};

class PerfSettingGovernor final : public DvfsGovernor {
 public:
  /// `headroom` < 1 keeps predicted response below target by that factor.
  explicit PerfSettingGovernor(double headroom = 0.8);
  std::string name() const override { return "perf-setting"; }
  std::size_t decide(const cluster::ServiceCluster& cluster,
                     const cluster::EpochResult& last) override;

 private:
  double headroom_;
};

}  // namespace epm::dvfs
