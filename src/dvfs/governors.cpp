#include "dvfs/governors.h"

#include <algorithm>
#include <cmath>

#include "core/require.h"

namespace epm::dvfs {

StaticGovernor::StaticGovernor(std::size_t pstate) : pstate_(pstate) {}

OndemandGovernor::OndemandGovernor(std::size_t initial_pstate, OndemandConfig config)
    : pstate_(initial_pstate), config_(config) {
  require(config_.downscale_utilization > 0.0 &&
              config_.downscale_utilization < config_.upscale_utilization &&
              config_.upscale_utilization < 1.0,
          "OndemandGovernor: need 0 < down < up < 1");
}

std::size_t OndemandGovernor::decide(const cluster::ServiceCluster& cluster,
                                     const cluster::EpochResult& last) {
  const std::size_t slowest = cluster.power_model().pstate_count() - 1;
  pstate_ = std::min(pstate_, slowest);
  if (last.utilization > config_.upscale_utilization) {
    // Linux ondemand jumps straight to maximum under pressure.
    pstate_ = 0;
  } else if (last.utilization < config_.downscale_utilization && pstate_ < slowest) {
    // "When the system is underloaded, the DVFS policy reduces the frequency
    //  of a processor, increasing system utilization." (§5.1)
    ++pstate_;
  }
  return pstate_;
}

ResponseTimePiGovernor::ResponseTimePiGovernor(ResponseTimePiConfig config)
    : config_(config) {
  require(config_.kp >= 0.0 && config_.ki >= 0.0,
          "ResponseTimePiGovernor: negative gains");
  require(config_.integral_clamp > 0.0, "ResponseTimePiGovernor: bad clamp");
}

std::size_t ResponseTimePiGovernor::decide(const cluster::ServiceCluster& cluster,
                                           const cluster::EpochResult& last) {
  const double target = cluster.config().sla.target_mean_response_s;
  // Relative error > 0 means we are too slow and must speed up.
  const double error = (last.mean_response_s - target) / target;
  integral_ = std::clamp(integral_ + error, -config_.integral_clamp,
                         config_.integral_clamp);
  speed_ = std::clamp(speed_ + config_.kp * error + config_.ki * integral_, 0.0, 1.0);
  // Pick the slowest P-state whose relative capacity covers `speed_`.
  return cluster.power_model().lowest_pstate_with_capacity(speed_);
}

PerfSettingGovernor::PerfSettingGovernor(double headroom) : headroom_(headroom) {
  require(headroom > 0.0 && headroom <= 1.0,
          "PerfSettingGovernor: headroom outside (0,1]");
}

std::size_t PerfSettingGovernor::decide(const cluster::ServiceCluster& cluster,
                                        const cluster::EpochResult& last) {
  const auto& model = cluster.power_model();
  const double target = cluster.config().sla.target_mean_response_s * headroom_;
  const std::size_t serving = std::max<std::size_t>(last.serving, 1);
  // Predict next epoch's per-server load from the last arrival rate, then
  // choose the slowest state for which M/G/1-PS response stays under target:
  //   demand/c / (1 - lambda*demand/(n*c)) <= target.
  const double lambda = last.arrival_rate_per_s;
  const double demand = last.service_demand_s;
  for (std::size_t p = model.pstate_count(); p-- > 0;) {
    const double c = model.relative_capacity(p);
    const double per_server_rate = c / demand;  // requests/s at this state
    const double rho = lambda / (static_cast<double>(serving) * per_server_rate);
    if (rho >= 0.95) continue;  // unstable or too close; try faster
    const double response = (demand / c) / (1.0 - rho);
    if (response <= target) return p;
  }
  return 0;  // nothing slow enough works; run flat out
}

}  // namespace epm::dvfs
