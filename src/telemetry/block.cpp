#include "telemetry/block.h"

#include <algorithm>
#include <cmath>

#include "core/require.h"
#include "telemetry/compress.h"

namespace epm::telemetry {

void SealedBlock::decode(std::vector<double>& times_s, std::vector<double>& values) const {
  times_s.resize(samples);
  values.resize(samples);
  BitReader tr(time_bytes);
  decode_times(tr, times_s.data(), samples);
  BitReader vr(value_bytes);
  decode_values(vr, values.data(), samples);
}

Aggregate lane_summary(const double* values, std::size_t n) {
  Aggregate out;
  if (n == 0) return out;
  out.count = n;
  std::size_t i = 0;
  if (n >= 4) {
    // Four independent min/max lanes over the contiguous column; each lane's
    // dependency chain is its own, so the loop vectorizes to packed
    // min/max. (Assumes no NaN/-0.0 in the column — true for the counter
    // mix; lane order would otherwise be observable.)
    double mn0 = values[0], mn1 = values[1], mn2 = values[2], mn3 = values[3];
    double mx0 = mn0, mx1 = mn1, mx2 = mn2, mx3 = mn3;
    for (i = 4; i + 4 <= n; i += 4) {
      mn0 = std::min(mn0, values[i + 0]);
      mn1 = std::min(mn1, values[i + 1]);
      mn2 = std::min(mn2, values[i + 2]);
      mn3 = std::min(mn3, values[i + 3]);
      mx0 = std::max(mx0, values[i + 0]);
      mx1 = std::max(mx1, values[i + 1]);
      mx2 = std::max(mx2, values[i + 2]);
      mx3 = std::max(mx3, values[i + 3]);
    }
    out.min = std::min(std::min(mn0, mn1), std::min(mn2, mn3));
    out.max = std::max(std::max(mx0, mx1), std::max(mx2, mx3));
    for (; i < n; ++i) {
      out.min = std::min(out.min, values[i]);
      out.max = std::max(out.max, values[i]);
    }
  } else {
    out.min = out.max = values[0];
    for (i = 1; i < n; ++i) {
      out.min = std::min(out.min, values[i]);
      out.max = std::max(out.max, values[i]);
    }
  }
  // Strict left fold for the sum: the one reduction where grouping changes
  // bits, so it is never laned.
  double sum = 0.0;
  for (std::size_t j = 0; j < n; ++j) sum += values[j];
  out.sum = sum;
  return out;
}

ColumnSeries::ColumnSeries(const MultiScaleConfig& config, const TelemetryTuning& tuning)
    : block_capacity_(tuning.block_capacity),
      anomaly_config_(tuning.anomaly),
      levels_(make_level_bins(config)),
      first_ever_bin_(levels_.size(), 0),
      detector_(tuning.anomaly) {
  require(block_capacity_ >= 1, "ColumnSeries: block_capacity must be >= 1");
  open_times_.reserve(block_capacity_);
  open_values_.reserve(block_capacity_);
}

void ColumnSeries::append(double time_s, double value) {
  require(time_s >= 0.0, "ColumnSeries: negative time");
  require(time_s >= last_time_s_, "ColumnSeries: timestamps must be non-decreasing");
  if (total_samples_ == 0) {
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      first_ever_bin_[l] = levels_[l].bin_index(time_s);
    }
  }
  last_time_s_ = time_s;
  ++total_samples_;
  open_times_.push_back(time_s);
  open_values_.push_back(value);
  if (open_times_.size() >= block_capacity_) seal();
}

void ColumnSeries::flush() { seal(); }

void ColumnSeries::seal() {
  const std::size_t n = open_times_.size();
  if (n == 0) return;
  const double* times = open_times_.data();
  const double* values = open_values_.data();

  // [banding] Same fold the legacy cascade runs, one level row at a time.
  for (auto& lvl : levels_) lvl.add_column(times, values, n);

  // [detect] Events carry key=0 here; the store stamps the owning counter.
  if (anomaly_config_.enabled) {
    for (std::size_t i = 0; i < n; ++i) {
      const double z = detector_.observe(values[i]);
      if (z > 0.0) events_.push_back(AnomalyEvent{0, times[i], values[i], z});
    }
  }

  // [downsample] + [compress]
  SealedBlock block;
  block.first_time_s = times[0];
  block.last_time_s = times[n - 1];
  block.samples = static_cast<std::uint32_t>(n);
  block.summary = lane_summary(values, n);
  BitWriter tw;
  encode_times(times, n, tw);
  block.time_bytes = tw.finish();
  block.time_bytes.shrink_to_fit();
  BitWriter vw;
  encode_values(values, n, vw);
  block.value_bytes = vw.finish();
  block.value_bytes.shrink_to_fit();
  blocks_.push_back(std::move(block));

  open_times_.clear();
  open_values_.clear();
}

ColumnSeries::LevelWindow ColumnSeries::effective_window(std::size_t level) const {
  // Closed form of the legacy per-append eviction: after every sample so
  // far (sealed and open alike) has passed through LevelBins::add, the
  // retained window is the trailing `retention_bins` ending at the newest
  // sample's bin, clamped to the first bin ever touched.
  const LevelBins& lvl = levels_[level];
  LevelWindow w;
  w.last = lvl.bin_index(last_time_s_);
  w.first = first_ever_bin_[level];
  if (lvl.spec.retention_bins != 0) {
    const std::int64_t cutoff =
        w.last - static_cast<std::int64_t>(lvl.spec.retention_bins) + 1;
    w.first = std::max(w.first, cutoff);
  }
  return w;
}

Aggregate ColumnSeries::sealed_bin(std::size_t level, std::int64_t bin) const {
  const LevelBins& lvl = levels_[level];
  if (lvl.bins.empty()) return {};
  const std::int64_t idx = bin - lvl.first_bin;
  if (idx < 0 || idx >= static_cast<std::int64_t>(lvl.bins.size())) return {};
  return lvl.bins[static_cast<std::size_t>(idx)];
}

Aggregate ColumnSeries::range_at_level(std::size_t level, double t0_s, double t1_s) const {
  require(level < levels_.size(), "ColumnSeries: level out of range");
  require(t1_s >= t0_s, "ColumnSeries: inverted range");
  Aggregate out;
  if (total_samples_ == 0) return out;
  const LevelBins& lvl = levels_[level];
  const LevelWindow w = effective_window(level);
  const std::int64_t lo = std::max(lvl.bin_index(t0_s), w.first);
  const std::int64_t hi = std::min(lvl.bin_index(std::nextafter(t1_s, t0_s)), w.last);
  // Walk the open column once alongside the bin loop; open samples extend
  // the per-bin fold exactly where the legacy cascade would have put them
  // (they are the newest samples, so they fold after the sealed content).
  std::size_t oi = 0;
  const std::size_t on = open_times_.size();
  while (oi < on && lvl.bin_index(open_times_[oi]) < lo) ++oi;
  for (std::int64_t b = lo; b <= hi; ++b) {
    Aggregate agg = sealed_bin(level, b);
    while (oi < on && lvl.bin_index(open_times_[oi]) == b) {
      agg.add(open_values_[oi]);
      ++oi;
    }
    out.merge(agg);
  }
  return out;
}

Aggregate ColumnSeries::range(double t0_s, double t1_s) const {
  if (total_samples_ == 0) return {};
  // Finest level whose retained window still reaches back to t0_s — the
  // legacy selection rule, with the window in closed form.
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const double retained_start = static_cast<double>(effective_window(l).first) *
                                  levels_[l].spec.resolution_s;
    if (retained_start <= t0_s + 1e-9) return range_at_level(l, t0_s, t1_s);
  }
  return range_at_level(levels_.size() - 1, t0_s, t1_s);
}

MultiScaleSeries::BinnedMeans ColumnSeries::means_at_level(std::size_t level,
                                                           double t0_s,
                                                           double t1_s) const {
  require(level < levels_.size(), "ColumnSeries: level out of range");
  require(t1_s >= t0_s, "ColumnSeries: inverted range");
  MultiScaleSeries::BinnedMeans out;
  if (total_samples_ == 0) return out;
  const LevelBins& lvl = levels_[level];
  const LevelWindow w = effective_window(level);
  const std::int64_t lo = std::max(lvl.bin_index(t0_s), w.first);
  const std::int64_t hi = std::min(lvl.bin_index(std::nextafter(t1_s, t0_s)), w.last);
  std::size_t oi = 0;
  const std::size_t on = open_times_.size();
  while (oi < on && lvl.bin_index(open_times_[oi]) < lo) ++oi;
  for (std::int64_t b = lo; b <= hi; ++b) {
    Aggregate agg = sealed_bin(level, b);
    while (oi < on && lvl.bin_index(open_times_[oi]) == b) {
      agg.add(open_values_[oi]);
      ++oi;
    }
    if (agg.count == 0) continue;
    out.times_s.push_back(static_cast<double>(b) * lvl.spec.resolution_s);
    out.means.push_back(agg.mean());
  }
  return out;
}

Aggregate ColumnSeries::raw_range(double t0_s, double t1_s) const {
  require(t1_s >= t0_s, "ColumnSeries: inverted range");
  Aggregate out;
  std::vector<double> times, values;
  for (const SealedBlock& block : blocks_) {
    if (block.samples == 0) continue;
    if (block.last_time_s < t0_s || block.first_time_s >= t1_s) continue;
    if (block.first_time_s >= t0_s && block.last_time_s < t1_s) {
      // Whole block inside the window: its summary stands in for the
      // samples, so the block is never decompressed. (Sum association is
      // block-granular; min/max/count are exact.)
      out.merge(block.summary);
      continue;
    }
    block.decode(times, values);
    for (std::uint32_t i = 0; i < block.samples; ++i) {
      if (times[i] >= t0_s && times[i] < t1_s) out.add(values[i]);
    }
  }
  for (std::size_t i = 0; i < open_times_.size(); ++i) {
    if (open_times_[i] >= t0_s && open_times_[i] < t1_s) out.add(open_values_[i]);
  }
  return out;
}

std::size_t ColumnSeries::memory_bytes() const {
  std::size_t bytes = open_times_.capacity() * sizeof(double) +
                      open_values_.capacity() * sizeof(double) +
                      events_.capacity() * sizeof(AnomalyEvent);
  for (const SealedBlock& block : blocks_) bytes += block.memory_bytes();
  for (const LevelBins& lvl : levels_) bytes += lvl.bins.size() * sizeof(Aggregate);
  return bytes;
}

std::size_t ColumnSeries::compressed_payload_bytes() const {
  std::size_t bytes = 0;
  for (const SealedBlock& block : blocks_) bytes += block.payload_bytes();
  return bytes;
}

}  // namespace epm::telemetry
