// Fixed-capacity lock-free single-producer / single-consumer ingest ring.
//
// The firehose ingest path (store.h) wires one ring per (producer slice,
// drainer) pair: the producer scans a contiguous slice of the input batch
// and pushes each sample into the ring of the drainer that owns the
// sample's shard; the drainer pops rings in producer order, so per-series
// sample order is the batch order at every thread count. Rings are bounded
// (fixed capacity, no allocation after construction); a full ring applies
// backpressure by spinning the producer, which is safe because producer and
// drainer roles always occupy distinct pool workers (see
// ColumnarTelemetryStore::bulk_append).
//
// Memory ordering is the classic SPSC discipline: the producer publishes a
// slot with a release store of head, the consumer acquires it; each side
// caches the opposite index to keep coherence traffic off the fast path.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "core/require.h"

namespace epm::telemetry {

template <typename T>
class IngestRing {
 public:
  /// Capacity is rounded up to a power of two (so wrap is a mask).
  explicit IngestRing(std::size_t capacity = 1024) {
    require(capacity >= 2, "IngestRing: capacity must be >= 2");
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side. Returns false when the ring is full.
  bool try_push(const T& item) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ >= slots_.size()) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ >= slots_.size()) return false;
    }
    slots_[head & mask_] = item;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Producer side: blocking push. Spins (yielding) until space frees up;
  /// the paired drainer is guaranteed to be running on another worker.
  void push(const T& item) {
    std::size_t spins = 0;
    while (!try_push(item)) {
      if (++spins > 64) std::this_thread::yield();
    }
  }

  /// Producer side: marks the stream complete (no further pushes).
  void close() { closed_.store(true, std::memory_order_release); }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) return false;
    }
    out = slots_[tail & mask_];
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: pops up to `max` items into `out`; returns the count.
  std::size_t pop_chunk(T* out, std::size_t max) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t avail = cached_head_ - tail;
    if (avail == 0) {
      cached_head_ = head_.load(std::memory_order_acquire);
      avail = cached_head_ - tail;
      if (avail == 0) return 0;
    }
    const std::size_t n = avail < max ? avail : max;
    for (std::size_t i = 0; i < n; ++i) out[i] = slots_[(tail + i) & mask_];
    tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  /// Consumer side: true once the producer closed the stream AND every
  /// pushed item has been popped. Check closed *before* a final emptiness
  /// probe so a push racing the close is never lost.
  bool drained() {
    if (!closed_.load(std::memory_order_acquire)) return false;
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    return head_.load(std::memory_order_acquire) == tail;
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< producer writes
  alignas(64) std::size_t cached_tail_ = 0;       ///< producer-local
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< consumer writes
  alignas(64) std::size_t cached_head_ = 0;       ///< consumer-local
  std::atomic<bool> closed_{false};
};

}  // namespace epm::telemetry
