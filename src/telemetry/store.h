// Fleet-wide telemetry store: (server, counter) -> MultiScaleSeries, plus a
// raw append-only store used as the query baseline the paper's §5.3
// argument is made against.
//
// The store is sharded by server so the §5.3 firehose (10,000 servers x 100
// counters @ 15 s = 2.4M+ points/minute) can be ingested in parallel: each
// shard owns a disjoint key range, bulk ingest hands whole shards to worker
// threads (no locks, no contention), and queries hit exactly one shard
// (merge-free). Per-series sample order is the input order regardless of
// thread count, so parallel ingest is bit-identical to serial.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "telemetry/multiscale.h"

namespace epm {
class ThreadPool;
}

namespace epm::telemetry {

/// Dense counter key: server index * counters_per_server + counter index.
using CounterKey = std::uint64_t;

constexpr CounterKey make_key(std::uint32_t server, std::uint32_t counter) {
  return (static_cast<CounterKey>(server) << 32) | counter;
}
constexpr std::uint32_t server_of(CounterKey key) {
  return static_cast<std::uint32_t>(key >> 32);
}
constexpr std::uint32_t counter_of(CounterKey key) {
  return static_cast<std::uint32_t>(key & 0xffffffffu);
}

/// One telemetry point in flight, as handed to bulk ingest.
struct Sample {
  CounterKey key = 0;
  double time_s = 0.0;
  double value = 0.0;
  /// Set by the fault layer for sensor stuck-at faults: the value is a stale
  /// repeat, not a fresh reading. Degraded samples are stored (queries still
  /// work) but counted so consumers can judge data quality.
  bool degraded = false;
};

/// Multi-scale store for a whole fleet, sharded by server.
class TelemetryStore {
 public:
  /// Fixed shard fan-out. Independent of the thread count (shards are
  /// assigned to workers, not created per worker), so the layout — and
  /// every query answer — is identical however many threads ingest.
  static constexpr std::size_t kShards = 64;

  static constexpr std::size_t shard_of(CounterKey key) {
    return server_of(key) % kShards;
  }

  explicit TelemetryStore(MultiScaleConfig per_counter_config = {});

  /// Appends one sample; creates the series lazily.
  void append(CounterKey key, double time_s, double value, bool degraded = false);

  /// Fault hook: accounts `count` samples that a sensor dropout swallowed
  /// (they were never produced, so nothing is stored).
  void record_dropout(std::uint64_t count) { dropped_samples_ += count; }

  /// Overload-defense accounting (closed-loop workloads): requests refused
  /// by the admission stack, intents abandoned by clients, and re-offered
  /// retry attempts. Counters, not series — the per-epoch rates flow
  /// through the sensor plane as kShedRate/kRetryRate channels.
  void record_shed(std::uint64_t count) { shed_requests_ += count; }
  void record_abandoned(std::uint64_t count) { abandoned_requests_ += count; }
  void record_retried(std::uint64_t count) { retried_requests_ += count; }

  /// Parallel bulk ingest: partitions `samples` by shard, then lets each
  /// worker apply whole shards (one shard is never split across threads, so
  /// no locking is needed and per-series order is the input order). Requires
  /// the same per-series timestamp monotonicity as append(). Bit-identical
  /// to appending `samples` serially, at every thread count.
  void bulk_append(const std::vector<Sample>& samples, ThreadPool& pool);
  /// Convenience overload: a private pool with `threads` workers
  /// (0 = default_thread_count()).
  void bulk_append(const std::vector<Sample>& samples, std::size_t threads = 0);

  std::size_t series_count() const;
  std::uint64_t total_samples() const { return total_samples_; }
  /// Stored samples flagged degraded (sensor stuck-at).
  std::uint64_t degraded_samples() const { return degraded_samples_; }
  /// Samples lost to sensor dropouts (never stored).
  std::uint64_t dropped_samples() const { return dropped_samples_; }
  /// Requests refused by the admission stack (queue/bucket/breaker).
  std::uint64_t shed_requests() const { return shed_requests_; }
  /// Client intents abandoned after exhausting their retry budget.
  std::uint64_t abandoned_requests() const { return abandoned_requests_; }
  /// Re-offered (retry) attempts beyond each intent's first.
  std::uint64_t retried_requests() const { return retried_requests_; }
  /// Series lookup; throws for unknown keys.
  const MultiScaleSeries& series(CounterKey key) const;
  bool contains(CounterKey key) const {
    return shards_[shard_of(key)].count(key) > 0;
  }

  std::size_t memory_bytes() const;

  /// §5.3 band queries over one counter:
  /// Long-term trend: daily means over [t0, t1).
  MultiScaleSeries::BinnedMeans daily_trend(CounterKey key, double t0_s, double t1_s) const;
  /// Within-day pattern: hourly means.
  MultiScaleSeries::BinnedMeans hourly_pattern(CounterKey key, double t0_s,
                                               double t1_s) const;

 private:
  using ShardMap = std::unordered_map<CounterKey, MultiScaleSeries>;

  MultiScaleConfig config_;
  std::array<ShardMap, kShards> shards_;
  std::uint64_t total_samples_ = 0;
  std::uint64_t degraded_samples_ = 0;
  std::uint64_t dropped_samples_ = 0;
  std::uint64_t shed_requests_ = 0;
  std::uint64_t abandoned_requests_ = 0;
  std::uint64_t retried_requests_ = 0;
  std::size_t daily_level_ = 0;
  std::size_t hourly_level_ = 0;
};

/// Plain raw storage (15 s samples kept forever) used as the baseline in
/// EXP-F: linear-scan queries and un-aggregated memory footprint.
class RawStore {
 public:
  void append(CounterKey key, double time_s, double value);
  std::uint64_t total_samples() const { return total_samples_; }
  std::size_t memory_bytes() const;

  struct Stats {
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    std::uint64_t count = 0;
  };
  /// Linear scan over one counter's samples in [t0, t1).
  Stats range(CounterKey key, double t0_s, double t1_s) const;

 private:
  struct Column {
    std::vector<double> times_s;
    std::vector<double> values;
  };
  std::unordered_map<CounterKey, Column> columns_;
  std::uint64_t total_samples_ = 0;
};

}  // namespace epm::telemetry
