// Fleet-wide telemetry stores: (server, counter) -> per-counter history,
// sharded by server so the §5.3 firehose (10,000 servers x 100 counters
// @ 15 s = 2.4M+ points/minute) can be ingested in parallel.
//
// Two implementations share one query API:
//
//   * LegacyTelemetryStore — the original design: every sample cascades
//     through a MultiScaleSeries immediately; bulk ingest partitions the
//     batch by shard and applies whole shards per worker. Kept as the
//     bit-identity baseline.
//
//   * ColumnarTelemetryStore — the firehose path: producers push samples
//     through lock-free SPSC ingest rings (ring.h) into shard drainers;
//     each counter accumulates plain columnar blocks (block.h) and the
//     banding / downsampling / anomaly / compression work runs per sealed
//     block over contiguous arrays instead of per sample.
//
// Both stores give every series its samples in batch order at any thread
// count, and both run the same LevelBins fold, so band queries answer
// bit-identically across the two (enforced by tests and EXP-AA).
//
// `TelemetryStore` aliases the columnar store; build with
// -DEPM_TELEMETRY_LEGACY to flip the whole binary onto the legacy path for
// A/B comparison (same pattern as EPM_SIM_BINARY_HEAP, PR 5).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "telemetry/block.h"
#include "telemetry/multiscale.h"

namespace epm {
class ThreadPool;
}

namespace epm::telemetry {

/// Dense counter key: server index * counters_per_server + counter index.
using CounterKey = std::uint64_t;

constexpr CounterKey make_key(std::uint32_t server, std::uint32_t counter) {
  return (static_cast<CounterKey>(server) << 32) | counter;
}
constexpr std::uint32_t server_of(CounterKey key) {
  return static_cast<std::uint32_t>(key >> 32);
}
constexpr std::uint32_t counter_of(CounterKey key) {
  return static_cast<std::uint32_t>(key & 0xffffffffu);
}

/// Fixed shard fan-out. Independent of the thread count (shards are
/// assigned to workers, not created per worker), so the layout — and every
/// query answer — is identical however many threads ingest.
constexpr std::size_t kTelemetryShards = 64;

/// splitmix64 finalizer over the server id. A plain `server % kShards`
/// collides whole racks onto one shard whenever fleet enumeration strides
/// by a multiple of 64 (e.g. servers 0, 64, 128, ... of a column-major
/// rack layout all landed on shard 0, serializing their ingest); the mix
/// spreads any enumeration pattern evenly.
constexpr std::uint64_t mix_server(std::uint32_t server) {
  std::uint64_t x = static_cast<std::uint64_t>(server) + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::size_t telemetry_shard_of(CounterKey key) {
  return static_cast<std::size_t>(mix_server(server_of(key)) % kTelemetryShards);
}

/// One telemetry point in flight, as handed to bulk ingest.
struct Sample {
  CounterKey key = 0;
  double time_s = 0.0;
  double value = 0.0;
  /// Set by the fault layer for sensor stuck-at faults: the value is a stale
  /// repeat, not a fresh reading. Degraded samples are stored (queries still
  /// work) but counted so consumers can judge data quality.
  bool degraded = false;
};

/// Multi-scale store for a whole fleet, sharded by server (original
/// per-sample cascade design; the columnar store's A/B baseline).
class LegacyTelemetryStore {
 public:
  static constexpr std::size_t kShards = kTelemetryShards;

  static constexpr std::size_t shard_of(CounterKey key) {
    return telemetry_shard_of(key);
  }

  /// `tuning` is accepted for signature parity with the columnar store (so
  /// the TelemetryStore alias is a drop-in either way) and ignored here.
  explicit LegacyTelemetryStore(MultiScaleConfig per_counter_config = {},
                                const TelemetryTuning& tuning = {});

  /// Appends one sample; creates the series lazily.
  void append(CounterKey key, double time_s, double value, bool degraded = false);

  /// Fault hook: accounts `count` samples that a sensor dropout swallowed
  /// (they were never produced, so nothing is stored).
  void record_dropout(std::uint64_t count) { dropped_samples_ += count; }

  /// Overload-defense accounting (closed-loop workloads): requests refused
  /// by the admission stack, intents abandoned by clients, and re-offered
  /// retry attempts. Counters, not series — the per-epoch rates flow
  /// through the sensor plane as kShedRate/kRetryRate channels.
  void record_shed(std::uint64_t count) { shed_requests_ += count; }
  void record_abandoned(std::uint64_t count) { abandoned_requests_ += count; }
  void record_retried(std::uint64_t count) { retried_requests_ += count; }

  /// Parallel bulk ingest: partitions `samples` by shard, then lets each
  /// worker apply whole shards (one shard is never split across threads, so
  /// no locking is needed and per-series order is the input order). Requires
  /// the same per-series timestamp monotonicity as append(). Bit-identical
  /// to appending `samples` serially, at every thread count.
  void bulk_append(const std::vector<Sample>& samples, ThreadPool& pool);
  /// Convenience overload: a private pool with `threads` workers
  /// (0 = default_thread_count()).
  void bulk_append(const std::vector<Sample>& samples, std::size_t threads = 0);

  /// No deferred state on this path; provided for alias parity.
  void flush() {}

  std::size_t series_count() const;
  std::uint64_t total_samples() const { return total_samples_; }
  /// Stored samples flagged degraded (sensor stuck-at).
  std::uint64_t degraded_samples() const { return degraded_samples_; }
  /// Samples lost to sensor dropouts (never stored).
  std::uint64_t dropped_samples() const { return dropped_samples_; }
  /// Requests refused by the admission stack (queue/bucket/breaker).
  std::uint64_t shed_requests() const { return shed_requests_; }
  /// Client intents abandoned after exhausting their retry budget.
  std::uint64_t abandoned_requests() const { return abandoned_requests_; }
  /// Re-offered (retry) attempts beyond each intent's first.
  std::uint64_t retried_requests() const { return retried_requests_; }
  /// Series lookup; throws for unknown keys. (Legacy-only: the columnar
  /// store has no MultiScaleSeries to hand out — use the query methods.)
  const MultiScaleSeries& series(CounterKey key) const;
  bool contains(CounterKey key) const {
    return shards_[shard_of(key)].count(key) > 0;
  }

  std::size_t memory_bytes() const;

  /// §5.3 band queries over one counter (shared query API):
  /// Aggregate over [t0, t1) from the finest level still covering t0.
  Aggregate range(CounterKey key, double t0_s, double t1_s) const;
  /// Long-term trend: daily means over [t0, t1).
  MultiScaleSeries::BinnedMeans daily_trend(CounterKey key, double t0_s, double t1_s) const;
  /// Within-day pattern: hourly means.
  MultiScaleSeries::BinnedMeans hourly_pattern(CounterKey key, double t0_s,
                                               double t1_s) const;

  /// In-stream anomaly detection is columnar-only; empty here (alias parity).
  std::vector<AnomalyEvent> anomalies() const { return {}; }

 private:
  using ShardMap = std::unordered_map<CounterKey, MultiScaleSeries>;

  MultiScaleConfig config_;
  std::array<ShardMap, kShards> shards_;
  std::uint64_t total_samples_ = 0;
  std::uint64_t degraded_samples_ = 0;
  std::uint64_t dropped_samples_ = 0;
  std::uint64_t shed_requests_ = 0;
  std::uint64_t abandoned_requests_ = 0;
  std::uint64_t retried_requests_ = 0;
  std::size_t daily_level_ = 0;
  std::size_t hourly_level_ = 0;
};

/// Columnar firehose store: ring-fed shard drainers, compressed sealed
/// blocks, block-seal banding/downsampling/anomaly detection (block.h).
class ColumnarTelemetryStore {
 public:
  static constexpr std::size_t kShards = kTelemetryShards;

  static constexpr std::size_t shard_of(CounterKey key) {
    return telemetry_shard_of(key);
  }

  explicit ColumnarTelemetryStore(MultiScaleConfig per_counter_config = {},
                                  const TelemetryTuning& tuning = {});

  void append(CounterKey key, double time_s, double value, bool degraded = false);

  void record_dropout(std::uint64_t count) { dropped_samples_ += count; }
  void record_shed(std::uint64_t count) { shed_requests_ += count; }
  void record_abandoned(std::uint64_t count) { abandoned_requests_ += count; }
  void record_retried(std::uint64_t count) { retried_requests_ += count; }

  /// Pipelined parallel bulk ingest. With a pool of T >= 2 workers the
  /// batch is split across P producers that push into P x D lock-free SPSC
  /// rings (ring.h); D shard drainers pull concurrently and append into
  /// their disjoint shard sets, P + D <= T so every role runs at once.
  /// Drainer d consumes producer rings in producer order, and producers own
  /// contiguous input slices, so per-series sample order is the batch order
  /// at every thread count — bit-identical to serial append. T == 1 falls
  /// back to the serial loop (same result by the same argument).
  void bulk_append(const std::vector<Sample>& samples, ThreadPool& pool);
  void bulk_append(const std::vector<Sample>& samples, std::size_t threads = 0);

  /// Seals every open block (partial blocks included) so all samples are in
  /// the compressed chain and the banding rows. Queries do not require a
  /// flush — open blocks are scanned directly — but benchmarks and memory
  /// accounting call it to finalize.
  void flush();

  std::size_t series_count() const;
  std::uint64_t total_samples() const { return total_samples_; }
  std::uint64_t degraded_samples() const { return degraded_samples_; }
  std::uint64_t dropped_samples() const { return dropped_samples_; }
  std::uint64_t shed_requests() const { return shed_requests_; }
  std::uint64_t abandoned_requests() const { return abandoned_requests_; }
  std::uint64_t retried_requests() const { return retried_requests_; }
  bool contains(CounterKey key) const {
    return shards_[shard_of(key)].count(key) > 0;
  }
  /// Columnar series lookup; throws for unknown keys.
  const ColumnSeries& column_series(CounterKey key) const;

  std::size_t memory_bytes() const;
  /// Compressed payload across all sealed blocks (compression-ratio
  /// denominator; the numerator is 16 bytes x sealed_samples()).
  std::size_t compressed_payload_bytes() const;
  /// Samples living in sealed (compressed) blocks.
  std::uint64_t sealed_samples() const;

  /// Shared query API (bit-identical to the legacy store on equal input).
  Aggregate range(CounterKey key, double t0_s, double t1_s) const;
  MultiScaleSeries::BinnedMeans daily_trend(CounterKey key, double t0_s, double t1_s) const;
  MultiScaleSeries::BinnedMeans hourly_pattern(CounterKey key, double t0_s,
                                               double t1_s) const;

  /// Exact aggregate over the raw (uncompacted) history of one counter —
  /// whole interior blocks answer from their summaries without
  /// decompression. The legacy design needed a separate RawStore for this.
  Aggregate raw_range(CounterKey key, double t0_s, double t1_s) const;

  /// All band-escape events so far, keys stamped, ordered by (time, key)
  /// with per-series emission order preserved — deterministic despite the
  /// unordered shard maps. Detection latency is one sealed block: call
  /// flush() first to include open-block samples.
  std::vector<AnomalyEvent> anomalies() const;

 private:
  using ShardMap = std::unordered_map<CounterKey, ColumnSeries>;

  ColumnSeries& series_slot(std::size_t shard, CounterKey key);

  MultiScaleConfig config_;
  TelemetryTuning tuning_;
  std::array<ShardMap, kShards> shards_;
  std::uint64_t total_samples_ = 0;
  std::uint64_t degraded_samples_ = 0;
  std::uint64_t dropped_samples_ = 0;
  std::uint64_t shed_requests_ = 0;
  std::uint64_t abandoned_requests_ = 0;
  std::uint64_t retried_requests_ = 0;
  std::size_t daily_level_ = 0;
  std::size_t hourly_level_ = 0;
};

/// Build-time A/B switch, same pattern as EPM_SIM_BINARY_HEAP: the default
/// build runs columnar; -DEPM_TELEMETRY_LEGACY flips every consumer onto
/// the legacy per-sample cascade.
#ifdef EPM_TELEMETRY_LEGACY
using TelemetryStore = LegacyTelemetryStore;
#else
using TelemetryStore = ColumnarTelemetryStore;
#endif

/// Plain raw storage (15 s samples kept forever) used as the baseline in
/// EXP-F: linear-scan queries and un-aggregated memory footprint.
class RawStore {
 public:
  void append(CounterKey key, double time_s, double value);
  std::uint64_t total_samples() const { return total_samples_; }
  std::size_t memory_bytes() const;

  struct Stats {
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    std::uint64_t count = 0;
  };
  /// Linear scan over one counter's samples in [t0, t1).
  Stats range(CounterKey key, double t0_s, double t1_s) const;

 private:
  struct Column {
    std::vector<double> times_s;
    std::vector<double> values;
  };
  std::unordered_map<CounterKey, Column> columns_;
  std::uint64_t total_samples_ = 0;
};

}  // namespace epm::telemetry
