// Fleet-wide telemetry store: (server, counter) -> MultiScaleSeries, plus a
// raw append-only store used as the query baseline the paper's §5.3
// argument is made against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "telemetry/multiscale.h"

namespace epm::telemetry {

/// Dense counter key: server index * counters_per_server + counter index.
using CounterKey = std::uint64_t;

constexpr CounterKey make_key(std::uint32_t server, std::uint32_t counter) {
  return (static_cast<CounterKey>(server) << 32) | counter;
}
constexpr std::uint32_t server_of(CounterKey key) {
  return static_cast<std::uint32_t>(key >> 32);
}
constexpr std::uint32_t counter_of(CounterKey key) {
  return static_cast<std::uint32_t>(key & 0xffffffffu);
}

/// Multi-scale store for a whole fleet.
class TelemetryStore {
 public:
  explicit TelemetryStore(MultiScaleConfig per_counter_config = {});

  /// Appends one sample; creates the series lazily.
  void append(CounterKey key, double time_s, double value);

  std::size_t series_count() const { return series_.size(); }
  std::uint64_t total_samples() const { return total_samples_; }
  /// Series lookup; throws for unknown keys.
  const MultiScaleSeries& series(CounterKey key) const;
  bool contains(CounterKey key) const { return series_.count(key) > 0; }

  std::size_t memory_bytes() const;

  /// §5.3 band queries over one counter:
  /// Long-term trend: daily means over [t0, t1).
  MultiScaleSeries::BinnedMeans daily_trend(CounterKey key, double t0_s, double t1_s) const;
  /// Within-day pattern: hourly means.
  MultiScaleSeries::BinnedMeans hourly_pattern(CounterKey key, double t0_s,
                                               double t1_s) const;

 private:
  MultiScaleConfig config_;
  std::unordered_map<CounterKey, MultiScaleSeries> series_;
  std::uint64_t total_samples_ = 0;
  std::size_t daily_level_ = 0;
  std::size_t hourly_level_ = 0;
};

/// Plain raw storage (15 s samples kept forever) used as the baseline in
/// EXP-F: linear-scan queries and un-aggregated memory footprint.
class RawStore {
 public:
  void append(CounterKey key, double time_s, double value);
  std::uint64_t total_samples() const { return total_samples_; }
  std::size_t memory_bytes() const;

  struct Stats {
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    std::uint64_t count = 0;
  };
  /// Linear scan over one counter's samples in [t0, t1).
  Stats range(CounterKey key, double t0_s, double t1_s) const;

 private:
  struct Column {
    std::vector<double> times_s;
    std::vector<double> values;
  };
  std::unordered_map<CounterKey, Column> columns_;
  std::uint64_t total_samples_ = 0;
};

}  // namespace epm::telemetry
