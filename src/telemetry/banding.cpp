#include "telemetry/banding.h"

#include <algorithm>
#include <cmath>

#include "core/require.h"
#include "core/stats.h"
#include "core/units.h"

namespace epm::telemetry {
namespace {

std::size_t day_of(const TimeSeries& series, std::size_t i) {
  return static_cast<std::size_t>(series.time_at(i) / kSecondsPerDay);
}

std::size_t hour_of(const TimeSeries& series, std::size_t i) {
  return static_cast<std::size_t>(
             std::fmod(series.time_at(i), kSecondsPerDay) / kSecondsPerHour) %
         24;
}

}  // namespace

BandDecomposition band_compress(const TimeSeries& series, double residual_threshold) {
  require(!series.empty(), "band_compress: empty series");
  require(residual_threshold >= 0.0, "band_compress: negative threshold");
  require(series.start_s() >= 0.0, "band_compress: negative start");
  require(series.size() < (std::size_t{1} << 32), "band_compress: series too long");

  BandDecomposition bands;
  bands.start_s = series.start_s();
  bands.step_s = series.step_s();
  bands.original_samples = series.size();
  bands.residual_threshold = residual_threshold;

  // Band 1: per-day means.
  const std::size_t first_day = day_of(series, 0);
  const std::size_t last_day = day_of(series, series.size() - 1);
  std::vector<OnlineStats> day_stats(last_day - first_day + 1);
  for (std::size_t i = 0; i < series.size(); ++i) {
    day_stats[day_of(series, i) - first_day].add(series[i]);
  }
  bands.daily_trend.reserve(day_stats.size());
  for (const auto& s : day_stats) bands.daily_trend.push_back(s.mean());

  // Band 2: hour-of-day profile of the detrended signal.
  std::vector<OnlineStats> hour_stats(24);
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double detrended = series[i] - bands.daily_trend[day_of(series, i) - first_day];
    hour_stats[hour_of(series, i)].add(detrended);
  }
  bands.hourly_profile.reserve(24);
  for (const auto& s : hour_stats) bands.hourly_profile.push_back(s.mean());

  // Band 3: sparse residuals above the noise threshold.
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double predicted = bands.daily_trend[day_of(series, i) - first_day] +
                             bands.hourly_profile[hour_of(series, i)];
    const double residual = series[i] - predicted;
    if (std::fabs(residual) > residual_threshold) {
      bands.residual_index.push_back(static_cast<std::uint32_t>(i));
      bands.residual_value.push_back(residual);
    }
  }
  return bands;
}

TimeSeries band_reconstruct(const BandDecomposition& bands) {
  require(bands.original_samples > 0, "band_reconstruct: empty decomposition");
  require(bands.hourly_profile.size() == 24, "band_reconstruct: malformed profile");
  std::vector<double> values;
  values.reserve(bands.original_samples);
  const auto first_day = static_cast<std::size_t>(bands.start_s / kSecondsPerDay);
  for (std::size_t i = 0; i < bands.original_samples; ++i) {
    const double t = bands.start_s + static_cast<double>(i) * bands.step_s;
    const auto day = static_cast<std::size_t>(t / kSecondsPerDay) - first_day;
    require(day < bands.daily_trend.size(), "band_reconstruct: day out of range");
    const auto hour = static_cast<std::size_t>(
                          std::fmod(t, kSecondsPerDay) / kSecondsPerHour) %
                      24;
    values.push_back(bands.daily_trend[day] + bands.hourly_profile[hour]);
  }
  // Overlay the exactly-stored residuals (the out-of-band signal).
  for (std::size_t k = 0; k < bands.residual_index.size(); ++k) {
    const std::size_t i = bands.residual_index[k];
    require(i < bands.original_samples, "band_reconstruct: residual out of range");
    values[i] += bands.residual_value[k];
  }
  return TimeSeries(bands.start_s, bands.step_s, std::move(values));
}

double max_abs_error(const TimeSeries& a, const TimeSeries& b) {
  require(a.size() == b.size(), "max_abs_error: length mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace epm::telemetry
