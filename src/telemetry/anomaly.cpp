#include "telemetry/anomaly.h"

#include <cmath>
#include <vector>

#include "core/require.h"
#include "core/stats.h"

namespace epm::telemetry {

std::vector<Spike> detect_spikes(const TimeSeries& series, const SpikeConfig& config) {
  require(config.window >= 2, "detect_spikes: window must be >= 2");
  require(config.sigmas > 0.0, "detect_spikes: sigmas must be positive");
  std::vector<Spike> spikes;
  if (series.size() <= config.window) return spikes;

  // Rolling mean/variance over the trailing window (exact, O(n)).
  double sum = 0.0;
  double sumsq = 0.0;
  for (std::size_t i = 0; i < config.window; ++i) {
    sum += series[i];
    sumsq += series[i] * series[i];
  }
  const auto w = static_cast<double>(config.window);
  for (std::size_t i = config.window; i < series.size(); ++i) {
    const double mean = sum / w;
    const double var = std::max(sumsq / w - mean * mean, 0.0);
    const double sd = std::max(std::sqrt(var), config.min_stddev);
    const double z = (series[i] - mean) / sd;
    if (z > config.sigmas) {
      spikes.push_back(Spike{i, series[i], z});
    }
    // Slide the window (spiky samples included: a sustained shift stops
    // alarming once the window absorbs it, which is the desired behaviour).
    const double out = series[i - config.window];
    sum += series[i] - out;
    sumsq += series[i] * series[i] - out * out;
  }
  return spikes;
}

TimeSeries remove_seasonal(const TimeSeries& series, double period_s, double bucket_s) {
  require(period_s > 0.0 && bucket_s > 0.0, "remove_seasonal: invalid period/bucket");
  require(period_s >= bucket_s, "remove_seasonal: period shorter than bucket");
  const auto buckets = static_cast<std::size_t>(period_s / bucket_s);
  std::vector<OnlineStats> per_bucket(buckets);
  auto bucket_of = [&](std::size_t i) {
    const double phase = std::fmod(series.time_at(i), period_s);
    auto b = static_cast<std::size_t>(phase / bucket_s);
    return b < buckets ? b : buckets - 1;
  };
  for (std::size_t i = 0; i < series.size(); ++i) {
    per_bucket[bucket_of(i)].add(series[i]);
  }
  TimeSeries out(series.start_s(), series.step_s());
  out.reserve(series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    out.push_back(series[i] - per_bucket[bucket_of(i)].mean());
  }
  return out;
}

double residual_correlation(const TimeSeries& a, const TimeSeries& b, double period_s,
                            double bucket_s) {
  require(a.size() == b.size(), "residual_correlation: length mismatch");
  const TimeSeries ra = remove_seasonal(a, period_s, bucket_s);
  const TimeSeries rb = remove_seasonal(b, period_s, bucket_s);
  return pearson_correlation(ra.values(), rb.values());
}

double StreamingSpikeDetector::observe(double value) {
  double zscore = 0.0;
  if (n_ >= config_.warmup) {
    const double sd = std::max(std::sqrt(std::max(var_, 0.0)), config_.min_stddev);
    const double z = (value - mean_) / sd;
    if (z > config_.sigmas) zscore = z;
  }
  // West's exponentially weighted update; the escape sample itself feeds
  // the state so a level shift is absorbed instead of alarming forever.
  if (n_ == 0) {
    mean_ = value;
    var_ = 0.0;
  } else {
    const double delta = value - mean_;
    const double incr = config_.alpha * delta;
    mean_ += incr;
    var_ = (1.0 - config_.alpha) * (var_ + delta * incr);
  }
  ++n_;
  return zscore;
}

}  // namespace epm::telemetry
