// Band-pass analyses over counter data (paper §5.3): the same CPU-utilization
// stream serves trend prediction, within-day patterns, load-balancer
// monitoring via residual correlation, and spike anomaly detection.
#pragma once

#include <cstddef>
#include <vector>

#include "core/time_series.h"

namespace epm::telemetry {

struct SpikeConfig {
  /// Trailing window used to estimate the local mean/stddev.
  std::size_t window = 40;
  /// Threshold in local standard deviations.
  double sigmas = 4.0;
  /// Floor on the stddev estimate so flat series don't alarm on noise.
  double min_stddev = 1e-9;
};

struct Spike {
  std::size_t index;
  double value;
  double zscore;
};

/// Detects "unusually spikes" (§5.3): samples more than `sigmas` local
/// standard deviations above the trailing-window mean.
std::vector<Spike> detect_spikes(const TimeSeries& series, const SpikeConfig& config = {});

/// Removes the mean per bucket-of-period (e.g. hourly-of-day with
/// period=86400, bucket=3600): returns the residual series. This is the
/// "after removing the hourly trend" step before correlating counters to
/// "monitor load balancer behavior".
TimeSeries remove_seasonal(const TimeSeries& series, double period_s, double bucket_s);

/// Correlation of two counters' residuals after seasonal removal; a healthy
/// load balancer keeps replica residuals strongly correlated.
double residual_correlation(const TimeSeries& a, const TimeSeries& b, double period_s,
                            double bucket_s);

}  // namespace epm::telemetry
