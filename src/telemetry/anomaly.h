// Band-pass analyses over counter data (paper §5.3): the same CPU-utilization
// stream serves trend prediction, within-day patterns, load-balancer
// monitoring via residual correlation, and spike anomaly detection.
#pragma once

#include <cstddef>
#include <vector>

#include "core/time_series.h"

namespace epm::telemetry {

struct SpikeConfig {
  /// Trailing window used to estimate the local mean/stddev.
  std::size_t window = 40;
  /// Threshold in local standard deviations.
  double sigmas = 4.0;
  /// Floor on the stddev estimate so flat series don't alarm on noise.
  double min_stddev = 1e-9;
};

struct Spike {
  std::size_t index;
  double value;
  double zscore;
};

/// Detects "unusually spikes" (§5.3): samples more than `sigmas` local
/// standard deviations above the trailing-window mean.
std::vector<Spike> detect_spikes(const TimeSeries& series, const SpikeConfig& config = {});

/// Removes the mean per bucket-of-period (e.g. hourly-of-day with
/// period=86400, bucket=3600): returns the residual series. This is the
/// "after removing the hourly trend" step before correlating counters to
/// "monitor load balancer behavior".
TimeSeries remove_seasonal(const TimeSeries& series, double period_s, double bucket_s);

/// Correlation of two counters' residuals after seasonal removal; a healthy
/// load balancer keeps replica residuals strongly correlated.
double residual_correlation(const TimeSeries& a, const TimeSeries& b, double period_s,
                            double bucket_s);

// ---------------------------------------------------------------------------
// In-stream detection (columnar firehose path).
//
// detect_spikes() above is a batch pass over a finished series; at firehose
// rates the detector has to ride along with ingest instead. The streaming
// recast keeps O(1) state per counter — an exponentially weighted mean and
// variance — and flags samples that escape the EWMA band. It runs inside
// the block-seal pipeline (block.h), so detection latency is one sealed
// block, not one query.

struct StreamingAnomalyConfig {
  /// EWMA weight: state half-life ~ ln 2 / alpha samples (0.05 ~ 14
  /// samples, comparable to detect_spikes' default trailing window).
  double alpha = 0.05;
  /// Band half-width in EWMA standard deviations.
  double sigmas = 6.0;
  /// Floor on the stddev estimate so flat series don't alarm on noise.
  double min_stddev = 1e-9;
  /// Samples observed before the band arms (the batch pass has the same
  /// blind spot: its first `window` samples are never tested).
  std::uint32_t warmup = 32;
  bool enabled = true;
};

/// One band escape, stamped with the counter it fired on.
struct AnomalyEvent {
  std::uint64_t key = 0;  ///< CounterKey (store.h)
  double time_s = 0.0;
  double value = 0.0;
  double zscore = 0.0;
};

/// O(1)-state spike detector: online EWMA mean/variance + band escape.
/// Deterministic: state depends only on the per-series sample order, which
/// the store fixes to batch order at every thread count.
class StreamingSpikeDetector {
 public:
  explicit StreamingSpikeDetector(const StreamingAnomalyConfig& config = {})
      : config_(config) {}

  /// Observes one sample. Returns its z-score when it escapes the band
  /// (armed after warmup), 0.0 otherwise. The state update includes band
  /// escapes, mirroring detect_spikes: a sustained shift stops alarming
  /// once the EWMA absorbs it.
  double observe(double value);

  std::uint64_t samples_seen() const { return n_; }
  double mean() const { return mean_; }
  double variance() const { return var_; }

 private:
  StreamingAnomalyConfig config_;
  double mean_ = 0.0;
  double var_ = 0.0;
  std::uint64_t n_ = 0;
};

}  // namespace epm::telemetry
