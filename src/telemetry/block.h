// Columnar series blocks and the block-seal pipeline (§5.3 firehose).
//
// One counter's history is a chain of sealed, immutable, compressed blocks
// plus one open block of plain contiguous columns (times[], values[]).
// Ingest is two vector pushes; all the per-sample work the legacy store did
// synchronously — the multiscale banding cascade, downsampling, anomaly
// scoring — runs once per block at seal time, over contiguous arrays:
//
//   seal:  [banding]   LevelBins::add_column per level (the same fold the
//                      legacy store runs per sample, so band queries answer
//                      bit-identically),
//          [downsample] 4-wide-lane min/max + strict-order sum summary,
//          [detect]    StreamingSpikeDetector::observe per sample,
//          [compress]  predictive delta-of-delta timestamps + Gorilla XOR
//                      values (compress.h), ~2 bytes/point on the reference
//                      counter mix vs 16 raw.
//
// Sealed blocks answer raw-history queries without touching the open
// block: a block fully inside the query window contributes its summary
// (no decompression); only window-edge blocks are decoded.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "telemetry/anomaly.h"
#include "telemetry/multiscale.h"

namespace epm::telemetry {

/// Columnar-store knobs. The defaults serve the §5.3 reference mix; tests
/// shrink block_capacity to exercise many seal boundaries cheaply.
struct TelemetryTuning {
  /// Samples per block; seal triggers when the open block reaches this.
  /// Block boundaries depend only on the per-series sample count, so the
  /// layout is identical at every thread count.
  std::size_t block_capacity = 1024;
  /// Slots per ingest ring (ring.h) on the parallel bulk path.
  std::size_t ring_capacity = 4096;
  StreamingAnomalyConfig anomaly;
};

/// An immutable, compressed run of consecutive samples.
struct SealedBlock {
  double first_time_s = 0.0;
  double last_time_s = 0.0;
  /// Block-level downsample: min/max folded in 4-wide lanes, sum as a
  /// strict left fold (see block.cpp).
  Aggregate summary;
  std::uint32_t samples = 0;
  std::vector<std::uint8_t> time_bytes;
  std::vector<std::uint8_t> value_bytes;

  /// Compressed payload only (the compression-ratio numerator's rival).
  std::size_t payload_bytes() const { return time_bytes.size() + value_bytes.size(); }
  std::size_t memory_bytes() const {
    return sizeof(SealedBlock) + time_bytes.capacity() + value_bytes.capacity();
  }
  /// Bit-exact reconstruction of the block's columns.
  void decode(std::vector<double>& times_s, std::vector<double>& values) const;
};

/// Block-level downsample over a contiguous column: min/max reduce across
/// four independent lanes (auto-vectorizable), count is trivial, and the
/// sum stays a strict left fold so every derived number is reproducible
/// bit-for-bit regardless of how the compiler vectorizes.
Aggregate lane_summary(const double* values, std::size_t n);

/// One counter's columnar history: sealed chain + open block + banding rows
/// + streaming detector state. Appends must have non-decreasing timestamps
/// (same contract as MultiScaleSeries).
class ColumnSeries {
 public:
  ColumnSeries(const MultiScaleConfig& config, const TelemetryTuning& tuning);

  void append(double time_s, double value);
  /// Seals a partial open block (no-op when empty). Queries are correct
  /// without flushing — the open block is scanned directly — but flushing
  /// moves its samples into the compressed chain and the banding rows.
  void flush();

  std::uint64_t total_samples() const { return total_samples_; }
  std::size_t level_count() const { return levels_.size(); }
  const std::vector<SealedBlock>& blocks() const { return blocks_; }
  const std::vector<AnomalyEvent>& anomalies() const { return events_; }
  std::size_t open_samples() const { return open_times_.size(); }

  /// Band queries, answer-for-answer bit-identical to a MultiScaleSeries
  /// fed the same samples (the open block contributes via an on-the-fly
  /// continuation of the same fold).
  Aggregate range(double t0_s, double t1_s) const;
  Aggregate range_at_level(std::size_t level, double t0_s, double t1_s) const;
  MultiScaleSeries::BinnedMeans means_at_level(std::size_t level, double t0_s,
                                               double t1_s) const;

  /// Exact raw-history aggregate over [t0, t1) — the query the legacy
  /// design had to keep a separate RawStore for. Whole blocks inside the
  /// window contribute their summaries without decompression.
  Aggregate raw_range(double t0_s, double t1_s) const;

  std::size_t memory_bytes() const;
  std::size_t compressed_payload_bytes() const;
  /// Raw footprint of every ingested sample (two doubles each).
  std::size_t raw_sample_bytes() const {
    return static_cast<std::size_t>(total_samples_) * 2 * sizeof(double);
  }

 private:
  struct LevelWindow {
    std::int64_t first = 0;  ///< first retained bin (legacy closed form)
    std::int64_t last = 0;   ///< bin of the newest sample
  };

  void seal();
  /// Effective retained-bin window for `level`, accounting for open-block
  /// samples exactly as the legacy per-append eviction would have.
  LevelWindow effective_window(std::size_t level) const;
  /// Sealed bin content for `bin` (empty aggregate outside the deque).
  Aggregate sealed_bin(std::size_t level, std::int64_t bin) const;

  std::size_t block_capacity_;
  StreamingAnomalyConfig anomaly_config_;
  std::vector<LevelBins> levels_;
  /// Bin of the first sample ever, per level (fixed after first append).
  std::vector<std::int64_t> first_ever_bin_;
  std::vector<SealedBlock> blocks_;
  std::vector<double> open_times_;
  std::vector<double> open_values_;
  StreamingSpikeDetector detector_;
  std::vector<AnomalyEvent> events_;
  double last_time_s_ = -1.0;
  std::uint64_t total_samples_ = 0;
};

}  // namespace epm::telemetry
