// Multi-scale time-series storage (paper §5.3).
//
//   "consider a 10,000 server cloud computing environment, if there are 100
//    software performance counters of interests, and each of them are
//    sampled every 15 seconds, we will expect 2.4 million data points per
//    minutes... Since these queries essentially focuses on data with
//    certain narrow band, preprocessing and indexing the data into multiple
//    scales can speed up the query significantly. At the same time, raw
//    data out of these bands can be considered as noise and be eliminated,
//    thus reducing storage requirements."
//
// Each counter keeps a pyramid of aggregate levels (e.g. 15 s -> 1 min ->
// 15 min -> 1 h -> 1 d). Appends cascade upward in O(1) amortized; range
// queries are answered from the coarsest level that still resolves the
// request; old fine-grained bins are evicted per level-specific retention.
//
// The per-level fold lives in `LevelBins`, shared verbatim between the
// legacy per-sample cascade here and the columnar store's block-seal
// banding (block.h) — one code path, so the two stores answer band queries
// bit-identically by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace epm::telemetry {

/// min/max/sum/count aggregate; the only thing levels store.
struct Aggregate {
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  std::uint64_t count = 0;

  void add(double v);
  void merge(const Aggregate& other);
  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

struct LevelSpec {
  double resolution_s;
  /// Bins retained before eviction (0 = unlimited).
  std::size_t retention_bins;
};

struct MultiScaleConfig {
  /// Finest-to-coarsest. Each resolution must be an integer multiple of the
  /// previous one. Default: 15 s (4 h), 1 min (1 day), 15 min (1 week),
  /// 1 h (6 weeks), 1 day (unlimited).
  std::vector<LevelSpec> levels{
      {15.0, 960},  {60.0, 1440}, {900.0, 672}, {3600.0, 1008}, {86400.0, 0}};
};

/// One resolution level's dense bin row: the fold every multiscale consumer
/// shares. Bin i covers [i*res, (i+1)*res); skipped bins are padded with
/// empties so indexing stays dense; bins beyond retention are evicted (the
/// data survives only in coarser levels).
struct LevelBins {
  LevelSpec spec{1.0, 0};
  /// Index of the first retained bin.
  std::int64_t first_bin = 0;
  std::deque<Aggregate> bins;

  std::int64_t bin_index(double time_s) const;
  /// Left-folds one sample into its bin (padding forward as needed), then
  /// evicts beyond retention — the legacy per-append discipline.
  void add(double time_s, double value);
  /// Batch fold over a time-sorted column pair: identical final state to
  /// calling add() per sample (the per-bin fold is kept in registers and
  /// written back once per bin; eviction runs once at the end, which only
  /// changes *when* bins are popped, never which ones survive).
  void add_column(const double* times_s, const double* values, std::size_t n);
  void evict();
};

/// One counter's multi-resolution history. Samples must arrive with
/// non-decreasing timestamps.
class MultiScaleSeries {
 public:
  explicit MultiScaleSeries(MultiScaleConfig config = {});

  void append(double time_s, double value);
  std::uint64_t total_samples() const { return total_samples_; }
  std::size_t level_count() const { return levels_.size(); }
  double level_resolution_s(std::size_t level) const;
  std::size_t level_bins(std::size_t level) const;

  /// Aggregate over [t0_s, t1_s), served from the finest level whose
  /// retention still covers t0_s (bin-aligned approximation at the edges).
  /// Returns an empty aggregate when nothing is retained for the range.
  Aggregate range(double t0_s, double t1_s) const;

  /// Aggregate over [t0_s, t1_s) from a specific level.
  Aggregate range_at_level(std::size_t level, double t0_s, double t1_s) const;

  /// Per-bin means from `level` covering [t0_s, t1_s); bins without data are
  /// skipped. Times are bin starts.
  struct BinnedMeans {
    std::vector<double> times_s;
    std::vector<double> means;
  };
  BinnedMeans means_at_level(std::size_t level, double t0_s, double t1_s) const;

  /// Approximate resident memory (bins x aggregate size), for the paper's
  /// storage-reduction argument.
  std::size_t memory_bytes() const;

 private:
  std::vector<LevelBins> levels_;
  double last_time_s_ = -1.0;
  std::uint64_t total_samples_ = 0;
};

/// Validates a MultiScaleConfig (positive resolutions, integer >1 level
/// ratios) and returns the level rows ready for folding. Shared by
/// MultiScaleSeries and the columnar store's ColumnSeries.
std::vector<LevelBins> make_level_bins(const MultiScaleConfig& config);

}  // namespace epm::telemetry
