#include "telemetry/multiscale.h"

#include <algorithm>
#include <cmath>

#include "core/require.h"

namespace epm::telemetry {

void Aggregate::add(double v) {
  if (count == 0) {
    min = max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  sum += v;
  ++count;
}

void Aggregate::merge(const Aggregate& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  sum += other.sum;
  count += other.count;
}

std::int64_t LevelBins::bin_index(double time_s) const {
  return static_cast<std::int64_t>(std::floor(time_s / spec.resolution_s));
}

namespace {

/// Grows `lvl.bins` (padding with empties) so `bin` is addressable, and
/// returns its dense index. Requires bin >= the last touched bin.
std::size_t reserve_bin(LevelBins& lvl, std::int64_t bin) {
  if (lvl.bins.empty()) {
    lvl.first_bin = bin;
    lvl.bins.emplace_back();
  } else {
    const std::int64_t last =
        lvl.first_bin + static_cast<std::int64_t>(lvl.bins.size()) - 1;
    ensure(bin >= last, "LevelBins: time went backwards within a level");
    for (std::int64_t b = last; b < bin; ++b) lvl.bins.emplace_back();
  }
  return static_cast<std::size_t>(bin - lvl.first_bin);
}

}  // namespace

void LevelBins::add(double time_s, double value) {
  const std::size_t idx = reserve_bin(*this, bin_index(time_s));
  bins[idx].add(value);
  evict();
}

void LevelBins::add_column(const double* times_s, const double* values,
                           std::size_t n) {
  std::size_t i = 0;
  while (i < n) {
    const std::int64_t bin = bin_index(times_s[i]);
    const std::size_t idx = reserve_bin(*this, bin);
    // Fold the bin's run in a register-resident aggregate, seeded from any
    // existing content so the per-sample order (and therefore every bit of
    // the sum) matches the one-at-a-time path.
    Aggregate agg = bins[idx];
    do {
      agg.add(values[i]);
      ++i;
    } while (i < n && bin_index(times_s[i]) == bin);
    bins[idx] = agg;
  }
  evict();
}

void LevelBins::evict() {
  if (spec.retention_bins == 0) return;
  while (bins.size() > spec.retention_bins) {
    bins.pop_front();
    ++first_bin;
  }
}

std::vector<LevelBins> make_level_bins(const MultiScaleConfig& config) {
  require(!config.levels.empty(), "MultiScaleSeries: need at least one level");
  std::vector<LevelBins> levels;
  double prev = 0.0;
  for (const auto& spec : config.levels) {
    require(spec.resolution_s > 0.0, "MultiScaleSeries: resolution must be positive");
    if (prev > 0.0) {
      const double ratio = spec.resolution_s / prev;
      require(std::abs(ratio - std::round(ratio)) < 1e-9 && ratio >= 2.0 - 1e-9,
              "MultiScaleSeries: each level must be an integer (>1) multiple of "
              "the previous");
    }
    prev = spec.resolution_s;
    levels.push_back(LevelBins{spec, 0, {}});
  }
  return levels;
}

MultiScaleSeries::MultiScaleSeries(MultiScaleConfig config)
    : levels_(make_level_bins(config)) {}

void MultiScaleSeries::append(double time_s, double value) {
  require(time_s >= 0.0, "MultiScaleSeries: negative time");
  require(time_s >= last_time_s_, "MultiScaleSeries: timestamps must be non-decreasing");
  last_time_s_ = time_s;
  ++total_samples_;
  // Cascade: every level receives every sample; each keeps its own binning.
  // (O(levels) per append; levels is a small constant.)
  for (auto& lvl : levels_) lvl.add(time_s, value);
}

double MultiScaleSeries::level_resolution_s(std::size_t level) const {
  require(level < levels_.size(), "MultiScaleSeries: level out of range");
  return levels_[level].spec.resolution_s;
}

std::size_t MultiScaleSeries::level_bins(std::size_t level) const {
  require(level < levels_.size(), "MultiScaleSeries: level out of range");
  return levels_[level].bins.size();
}

Aggregate MultiScaleSeries::range_at_level(std::size_t level, double t0_s,
                                           double t1_s) const {
  require(level < levels_.size(), "MultiScaleSeries: level out of range");
  require(t1_s >= t0_s, "MultiScaleSeries: inverted range");
  const LevelBins& lvl = levels_[level];
  Aggregate out;
  if (lvl.bins.empty()) return out;
  const std::int64_t lo = std::max(lvl.bin_index(t0_s), lvl.first_bin);
  const std::int64_t hi_bin = lvl.bin_index(std::nextafter(t1_s, t0_s));
  const std::int64_t hi =
      std::min(hi_bin, lvl.first_bin + static_cast<std::int64_t>(lvl.bins.size()) - 1);
  for (std::int64_t b = lo; b <= hi; ++b) {
    out.merge(lvl.bins[static_cast<std::size_t>(b - lvl.first_bin)]);
  }
  return out;
}

Aggregate MultiScaleSeries::range(double t0_s, double t1_s) const {
  // Finest level whose retained window still reaches back to t0_s wins.
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const LevelBins& lvl = levels_[l];
    if (lvl.bins.empty()) continue;
    const double retained_start =
        static_cast<double>(lvl.first_bin) * lvl.spec.resolution_s;
    if (retained_start <= t0_s + 1e-9) return range_at_level(l, t0_s, t1_s);
  }
  // Nothing covers the start: answer from the coarsest level (best effort).
  return range_at_level(levels_.size() - 1, t0_s, t1_s);
}

MultiScaleSeries::BinnedMeans MultiScaleSeries::means_at_level(std::size_t level,
                                                               double t0_s,
                                                               double t1_s) const {
  require(level < levels_.size(), "MultiScaleSeries: level out of range");
  require(t1_s >= t0_s, "MultiScaleSeries: inverted range");
  const LevelBins& lvl = levels_[level];
  BinnedMeans out;
  if (lvl.bins.empty()) return out;
  const std::int64_t lo = std::max(lvl.bin_index(t0_s), lvl.first_bin);
  const std::int64_t hi =
      std::min(lvl.bin_index(std::nextafter(t1_s, t0_s)),
               lvl.first_bin + static_cast<std::int64_t>(lvl.bins.size()) - 1);
  for (std::int64_t b = lo; b <= hi; ++b) {
    const Aggregate& agg = lvl.bins[static_cast<std::size_t>(b - lvl.first_bin)];
    if (agg.count == 0) continue;
    out.times_s.push_back(static_cast<double>(b) * lvl.spec.resolution_s);
    out.means.push_back(agg.mean());
  }
  return out;
}

std::size_t MultiScaleSeries::memory_bytes() const {
  std::size_t bins = 0;
  for (const auto& lvl : levels_) bins += lvl.bins.size();
  return bins * sizeof(Aggregate);
}

}  // namespace epm::telemetry
