#include "telemetry/compress.h"

namespace epm::telemetry {
namespace {

std::uint64_t to_bits(double v) { return std::bit_cast<std::uint64_t>(v); }
double from_bits(std::uint64_t b) { return std::bit_cast<double>(b); }

}  // namespace

void encode_times(const double* times_s, std::size_t n, BitWriter& out) {
  if (n == 0) return;
  out.put(to_bits(times_s[0]), 64);
  if (n == 1) return;
  out.put(to_bits(times_s[1]), 64);
  for (std::size_t i = 2; i < n; ++i) {
    // Linear predictor evaluated in binary64 — the decoder repeats the same
    // expression, so a hit reproduces the stored bit pattern exactly.
    const double predicted = times_s[i - 1] + (times_s[i - 1] - times_s[i - 2]);
    if (to_bits(times_s[i]) == to_bits(predicted)) {
      out.put_bit(false);
    } else {
      out.put_bit(true);
      out.put(to_bits(times_s[i]), 64);
    }
  }
}

void decode_times(BitReader& in, double* times_s, std::size_t n) {
  if (n == 0) return;
  times_s[0] = from_bits(in.get(64));
  if (n == 1) return;
  times_s[1] = from_bits(in.get(64));
  for (std::size_t i = 2; i < n; ++i) {
    if (in.get_bit()) {
      times_s[i] = from_bits(in.get(64));
    } else {
      times_s[i] = times_s[i - 1] + (times_s[i - 1] - times_s[i - 2]);
    }
  }
}

void encode_values(const double* values, std::size_t n, BitWriter& out) {
  if (n == 0) return;
  std::uint64_t prev = to_bits(values[0]);
  out.put(prev, 64);
  // Current meaningful-bits window; invalid until the first non-zero XOR.
  unsigned win_lead = 65;
  unsigned win_len = 0;
  for (std::size_t i = 1; i < n; ++i) {
    const std::uint64_t bits = to_bits(values[i]);
    const std::uint64_t x = bits ^ prev;
    prev = bits;
    if (x == 0) {
      out.put_bit(false);
      continue;
    }
    out.put_bit(true);
    // Cap the leading-zero count at 31 so it fits the 5-bit field; the
    // window just widens a little for tiny XORs.
    unsigned lead = static_cast<unsigned>(std::countl_zero(x));
    if (lead > 31) lead = 31;
    const unsigned trail = static_cast<unsigned>(std::countr_zero(x));
    const unsigned len = 64 - lead - trail;
    const unsigned win_trail = 64 - win_lead - win_len;
    if (win_lead <= 64 && lead >= win_lead && trail >= win_trail) {
      // Fits the previous window: '0' + the window's meaningful bits.
      out.put_bit(false);
      out.put(x >> win_trail, win_len);
    } else {
      // New window: '1' + 5-bit lead + 6-bit (len-1) + meaningful bits.
      out.put_bit(true);
      out.put(lead, 5);
      out.put(len - 1, 6);
      out.put(x >> trail, len);
      win_lead = lead;
      win_len = len;
    }
  }
}

void decode_values(BitReader& in, double* values, std::size_t n) {
  if (n == 0) return;
  std::uint64_t prev = in.get(64);
  values[0] = from_bits(prev);
  unsigned win_lead = 65;
  unsigned win_len = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (!in.get_bit()) {
      values[i] = from_bits(prev);
      continue;
    }
    std::uint64_t x = 0;
    if (!in.get_bit()) {
      const unsigned win_trail = 64 - win_lead - win_len;
      x = in.get(win_len) << win_trail;
    } else {
      const unsigned lead = static_cast<unsigned>(in.get(5));
      const unsigned len = static_cast<unsigned>(in.get(6)) + 1;
      const unsigned trail = 64 - lead - len;
      x = in.get(len) << trail;
      win_lead = lead;
      win_len = len;
    }
    prev ^= x;
    values[i] = from_bits(prev);
  }
}

}  // namespace epm::telemetry
