// Band decomposition and lossy-but-bounded compression (paper §5.3):
//
//   "Since these queries essentially focuses on data with certain narrow
//    band, preprocessing and indexing the data into multiple scales can
//    speed up the query significantly. At the same time, raw data out of
//    these bands can be considered as noise and be eliminated, thus
//    reducing storage requirements."
//
// A counter series is decomposed into the bands the paper's queries use:
// a per-day trend, a mean hour-of-day profile, and a residual. Residual
// samples within +-threshold are *dropped* (the "noise"); everything above
// it — the anomalies and genuine excursions — is kept exactly. The
// reconstruction error is therefore bounded by the threshold, a property
// the tests assert.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/time_series.h"

namespace epm::telemetry {

struct BandDecomposition {
  double start_s = 0.0;
  double step_s = 1.0;
  std::size_t original_samples = 0;
  double residual_threshold = 0.0;
  /// Mean per calendar day (the long-term trend band).
  std::vector<double> daily_trend;
  /// Mean detrended value per hour-of-day (the within-day pattern band).
  std::vector<double> hourly_profile;  // 24 entries
  /// Residuals exceeding the threshold, stored sparsely and exactly.
  std::vector<std::uint32_t> residual_index;
  std::vector<double> residual_value;

  std::size_t stored_values() const {
    return daily_trend.size() + hourly_profile.size() + residual_value.size();
  }
  /// Approximate storage, counting the sparse index overhead.
  std::size_t memory_bytes() const {
    return (daily_trend.size() + hourly_profile.size() + residual_value.size()) *
               sizeof(double) +
           residual_index.size() * sizeof(std::uint32_t);
  }
  /// Raw storage of the original series (values only).
  std::size_t raw_bytes() const { return original_samples * sizeof(double); }
  double compression_ratio() const {
    return memory_bytes() > 0
               ? static_cast<double>(raw_bytes()) / static_cast<double>(memory_bytes())
               : 0.0;
  }
};

/// Decomposes and compresses `series`. Residuals with |r| <= threshold are
/// discarded. The series timing must start day-aligned for the daily band
/// to mean what it says (enforced).
BandDecomposition band_compress(const TimeSeries& series, double residual_threshold);

/// Reconstructs the series: trend(day) + profile(hour) + stored residuals.
/// max |reconstruction - original| <= residual_threshold.
TimeSeries band_reconstruct(const BandDecomposition& bands);

/// Largest absolute reconstruction error between two equal-timing series.
double max_abs_error(const TimeSeries& a, const TimeSeries& b);

}  // namespace epm::telemetry
