#include "telemetry/store.h"

#include <algorithm>
#include <cmath>

#include "core/parallel.h"
#include "core/require.h"

namespace epm::telemetry {

TelemetryStore::TelemetryStore(MultiScaleConfig per_counter_config)
    : config_(std::move(per_counter_config)) {
  require(!config_.levels.empty(), "TelemetryStore: config has no levels");
  // Locate the levels used by the canned band queries; fall back to the
  // coarsest when an exact resolution is absent.
  daily_level_ = hourly_level_ = config_.levels.size() - 1;
  for (std::size_t l = 0; l < config_.levels.size(); ++l) {
    if (std::abs(config_.levels[l].resolution_s - 3600.0) < 1e-9) hourly_level_ = l;
    if (std::abs(config_.levels[l].resolution_s - 86400.0) < 1e-9) daily_level_ = l;
  }
}

void TelemetryStore::append(CounterKey key, double time_s, double value,
                            bool degraded) {
  auto [it, inserted] = shards_[shard_of(key)].try_emplace(key, config_);
  it->second.append(time_s, value);
  ++total_samples_;
  if (degraded) ++degraded_samples_;
}

void TelemetryStore::bulk_append(const std::vector<Sample>& samples,
                                 ThreadPool& pool) {
  if (samples.empty()) return;
  require(samples.size() <= 0xffffffffu,
          "TelemetryStore::bulk_append: batch too large for 32-bit indices");

  // Phase 1: partition indices by shard, in parallel over input slices.
  // Concatenating each shard's slice-lists in slice order restores the
  // global input order per shard, so the result cannot depend on how many
  // slices (= threads) scanned the input. Degraded samples are counted
  // per slice here (phase 2 runs shards concurrently, so a shared counter
  // there would race) and summed serially below.
  const std::size_t slices = pool.thread_count();
  std::vector<std::array<std::vector<std::uint32_t>, kShards>> partition(slices);
  std::vector<std::uint64_t> degraded_per_slice(slices, 0);
  const std::size_t per_slice = (samples.size() + slices - 1) / slices;
  pool.parallel_for(slices, [&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      const std::size_t lo = s * per_slice;
      const std::size_t hi = std::min(samples.size(), lo + per_slice);
      for (std::size_t i = lo; i < hi; ++i) {
        partition[s][shard_of(samples[i].key)].push_back(
            static_cast<std::uint32_t>(i));
        if (samples[i].degraded) ++degraded_per_slice[s];
      }
    }
  });

  // Phase 2: apply whole shards concurrently. Each shard map is touched by
  // exactly one task, so no synchronization is needed.
  pool.parallel_for(kShards, [&](std::size_t begin, std::size_t end) {
    for (std::size_t shard = begin; shard < end; ++shard) {
      auto& map = shards_[shard];
      for (std::size_t s = 0; s < slices; ++s) {
        for (const std::uint32_t i : partition[s][shard]) {
          const Sample& sample = samples[i];
          auto [it, inserted] = map.try_emplace(sample.key, config_);
          it->second.append(sample.time_s, sample.value);
        }
      }
    }
  });

  total_samples_ += samples.size();
  for (const std::uint64_t n : degraded_per_slice) degraded_samples_ += n;
}

void TelemetryStore::bulk_append(const std::vector<Sample>& samples,
                                 std::size_t threads) {
  ThreadPool pool(resolve_thread_count(static_cast<std::int64_t>(threads)));
  bulk_append(samples, pool);
}

std::size_t TelemetryStore::series_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard.size();
  return total;
}

const MultiScaleSeries& TelemetryStore::series(CounterKey key) const {
  const auto& shard = shards_[shard_of(key)];
  auto it = shard.find(key);
  require(it != shard.end(), "TelemetryStore: unknown counter");
  return it->second;
}

std::size_t TelemetryStore::memory_bytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    for (const auto& [key, s] : shard) total += s.memory_bytes();
  }
  return total;
}

MultiScaleSeries::BinnedMeans TelemetryStore::daily_trend(CounterKey key, double t0_s,
                                                          double t1_s) const {
  return series(key).means_at_level(daily_level_, t0_s, t1_s);
}

MultiScaleSeries::BinnedMeans TelemetryStore::hourly_pattern(CounterKey key, double t0_s,
                                                             double t1_s) const {
  return series(key).means_at_level(hourly_level_, t0_s, t1_s);
}

void RawStore::append(CounterKey key, double time_s, double value) {
  auto& col = columns_[key];
  require(col.times_s.empty() || time_s >= col.times_s.back(),
          "RawStore: timestamps must be non-decreasing");
  col.times_s.push_back(time_s);
  col.values.push_back(value);
  ++total_samples_;
}

std::size_t RawStore::memory_bytes() const {
  std::size_t total = 0;
  for (const auto& [key, col] : columns_) {
    total += (col.times_s.capacity() + col.values.capacity()) * sizeof(double);
  }
  return total;
}

RawStore::Stats RawStore::range(CounterKey key, double t0_s, double t1_s) const {
  auto it = columns_.find(key);
  require(it != columns_.end(), "RawStore: unknown counter");
  const Column& col = it->second;
  Stats stats;
  double sum = 0.0;
  // Binary-search the window start, then scan (times are sorted).
  const auto begin =
      std::lower_bound(col.times_s.begin(), col.times_s.end(), t0_s);
  for (auto t = begin; t != col.times_s.end() && *t < t1_s; ++t) {
    const double v = col.values[static_cast<std::size_t>(t - col.times_s.begin())];
    if (stats.count == 0) {
      stats.min = stats.max = v;
    } else {
      stats.min = std::min(stats.min, v);
      stats.max = std::max(stats.max, v);
    }
    sum += v;
    ++stats.count;
  }
  if (stats.count > 0) stats.mean = sum / static_cast<double>(stats.count);
  return stats;
}

}  // namespace epm::telemetry
