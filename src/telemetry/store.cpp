#include "telemetry/store.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <memory>
#include <thread>

#include "core/parallel.h"
#include "core/require.h"
#include "telemetry/ring.h"

namespace epm::telemetry {

namespace {

/// Locates the levels used by the canned band queries; falls back to the
/// coarsest when an exact resolution is absent.
void find_band_levels(const MultiScaleConfig& config, std::size_t& daily_level,
                      std::size_t& hourly_level) {
  require(!config.levels.empty(), "TelemetryStore: config has no levels");
  daily_level = hourly_level = config.levels.size() - 1;
  for (std::size_t l = 0; l < config.levels.size(); ++l) {
    if (std::abs(config.levels[l].resolution_s - 3600.0) < 1e-9) hourly_level = l;
    if (std::abs(config.levels[l].resolution_s - 86400.0) < 1e-9) daily_level = l;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// LegacyTelemetryStore

LegacyTelemetryStore::LegacyTelemetryStore(MultiScaleConfig per_counter_config,
                                           const TelemetryTuning& /*tuning*/)
    : config_(std::move(per_counter_config)) {
  find_band_levels(config_, daily_level_, hourly_level_);
}

void LegacyTelemetryStore::append(CounterKey key, double time_s, double value,
                                  bool degraded) {
  auto [it, inserted] = shards_[shard_of(key)].try_emplace(key, config_);
  it->second.append(time_s, value);
  ++total_samples_;
  if (degraded) ++degraded_samples_;
}

void LegacyTelemetryStore::bulk_append(const std::vector<Sample>& samples,
                                       ThreadPool& pool) {
  if (samples.empty()) return;
  require(samples.size() <= 0xffffffffu,
          "TelemetryStore::bulk_append: batch too large for 32-bit indices");

  // Phase 1: partition indices by shard, in parallel over input slices.
  // Concatenating each shard's slice-lists in slice order restores the
  // global input order per shard, so the result cannot depend on how many
  // slices (= threads) scanned the input. Degraded samples are counted
  // per slice here (phase 2 runs shards concurrently, so a shared counter
  // there would race) and summed serially below.
  const std::size_t slices = pool.thread_count();
  std::vector<std::array<std::vector<std::uint32_t>, kShards>> partition(slices);
  std::vector<std::uint64_t> degraded_per_slice(slices, 0);
  const std::size_t per_slice = (samples.size() + slices - 1) / slices;
  pool.parallel_for(slices, [&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      const std::size_t lo = s * per_slice;
      const std::size_t hi = std::min(samples.size(), lo + per_slice);
      for (std::size_t i = lo; i < hi; ++i) {
        partition[s][shard_of(samples[i].key)].push_back(
            static_cast<std::uint32_t>(i));
        if (samples[i].degraded) ++degraded_per_slice[s];
      }
    }
  });

  // Phase 2: apply whole shards concurrently. Each shard map is touched by
  // exactly one task, so no synchronization is needed.
  pool.parallel_for(kShards, [&](std::size_t begin, std::size_t end) {
    for (std::size_t shard = begin; shard < end; ++shard) {
      auto& map = shards_[shard];
      for (std::size_t s = 0; s < slices; ++s) {
        for (const std::uint32_t i : partition[s][shard]) {
          const Sample& sample = samples[i];
          auto [it, inserted] = map.try_emplace(sample.key, config_);
          it->second.append(sample.time_s, sample.value);
        }
      }
    }
  });

  total_samples_ += samples.size();
  for (const std::uint64_t n : degraded_per_slice) degraded_samples_ += n;
}

void LegacyTelemetryStore::bulk_append(const std::vector<Sample>& samples,
                                       std::size_t threads) {
  ThreadPool pool(resolve_thread_count(static_cast<std::int64_t>(threads)));
  bulk_append(samples, pool);
}

std::size_t LegacyTelemetryStore::series_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard.size();
  return total;
}

const MultiScaleSeries& LegacyTelemetryStore::series(CounterKey key) const {
  const auto& shard = shards_[shard_of(key)];
  auto it = shard.find(key);
  require(it != shard.end(), "TelemetryStore: unknown counter");
  return it->second;
}

std::size_t LegacyTelemetryStore::memory_bytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    for (const auto& [key, s] : shard) total += s.memory_bytes();
  }
  return total;
}

Aggregate LegacyTelemetryStore::range(CounterKey key, double t0_s, double t1_s) const {
  return series(key).range(t0_s, t1_s);
}

MultiScaleSeries::BinnedMeans LegacyTelemetryStore::daily_trend(CounterKey key,
                                                               double t0_s,
                                                               double t1_s) const {
  return series(key).means_at_level(daily_level_, t0_s, t1_s);
}

MultiScaleSeries::BinnedMeans LegacyTelemetryStore::hourly_pattern(CounterKey key,
                                                                  double t0_s,
                                                                  double t1_s) const {
  return series(key).means_at_level(hourly_level_, t0_s, t1_s);
}

// ---------------------------------------------------------------------------
// ColumnarTelemetryStore

ColumnarTelemetryStore::ColumnarTelemetryStore(MultiScaleConfig per_counter_config,
                                               const TelemetryTuning& tuning)
    : config_(std::move(per_counter_config)), tuning_(tuning) {
  find_band_levels(config_, daily_level_, hourly_level_);
  require(tuning_.ring_capacity >= 2, "TelemetryStore: ring_capacity must be >= 2");
}

ColumnSeries& ColumnarTelemetryStore::series_slot(std::size_t shard, CounterKey key) {
  auto [it, inserted] = shards_[shard].try_emplace(key, config_, tuning_);
  return it->second;
}

void ColumnarTelemetryStore::append(CounterKey key, double time_s, double value,
                                    bool degraded) {
  series_slot(shard_of(key), key).append(time_s, value);
  ++total_samples_;
  if (degraded) ++degraded_samples_;
}

void ColumnarTelemetryStore::bulk_append(const std::vector<Sample>& samples,
                                         ThreadPool& pool) {
  if (samples.empty()) return;

  // Serial fallback: a single-thread pool cannot host a producer and a
  // drainer at once, and tiny batches don't amortize ring setup. The
  // result is identical either way (per-series order is batch order).
  const std::size_t threads = pool.thread_count();
  if (threads < 2 || samples.size() < 4096) {
    std::uint64_t degraded = 0;
    for (const Sample& sample : samples) {
      series_slot(shard_of(sample.key), sample.key)
          .append(sample.time_s, sample.value);
      if (sample.degraded) ++degraded;
    }
    total_samples_ += samples.size();
    degraded_samples_ += degraded;
    return;
  }

  // Pipelined ingest over P x D SPSC rings. Producer p owns the p-th
  // contiguous slice of the batch and ring row p; drainer d owns the shard
  // set {shard : shard % D == d} and ring column d. P + D <= thread_count,
  // and parallel_for splits a count <= thread_count into one-role chunks,
  // so every producer and drainer runs concurrently — a blocked role only
  // parks its own worker. Determinism: drainer d empties ring (p, d) fully
  // before moving to ring (p+1, d), and slices are contiguous in batch
  // order, so each shard sees its samples exactly in batch order no matter
  // how P, D, or the interleaving vary.
  const std::size_t producers = threads / 2;
  const std::size_t drainers = threads - producers;
  const std::size_t roles = producers + drainers;

  std::vector<std::unique_ptr<IngestRing<Sample>>> rings;
  rings.reserve(producers * drainers);
  for (std::size_t r = 0; r < producers * drainers; ++r) {
    rings.push_back(std::make_unique<IngestRing<Sample>>(tuning_.ring_capacity));
  }
  std::vector<std::uint64_t> degraded_per_producer(producers, 0);
  const std::size_t per_slice = (samples.size() + producers - 1) / producers;

  auto produce = [&](std::size_t p) {
    const std::size_t lo = p * per_slice;
    const std::size_t hi = std::min(samples.size(), lo + per_slice);
    std::uint64_t degraded = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      const Sample& sample = samples[i];
      rings[p * drainers + shard_of(sample.key) % drainers]->push(sample);
      if (sample.degraded) ++degraded;
    }
    degraded_per_producer[p] = degraded;
    for (std::size_t d = 0; d < drainers; ++d) rings[p * drainers + d]->close();
  };

  auto drain = [&](std::size_t d) {
    // On an apply error (e.g. a non-monotonic batch), keep draining and
    // discarding so no producer spins forever on a full ring, then rethrow.
    std::exception_ptr error;
    Sample buf[256];
    for (std::size_t p = 0; p < producers; ++p) {
      IngestRing<Sample>& ring = *rings[p * drainers + d];
      while (true) {
        const std::size_t n = ring.pop_chunk(buf, 256);
        if (n == 0) {
          if (ring.drained()) break;
          std::this_thread::yield();
          continue;
        }
        if (error) continue;
        try {
          for (std::size_t i = 0; i < n; ++i) {
            series_slot(shard_of(buf[i].key), buf[i].key)
                .append(buf[i].time_s, buf[i].value);
          }
        } catch (...) {
          error = std::current_exception();
        }
      }
    }
    if (error) std::rethrow_exception(error);
  };

  pool.parallel_for(roles, [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      if (r < producers) {
        produce(r);
      } else {
        drain(r - producers);
      }
    }
  });

  total_samples_ += samples.size();
  for (const std::uint64_t n : degraded_per_producer) degraded_samples_ += n;
}

void ColumnarTelemetryStore::bulk_append(const std::vector<Sample>& samples,
                                         std::size_t threads) {
  ThreadPool pool(resolve_thread_count(static_cast<std::int64_t>(threads)));
  bulk_append(samples, pool);
}

void ColumnarTelemetryStore::flush() {
  for (auto& shard : shards_) {
    for (auto& [key, s] : shard) s.flush();
  }
}

std::size_t ColumnarTelemetryStore::series_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard.size();
  return total;
}

const ColumnSeries& ColumnarTelemetryStore::column_series(CounterKey key) const {
  const auto& shard = shards_[shard_of(key)];
  auto it = shard.find(key);
  require(it != shard.end(), "TelemetryStore: unknown counter");
  return it->second;
}

std::size_t ColumnarTelemetryStore::memory_bytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    for (const auto& [key, s] : shard) total += s.memory_bytes();
  }
  return total;
}

std::size_t ColumnarTelemetryStore::compressed_payload_bytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    for (const auto& [key, s] : shard) total += s.compressed_payload_bytes();
  }
  return total;
}

std::uint64_t ColumnarTelemetryStore::sealed_samples() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    for (const auto& [key, s] : shard) {
      total += s.total_samples() - s.open_samples();
    }
  }
  return total;
}

Aggregate ColumnarTelemetryStore::range(CounterKey key, double t0_s, double t1_s) const {
  return column_series(key).range(t0_s, t1_s);
}

MultiScaleSeries::BinnedMeans ColumnarTelemetryStore::daily_trend(CounterKey key,
                                                                 double t0_s,
                                                                 double t1_s) const {
  return column_series(key).means_at_level(daily_level_, t0_s, t1_s);
}

MultiScaleSeries::BinnedMeans ColumnarTelemetryStore::hourly_pattern(CounterKey key,
                                                                    double t0_s,
                                                                    double t1_s) const {
  return column_series(key).means_at_level(hourly_level_, t0_s, t1_s);
}

Aggregate ColumnarTelemetryStore::raw_range(CounterKey key, double t0_s,
                                            double t1_s) const {
  return column_series(key).raw_range(t0_s, t1_s);
}

std::vector<AnomalyEvent> ColumnarTelemetryStore::anomalies() const {
  std::vector<AnomalyEvent> out;
  for (const auto& shard : shards_) {
    for (const auto& [key, s] : shard) {
      for (AnomalyEvent event : s.anomalies()) {
        event.key = key;
        out.push_back(event);
      }
    }
  }
  // The shard maps are unordered; a stable sort on (time, key) pins the
  // report order while keeping each series' emission order for ties.
  std::stable_sort(out.begin(), out.end(),
                   [](const AnomalyEvent& a, const AnomalyEvent& b) {
                     if (a.time_s != b.time_s) return a.time_s < b.time_s;
                     return a.key < b.key;
                   });
  return out;
}

// ---------------------------------------------------------------------------
// RawStore

void RawStore::append(CounterKey key, double time_s, double value) {
  auto& col = columns_[key];
  require(col.times_s.empty() || time_s >= col.times_s.back(),
          "RawStore: timestamps must be non-decreasing");
  col.times_s.push_back(time_s);
  col.values.push_back(value);
  ++total_samples_;
}

std::size_t RawStore::memory_bytes() const {
  std::size_t total = 0;
  for (const auto& [key, col] : columns_) {
    total += (col.times_s.capacity() + col.values.capacity()) * sizeof(double);
  }
  return total;
}

RawStore::Stats RawStore::range(CounterKey key, double t0_s, double t1_s) const {
  auto it = columns_.find(key);
  require(it != columns_.end(), "RawStore: unknown counter");
  const Column& col = it->second;
  Stats stats;
  double sum = 0.0;
  // Binary-search the window start, then scan (times are sorted).
  const auto begin =
      std::lower_bound(col.times_s.begin(), col.times_s.end(), t0_s);
  for (auto t = begin; t != col.times_s.end() && *t < t1_s; ++t) {
    const double v = col.values[static_cast<std::size_t>(t - col.times_s.begin())];
    if (stats.count == 0) {
      stats.min = stats.max = v;
    } else {
      stats.min = std::min(stats.min, v);
      stats.max = std::max(stats.max, v);
    }
    sum += v;
    ++stats.count;
  }
  if (stats.count > 0) stats.mean = sum / static_cast<double>(stats.count);
  return stats;
}

}  // namespace epm::telemetry
