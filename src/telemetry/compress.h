// Columnar block compression for the §5.3 telemetry firehose.
//
// Two codecs, both bit-exact round-trips over arbitrary doubles (NaN,
// denormals, signed zero — they operate on raw bit patterns, never on
// arithmetic values):
//
//   * Timestamps: predictive delta-of-delta. Counter samples arrive on a
//     fixed cadence, so t[i] almost always equals the linear prediction
//     t[i-1] + (t[i-1] - t[i-2]) *evaluated in binary64*; a predictor hit
//     costs one bit. Misses (first two samples, cadence changes, gaps)
//     store the raw 64-bit pattern. Because the decoder re-evaluates the
//     same double expression, reconstruction is bit-exact by construction —
//     no rounding argument needed.
//
//   * Values: Gorilla-style XOR (Pelkonen et al., VLDB'15). Fleet counters
//     are near-constant or slowly ramping, so consecutive bit patterns
//     share sign/exponent/high-mantissa bits; the XOR is zero or has a
//     narrow window of meaningful bits. Identical value -> 1 bit; window
//     reuse -> '10' + meaningful bits; new window -> '11' + 5-bit leading-
//     zero count + 6-bit length + meaningful bits.
//
// On the reference counter mix (see workload/fleet_counters.h) the two
// codecs together hold a sealed block under 2 bytes/point against 16 bytes
// raw — the >= 8x in-memory compression the EXP-AA gate enforces.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace epm::telemetry {

/// Append-only MSB-first bit stream.
class BitWriter {
 public:
  /// Appends the low `n` bits of `bits` (1..64), most significant first.
  void put(std::uint64_t bits, unsigned n) {
    while (n > 0) {
      const unsigned take = n < free_ ? n : free_;
      acc_ = (acc_ << take) |
             ((bits >> (n - take)) & ((take == 64) ? ~0ull : ((1ull << take) - 1)));
      free_ -= take;
      n -= take;
      if (free_ == 0) {
        bytes_.push_back(static_cast<std::uint8_t>(acc_));
        acc_ = 0;
        free_ = 8;
      }
    }
  }
  void put_bit(bool bit) { put(bit ? 1u : 0u, 1); }

  /// Flushes the partial byte (zero-padded) and returns the stream.
  std::vector<std::uint8_t> finish() {
    if (free_ < 8) {
      bytes_.push_back(static_cast<std::uint8_t>(acc_ << free_));
      acc_ = 0;
      free_ = 8;
    }
    return std::move(bytes_);
  }

  std::size_t bit_count() const {
    return bytes_.size() * 8 + (8 - free_);
  }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint64_t acc_ = 0;
  unsigned free_ = 8;  ///< bits still open in the accumulator byte
};

/// MSB-first reader over a BitWriter stream.
class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t bytes)
      : data_(data), bytes_(bytes) {}
  explicit BitReader(const std::vector<std::uint8_t>& bytes)
      : BitReader(bytes.data(), bytes.size()) {}

  std::uint64_t get(unsigned n) {
    std::uint64_t out = 0;
    while (n > 0) {
      if (avail_ == 0) {
        cur_ = pos_ < bytes_ ? data_[pos_++] : 0;
        avail_ = 8;
      }
      const unsigned take = n < avail_ ? n : avail_;
      out = (out << take) | ((cur_ >> (avail_ - take)) & ((1u << take) - 1));
      avail_ -= take;
      n -= take;
    }
    return out;
  }
  bool get_bit() { return get(1) != 0; }

 private:
  const std::uint8_t* data_;
  std::size_t bytes_;
  std::size_t pos_ = 0;
  unsigned cur_ = 0;
  unsigned avail_ = 0;
};

/// Encodes `n` timestamps with the linear predictor; bit-exact decode.
void encode_times(const double* times_s, std::size_t n, BitWriter& out);
void decode_times(BitReader& in, double* times_s, std::size_t n);

/// Encodes `n` values with the Gorilla XOR scheme; bit-exact decode.
void encode_values(const double* values, std::size_t n, BitWriter& out);
void decode_values(BitReader& in, double* values, std::size_t n);

}  // namespace epm::telemetry
