// Animoto-style demand surges (paper §3, quoting ref [5]):
//
//   "When Animoto made its service available via Facebook, it experienced a
//    demand surge that resulted in growing from 50 servers to 3500 servers
//    in three days... After the peak subsided, traffic fell to a level that
//    was well below the peak."
//
// The surge is modeled as a logistic ramp from a baseline demand to a peak
// over `ramp_s`, a plateau, then an exponential recession to a post-surge
// level above the original baseline but far below the peak.
#pragma once

#include "core/time_series.h"

namespace epm::workload {

struct SurgeConfig {
  double baseline = 50.0;        ///< pre-surge demand (paper: 50 servers' worth)
  double peak = 3500.0;          ///< surge peak (paper: 3500 servers' worth)
  double post_surge = 400.0;     ///< level traffic recedes to ("well below peak")
  double surge_start_s = 86400.0;     ///< when the ramp begins
  double ramp_s = 3.0 * 86400.0;      ///< paper: three days to peak
  double plateau_s = 1.0 * 86400.0;   ///< time at peak before receding
  double recede_tau_s = 1.0 * 86400.0;  ///< exponential recession constant
};

class SurgeModel {
 public:
  explicit SurgeModel(SurgeConfig config);

  /// Demand (in arbitrary units, e.g. server-equivalents of load) at t_s.
  double demand_at(double t_s) const;

  const SurgeConfig& config() const { return config_; }

 private:
  SurgeConfig config_;
};

/// Samples the surge every `step_s` over [0, horizon_s).
TimeSeries sample_surge(const SurgeModel& model, double horizon_s, double step_s);

}  // namespace epm::workload
