// The PR 5 heap-based client-population engine, kept as the A/B baseline.
//
// This is the pre-sweep implementation of the closed-loop client model: a
// global (due, id) min-heap plus a deadline heap, token-invalidated stale
// entries, and one SplitMix64 object per client drawn from inside branchy
// per-event code. It is retained — like sim::HeapSimulator — so the kernel
// bench can run an in-run A/B (new epoch engine vs this path) and so the
// equivalence suite can assert that the vectorized engine reproduces this
// engine's attempt stream and ledger bit-for-bit. Do not add features here;
// it exists to stay byte-comparable with what PR 5 shipped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

#include "core/rng.h"
#include "workload/client_population.h"

namespace epm::workload {

/// Heap-based reference engine with the same public contract as
/// ClientPopulation (see client_population.h for the drive protocol).
class LegacyClientPopulation {
 public:
  /// Completions are delivered one at a time (the PR 5 driver schedules one
  /// kernel event per completion).
  static constexpr bool kBatchServe = false;

  explicit LegacyClientPopulation(ClientPopulationConfig config);

  const std::vector<std::uint32_t>& collect_due(double t0, double dt);
  void on_rejected(std::uint32_t id, double now_s);
  void on_admitted(std::uint32_t id, double now_s);
  void on_served(std::uint32_t id, double now_s);
  void expire_timeouts(double now_s);
  void disconnect_all(double now_s);
  void disconnect_fraction(double fraction, double now_s);

  const ClientLedger& ledger() const { return ledger_; }
  const ClientPopulationConfig& config() const { return config_; }

  std::size_t waiting_count() const { return waiting_count_; }
  std::size_t backoff_count() const { return backoff_count_; }
  std::size_t lost_count() const { return lost_count_; }
  std::size_t in_flight() const { return waiting_count_ + backoff_count_; }

  bool conservation_ok() const;
  std::string conservation_report() const;

 private:
  enum class State : std::uint8_t {
    kThinking,
    kWaiting,
    kBackoff,
    kCooldown,
    kLost,
  };

  struct HeapEntry {
    double due_s;
    std::uint32_t id;
    std::uint64_t token;
    bool operator>(const HeapEntry& other) const {
      if (due_s != other.due_s) return due_s > other.due_s;
      return id > other.id;
    }
  };
  using MinHeap =
      std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

  void schedule(std::uint32_t id, State state, double due_s);
  void fail_attempt(std::uint32_t id, double now_s);
  double backoff_delay_s(std::uint32_t id);
  double jitter(std::uint32_t id);
  void enter_state(std::uint32_t id, State state);
  void disconnect_client(std::uint32_t id, double now_s);

  ClientPopulationConfig config_;

  std::vector<State> state_;
  std::vector<std::uint32_t> attempt_;
  std::vector<std::uint64_t> token_;
  std::vector<double> due_s_;
  std::vector<SplitMix64> rng_;

  MinHeap due_heap_;
  MinHeap deadline_heap_;
  std::vector<std::uint32_t> batch_;
  ClientLedger ledger_;
  SplitMix64 disconnect_rng_{0};
  std::uint64_t next_token_ = 1;
  std::size_t waiting_count_ = 0;
  std::size_t backoff_count_ = 0;
  std::size_t lost_count_ = 0;
};

}  // namespace epm::workload
