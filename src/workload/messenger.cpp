#include "workload/messenger.h"

#include <algorithm>
#include <cmath>

#include "core/require.h"
#include "core/units.h"

namespace epm::workload {

MessengerTrace generate_messenger_trace(const MessengerConfig& config, double horizon_s) {
  require(horizon_s > 0.0, "generate_messenger_trace: horizon must be positive");
  require(config.step_s > 0.0, "generate_messenger_trace: step must be positive");
  require(config.peak_login_rate_per_s > 0.0,
          "generate_messenger_trace: peak login rate must be positive");
  require(config.mean_session_s > 0.0,
          "generate_messenger_trace: mean session must be positive");
  require(config.noise_cv >= 0.0, "generate_messenger_trace: negative noise");

  const DiurnalModel diurnal(config.diurnal);
  Rng rng(config.seed);
  Rng flash_rng = rng.fork();
  Rng noise_rng = rng.fork();

  // Draw flash-crowd onsets as a Poisson process over the horizon.
  MessengerTrace trace;
  const double flash_rate_per_s = config.flash.rate_per_day / kSecondsPerDay;
  if (flash_rate_per_s > 0.0) {
    double t = flash_rng.exponential(flash_rate_per_s);
    while (t < horizon_s) {
      trace.flash_crowds.push_back(FlashCrowdEvent{
          t, flash_rng.uniform(config.flash.magnitude_min, config.flash.magnitude_max)});
      t += flash_rng.exponential(flash_rate_per_s);
    }
  }

  const auto n = static_cast<std::size_t>(horizon_s / config.step_s);
  trace.login_rate_per_s = TimeSeries(0.0, config.step_s);
  trace.connections = TimeSeries(0.0, config.step_s);
  trace.login_rate_per_s.reserve(n);
  trace.connections.reserve(n);

  // Start connections at the quasi-steady state of the initial login rate.
  double connections =
      config.peak_login_rate_per_s * diurnal.demand_at(0.0) * config.mean_session_s;

  // Lognormal noise with unit mean: mu = -sigma^2/2.
  const double sigma = config.noise_cv > 0.0
                           ? std::sqrt(std::log(1.0 + config.noise_cv * config.noise_cv))
                           : 0.0;
  const double mu = -0.5 * sigma * sigma;

  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * config.step_s;
    double rate = config.peak_login_rate_per_s * diurnal.demand_at(t);
    // Superpose decayed flash crowds.
    for (const auto& fc : trace.flash_crowds) {
      if (t < fc.start_s) break;  // onsets are time-ordered
      const double age = t - fc.start_s;
      rate *= 1.0 + (fc.magnitude - 1.0) * std::exp(-age / config.flash.decay_time_s);
    }
    if (sigma > 0.0) rate *= noise_rng.lognormal(mu, sigma);

    trace.login_rate_per_s.push_back(rate);
    trace.connections.push_back(connections);

    // Forward-Euler session balance: dN/dt = lambda - N / mean_session.
    connections += (rate - connections / config.mean_session_s) * config.step_s;
    connections = std::max(connections, 0.0);
  }
  return trace;
}

MessengerShape summarize_messenger_trace(const MessengerTrace& trace,
                                         const DiurnalModel& diurnal) {
  require(!trace.connections.empty(), "summarize_messenger_trace: empty trace");
  OnlineStats afternoon;
  OnlineStats midnight;
  OnlineStats weekday;
  OnlineStats weekend;
  const auto& conn = trace.connections;
  for (std::size_t i = 0; i < conn.size(); ++i) {
    const double t = conn.time_at(i);
    const double hour = DiurnalModel::hour_of_day(t);
    const bool wknd = diurnal.is_weekend(t);
    if (!wknd && hour >= 13.0 && hour < 16.0) afternoon.add(conn[i]);
    if (!wknd && hour >= 0.0 && hour < 4.0) midnight.add(conn[i]);
    (wknd ? weekend : weekday).add(conn[i]);
  }
  MessengerShape shape{};
  shape.afternoon_to_midnight_ratio =
      midnight.count() > 0 && midnight.mean() > 0.0 && afternoon.count() > 0
          ? afternoon.mean() / midnight.mean()
          : 0.0;
  shape.weekday_to_weekend_ratio =
      weekend.count() > 0 && weekend.mean() > 0.0 ? weekday.mean() / weekend.mean() : 0.0;
  shape.peak_connections = conn.stats().max();
  shape.peak_login_rate = trace.login_rate_per_s.stats().max();
  shape.flash_crowd_count = trace.flash_crowds.size();
  return shape;
}

}  // namespace epm::workload
