// Parametric diurnal / weekly demand shapes (paper §3, Fig. 3).
//
// The paper's Messenger figure shows: early-afternoon demand ~2x the
// post-midnight trough, weekday demand above weekend demand, and occasional
// flash crowds. DiurnalModel captures the smooth deterministic part; the
// stochastic parts (noise, flash crowds) are layered on top by the callers.
#pragma once

#include <vector>

#include "core/time_series.h"

namespace epm::workload {

/// Smooth 24-hour demand profile with a weekly modulation.
///
/// The daily curve is a truncated two-harmonic Fourier shape chosen so its
/// peak sits at `peak_hour` and its trough/peak ratio equals
/// `trough_to_peak`. Weekend days are scaled by `weekend_factor`.
struct DiurnalConfig {
  double peak_hour = 14.0;        ///< local time of the daily maximum
  double trough_to_peak = 0.5;    ///< paper: midnight ~ half of afternoon
  double weekend_factor = 0.8;    ///< weekend demand relative to weekdays
  double second_harmonic = 0.15;  ///< asymmetry: sharper evening shoulder
  /// Day-of-week of t=0. 0 = Monday ... 6 = Sunday.
  int start_weekday = 0;
};

class DiurnalModel {
 public:
  explicit DiurnalModel(DiurnalConfig config);

  /// Dimensionless demand multiplier at absolute time `t_s`, in (0, 1]:
  /// 1.0 at the weekday peak.
  double demand_at(double t_s) const;

  /// Hour of day in [0, 24) for `t_s`.
  static double hour_of_day(double t_s);
  /// Day-of-week index 0..6 at `t_s`, honoring config.start_weekday.
  int weekday_of(double t_s) const;
  bool is_weekend(double t_s) const;

  const DiurnalConfig& config() const { return config_; }

 private:
  double daily_shape(double hour) const;  // in (0,1], peak at peak_hour

  DiurnalConfig config_;
};

/// Samples `model.demand_at` every `step_s` over [0, horizon_s).
TimeSeries sample_demand(const DiurnalModel& model, double horizon_s, double step_s);

}  // namespace epm::workload
