#include "workload/request_model.h"

#include "core/require.h"

namespace epm::workload {

RequestModel::RequestModel(RequestModelConfig config)
    : config_(config), rng_(config.seed) {
  require(config_.requests_per_demand_unit >= 0.0,
          "RequestModel: negative request rate factor");
  require(config_.fanout >= 1.0, "RequestModel: fanout must be >= 1");
  require(config_.mean_service_demand_s > 0.0,
          "RequestModel: service demand must be positive");
  require(config_.service_demand_cv >= 0.0, "RequestModel: negative service CV");
}

OfferedLoad RequestModel::offered_load(double demand, double epoch_s) {
  require(demand >= 0.0, "RequestModel: negative demand");
  require(epoch_s > 0.0, "RequestModel: epoch must be positive");
  const double external_rate = demand * config_.requests_per_demand_unit;
  double internal_rate = external_rate * config_.fanout;
  if (config_.stochastic_arrivals && internal_rate > 0.0) {
    const double expected = internal_rate * epoch_s;
    internal_rate = static_cast<double>(rng_.poisson(expected)) / epoch_s;
  }
  OfferedLoad load;
  load.arrival_rate_per_s = internal_rate;
  load.service_demand_s = config_.mean_service_demand_s;
  return load;
}

TimeSeries to_arrival_rates(RequestModel& model, const TimeSeries& demand) {
  TimeSeries out(demand.start_s(), demand.step_s());
  out.reserve(demand.size());
  for (std::size_t i = 0; i < demand.size(); ++i) {
    out.push_back(model.offered_load(demand[i], demand.step_s()).arrival_rate_per_s);
  }
  return out;
}

}  // namespace epm::workload
