#include "workload/trace_io.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "core/require.h"

namespace epm::workload {
namespace {

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::string cell;
  std::istringstream is(line);
  while (std::getline(is, cell, sep)) out.push_back(cell);
  return out;
}

double parse_number(const std::string& cell) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(cell, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("trace_io: non-numeric cell '" + cell + "'");
  }
  require(pos == cell.size(), "trace_io: trailing junk in cell '" + cell + "'");
  return v;
}

}  // namespace

void write_csv(std::ostream& out, const std::vector<NamedSeries>& columns) {
  require(!columns.empty(), "write_csv: no columns");
  const auto& first = columns.front().series;
  for (const auto& col : columns) {
    require(col.series.size() == first.size() &&
                std::abs(col.series.start_s() - first.start_s()) < 1e-9 &&
                std::abs(col.series.step_s() - first.step_s()) < 1e-9,
            "write_csv: series timing mismatch");
    require(col.name.find(',') == std::string::npos, "write_csv: comma in column name");
  }
  out << "time_s";
  for (const auto& col : columns) out << ',' << col.name;
  out << '\n';
  out.precision(10);
  for (std::size_t i = 0; i < first.size(); ++i) {
    out << first.time_at(i);
    for (const auto& col : columns) out << ',' << col.series[i];
    out << '\n';
  }
}

void write_csv_file(const std::string& path, const std::vector<NamedSeries>& columns) {
  std::ofstream f(path);
  require(f.good(), "write_csv_file: cannot open " + path);
  write_csv(f, columns);
  require(f.good(), "write_csv_file: write failed for " + path);
}

std::vector<NamedSeries> read_csv(std::istream& in) {
  std::string line;
  require(static_cast<bool>(std::getline(in, line)), "read_csv: empty input");
  const auto header = split(line, ',');
  require(header.size() >= 2 && header.front() == "time_s",
          "read_csv: header must be time_s,<name>...");

  std::vector<double> times;
  std::vector<std::vector<double>> cols(header.size() - 1);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto cells = split(line, ',');
    require(cells.size() == header.size(), "read_csv: ragged row");
    times.push_back(parse_number(cells[0]));
    for (std::size_t c = 1; c < cells.size(); ++c) {
      cols[c - 1].push_back(parse_number(cells[c]));
    }
  }
  require(!times.empty(), "read_csv: no data rows");

  double step = 1.0;
  if (times.size() >= 2) {
    step = times[1] - times[0];
    require(step > 0.0, "read_csv: time column not increasing");
    for (std::size_t i = 2; i < times.size(); ++i) {
      require(std::abs((times[i] - times[i - 1]) - step) < 1e-6 * step + 1e-9,
              "read_csv: non-uniform time step");
    }
  }

  std::vector<NamedSeries> out;
  out.reserve(cols.size());
  for (std::size_t c = 0; c < cols.size(); ++c) {
    out.push_back(NamedSeries{header[c + 1], TimeSeries(times[0], step, std::move(cols[c]))});
  }
  return out;
}

std::vector<NamedSeries> read_csv_file(const std::string& path) {
  std::ifstream f(path);
  require(f.good(), "read_csv_file: cannot open " + path);
  return read_csv(f);
}

}  // namespace epm::workload
