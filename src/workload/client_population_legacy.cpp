#include "workload/client_population_legacy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/require.h"

namespace epm::workload {
namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();

/// Uniform double in [0, 1) from a SplitMix64 stream.
double uniform01(SplitMix64& rng) {
  return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
}

double exponential(SplitMix64& rng, double mean) {
  return -mean * std::log1p(-uniform01(rng));
}

}  // namespace

LegacyClientPopulation::LegacyClientPopulation(ClientPopulationConfig config)
    : config_(config) {
  validate_client_population_config(config_);

  SplitMix64 seeder(config_.seed);
  disconnect_rng_ = SplitMix64(seeder.next());
  const std::size_t n = config_.clients;
  state_.assign(n, State::kThinking);
  attempt_.assign(n, 0);
  token_.assign(n, 0);
  due_s_.assign(n, 0.0);
  rng_.reserve(n);
  for (std::uint32_t id = 0; id < n; ++id) {
    rng_.emplace_back(seeder.next());
    const double due = config_.start_spread_s > 0.0
                           ? exponential(rng_[id], config_.start_spread_s)
                           : 0.0;
    schedule(id, State::kThinking, due);
  }
}

void LegacyClientPopulation::enter_state(std::uint32_t id, State state) {
  const State prev = state_[id];
  if (prev == State::kWaiting) --waiting_count_;
  if (prev == State::kBackoff) --backoff_count_;
  if (prev == State::kLost) --lost_count_;
  state_[id] = state;
  if (state == State::kWaiting) ++waiting_count_;
  if (state == State::kBackoff) ++backoff_count_;
  if (state == State::kLost) ++lost_count_;
}

void LegacyClientPopulation::schedule(std::uint32_t id, State state,
                                      double due_s) {
  enter_state(id, state);
  due_s_[id] = due_s;
  token_[id] = next_token_++;
  if (state == State::kLost) return;  // never scheduled again
  HeapEntry entry{due_s, id, token_[id]};
  if (state == State::kWaiting) {
    deadline_heap_.push(entry);
  } else {
    due_heap_.push(entry);
  }
}

double LegacyClientPopulation::jitter(std::uint32_t id) {
  const double j = config_.retry.jitter_frac;
  if (j <= 0.0) return 1.0;
  return 1.0 - j + 2.0 * j * uniform01(rng_[id]);
}

double LegacyClientPopulation::backoff_delay_s(std::uint32_t id) {
  const RetryPolicyConfig& retry = config_.retry;
  switch (retry.backoff) {
    case RetryBackoff::kImmediate:
      return 0.0;
    case RetryBackoff::kFixed:
      return retry.base_delay_s * jitter(id);
    case RetryBackoff::kExponential: {
      // attempt_[id] counts the attempt that just failed (>= 1).
      const double exponent = static_cast<double>(attempt_[id] - 1);
      const double raw =
          retry.base_delay_s * std::pow(retry.multiplier, exponent);
      return std::min(raw, retry.max_delay_s) * jitter(id);
    }
  }
  return 0.0;
}

const std::vector<std::uint32_t>& LegacyClientPopulation::collect_due(
    double t0, double dt) {
  require(dt > 0.0, "ClientPopulation: epoch must be positive");
  batch_.clear();
  const double end = t0 + dt;
  while (!due_heap_.empty() && due_heap_.top().due_s < end) {
    const HeapEntry entry = due_heap_.top();
    due_heap_.pop();
    const std::uint32_t id = entry.id;
    if (token_[id] != entry.token) continue;  // superseded entry
    // A thinking or cooled-down client starts a fresh intent; a backoff
    // client re-offers its failed one.
    if (state_[id] == State::kBackoff) {
      ++ledger_.retries;
    } else {
      attempt_[id] = 0;
      ++ledger_.intents;
    }
    ++attempt_[id];
    ++ledger_.attempts;
    // In limbo until the caller answers with on_rejected/on_admitted; the
    // attempt is in flight, so it counts as waiting with no deadline yet.
    enter_state(id, State::kWaiting);
    due_s_[id] = kNever;
    token_[id] = next_token_++;
    batch_.push_back(id);
  }
  return batch_;
}

void LegacyClientPopulation::fail_attempt(std::uint32_t id, double now_s) {
  if (attempt_[id] >= config_.retry.max_attempts) {
    ++ledger_.abandoned;
    if (config_.retry.abandon_cooldown_s > 0.0) {
      schedule(id, State::kCooldown,
               now_s + config_.retry.abandon_cooldown_s * jitter(id));
    } else {
      schedule(id, State::kLost, kNever);
    }
    return;
  }
  schedule(id, State::kBackoff, now_s + backoff_delay_s(id));
}

void LegacyClientPopulation::on_rejected(std::uint32_t id, double now_s) {
  require(id < state_.size(), "ClientPopulation: client id out of range");
  ensure(state_[id] == State::kWaiting,
         "ClientPopulation: rejected a client with no attempt in flight");
  ++ledger_.rejected;
  fail_attempt(id, now_s);
}

void LegacyClientPopulation::on_admitted(std::uint32_t id, double now_s) {
  require(id < state_.size(), "ClientPopulation: client id out of range");
  ensure(state_[id] == State::kWaiting,
         "ClientPopulation: admitted a client with no attempt in flight");
  schedule(id, State::kWaiting, now_s + config_.request_timeout_s);
}

void LegacyClientPopulation::on_served(std::uint32_t id, double now_s) {
  require(id < state_.size(), "ClientPopulation: client id out of range");
  if (state_[id] != State::kWaiting) {
    // The client gave up on this attempt long ago; the service's work on it
    // was wasted — the defining loss of a retry storm.
    ++ledger_.stale_served;
    return;
  }
  ++ledger_.served;
  attempt_[id] = 0;
  schedule(id, State::kThinking,
           now_s + exponential(rng_[id], config_.think_time_s));
}

void LegacyClientPopulation::expire_timeouts(double now_s) {
  while (!deadline_heap_.empty() && deadline_heap_.top().due_s <= now_s) {
    const HeapEntry entry = deadline_heap_.top();
    deadline_heap_.pop();
    if (token_[entry.id] != entry.token || state_[entry.id] != State::kWaiting) {
      continue;  // served (or disconnected) before the deadline
    }
    ++ledger_.timed_out;
    fail_attempt(entry.id, now_s);
  }
}

void LegacyClientPopulation::disconnect_client(std::uint32_t id,
                                               double now_s) {
  switch (state_[id]) {
    case State::kWaiting:
      ++ledger_.dropped;
      ++ledger_.disconnected_intents;
      break;
    case State::kBackoff:
      ++ledger_.retry_cancelled;
      ++ledger_.disconnected_intents;
      break;
    case State::kThinking:
    case State::kCooldown:
      break;
    case State::kLost:
      return;  // gone for good; no session to drop
  }
  ++ledger_.disconnects;
  attempt_[id] = 0;
  // Session re-establishment: reconnects arrive with exponential spread, so
  // the aggregate login surge decays like the Fig. 3 flash-crowd spikes.
  schedule(id, State::kThinking,
           now_s + exponential(rng_[id], config_.reconnect_spread_s));
}

void LegacyClientPopulation::disconnect_all(double now_s) {
  for (std::uint32_t id = 0; id < state_.size(); ++id) {
    disconnect_client(id, now_s);
  }
}

void LegacyClientPopulation::disconnect_fraction(double fraction,
                                                 double now_s) {
  require(fraction >= 0.0 && fraction <= 1.0,
          "ClientPopulation: disconnect fraction outside [0, 1]");
  if (fraction >= 1.0) {
    disconnect_all(now_s);  // no draws: the full-outage path stays stream-stable
    return;
  }
  for (std::uint32_t id = 0; id < state_.size(); ++id) {
    if (uniform01(disconnect_rng_) < fraction) {
      disconnect_client(id, now_s);
    }
  }
}

bool LegacyClientPopulation::conservation_ok() const {
  return conservation_report().empty();
}

std::string LegacyClientPopulation::conservation_report() const {
  return client_conservation_report(ledger_, waiting_count_, backoff_count_);
}

}  // namespace epm::workload
