// CSV record/replay for demand traces, so experiments can be re-run against
// identical inputs and external traces can be substituted for the synthetic
// generators (DESIGN.md substitution table).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/time_series.h"

namespace epm::workload {

/// A named series bundle, e.g. {"login_rate", "connections"}.
struct NamedSeries {
  std::string name;
  TimeSeries series;
};

/// Writes columns `time_s,name1,name2,...` with one row per sample. All
/// series must share timing and length.
void write_csv(std::ostream& out, const std::vector<NamedSeries>& columns);
void write_csv_file(const std::string& path, const std::vector<NamedSeries>& columns);

/// Parses a CSV in the write_csv format. Throws std::invalid_argument on
/// malformed input (ragged rows, non-numeric cells, unsorted/non-uniform
/// time column).
std::vector<NamedSeries> read_csv(std::istream& in);
std::vector<NamedSeries> read_csv_file(const std::string& path);

}  // namespace epm::workload
