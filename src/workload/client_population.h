// Closed-loop client population: load that fights back.
//
// Every other workload in this library is open-loop — Poisson or trace
// arrivals that vanish when dropped. Real users do not vanish (paper §3:
// Messenger login storms, the Animoto flash crowd): a failed request is
// re-offered as a retry, a dropped session comes back as a reconnect, and
// the re-offered load is exactly what melts an elastic facility after an
// outage clears. This model closes the loop: each logical client issues a
// request, waits on a per-request timeout, retries under a configurable
// backoff policy (immediate / fixed / exponential, with deterministic
// SplitMix64 jitter and a capped attempt budget), and abandons when the
// budget runs out. A fault-injected outage (faults::kUtilityOutage or a
// server-crash clear) converts, via disconnect_all / disconnect_fraction,
// into a surge of session re-establishment load whose exponential-spread
// arrival matches the Fig. 3 login-spike shape.
//
// The engine is the vectorized epoch sweep introduced for the 10M-client
// regime: client state lives in flat SoA arrays (state / attempt / due /
// raw SplitMix64 counter), each epoch operation is a linear sweep over
// fixed client-range shards (parallelizable on a core::ThreadPool, merged
// in deterministic shard order, bit-identical at any thread count), RNG is
// drawn as branch-free block transforms over the raw counter states, and
// per-epoch scratch comes from an EpochArena instead of the heap. The
// per-event heap engine it replaced is preserved as
// LegacyClientPopulation (client_population_legacy.h) for the in-run A/B
// bench; the equivalence suite asserts both engines produce bit-identical
// attempt streams and ledgers.
//
// Everything is per-client and seeded, so a population replayed against the
// same service responses reproduces the same attempt stream bit-for-bit.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/arena.h"
#include "core/rng.h"

namespace epm {
class ThreadPool;
}

namespace epm::workload {

enum class RetryBackoff {
  kImmediate,    ///< retry on the next opportunity (no deliberate delay)
  kFixed,        ///< constant base_delay_s between attempts
  kExponential,  ///< base_delay_s * multiplier^(attempt-1), capped
};

/// Short stable token ("immediate" / "fixed" / "exponential").
std::string to_string(RetryBackoff backoff);
RetryBackoff retry_backoff_from_string(const std::string& token);

struct RetryPolicyConfig {
  RetryBackoff backoff = RetryBackoff::kExponential;
  double base_delay_s = 2.0;
  double multiplier = 2.0;
  double max_delay_s = 60.0;
  /// Multiplicative jitter: delays scale by uniform [1 - j, 1 + j).
  double jitter_frac = 0.5;
  /// Attempts per intent (first try + retries); exhausted => abandon.
  std::size_t max_attempts = 8;
  /// Abandoned clients come back as a fresh intent after this long;
  /// 0 = abandoned clients never return.
  double abandon_cooldown_s = 0.0;
};

struct ClientPopulationConfig {
  std::size_t clients = 20000;
  /// Mean exponential think time between completed interactions.
  double think_time_s = 40.0;
  /// Client-side deadline per attempt; a response slower than this is
  /// worthless to the client (it has already scheduled a retry).
  double request_timeout_s = 4.0;
  /// Mean exponential delay of post-disconnect reconnect attempts. The
  /// aggregate reconnect rate therefore decays exponentially — the Fig. 3
  /// flash-crowd login-spike shape.
  double reconnect_spread_s = 60.0;
  /// Mean of the exponential initial think phase. Clients launch mid-think;
  /// with start_spread_s == think_time_s the superposed arrival process is
  /// stationary from t = 0 (exponential residuals stay exponential). A
  /// uniform start window would instead synchronize second requests into a
  /// mid-warmup surge ~2x the steady rate.
  double start_spread_s = 40.0;
  RetryPolicyConfig retry;
  std::uint64_t seed = 7;
  /// Worker threads for the sharded epoch sweeps: 1 (default) sweeps
  /// serially, 0 resolves EPM_THREADS / hardware_concurrency, N >= 2 runs
  /// the fixed shard partition on an internal ThreadPool. Results are
  /// bit-identical at every value.
  std::size_t threads = 1;
};

/// Lifetime counters. Attempts and intents are conserved (see
/// conservation_ok); the identities are asserted by the property suite and
/// by the retry-storm runner's invariant monitor every epoch.
struct ClientLedger {
  std::uint64_t intents = 0;        ///< fresh request intents (first attempts)
  std::uint64_t attempts = 0;       ///< requests issued (first + retries)
  std::uint64_t retries = 0;        ///< attempts beyond an intent's first
  std::uint64_t served = 0;         ///< fresh successes (intent completed)
  std::uint64_t stale_served = 0;   ///< server completions after the client gave up
  std::uint64_t rejected = 0;       ///< fast failures (admission / queue / breaker)
  std::uint64_t timed_out = 0;      ///< attempts that hit the client deadline
  std::uint64_t dropped = 0;        ///< in-flight attempts severed by a disconnect
  std::uint64_t abandoned = 0;      ///< intents dropped after max_attempts
  std::uint64_t retry_cancelled = 0;///< pending retries severed by a disconnect
  std::uint64_t disconnected_intents = 0;  ///< open intents severed by a disconnect
  std::uint64_t disconnects = 0;    ///< client-sessions dropped by outages
};

/// Throws std::invalid_argument on an unusable configuration (shared by the
/// sweep engine and the legacy heap engine).
void validate_client_population_config(const ClientPopulationConfig& config);

/// Human-readable account of the first violated conservation identity over
/// a ledger plus the instantaneous waiting/backoff occupancy; "" when all
/// four identities hold. Shared by both engines.
std::string client_conservation_report(const ClientLedger& ledger,
                                       std::size_t waiting,
                                       std::size_t backoff);

/// A deterministic population of logical clients driven at epoch
/// granularity by a service loop:
///
///   1. collect_due(t, dt)      -> attempt batch for this epoch
///   2. on_rejected/on_admitted -> admission verdict per attempt
///   3. (service drains queue)  -> on_served / on_served_batch per completion
///   4. expire_timeouts(t + dt) -> client deadlines fire, retries scheduled
class ClientPopulation {
 public:
  /// Completion cohorts can be delivered as one batch per epoch
  /// (on_served_batch), letting the driver schedule a single kernel event
  /// per cohort instead of one per completion.
  static constexpr bool kBatchServe = true;

  /// Fixed client-range shard partition for the parallel sweeps. Constant —
  /// never derived from the thread count — so per-shard work, and therefore
  /// every merged result, is identical at 1, 2, or 64 threads.
  static constexpr std::size_t kShards = 64;

  explicit ClientPopulation(ClientPopulationConfig config);
  ~ClientPopulation();
  ClientPopulation(const ClientPopulation&) = delete;
  ClientPopulation& operator=(const ClientPopulation&) = delete;

  /// Clients whose next action falls in [t0, t0 + dt), in deterministic
  /// (due time, id) order. Each returned id has issued one attempt at t0;
  /// the caller must answer every id with on_rejected or on_admitted.
  const std::vector<std::uint32_t>& collect_due(double t0, double dt);

  /// Fast failure (admission control / full queue / open breaker / dark
  /// service): the client backs off per policy or abandons.
  void on_rejected(std::uint32_t id, double now_s);
  /// The request entered the service queue; the client now waits until
  /// now_s + request_timeout_s.
  void on_admitted(std::uint32_t id, double now_s);
  /// Service completion. Fresh (intent completed, client thinks again) if
  /// the client is still waiting; stale work otherwise.
  void on_served(std::uint32_t id, double now_s);
  /// Batch completion: equivalent to on_served(ids[i], now_s) for i in
  /// order, with the think-time draws performed as one RNG block.
  void on_served_batch(const std::uint32_t* ids, std::size_t count,
                       double now_s);

  /// Fires client deadlines: waiting clients whose timeout passed fail the
  /// attempt and back off per policy. Call once per epoch, after draining.
  void expire_timeouts(double now_s);

  /// Outage onset: every connected client's session drops. In-flight
  /// attempts are severed, pending retries cancelled, and every client
  /// schedules a session re-establishment attempt now_s + Exp(spread) out.
  void disconnect_all(double now_s);
  /// Same, for a deterministic (seeded) subset of clients.
  void disconnect_fraction(double fraction, double now_s);

  const ClientLedger& ledger() const { return ledger_; }
  const ClientPopulationConfig& config() const { return config_; }

  std::size_t waiting_count() const { return waiting_count_; }
  std::size_t backoff_count() const { return backoff_count_; }
  /// Clients out of the loop entirely (abandoned with no cooldown).
  std::size_t lost_count() const { return lost_count_; }
  /// Open intents at this instant: waiting on a response or in backoff.
  std::size_t in_flight() const { return waiting_count_ + backoff_count_; }

  /// Retry-budget conservation. All four identities must hold at any epoch
  /// boundary (after expire_timeouts):
  ///   attempts == served + rejected + timed_out + dropped + waiting
  ///   attempts == intents + retries
  ///   rejected + timed_out == retries + backoff + retry_cancelled + abandoned
  ///   intents  == served + abandoned + disconnected_intents + in_flight
  bool conservation_ok() const;
  /// Human-readable account of the first violated identity; "" when ok.
  std::string conservation_report() const;

 private:
  enum class State : std::uint8_t {
    kThinking,  ///< between intents; due_s = next intent time
    kWaiting,   ///< attempt in the service; due_s = client deadline
    kBackoff,   ///< failed attempt; due_s = retry time
    kCooldown,  ///< abandoned; due_s = return time (new intent)
    kLost,      ///< abandoned forever (no cooldown)
  };

  /// (due, id) candidate produced by the collect sweep; spans of these are
  /// sorted per shard and k-way merged into the global batch order.
  struct Candidate {
    double due_s;
    std::uint32_t id;
  };

  /// Per-shard counter ledger for one sweep, merged in shard order.
  struct Tally {
    std::uint64_t intents = 0;
    std::uint64_t attempts = 0;
    std::uint64_t retries = 0;
    std::uint64_t timed_out = 0;
    std::uint64_t abandoned = 0;
    std::int64_t waiting_delta = 0;
    std::int64_t backoff_delta = 0;
    std::int64_t lost_delta = 0;
    std::uint64_t dropped = 0;
    std::uint64_t retry_cancelled = 0;
    std::uint64_t disconnected_intents = 0;
    std::uint64_t disconnects = 0;
  };

  std::size_t shard_begin(std::size_t shard) const {
    return shard * config_.clients / kShards;
  }
  std::size_t shard_end(std::size_t shard) const {
    return (shard + 1) * config_.clients / kShards;
  }

  /// Runs fn(shard) for every shard — on the pool when one exists, serially
  /// otherwise. Shards touch disjoint client ranges and disjoint tally
  /// slots, so the parallel execution is race-free by construction.
  template <typename Fn>
  void for_shards(Fn&& fn);

  /// Backoff delay (before jitter) after failing attempt `attempt` — the
  /// table/mask replacement for the per-event std::pow in the legacy path.
  double base_backoff_s(std::uint32_t attempt) const;
  /// Attempt failure shared by the timeout sweep and on_rejected; updates
  /// the given tally instead of global counters.
  void fail_attempt(std::uint32_t id, double now_s, Tally& tally);
  void apply_tally(const Tally& tally);
  void disconnect_client(std::uint32_t id, double now_s);

  ClientPopulationConfig config_;
  std::unique_ptr<ThreadPool> pool_;  ///< null when sweeping serially
  EpochArena arena_;

  // Client state, structure-of-arrays: every sweep touches one field across
  // many clients, so parallel arrays stream linearly. rng_ holds the raw
  // SplitMix64 counter per client; draws advance it by kGamma and mix,
  // which block loops do branch-free (and bit-identically to a SplitMix64
  // object — the stream-equivalence regression test pins this).
  std::vector<State> state_;
  std::vector<std::uint32_t> attempt_;
  std::vector<double> due_s_;
  std::vector<std::uint64_t> rng_;

  /// delay_table_[a] = capped pre-jitter delay after failing attempt a
  /// (exponential policy); attempts past the table fall back to the same
  /// closed form.
  std::vector<double> delay_table_;
  bool draw_on_retry_ = false;     ///< retry backoff consumes a jitter draw
  bool draw_on_cooldown_ = false;  ///< abandon-to-cooldown consumes one

  std::vector<std::uint32_t> batch_;
  ClientLedger ledger_;
  SplitMix64 disconnect_rng_{0};
  std::size_t waiting_count_ = 0;
  std::size_t backoff_count_ = 0;
  std::size_t lost_count_ = 0;
};

}  // namespace epm::workload
