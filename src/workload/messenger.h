// Synthetic Windows-Live-Messenger-style workload (paper Fig. 3).
//
// The figure plots, over one week: (a) the total number of connected users
// (normalized to 1 million) and (b) the new-user login rate (normalized to
// 1400 logins/second). Connections are the *integral* of logins minus
// session departures, so the model generates the login-rate process and
// derives connections through a session-lifetime ODE:
//
//     dN/dt = lambda(t) - N(t) / mean_session_s
//
// Flash crowds ("a large number of users login in a short period of time")
// are multiplicative spikes on lambda with exponential decay.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "core/time_series.h"
#include "workload/diurnal.h"

namespace epm::workload {

struct FlashCrowdConfig {
  double rate_per_day = 1.0;     ///< expected flash crowds per simulated day
  double magnitude_min = 1.5;    ///< login-rate multiplier at spike onset, min
  double magnitude_max = 3.5;    ///< ... and max (uniform between them)
  double decay_time_s = 900.0;   ///< exponential decay constant of a spike
};

struct MessengerConfig {
  /// Deterministic daily/weekly shape. The login-rate trough is set slightly
  /// below the paper's 2:1 connections ratio because session lifetimes
  /// low-pass the diurnal curve; with a 2 h mean session this yields
  /// afternoon/midnight connections of ~2x, matching Fig. 3.
  DiurnalConfig diurnal{.peak_hour = 14.0, .trough_to_peak = 0.42};
  FlashCrowdConfig flash;                 ///< spike process
  double peak_login_rate_per_s = 1400.0;  ///< paper's normalization
  double mean_session_s = 3600.0 * 2.0;   ///< mean connected-session length
  double noise_cv = 0.03;                 ///< multiplicative sampling noise
  double step_s = 15.0;                   ///< sample period of output series
  std::uint64_t seed = 42;
};

/// One flash-crowd occurrence, for inspection by tests and experiments.
struct FlashCrowdEvent {
  double start_s;
  double magnitude;  ///< multiplier applied to the login rate at onset
};

/// Generated week (or arbitrary horizon) of Messenger-style load.
struct MessengerTrace {
  TimeSeries login_rate_per_s;  ///< new-user logins per second
  TimeSeries connections;       ///< concurrently connected users
  std::vector<FlashCrowdEvent> flash_crowds;
};

/// Generates a trace over [0, horizon_s). Deterministic given the config.
MessengerTrace generate_messenger_trace(const MessengerConfig& config, double horizon_s);

/// Summary statistics the paper calls out for Fig. 3; computed by the bench
/// and asserted by tests.
struct MessengerShape {
  double afternoon_to_midnight_ratio;  ///< connections, ~2.0 in the paper
  double weekday_to_weekend_ratio;     ///< connections, > 1.0 in the paper
  double peak_connections;             ///< max of the normalized series
  double peak_login_rate;              ///< max login rate observed
  std::size_t flash_crowd_count;
};

MessengerShape summarize_messenger_trace(const MessengerTrace& trace,
                                         const DiurnalModel& diurnal);

}  // namespace epm::workload
