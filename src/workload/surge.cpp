#include "workload/surge.h"

#include <cmath>

#include "core/require.h"

namespace epm::workload {

SurgeModel::SurgeModel(SurgeConfig config) : config_(config) {
  require(config_.baseline > 0.0, "SurgeModel: baseline must be positive");
  require(config_.peak > config_.baseline, "SurgeModel: peak must exceed baseline");
  require(config_.post_surge >= config_.baseline && config_.post_surge < config_.peak,
          "SurgeModel: post_surge must lie in [baseline, peak)");
  require(config_.ramp_s > 0.0 && config_.plateau_s >= 0.0 && config_.recede_tau_s > 0.0,
          "SurgeModel: invalid timing");
}

double SurgeModel::demand_at(double t_s) const {
  const auto& c = config_;
  if (t_s < c.surge_start_s) return c.baseline;
  const double since = t_s - c.surge_start_s;
  if (since < c.ramp_s) {
    // Logistic ramp centered mid-ramp; steepness chosen so the curve covers
    // ~98% of the rise within the ramp window.
    const double k = 8.0 / c.ramp_s;
    const double x = since - c.ramp_s / 2.0;
    const double sig = 1.0 / (1.0 + std::exp(-k * x));
    // Rescale so the ramp starts exactly at baseline and ends at peak.
    const double sig0 = 1.0 / (1.0 + std::exp(k * c.ramp_s / 2.0));
    const double sig1 = 1.0 / (1.0 + std::exp(-k * c.ramp_s / 2.0));
    const double unit = (sig - sig0) / (sig1 - sig0);
    return c.baseline + (c.peak - c.baseline) * unit;
  }
  const double after_ramp = since - c.ramp_s;
  if (after_ramp < c.plateau_s) return c.peak;
  const double recede = after_ramp - c.plateau_s;
  return c.post_surge + (c.peak - c.post_surge) * std::exp(-recede / c.recede_tau_s);
}

TimeSeries sample_surge(const SurgeModel& model, double horizon_s, double step_s) {
  require(horizon_s > 0.0 && step_s > 0.0, "sample_surge: invalid horizon/step");
  TimeSeries out(0.0, step_s);
  const auto n = static_cast<std::size_t>(horizon_s / step_s);
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(model.demand_at(static_cast<double>(i) * step_s));
  }
  return out;
}

}  // namespace epm::workload
