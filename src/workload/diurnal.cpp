#include "workload/diurnal.h"

#include <cmath>
#include <numbers>

#include "core/require.h"
#include "core/units.h"

namespace epm::workload {

DiurnalModel::DiurnalModel(DiurnalConfig config) : config_(config) {
  require(config_.peak_hour >= 0.0 && config_.peak_hour < 24.0,
          "DiurnalModel: peak_hour outside [0,24)");
  require(config_.trough_to_peak > 0.0 && config_.trough_to_peak <= 1.0,
          "DiurnalModel: trough_to_peak outside (0,1]");
  require(config_.weekend_factor > 0.0 && config_.weekend_factor <= 1.0,
          "DiurnalModel: weekend_factor outside (0,1]");
  require(config_.second_harmonic >= 0.0 && config_.second_harmonic < 0.5,
          "DiurnalModel: second_harmonic outside [0,0.5)");
  require(config_.start_weekday >= 0 && config_.start_weekday <= 6,
          "DiurnalModel: start_weekday outside 0..6");
}

double DiurnalModel::hour_of_day(double t_s) {
  double h = std::fmod(t_s, kSecondsPerDay) / kSecondsPerHour;
  if (h < 0.0) h += 24.0;
  return h;
}

int DiurnalModel::weekday_of(double t_s) const {
  const auto day = static_cast<long long>(std::floor(t_s / kSecondsPerDay));
  long long wd = (day + config_.start_weekday) % 7;
  if (wd < 0) wd += 7;
  return static_cast<int>(wd);
}

bool DiurnalModel::is_weekend(double t_s) const { return weekday_of(t_s) >= 5; }

double DiurnalModel::daily_shape(double hour) const {
  // Raw two-harmonic curve in [-1-h2, 1+h2], peak at peak_hour.
  const double phase = 2.0 * std::numbers::pi * (hour - config_.peak_hour) / 24.0;
  const double raw = std::cos(phase) + config_.second_harmonic * std::cos(2.0 * phase);
  const double raw_max = 1.0 + config_.second_harmonic;
  const double raw_min = -1.0 - config_.second_harmonic;  // conservative bound
  // Map raw range onto [trough_to_peak, 1].
  const double unit = (raw - raw_min) / (raw_max - raw_min);  // [0,1]
  return config_.trough_to_peak + (1.0 - config_.trough_to_peak) * unit;
}

double DiurnalModel::demand_at(double t_s) const {
  const double base = daily_shape(hour_of_day(t_s));
  return is_weekend(t_s) ? base * config_.weekend_factor : base;
}

TimeSeries sample_demand(const DiurnalModel& model, double horizon_s, double step_s) {
  require(horizon_s > 0.0, "sample_demand: horizon must be positive");
  require(step_s > 0.0, "sample_demand: step must be positive");
  TimeSeries out(0.0, step_s);
  const auto n = static_cast<std::size_t>(horizon_s / step_s);
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(model.demand_at(static_cast<double>(i) * step_s));
  }
  return out;
}

}  // namespace epm::workload
