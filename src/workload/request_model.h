// Converts user-facing demand (connected users, login rates, surge levels)
// into the request streams the cluster simulator consumes.
//
// The paper (§3) notes that "each user request may hit hundreds to thousands
// of servers" and that computing activity changes fast compared to cooling.
// We model a service's offered load per control epoch as a request arrival
// rate plus a per-request CPU service demand, with optional request fan-out
// (one external request producing `fanout` internal server requests).
#pragma once

#include <cstdint>
#include <string>

#include "core/rng.h"
#include "core/time_series.h"

namespace epm::workload {

struct RequestModelConfig {
  /// External requests per second per unit of demand (e.g., per connected
  /// user): Messenger-style presence traffic is light per user.
  double requests_per_demand_unit = 0.05;
  /// Internal fan-out: servers touched per external request (paper: hundreds
  /// to thousands for large services; default kept small for a single tier).
  double fanout = 1.0;
  /// Mean CPU seconds consumed by one internal request at the reference
  /// (maximum) core frequency.
  double mean_service_demand_s = 0.01;
  /// Coefficient of variation of service demand (>=0). Exposed because the
  /// M/G/1-PS response-time approximation is insensitive to it while M/M/n
  /// is not; tests exercise both.
  double service_demand_cv = 1.0;
  /// Poisson sampling of per-epoch arrivals (false = fluid/deterministic).
  bool stochastic_arrivals = true;
  std::uint64_t seed = 7;
};

/// Offered load for one control epoch.
struct OfferedLoad {
  double arrival_rate_per_s = 0.0;    ///< internal requests per second
  double service_demand_s = 0.0;      ///< mean CPU-seconds per request
  /// Total CPU-seconds demanded per wall-clock second (rate * demand);
  /// the provisioning policies treat this as "server-equivalents" when
  /// divided by per-server capacity.
  double cpu_load() const { return arrival_rate_per_s * service_demand_s; }
};

/// Maps a demand series to per-epoch offered loads.
class RequestModel {
 public:
  explicit RequestModel(RequestModelConfig config);

  /// Offered load for an epoch of length `epoch_s` with demand level
  /// `demand`. Stochastic mode perturbs the arrival rate with Poisson
  /// sampling of the epoch's arrival count.
  OfferedLoad offered_load(double demand, double epoch_s);

  const RequestModelConfig& config() const { return config_; }

 private:
  RequestModelConfig config_;
  Rng rng_;
};

/// Converts a whole demand series into a series of arrival rates (1/s).
TimeSeries to_arrival_rates(RequestModel& model, const TimeSeries& demand);

}  // namespace epm::workload
