#include "workload/client_population.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/parallel.h"
#include "core/require.h"

namespace epm::workload {
namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();

/// One SplitMix64 stream step over a raw counter state: uniform in [0, 1).
/// Bit-identical to uniform01(SplitMix64&) in the legacy engine — the
/// stream-equivalence regression test pins this.
double unit_draw(std::uint64_t& state) {
  return static_cast<double>(SplitMix64::mix(state += SplitMix64::kGamma) >>
                             11) *
         0x1.0p-53;
}

double exponential_draw(std::uint64_t& state, double mean) {
  return -mean * std::log1p(-unit_draw(state));
}

/// Uniform double in [0, 1) from a SplitMix64 object (the shared
/// disconnect-selection stream, which must advance in id order).
double uniform01(SplitMix64& rng) {
  return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
}

/// Multiplicative jitter factor in [1 - j, 1 + j). Callers gate the draw on
/// j > 0 (draw_on_retry_ / draw_on_cooldown_) to match the legacy stream.
double jitter_draw(std::uint64_t& state, double j) {
  return 1.0 - j + 2.0 * j * unit_draw(state);
}

}  // namespace

std::string to_string(RetryBackoff backoff) {
  switch (backoff) {
    case RetryBackoff::kImmediate:
      return "immediate";
    case RetryBackoff::kFixed:
      return "fixed";
    case RetryBackoff::kExponential:
      return "exponential";
  }
  return "?";
}

RetryBackoff retry_backoff_from_string(const std::string& token) {
  if (token == "immediate") return RetryBackoff::kImmediate;
  if (token == "fixed") return RetryBackoff::kFixed;
  if (token == "exponential") return RetryBackoff::kExponential;
  throw std::invalid_argument("unknown retry backoff '" + token + "'");
}

void validate_client_population_config(const ClientPopulationConfig& config) {
  require(config.clients > 0, "ClientPopulation: no clients");
  require(config.think_time_s > 0.0,
          "ClientPopulation: think time must be positive");
  require(config.request_timeout_s > 0.0,
          "ClientPopulation: request timeout must be positive");
  require(config.reconnect_spread_s > 0.0,
          "ClientPopulation: reconnect spread must be positive");
  require(config.start_spread_s >= 0.0,
          "ClientPopulation: start spread must be non-negative");
  require(config.retry.max_attempts >= 1,
          "ClientPopulation: need at least one attempt");
  require(config.retry.base_delay_s >= 0.0 && config.retry.max_delay_s >= 0.0,
          "ClientPopulation: retry delays must be non-negative");
  require(config.retry.multiplier >= 1.0,
          "ClientPopulation: retry multiplier below 1");
  require(config.retry.jitter_frac >= 0.0 && config.retry.jitter_frac < 1.0,
          "ClientPopulation: jitter fraction outside [0, 1)");
  require(config.retry.abandon_cooldown_s >= 0.0,
          "ClientPopulation: cooldown must be non-negative");
}

std::string client_conservation_report(const ClientLedger& led,
                                       std::size_t waiting_count,
                                       std::size_t backoff_count) {
  const auto waiting = static_cast<std::uint64_t>(waiting_count);
  const auto backoff = static_cast<std::uint64_t>(backoff_count);
  std::ostringstream out;
  if (led.attempts !=
      led.served + led.rejected + led.timed_out + led.dropped + waiting) {
    out << "attempts " << led.attempts << " != served " << led.served
        << " + rejected " << led.rejected << " + timed_out " << led.timed_out
        << " + dropped " << led.dropped << " + waiting " << waiting;
    return out.str();
  }
  if (led.attempts != led.intents + led.retries) {
    out << "attempts " << led.attempts << " != intents " << led.intents
        << " + retries " << led.retries;
    return out.str();
  }
  if (led.rejected + led.timed_out !=
      led.retries + backoff + led.retry_cancelled + led.abandoned) {
    out << "failures " << led.rejected + led.timed_out << " != retries "
        << led.retries << " + backoff " << backoff << " + cancelled "
        << led.retry_cancelled << " + abandoned " << led.abandoned;
    return out.str();
  }
  if (led.intents != led.served + led.abandoned + led.disconnected_intents +
                         waiting + backoff) {
    out << "intents " << led.intents << " != served " << led.served
        << " + abandoned " << led.abandoned << " + disconnected "
        << led.disconnected_intents << " + in-flight " << waiting + backoff;
    return out.str();
  }
  return {};
}

ClientPopulation::ClientPopulation(ClientPopulationConfig config)
    : config_(config) {
  validate_client_population_config(config_);
  const std::size_t resolved =
      resolve_thread_count(static_cast<std::int64_t>(config_.threads));
  if (resolved > 1) pool_ = std::make_unique<ThreadPool>(resolved);

  // Stream layout matches the legacy engine's sequential seeder exactly:
  // seeder draw 1 seeds the disconnect-selection stream, draw id + 2 seeds
  // client id. SplitMix64 is a pure function of its counter, so client
  // seeds come from the closed form instead of a serial seeder walk.
  SplitMix64 seeder(config_.seed);
  disconnect_rng_ = SplitMix64(seeder.next());

  const std::size_t n = config_.clients;
  state_.assign(n, State::kThinking);
  attempt_.assign(n, 0);
  due_s_.assign(n, 0.0);
  rng_.resize(n);

  const RetryPolicyConfig& retry = config_.retry;
  // Pre-jitter exponential-backoff delays, computed with the identical
  // expression the legacy per-event std::pow path used (bit-equality).
  const std::size_t table_len = std::min<std::size_t>(retry.max_attempts, 64);
  delay_table_.assign(table_len + 1, 0.0);
  for (std::size_t a = 1; a <= table_len; ++a) {
    const double exponent = static_cast<double>(a - 1);
    const double raw = retry.base_delay_s * std::pow(retry.multiplier, exponent);
    delay_table_[a] = std::min(raw, retry.max_delay_s);
  }
  draw_on_retry_ =
      retry.backoff != RetryBackoff::kImmediate && retry.jitter_frac > 0.0;
  draw_on_cooldown_ = retry.jitter_frac > 0.0;

  const double spread = config_.start_spread_s;
  for_shards([&](std::size_t s) {
    const std::size_t hi = shard_end(s);
    for (std::size_t id = shard_begin(s); id < hi; ++id) {
      rng_[id] = SplitMix64::mix(
          config_.seed + (static_cast<std::uint64_t>(id) + 2) *
                             SplitMix64::kGamma);
      due_s_[id] = spread > 0.0 ? exponential_draw(rng_[id], spread) : 0.0;
    }
  });
}

ClientPopulation::~ClientPopulation() = default;

template <typename Fn>
void ClientPopulation::for_shards(Fn&& fn) {
  if (pool_) {
    pool_->parallel_for(kShards, [&](std::size_t begin, std::size_t end) {
      for (std::size_t s = begin; s < end; ++s) fn(s);
    });
  } else {
    for (std::size_t s = 0; s < kShards; ++s) fn(s);
  }
}

void ClientPopulation::apply_tally(const Tally& t) {
  ledger_.intents += t.intents;
  ledger_.attempts += t.attempts;
  ledger_.retries += t.retries;
  ledger_.timed_out += t.timed_out;
  ledger_.abandoned += t.abandoned;
  ledger_.dropped += t.dropped;
  ledger_.retry_cancelled += t.retry_cancelled;
  ledger_.disconnected_intents += t.disconnected_intents;
  ledger_.disconnects += t.disconnects;
  waiting_count_ = static_cast<std::size_t>(
      static_cast<std::int64_t>(waiting_count_) + t.waiting_delta);
  backoff_count_ = static_cast<std::size_t>(
      static_cast<std::int64_t>(backoff_count_) + t.backoff_delta);
  lost_count_ = static_cast<std::size_t>(
      static_cast<std::int64_t>(lost_count_) + t.lost_delta);
}

const std::vector<std::uint32_t>& ClientPopulation::collect_due(double t0,
                                                                double dt) {
  require(dt > 0.0, "ClientPopulation: epoch must be positive");
  batch_.clear();
  const double end = t0 + dt;

  // Shard spans come out of the arena serially (it is not thread-safe);
  // workers then fill disjoint spans.
  arena_.reset();
  std::array<Candidate*, kShards> spans;
  for (std::size_t s = 0; s < kShards; ++s) {
    spans[s] = arena_.alloc<Candidate>(shard_end(s) - shard_begin(s));
  }
  std::array<std::size_t, kShards> counts{};
  std::array<Tally, kShards> tallies{};

  for_shards([&](std::size_t s) {
    Tally& t = tallies[s];
    Candidate* out = spans[s];
    std::size_t found = 0;
    const std::size_t hi = shard_end(s);
    for (std::size_t id = shard_begin(s); id < hi; ++id) {
      const State st = state_[id];
      if (st == State::kWaiting || st == State::kLost) continue;
      const double due = due_s_[id];
      if (due >= end) continue;
      // A thinking or cooled-down client starts a fresh intent; a backoff
      // client re-offers its failed one.
      if (st == State::kBackoff) {
        ++t.retries;
        --t.backoff_delta;
        ++attempt_[id];
      } else {
        attempt_[id] = 1;
        ++t.intents;
      }
      ++t.attempts;
      ++t.waiting_delta;
      // In limbo until the caller answers with on_rejected/on_admitted; the
      // attempt is in flight, so it counts as waiting with no deadline yet.
      state_[id] = State::kWaiting;
      due_s_[id] = kNever;
      out[found++] = Candidate{due, static_cast<std::uint32_t>(id)};
    }
    std::sort(out, out + found, [](const Candidate& a, const Candidate& b) {
      if (a.due_s != b.due_s) return a.due_s < b.due_s;
      return a.id < b.id;
    });
    counts[s] = found;
  });

  std::size_t total = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    apply_tally(tallies[s]);
    total += counts[s];
  }

  // Deterministic k-way merge of the sorted shard spans reproduces the
  // legacy heap's (due, id) pop order exactly — the property suite
  // checksums batch order, so this is contractual, not cosmetic.
  struct Head {
    double due_s;
    std::uint32_t id;
    std::uint32_t shard;
  };
  const auto later = [](const Head& a, const Head& b) {
    if (a.due_s != b.due_s) return a.due_s > b.due_s;
    return a.id > b.id;
  };
  batch_.reserve(total);
  std::array<std::size_t, kShards> pos{};
  Head heap[kShards];
  std::size_t heads = 0;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    if (counts[s] > 0) {
      heap[heads++] = Head{spans[s][0].due_s, spans[s][0].id, s};
    }
  }
  std::make_heap(heap, heap + heads, later);
  while (heads > 0) {
    std::pop_heap(heap, heap + heads, later);
    const Head head = heap[heads - 1];
    batch_.push_back(head.id);
    const std::size_t next = ++pos[head.shard];
    if (next < counts[head.shard]) {
      const Candidate& cand = spans[head.shard][next];
      heap[heads - 1] = Head{cand.due_s, cand.id, head.shard};
      std::push_heap(heap, heap + heads, later);
    } else {
      --heads;
    }
  }
  return batch_;
}

double ClientPopulation::base_backoff_s(std::uint32_t attempt) const {
  const RetryPolicyConfig& retry = config_.retry;
  switch (retry.backoff) {
    case RetryBackoff::kImmediate:
      return 0.0;
    case RetryBackoff::kFixed:
      return retry.base_delay_s;
    case RetryBackoff::kExponential: {
      if (attempt < delay_table_.size()) return delay_table_[attempt];
      const double exponent = static_cast<double>(attempt - 1);
      const double raw = retry.base_delay_s * std::pow(retry.multiplier, exponent);
      return std::min(raw, retry.max_delay_s);
    }
  }
  return 0.0;
}

void ClientPopulation::fail_attempt(std::uint32_t id, double now_s,
                                    Tally& t) {
  const double j = config_.retry.jitter_frac;
  --t.waiting_delta;
  if (attempt_[id] >= config_.retry.max_attempts) {
    ++t.abandoned;
    if (config_.retry.abandon_cooldown_s > 0.0) {
      const double jit = draw_on_cooldown_ ? jitter_draw(rng_[id], j) : 1.0;
      state_[id] = State::kCooldown;
      due_s_[id] = now_s + config_.retry.abandon_cooldown_s * jit;
    } else {
      state_[id] = State::kLost;
      due_s_[id] = kNever;
      ++t.lost_delta;
    }
    return;
  }
  const double jit = draw_on_retry_ ? jitter_draw(rng_[id], j) : 1.0;
  state_[id] = State::kBackoff;
  due_s_[id] = now_s + base_backoff_s(attempt_[id]) * jit;
  ++t.backoff_delta;
}

void ClientPopulation::on_rejected(std::uint32_t id, double now_s) {
  require(id < state_.size(), "ClientPopulation: client id out of range");
  ensure(state_[id] == State::kWaiting,
         "ClientPopulation: rejected a client with no attempt in flight");
  ++ledger_.rejected;
  Tally t;
  fail_attempt(id, now_s, t);
  apply_tally(t);
}

void ClientPopulation::on_admitted(std::uint32_t id, double now_s) {
  require(id < state_.size(), "ClientPopulation: client id out of range");
  ensure(state_[id] == State::kWaiting,
         "ClientPopulation: admitted a client with no attempt in flight");
  due_s_[id] = now_s + config_.request_timeout_s;
}

void ClientPopulation::on_served(std::uint32_t id, double now_s) {
  require(id < state_.size(), "ClientPopulation: client id out of range");
  if (state_[id] != State::kWaiting) {
    // The client gave up on this attempt long ago; the service's work on it
    // was wasted — the defining loss of a retry storm.
    ++ledger_.stale_served;
    return;
  }
  ++ledger_.served;
  --waiting_count_;
  attempt_[id] = 0;
  state_[id] = State::kThinking;
  due_s_[id] = now_s + exponential_draw(rng_[id], config_.think_time_s);
}

void ClientPopulation::on_served_batch(const std::uint32_t* ids,
                                       std::size_t count, double now_s) {
  if (count == 0) return;
  // `ids` must not point into this population's arena: the classify pass
  // below resets it. (The retry-storm driver keeps cohorts in its own.)
  arena_.reset();
  std::uint32_t* fresh = arena_.alloc<std::uint32_t>(count);
  std::size_t n_fresh = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t id = ids[i];
    require(id < state_.size(), "ClientPopulation: client id out of range");
    if (state_[id] != State::kWaiting) {
      ++ledger_.stale_served;
      continue;
    }
    ++ledger_.served;
    attempt_[id] = 0;
    state_[id] = State::kThinking;
    fresh[n_fresh++] = id;
  }
  waiting_count_ -= n_fresh;
  // Think-time draws as one branch-free block over the raw counter states.
  const double mean = config_.think_time_s;
  for (std::size_t i = 0; i < n_fresh; ++i) {
    const std::uint32_t id = fresh[i];
    due_s_[id] = now_s + exponential_draw(rng_[id], mean);
  }
}

void ClientPopulation::expire_timeouts(double now_s) {
  std::array<Tally, kShards> tallies{};
  for_shards([&](std::size_t s) {
    Tally& t = tallies[s];
    const std::size_t hi = shard_end(s);
    for (std::size_t id = shard_begin(s); id < hi; ++id) {
      // Limbo clients (due = inf) and admitted clients with a live deadline
      // both fail the due test; only expired waiters fall through.
      if (state_[id] != State::kWaiting || due_s_[id] > now_s) continue;
      ++t.timed_out;
      fail_attempt(static_cast<std::uint32_t>(id), now_s, t);
    }
  });
  for (const Tally& t : tallies) apply_tally(t);
}

void ClientPopulation::disconnect_client(std::uint32_t id, double now_s) {
  Tally t;
  switch (state_[id]) {
    case State::kWaiting:
      ++t.dropped;
      ++t.disconnected_intents;
      --t.waiting_delta;
      break;
    case State::kBackoff:
      ++t.retry_cancelled;
      ++t.disconnected_intents;
      --t.backoff_delta;
      break;
    case State::kThinking:
    case State::kCooldown:
      break;
    case State::kLost:
      return;  // gone for good; no session to drop
  }
  ++t.disconnects;
  attempt_[id] = 0;
  // Session re-establishment: reconnects arrive with exponential spread, so
  // the aggregate login surge decays like the Fig. 3 flash-crowd spikes.
  state_[id] = State::kThinking;
  due_s_[id] = now_s + exponential_draw(rng_[id], config_.reconnect_spread_s);
  apply_tally(t);
}

void ClientPopulation::disconnect_all(double now_s) {
  std::array<Tally, kShards> tallies{};
  for_shards([&](std::size_t s) {
    Tally& t = tallies[s];
    const std::size_t hi = shard_end(s);
    for (std::size_t id = shard_begin(s); id < hi; ++id) {
      switch (state_[id]) {
        case State::kWaiting:
          ++t.dropped;
          ++t.disconnected_intents;
          --t.waiting_delta;
          break;
        case State::kBackoff:
          ++t.retry_cancelled;
          ++t.disconnected_intents;
          --t.backoff_delta;
          break;
        case State::kThinking:
        case State::kCooldown:
          break;
        case State::kLost:
          continue;  // gone for good; no session to drop
      }
      ++t.disconnects;
      attempt_[id] = 0;
      state_[id] = State::kThinking;
      due_s_[id] =
          now_s + exponential_draw(rng_[id], config_.reconnect_spread_s);
    }
  });
  for (const Tally& t : tallies) apply_tally(t);
}

void ClientPopulation::disconnect_fraction(double fraction, double now_s) {
  require(fraction >= 0.0 && fraction <= 1.0,
          "ClientPopulation: disconnect fraction outside [0, 1]");
  if (fraction >= 1.0) {
    disconnect_all(now_s);  // no draws: the full-outage path stays stream-stable
    return;
  }
  // Serial by necessity: the selection draws come from one shared stream
  // that must advance in id order to stay bit-compatible.
  for (std::uint32_t id = 0; id < state_.size(); ++id) {
    if (uniform01(disconnect_rng_) < fraction) {
      disconnect_client(id, now_s);
    }
  }
}

bool ClientPopulation::conservation_ok() const {
  return conservation_report().empty();
}

std::string ClientPopulation::conservation_report() const {
  return client_conservation_report(ledger_, waiting_count_, backoff_count_);
}

}  // namespace epm::workload
