#include "workload/fleet_counters.h"

#include <cmath>

#include "core/require.h"
#include "core/rng.h"

namespace epm::workload {

namespace {

enum class CounterType : std::uint8_t {
  kNearConstant,  // 50%: integer baseline, rare +-1 excursions
  kCumulative,    // 25%: monotone integer accumulator
  kDiurnal,       // 25%: daily sinusoid quantized to integer percent
};

struct SeriesState {
  Rng rng;
  CounterType type;
  double baseline = 0.0;
  double value = 0.0;
  /// Tick carrying the injected spike; no spike when >= ticks.
  std::uint32_t spike_tick = 0xffffffffu;

  explicit SeriesState(std::uint64_t seed) : rng(seed), type(CounterType::kNearConstant) {}
};

double next_value(SeriesState& s, double time_s) {
  switch (s.type) {
    case CounterType::kNearConstant: {
      double v = s.baseline;
      const double u = s.rng.uniform01();
      if (u < 0.01) {
        v += 1.0;
      } else if (u < 0.02) {
        v -= 1.0;
      }
      return v;
    }
    case CounterType::kCumulative:
      s.value += static_cast<double>(s.rng.uniform_int(0, 100));
      return s.value;
    case CounterType::kDiurnal: {
      const double phase = 2.0 * 3.14159265358979323846 * time_s / 86400.0;
      double v = std::round(s.baseline + 40.0 * std::sin(phase));
      if (s.rng.uniform01() < 0.05) v += s.rng.uniform01() < 0.5 ? 1.0 : -1.0;
      return v;
    }
  }
  return 0.0;
}

}  // namespace

FleetCountersBatch synthesize_fleet_counters(const FleetCountersConfig& config) {
  require(config.servers >= 1 && config.counters_per_server >= 1,
          "fleet_counters: need at least one server and counter");
  require(config.ticks >= 1, "fleet_counters: need at least one tick");
  require(config.cadence_s > 0.0, "fleet_counters: cadence must be positive");
  require(config.spike_probability >= 0.0 && config.spike_probability <= 1.0,
          "fleet_counters: spike probability outside [0, 1]");

  const std::size_t series_count =
      static_cast<std::size_t>(config.servers) * config.counters_per_server;

  // One private RNG stream per series, derived from (seed, key): the draw
  // sequence a series sees is a function of its key alone, so the batch is
  // identical however the synthesis loop is restructured.
  std::vector<SeriesState> states;
  states.reserve(series_count);
  FleetCountersBatch batch;
  for (std::uint32_t server = 0; server < config.servers; ++server) {
    for (std::uint32_t counter = 0; counter < config.counters_per_server; ++counter) {
      const telemetry::CounterKey key = telemetry::make_key(server, counter);
      SeriesState s(SplitMix64::mix(config.seed + SplitMix64::kGamma * (key + 1)));
      const double pick = s.rng.uniform01();
      if (pick < 0.5) {
        s.type = CounterType::kNearConstant;
        s.baseline = static_cast<double>(s.rng.uniform_int(0, 1000));
      } else if (pick < 0.75) {
        s.type = CounterType::kCumulative;
        s.value = 0.0;
      } else {
        s.type = CounterType::kDiurnal;
        s.baseline = 50.0;
      }
      if (config.spike_probability > 0.0 &&
          s.rng.uniform01() < config.spike_probability && config.ticks >= 2) {
        // Land the spike in the second half of the run so the detector's
        // warmup has passed for any realistic tick count.
        s.spike_tick = static_cast<std::uint32_t>(
            s.rng.uniform_int(config.ticks / 2, config.ticks - 1));
        batch.spikes.push_back(InjectedSpike{
            key, static_cast<double>(s.spike_tick) * config.cadence_s +
                     static_cast<double>(server % 15)});
      }
      states.push_back(std::move(s));
    }
  }

  // Tick-major emission: every counter of tick t before any counter of
  // tick t+1, matching a fleet-wide scrape and keeping per-series
  // timestamps non-decreasing.
  batch.samples.reserve(series_count * config.ticks);
  for (std::uint32_t tick = 0; tick < config.ticks; ++tick) {
    std::size_t idx = 0;
    for (std::uint32_t server = 0; server < config.servers; ++server) {
      // Per-server phase offset: staggers scrape arrival like a real
      // collector fan-out (integer seconds keep values integer-valued).
      const double time_s = static_cast<double>(tick) * config.cadence_s +
                            static_cast<double>(server % 15);
      for (std::uint32_t counter = 0; counter < config.counters_per_server;
           ++counter, ++idx) {
        SeriesState& s = states[idx];
        double value = next_value(s, time_s);
        if (tick == s.spike_tick) value = (value + 64.0) * config.spike_scale;
        batch.samples.push_back(telemetry::Sample{
            telemetry::make_key(server, counter), time_s, value, false});
      }
    }
  }
  return batch;
}

}  // namespace epm::workload
