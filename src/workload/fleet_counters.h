// Reference fleet-counter mix for the §5.3 telemetry firehose.
//
//   "consider a 10,000 server cloud computing environment, if there are 100
//    software performance counters of interests, and each of them are
//    sampled every 15 seconds, we will expect 2.4 million data points per
//    minutes"
//
// Real performance counters are not white noise: most are near-constant
// health gauges, a large minority are monotone cumulative counters, and the
// rest are coarsely quantized utilizations tracking the diurnal load. This
// generator reproduces that mix — it is the workload the compression and
// throughput gates (EXP-AA) are defined against, so the ratio printed in
// BENCH_telemetry.json describes a stated distribution, not a lucky input:
//
//   * 50% near-constant gauges: an integer baseline, rare +-1 excursions;
//   * 25% cumulative counters: integer increments per tick (resets rare);
//   * 25% diurnal utilizations: a sinusoidal daily profile quantized to
//     integer percent, plus occasional jitter.
//
// All values are integer-valued doubles (what /proc-style counters report),
// timestamps are a fixed 15 s cadence with per-server phase offsets.
// Optionally a known set of spike faults is injected so the in-stream
// anomaly detector has ground truth to be scored against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "telemetry/store.h"

namespace epm::workload {

struct FleetCountersConfig {
  std::uint32_t servers = 100;
  std::uint32_t counters_per_server = 100;
  /// Sampling ticks to synthesize (per counter).
  std::uint32_t ticks = 40;
  double cadence_s = 15.0;
  std::uint64_t seed = 0xf1ee7;
  /// Probability that a given (server, counter) pair hosts one injected
  /// spike: a single sample multiplied far outside the detector band.
  double spike_probability = 0.0;
  /// Multiplier applied to the spiked sample (on top of baseline + 64).
  double spike_scale = 50.0;
};

/// One injected ground-truth spike, for scoring the anomaly detector.
struct InjectedSpike {
  telemetry::CounterKey key = 0;
  double time_s = 0.0;
};

struct FleetCountersBatch {
  /// Samples ordered by tick, then server, then counter — the order a
  /// fleet-wide scrape would emit (all counters of tick t before any of
  /// tick t+1), so per-series timestamps are non-decreasing.
  std::vector<telemetry::Sample> samples;
  std::vector<InjectedSpike> spikes;
};

/// Deterministically synthesizes the reference mix. Same config -> same
/// batch, bit for bit.
FleetCountersBatch synthesize_fleet_counters(const FleetCountersConfig& config);

}  // namespace epm::workload
