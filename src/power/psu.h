// Power-supply-unit efficiency model.
//
// The paper notes the Climate Savers Computing Initiative's push for
// "high-efficiency power supplies" (§1). Real PSUs are inefficient at light
// load; we model the standard efficiency-vs-load curve so distribution-loss
// accounting (Fig. 1 reproduction) reflects that partially loaded servers
// waste proportionally more at the wall.
#pragma once

namespace epm::power {

struct PsuConfig {
  double rated_output_w = 450.0;
  double peak_efficiency = 0.92;      ///< best-case efficiency (80 PLUS-ish)
  double efficiency_at_10pct = 0.78;  ///< light-load efficiency
  double peak_efficiency_load = 0.5;  ///< load fraction of peak efficiency
};

class Psu {
 public:
  explicit Psu(PsuConfig config);

  const PsuConfig& config() const { return config_; }

  /// Conversion efficiency at `output_w` of DC load. Clamps to the rated
  /// output. Smooth curve rising from light load to the peak-efficiency
  /// point, with a gentle fall-off toward full load.
  double efficiency_at(double output_w) const;

  /// AC input power drawn from the PDU for a given DC output.
  double input_power_w(double output_w) const;
  /// Loss (input - output).
  double loss_w(double output_w) const;

 private:
  PsuConfig config_;
};

}  // namespace epm::power
