#include "power/distribution.h"

#include <algorithm>

#include "core/require.h"

namespace epm::power {

std::string to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kUtility:
      return "utility";
    case NodeKind::kTransformer:
      return "transformer";
    case NodeKind::kUps:
      return "UPS";
    case NodeKind::kPdu:
      return "PDU";
    case NodeKind::kRack:
      return "rack";
    case NodeKind::kMechanical:
      return "mechanical";
  }
  return "?";
}

namespace {
void validate_spec(const NodeSpec& spec) {
  require(spec.capacity_w >= 0.0, "PowerDistributionTree: negative capacity");
  require(spec.fixed_loss_w >= 0.0, "PowerDistributionTree: negative fixed loss");
  require(spec.loss_fraction >= 0.0 && spec.loss_fraction < 1.0,
          "PowerDistributionTree: loss fraction outside [0,1)");
}
}  // namespace

PowerDistributionTree::PowerDistributionTree(NodeSpec root) {
  validate_spec(root);
  specs_.push_back(std::move(root));
  parents_.push_back(kNoNode);
  direct_loads_.push_back(0.0);
}

NodeId PowerDistributionTree::add_node(NodeId parent, NodeSpec spec) {
  require(parent < specs_.size(), "PowerDistributionTree: unknown parent");
  validate_spec(spec);
  specs_.push_back(std::move(spec));
  parents_.push_back(parent);
  direct_loads_.push_back(0.0);
  return specs_.size() - 1;
}

const NodeSpec& PowerDistributionTree::spec(NodeId id) const {
  require(id < specs_.size(), "PowerDistributionTree: unknown node");
  return specs_[id];
}

NodeId PowerDistributionTree::parent(NodeId id) const {
  require(id < parents_.size(), "PowerDistributionTree: unknown node");
  return parents_[id];
}

std::vector<NodeId> PowerDistributionTree::nodes_of_kind(NodeKind kind) const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < specs_.size(); ++id) {
    if (specs_[id].kind == kind) out.push_back(id);
  }
  return out;
}

void PowerDistributionTree::set_direct_load(NodeId id, double load_w) {
  require(id < specs_.size(), "PowerDistributionTree: unknown node");
  require(load_w >= 0.0, "PowerDistributionTree: negative load");
  direct_loads_[id] = load_w;
}

double PowerDistributionTree::direct_load(NodeId id) const {
  require(id < specs_.size(), "PowerDistributionTree: unknown node");
  return direct_loads_[id];
}

DistributionReport PowerDistributionTree::evaluate() const {
  DistributionReport report;
  report.flows.resize(specs_.size());

  // Children were added after parents, so a reverse pass accumulates inputs
  // bottom-up in one sweep.
  for (NodeId id = specs_.size(); id-- > 0;) {
    NodeFlow& flow = report.flows[id];
    flow.direct_load_w = direct_loads_[id];
    flow.output_w += direct_loads_[id];  // children already accumulated
    const NodeSpec& s = specs_[id];
    flow.input_w = s.fixed_loss_w + flow.output_w / (1.0 - s.loss_fraction);
    flow.loss_w = flow.input_w - flow.output_w;
    flow.overloaded = s.capacity_w > 0.0 && flow.output_w > s.capacity_w;
    if (flow.overloaded) report.overloaded.push_back(id);
    if (parents_[id] != kNoNode) {
      report.flows[parents_[id]].output_w += flow.input_w;
    }
  }

  report.utility_draw_w = report.flows[root()].input_w;
  for (NodeId id = 0; id < specs_.size(); ++id) {
    report.total_loss_w += report.flows[id].loss_w;
    // Critical power = load delivered inside UPS-protected subtrees; we count
    // the direct load of racks plus any load attached directly to PDUs/UPS.
    bool under_ups = false;
    for (NodeId a = id; a != kNoNode; a = parents_[a]) {
      if (specs_[a].kind == NodeKind::kUps) {
        under_ups = true;
        break;
      }
    }
    if (under_ups || specs_[id].kind == NodeKind::kUps) {
      report.critical_power_w += direct_loads_[id];
    } else if (specs_[id].kind == NodeKind::kMechanical) {
      report.mechanical_power_w += direct_loads_[id];
    }
  }
  // `overloaded` was filled in reverse id order; restore insertion order.
  std::reverse(report.overloaded.begin(), report.overloaded.end());
  if (report.critical_power_w > 0.0) {
    report.pue = report.utility_draw_w / report.critical_power_w;
  }
  return report;
}

Tier2Topology build_tier2_topology(const Tier2TopologyConfig& config) {
  require(config.pdu_count > 0 && config.racks_per_pdu > 0,
          "build_tier2_topology: need at least one PDU and one rack");
  require(config.critical_capacity_w > 0.0,
          "build_tier2_topology: critical capacity must be positive");

  PowerDistributionTree tree(NodeSpec{NodeKind::kUtility, "utility", 0.0, 0.0, 0.0});
  const NodeId xfmr = tree.add_node(
      tree.root(),
      NodeSpec{NodeKind::kTransformer, "transformer",
               config.critical_capacity_w + config.mechanical_capacity_w, 2.0e3,
               config.transformer_loss_fraction});
  const NodeId ups = tree.add_node(
      xfmr, NodeSpec{NodeKind::kUps, "ups", config.critical_capacity_w,
                     config.ups_fixed_loss_w, config.ups_loss_fraction});
  const NodeId mech = tree.add_node(
      xfmr, NodeSpec{NodeKind::kMechanical, "mechanical", config.mechanical_capacity_w,
                     0.0, 0.0});

  Tier2Topology topo{std::move(tree), {}, mech, ups};
  const double pdu_capacity =
      config.critical_capacity_w / static_cast<double>(config.pdu_count);
  for (std::size_t p = 0; p < config.pdu_count; ++p) {
    const NodeId pdu = topo.tree.add_node(
        ups, NodeSpec{NodeKind::kPdu, "pdu" + std::to_string(p), pdu_capacity, 500.0,
                      config.pdu_loss_fraction});
    for (std::size_t r = 0; r < config.racks_per_pdu; ++r) {
      topo.rack_ids.push_back(topo.tree.add_node(
          pdu, NodeSpec{NodeKind::kRack,
                        "rack" + std::to_string(p) + "." + std::to_string(r),
                        config.rack_capacity_w, 0.0, 0.0}));
    }
  }
  return topo;
}

}  // namespace epm::power
