#include "power/component_power.h"

#include <algorithm>
#include <cmath>

#include "core/require.h"

namespace epm::power {

MemoryPowerModel::MemoryPowerModel(MemoryConfig config) : config_(config) {
  require(config_.banks >= 1, "MemoryPowerModel: need at least one bank");
  require(config_.bank_gb > 0.0, "MemoryPowerModel: bank size must be positive");
  require(config_.per_bank_active_w >= config_.per_bank_asleep_w &&
              config_.per_bank_asleep_w >= 0.0,
          "MemoryPowerModel: need active >= asleep >= 0 power");
}

double MemoryPowerModel::total_gb() const {
  return static_cast<double>(config_.banks) * config_.bank_gb;
}

std::size_t MemoryPowerModel::banks_for_working_set(double working_set_gb) const {
  require(working_set_gb >= 0.0, "MemoryPowerModel: negative working set");
  require(working_set_gb <= total_gb() + 1e-9,
          "MemoryPowerModel: working set exceeds installed memory");
  const auto banks =
      static_cast<std::size_t>(std::ceil(working_set_gb / config_.bank_gb - 1e-12));
  return std::clamp<std::size_t>(banks, 1, config_.banks);
}

double MemoryPowerModel::power_w(std::size_t active_banks) const {
  require(active_banks >= 1 && active_banks <= config_.banks,
          "MemoryPowerModel: active banks outside [1, banks]");
  const auto asleep = static_cast<double>(config_.banks - active_banks);
  return static_cast<double>(active_banks) * config_.per_bank_active_w +
         asleep * config_.per_bank_asleep_w;
}

double MemoryPowerModel::power_for_working_set_w(double working_set_gb) const {
  return power_w(banks_for_working_set(working_set_gb));
}

DiskPowerModel::DiskPowerModel(DiskConfig config) : config_(config) {
  require(config_.spindles >= 1, "DiskPowerModel: need at least one spindle");
  require(config_.spinning_w > config_.standby_w && config_.standby_w >= 0.0,
          "DiskPowerModel: need spinning > standby >= 0 power");
  require(config_.spinup_energy_j >= 0.0 && config_.spinup_latency_s >= 0.0,
          "DiskPowerModel: negative spin-up costs");
}

double DiskPowerModel::breakeven_idle_s() const {
  return config_.spinup_energy_j / (config_.spinning_w - config_.standby_w);
}

double DiskPowerModel::gap_energy_j(double gap_s, double timeout_s) const {
  require(gap_s >= 0.0, "DiskPowerModel: negative gap");
  require(timeout_s >= 0.0, "DiskPowerModel: negative timeout");
  if (gap_s <= timeout_s) return config_.spinning_w * gap_s;
  return config_.spinning_w * timeout_s + config_.standby_w * (gap_s - timeout_s) +
         config_.spinup_energy_j;
}

double DiskPowerModel::gap_energy_spinning_j(double gap_s) const {
  require(gap_s >= 0.0, "DiskPowerModel: negative gap");
  return config_.spinning_w * gap_s;
}

double DiskPowerModel::expected_idle_power_w(double mean_gap_s,
                                             double timeout_s) const {
  require(mean_gap_s > 0.0, "DiskPowerModel: mean gap must be positive");
  require(timeout_s >= 0.0, "DiskPowerModel: negative timeout");
  const double lambda = 1.0 / mean_gap_s;
  const double tail = std::exp(-lambda * timeout_s);  // P(g > T)
  const double e_min = (1.0 - tail) / lambda;         // E[min(g, T)]
  const double e_excess = tail / lambda;              // E[(g - T)+]
  const double e_energy = config_.spinning_w * e_min + config_.standby_w * e_excess +
                          config_.spinup_energy_j * tail;
  return e_energy / mean_gap_s;
}

double DiskPowerModel::simulate_idle_power_w(double mean_gap_s, double timeout_s,
                                             std::size_t gaps, Rng& rng) const {
  require(gaps >= 1, "DiskPowerModel: need at least one gap");
  double energy = 0.0;
  double time = 0.0;
  for (std::size_t i = 0; i < gaps; ++i) {
    const double gap = rng.exponential(1.0 / mean_gap_s);
    energy += gap_energy_j(gap, timeout_s);
    time += gap;
  }
  return energy / time;
}

}  // namespace epm::power
