#include "power/core_parking.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/require.h"

namespace epm::power {

CmpPowerModel::CmpPowerModel(CmpConfig config) : config_(std::move(config)) {
  require(config_.uncore_power_w >= 0.0, "CmpPowerModel: negative uncore power");
  require(!config_.classes.empty(), "CmpPowerModel: no core classes");
  for (const auto& c : config_.classes) {
    require(c.count >= 1, "CmpPowerModel: empty core class");
    require(c.capacity_weight > 0.0, "CmpPowerModel: capacity weight must be positive");
    require(c.idle_power_w >= 0.0 && c.busy_power_w >= c.idle_power_w,
            "CmpPowerModel: need 0 <= idle <= busy power");
    require(c.parked_power_w >= 0.0 && c.parked_power_w <= c.idle_power_w,
            "CmpPowerModel: parked power must be in [0, idle]");
    max_capacity_ += static_cast<double>(c.count) * c.capacity_weight;
  }
}

std::size_t CmpPowerModel::total_cores() const {
  std::size_t n = 0;
  for (const auto& c : config_.classes) n += c.count;
  return n;
}

double CmpPowerModel::capacity(const ActiveCores& active) const {
  require(active.size() == config_.classes.size(),
          "CmpPowerModel: selection must cover every class");
  double cap = 0.0;
  for (std::size_t i = 0; i < active.size(); ++i) {
    require(active[i] <= config_.classes[i].count,
            "CmpPowerModel: more active cores than exist");
    cap += static_cast<double>(active[i]) * config_.classes[i].capacity_weight;
  }
  return cap;
}

double CmpPowerModel::power_w(const ActiveCores& active, double utilization) const {
  require(utilization >= 0.0 && utilization <= 1.0,
          "CmpPowerModel: utilization outside [0,1]");
  const double cap = capacity(active);  // validates the selection
  (void)cap;
  double power = config_.uncore_power_w;
  for (std::size_t i = 0; i < active.size(); ++i) {
    const auto& c = config_.classes[i];
    const auto unparked = static_cast<double>(active[i]);
    const auto parked = static_cast<double>(c.count - active[i]);
    power += parked * c.parked_power_w;
    power += unparked * (c.idle_power_w + (c.busy_power_w - c.idle_power_w) * utilization);
  }
  return power;
}

ActiveCores CmpPowerModel::all_cores() const {
  ActiveCores all;
  all.reserve(config_.classes.size());
  for (const auto& c : config_.classes) all.push_back(c.count);
  return all;
}

ActiveCores CmpPowerModel::optimal_active_cores(double required_capacity) const {
  require(required_capacity >= 0.0, "CmpPowerModel: negative capacity requirement");
  require(required_capacity <= max_capacity_ + 1e-9,
          "CmpPowerModel: requirement exceeds package capacity");

  // Exhaustive over per-class counts (class counts are small: 2 classes of
  // <=16 cores is 289 combinations).
  ActiveCores best;
  double best_power = std::numeric_limits<double>::infinity();
  ActiveCores trial(config_.classes.size(), 0);
  const std::size_t combos = [&] {
    std::size_t n = 1;
    for (const auto& c : config_.classes) n *= c.count + 1;
    return n;
  }();
  for (std::size_t code = 0; code < combos; ++code) {
    std::size_t rem = code;
    for (std::size_t i = 0; i < trial.size(); ++i) {
      trial[i] = rem % (config_.classes[i].count + 1);
      rem /= config_.classes[i].count + 1;
    }
    const double cap = capacity(trial);
    if (cap + 1e-12 < required_capacity) continue;
    const double u = cap > 0.0 ? std::min(required_capacity / cap, 1.0) : 0.0;
    if (cap == 0.0 && required_capacity > 0.0) continue;
    const double p = power_w(trial, u);
    if (p < best_power) {
      best_power = p;
      best = trial;
    }
  }
  ensure(!best.empty() || required_capacity == 0.0,
         "CmpPowerModel: no feasible selection found");
  if (best.empty()) best.assign(config_.classes.size(), 0);
  return best;
}

CoreParkingPolicy::CoreParkingPolicy(const CmpPowerModel& model,
                                     CoreParkingPolicyConfig config)
    : model_(&model), config_(config), active_(model.all_cores()) {
  require(config_.park_utilization > 0.0 &&
              config_.park_utilization < config_.unpark_utilization &&
              config_.unpark_utilization < 1.0,
          "CoreParkingPolicy: need 0 < park < unpark < 1");
  require(config_.min_cores >= 1, "CoreParkingPolicy: min_cores must be >= 1");
}

const ActiveCores& CoreParkingPolicy::decide(double utilization) {
  require(utilization >= 0.0 && utilization <= 1.0,
          "CoreParkingPolicy: utilization outside [0,1]");
  const auto& classes = model_->config().classes;
  std::size_t unparked_total = 0;
  for (std::size_t n : active_) unparked_total += n;

  if (utilization > config_.unpark_utilization) {
    // Unpark one core of the most efficient (capacity per busy watt) class
    // that still has parked cores.
    double best_eff = -1.0;
    std::size_t best_class = classes.size();
    for (std::size_t i = 0; i < classes.size(); ++i) {
      if (active_[i] >= classes[i].count) continue;
      const double eff = classes[i].capacity_weight / classes[i].busy_power_w;
      if (eff > best_eff) {
        best_eff = eff;
        best_class = i;
      }
    }
    if (best_class < classes.size()) ++active_[best_class];
  } else if (utilization < config_.park_utilization &&
             unparked_total > config_.min_cores) {
    // Park one core of the least efficient class that still has unparked
    // cores beyond the floor.
    double worst_eff = std::numeric_limits<double>::infinity();
    std::size_t worst_class = classes.size();
    for (std::size_t i = 0; i < classes.size(); ++i) {
      if (active_[i] == 0) continue;
      const double eff = classes[i].capacity_weight / classes[i].busy_power_w;
      if (eff < worst_eff) {
        worst_eff = eff;
        worst_class = i;
      }
    }
    if (worst_class < classes.size()) --active_[worst_class];
  }
  return active_;
}

}  // namespace epm::power
