#include "power/psu.h"

#include <algorithm>
#include <cmath>

#include "core/require.h"

namespace epm::power {

Psu::Psu(PsuConfig config) : config_(config) {
  require(config_.rated_output_w > 0.0, "Psu: rated output must be positive");
  require(config_.peak_efficiency > 0.0 && config_.peak_efficiency <= 1.0,
          "Psu: peak efficiency outside (0,1]");
  require(config_.efficiency_at_10pct > 0.0 &&
              config_.efficiency_at_10pct <= config_.peak_efficiency,
          "Psu: light-load efficiency must be in (0, peak]");
  require(config_.peak_efficiency_load > 0.1 && config_.peak_efficiency_load <= 1.0,
          "Psu: peak-efficiency load point outside (0.1, 1]");
}

double Psu::efficiency_at(double output_w) const {
  require(output_w >= 0.0, "Psu: negative output power");
  const double load =
      std::min(output_w, config_.rated_output_w) / config_.rated_output_w;
  if (load <= 0.0) return config_.efficiency_at_10pct;
  // Quadratic in log-ish shape: rise from the 10% point to the peak point,
  // then a mild 2-point droop to full load.
  const double peak_load = config_.peak_efficiency_load;
  if (load <= peak_load) {
    // Smooth monotone rise; anchored at (0.1, eff10) and (peak_load, peak).
    const double x = std::clamp((load - 0.1) / (peak_load - 0.1), 0.0, 1.0);
    const double rise = 1.0 - (1.0 - x) * (1.0 - x);  // ease-out
    return config_.efficiency_at_10pct +
           (config_.peak_efficiency - config_.efficiency_at_10pct) * rise;
  }
  const double x = (load - peak_load) / (1.0 - peak_load);
  const double droop = 0.02 * x * x;  // ~2 points down at 100% load
  return std::max(config_.peak_efficiency - droop, config_.efficiency_at_10pct);
}

double Psu::input_power_w(double output_w) const {
  require(output_w >= 0.0, "Psu: negative output power");
  if (output_w == 0.0) return 0.0;
  return output_w / efficiency_at(output_w);
}

double Psu::loss_w(double output_w) const { return input_power_w(output_w) - output_w; }

}  // namespace epm::power
