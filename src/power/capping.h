// Power capping (paper §3.2: "power capping policies" are among the knobs
// macro-resource management coordinates; §5.2: anti-correlated co-location
// "will reduce the probability of power capping").
//
// The capper is the safety backstop for oversubscription: when the aggregate
// draw under a budgeted node (PDU or UPS) would exceed its budget, each
// server's dynamic power is scaled back uniformly above its idle floor —
// which a ServerPowerModel then realizes as a P-state / duty-cycle choice.
#pragma once

#include <cstddef>
#include <vector>

#include "power/server_power.h"

namespace epm::power {

struct CapDecision {
  /// Per-server power caps (watts); same order as the input draws.
  std::vector<double> caps_w;
  /// True when the budget forced caps below the uncapped draws.
  bool capped = false;
  /// Total power shed (uncapped sum - budgeted sum), 0 when not capped.
  double shed_w = 0.0;
  /// True when even capping every server to idle cannot meet the budget
  /// (the "rare events that the demand exceeds the capacity", §3.2 —
  /// the caller must shut servers off or accept the overload).
  bool infeasible = false;
};

/// Computes per-server caps for `draws_w` (current uncapped power of each
/// active server) against `budget_w`. Dynamic power above each server's
/// idle floor is scaled by a common factor; idle floors are never violated.
CapDecision plan_caps(const std::vector<double>& draws_w, double idle_floor_w,
                      double budget_w);

/// Translates a power cap into the fastest (P-state, duty) setting whose
/// busy power fits under `cap_w` at the given utilization. Falls back to the
/// slowest P-state with a reduced duty cycle when no plain P-state fits.
struct ThrottleSetting {
  std::size_t pstate = 0;
  double duty = 1.0;
  /// Capacity relative to (P0, duty 1) after throttling.
  double relative_capacity = 1.0;
};

ThrottleSetting throttle_for_cap(const ServerPowerModel& model, double utilization,
                                 double cap_w);

}  // namespace epm::power
