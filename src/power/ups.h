// UPS energy-storage model (paper §2.1).
//
// "The power capacity of a data center is primarily defined by the
//  capability of the UPS system, both in terms of steady load handling and
//  surge withstand."
//
// The battery (or flywheel) model tracks stored energy through charge and
// discharge and answers the two questions capacity planning asks: how long
// can the present load ride through a utility outage, and how much surge
// headroom exists above the steady rating.
#pragma once

namespace epm::power {

struct UpsBatteryConfig {
  double energy_capacity_j = 540.0e6;  ///< ~150 kWh of stored energy
  double max_discharge_w = 1.2e6;      ///< peak discharge (surge withstand)
  double max_charge_w = 100.0e3;       ///< recharge rate limit
  double charge_efficiency = 0.9;      ///< energy stored per energy drawn
  double initial_soc = 1.0;            ///< state of charge in [0,1]
};

class UpsBattery {
 public:
  explicit UpsBattery(UpsBatteryConfig config);

  const UpsBatteryConfig& config() const { return config_; }

  double stored_energy_j() const { return stored_j_; }
  double state_of_charge() const { return stored_j_ / config_.energy_capacity_j; }
  bool depleted() const { return stored_j_ <= 0.0; }

  /// Discharges at `load_w` for `dt_s`. Returns the energy actually
  /// delivered (may be less than requested if the battery empties or the
  /// load exceeds the discharge limit).
  double discharge(double load_w, double dt_s);

  /// Charges from a `supply_w` feed for `dt_s` (rate- and capacity-limited).
  /// Returns the energy drawn from the feed (including conversion loss).
  double charge(double supply_w, double dt_s);

  /// Ride-through time at a constant load from the current state of charge;
  /// infinity for zero load, 0 if the load exceeds the discharge limit.
  double ride_through_s(double load_w) const;

 private:
  UpsBatteryConfig config_;
  double stored_j_;
};

}  // namespace epm::power
