// Server power model with DVFS P-states and T-state throttling (paper §4.2).
//
// Calibrated to the paper's headline facts:
//   * "a powered on server with zero workload consumes about 60% of its
//      peak power" (§4.3, refs [10],[18])  ->  idle_fraction = 0.6
//   * P-states reduce clock rate and supply voltage; the dynamic power term
//     scales ~ f.V^2 ~ f^3 when voltage tracks frequency -> cubic exponent.
//   * T-states insert STPCLK duty cycles: capacity falls linearly with the
//     duty cycle while the dynamic term falls with it too ("throttle down a
//     CPU (but not the actual clock rate)").
//
// The model is deliberately macroscopic: power is a function of utilization,
// the selected P-state, and the duty cycle. That is the granularity at which
// the paper's coordination arguments operate.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace epm::power {

/// One ACPI-style performance state.
struct PState {
  std::string name;       ///< e.g. "P0"
  double frequency_hz;    ///< core clock at this state
  double busy_power_w;    ///< full-utilization power at this state
};

struct ServerPowerConfig {
  double peak_power_w = 300.0;   ///< busy power at the top P-state
  double idle_fraction = 0.60;   ///< idle power / peak power (paper: ~60%)
  double sleep_power_w = 9.0;    ///< S3-style sleep ("turned off components")
  double off_power_w = 0.0;      ///< fully off
  double max_frequency_hz = 2.4e9;
  /// DVFS exponent for the dynamic term: busy(f) = idle + dyn*(f/fmax)^alpha.
  double dvfs_exponent = 3.0;
  /// Number of evenly spaced P-states from min_frequency to max (inclusive).
  std::size_t pstate_count = 5;
  double min_frequency_hz = 1.2e9;
  /// Boot/wakeup behaviour ("it takes time to wake up a slept component...
  /// this wakeup process may consume more energy", §4.3).
  double boot_time_s = 120.0;
  double boot_power_w = 280.0;     ///< near-peak draw while booting
  double wake_from_sleep_s = 15.0;
  double reference_capacity_rps = 100.0;  ///< requests/s at fmax, utilization 1
};

/// Immutable per-model power/performance curves; shared by all servers of a
/// hardware class.
class ServerPowerModel {
 public:
  explicit ServerPowerModel(ServerPowerConfig config);

  const ServerPowerConfig& config() const { return config_; }
  const std::vector<PState>& pstates() const { return pstates_; }
  std::size_t pstate_count() const { return pstates_.size(); }

  double idle_power_w() const { return config_.peak_power_w * config_.idle_fraction; }
  double peak_power_w() const { return config_.peak_power_w; }

  /// Electrical power at P-state `pstate`, utilization `u` in [0,1], and
  /// T-state duty cycle `duty` in (0,1]. Utilization is measured against the
  /// *throttled* capacity, so power interpolates between idle and the
  /// throttled busy power.
  double active_power_w(std::size_t pstate, double utilization, double duty = 1.0) const;

  /// Busy (u=1) power at a P-state with full duty cycle.
  double busy_power_w(std::size_t pstate) const;

  /// Request-serving capacity (requests/s of reference service demand) at a
  /// P-state and duty cycle. Linear in frequency and duty.
  double capacity_rps(std::size_t pstate, double duty = 1.0) const;
  /// Capacity as a fraction of the top P-state's.
  double relative_capacity(std::size_t pstate, double duty = 1.0) const;

  /// Index of the slowest P-state whose capacity still covers
  /// `required_fraction` of full capacity; top state if none suffices.
  std::size_t lowest_pstate_with_capacity(double required_fraction) const;

  /// Energy consumed by a cold boot (joules).
  double boot_energy_j() const { return config_.boot_power_w * config_.boot_time_s; }

 private:
  ServerPowerConfig config_;
  std::vector<PState> pstates_;  // index 0 = fastest (P0)
};

}  // namespace epm::power
