// Power distribution tree (paper §2.1, Fig. 1).
//
// "Power drawn from the grid is transformed and conditioned to charge the
//  UPS system... The uninterrupted power is distributed through power
//  distribution units (PDUs) to supply power to the server and networking
//  racks. This portion is called critical power... The power is also used by
//  water chillers, computer room air conditioning (CRAC) systems, and
//  humidifiers."
//
// Nodes form a tree rooted at the utility feed. Each node has a capacity, a
// fixed (always-on) loss, and a proportional conversion loss. Critical load
// hangs under PDUs; mechanical (cooling) load hangs under the transformer,
// bypassing the UPS, which is how real tier-2 sites are plumbed.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace epm::power {

enum class NodeKind { kUtility, kTransformer, kUps, kPdu, kRack, kMechanical };

/// Human-readable name of a node kind, for reports.
std::string to_string(NodeKind kind);

using NodeId = std::size_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

struct NodeSpec {
  NodeKind kind = NodeKind::kRack;
  std::string name;
  double capacity_w = 0.0;       ///< max deliverable output power
  double fixed_loss_w = 0.0;     ///< loss drawn whenever energized
  double loss_fraction = 0.0;    ///< fraction of input lost in conversion
};

/// Per-node evaluation result.
struct NodeFlow {
  double direct_load_w = 0.0;  ///< load attached directly to this node
  double output_w = 0.0;       ///< power delivered downstream (incl. direct)
  double input_w = 0.0;        ///< power drawn from the parent
  double loss_w = 0.0;         ///< input - output
  bool overloaded = false;     ///< output exceeded capacity
};

/// Result of evaluating the whole tree for one operating point.
struct DistributionReport {
  std::vector<NodeFlow> flows;    ///< indexed by NodeId
  double utility_draw_w = 0.0;    ///< input at the root
  double critical_power_w = 0.0;  ///< total load under UPS-protected paths
  double mechanical_power_w = 0.0;  ///< cooling & friends (non-critical)
  double total_loss_w = 0.0;
  std::vector<NodeId> overloaded;  ///< nodes whose capacity was exceeded
  /// Power usage effectiveness: utility draw / critical power (paper §2.2:
  /// "most data centers have PUE close to 2"). 0 when no critical load.
  double pue = 0.0;
};

class PowerDistributionTree {
 public:
  /// Creates the root (utility feed). Additional nodes attach via add_node.
  explicit PowerDistributionTree(NodeSpec root);

  /// Adds a node under `parent`. Children must be added after their parent.
  NodeId add_node(NodeId parent, NodeSpec spec);

  std::size_t node_count() const { return specs_.size(); }
  const NodeSpec& spec(NodeId id) const;
  NodeId parent(NodeId id) const;
  NodeId root() const { return 0; }
  /// All node ids of a given kind, in insertion order.
  std::vector<NodeId> nodes_of_kind(NodeKind kind) const;

  /// Sets the load attached directly to a node (e.g. servers on a rack,
  /// chiller load on the mechanical node). Persists across evaluations.
  void set_direct_load(NodeId id, double load_w);
  double direct_load(NodeId id) const;

  /// Propagates loads up the tree and computes all flows. Does not throw on
  /// overload; the report flags overloaded nodes so policies can react.
  DistributionReport evaluate() const;

 private:
  std::vector<NodeSpec> specs_;
  std::vector<NodeId> parents_;
  std::vector<double> direct_loads_;
};

/// Parameters for the canonical tier-2 topology used across experiments.
struct Tier2TopologyConfig {
  double critical_capacity_w = 1.0e6;  ///< UPS capacity ("defines the DC")
  std::size_t pdu_count = 4;
  std::size_t racks_per_pdu = 10;
  double ups_loss_fraction = 0.08;       ///< double-conversion UPS
  double ups_fixed_loss_w = 5.0e3;
  double transformer_loss_fraction = 0.02;
  double pdu_loss_fraction = 0.03;
  double rack_capacity_w = 30.0e3;
  double mechanical_capacity_w = 1.2e6;  ///< chiller/CRAC feed
};

/// Builds grid -> transformer -> { UPS -> PDUs -> racks, mechanical }.
/// Rack ids are returned in `rack_ids`, the mechanical node in
/// `mechanical_id`, for load attachment.
struct Tier2Topology {
  PowerDistributionTree tree;
  std::vector<NodeId> rack_ids;
  NodeId mechanical_id;
  NodeId ups_id;
};

Tier2Topology build_tier2_topology(const Tier2TopologyConfig& config);

}  // namespace epm::power
