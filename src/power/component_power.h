// Component-level sleep states beyond the CPU (paper §4.3):
//
//   "Banks of memory can be turned off when not being used [17]. Large
//    sections of storage can be turned off under appropriate file system
//    and caching scheme."
//
// Memory: banks power down when the resident working set does not need
// them. Disk: spindles spin down after an idle timeout; the model carries
// the classic break-even analysis (spin-down pays only when the idle gap
// outlasts the spin-up energy divided by the power saved) and closed-form
// expected power under exponential idle gaps, which the tests check against
// Monte Carlo and against the 2x-competitive ski-rental bound.
#pragma once

#include <cstddef>

#include "core/rng.h"

namespace epm::power {

// ---- memory banks ------------------------------------------------------

struct MemoryConfig {
  std::size_t banks = 8;
  double bank_gb = 8.0;
  double per_bank_active_w = 3.0;
  double per_bank_asleep_w = 0.3;
};

class MemoryPowerModel {
 public:
  explicit MemoryPowerModel(MemoryConfig config);

  const MemoryConfig& config() const { return config_; }
  double total_gb() const;

  /// Banks that must stay powered to hold `working_set_gb`.
  std::size_t banks_for_working_set(double working_set_gb) const;
  /// Power with `active_banks` powered and the rest asleep.
  double power_w(std::size_t active_banks) const;
  /// Convenience: power when sized exactly for a working set.
  double power_for_working_set_w(double working_set_gb) const;

 private:
  MemoryConfig config_;
};

// ---- disk spindles -----------------------------------------------------

struct DiskConfig {
  std::size_t spindles = 4;
  double spinning_w = 8.0;   ///< per spindle, spinning (idle or serving)
  double standby_w = 0.8;    ///< per spindle, spun down
  double spinup_energy_j = 60.0;
  double spinup_latency_s = 6.0;
};

class DiskPowerModel {
 public:
  explicit DiskPowerModel(DiskConfig config);

  const DiskConfig& config() const { return config_; }

  /// The break-even idle gap: spinning down pays only for gaps longer than
  /// spinup_energy / (spinning - standby).
  double breakeven_idle_s() const;

  /// Energy of one spindle over an idle gap of `gap_s` under a spin-down
  /// policy with the given timeout (timeout >= gap means it never spun
  /// down). Includes the spin-up energy at the end of the gap if it did.
  double gap_energy_j(double gap_s, double timeout_s) const;
  /// Energy of the always-spinning baseline over the same gap.
  double gap_energy_spinning_j(double gap_s) const;

  /// Expected per-spindle *idle-time* power under exponentially distributed
  /// idle gaps with mean `mean_gap_s`, for a timeout policy. Closed form:
  ///   E[energy per gap] = P_spin E[min(g,T)] + P_stby E[(g-T)+]
  ///                       + E_up P(g>T)
  /// divided by the mean gap length.
  double expected_idle_power_w(double mean_gap_s, double timeout_s) const;

  /// The classical ski-rental choice: timeout = break-even gap is at most
  /// 2x worse than the clairvoyant optimum on *any* gap distribution.
  double competitive_timeout_s() const { return breakeven_idle_s(); }

  /// Monte Carlo cross-check of expected_idle_power_w (used by tests and
  /// the bench's sanity line).
  double simulate_idle_power_w(double mean_gap_s, double timeout_s,
                               std::size_t gaps, Rng& rng) const;

 private:
  DiskConfig config_;
};

}  // namespace epm::power
