// Chip-multiprocessor power with core parking and heterogeneous cores
// (paper §4.1, §4.3).
//
//   "Chip Multi-Processing (CMP) technology (multi-core) has a great impact
//    in the power management in CPUs... Heterogeneous CMPs has further
//    potentials to selectively use cores with different power and
//    performance trade-offs to meet workload variation."
//   "Core parking is a technique to selectively turn off cores to reduce
//    CPU power consumption."
//
// The model splits package power into an uncore floor (shared caches,
// memory controller, interconnect — paid while the package is on) plus
// per-core idle/busy power for unparked cores. Parked cores are power-gated
// to near zero. A core class has a capacity weight, so big.LITTLE-style
// heterogeneous packages are the same model with two classes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace epm::power {

/// One class of cores on the package.
struct CoreClass {
  std::string name = "core";
  std::size_t count = 8;
  /// Throughput contribution of one core, relative to a reference core
  /// (big cores > 1, little cores < 1).
  double capacity_weight = 1.0;
  double idle_power_w = 6.0;    ///< unparked, no work
  double busy_power_w = 22.0;   ///< at full utilization
  double parked_power_w = 0.5;  ///< power-gated
};

struct CmpConfig {
  double uncore_power_w = 60.0;  ///< shared structures; paid while on
  std::vector<CoreClass> classes{CoreClass{}};
};

/// A chosen set of unparked cores, per class.
using ActiveCores = std::vector<std::size_t>;

class CmpPowerModel {
 public:
  explicit CmpPowerModel(CmpConfig config);

  const CmpConfig& config() const { return config_; }
  std::size_t class_count() const { return config_.classes.size(); }
  std::size_t total_cores() const;
  /// Sum of capacity weights with every core unparked.
  double max_capacity() const { return max_capacity_; }

  /// Capacity (sum of weights) of an active-core selection.
  double capacity(const ActiveCores& active) const;
  /// Package power with the given selection at `utilization` of the
  /// *unparked* capacity (work spreads evenly over unparked cores).
  double power_w(const ActiveCores& active, double utilization) const;

  /// Minimum-power selection whose capacity covers `required_capacity`
  /// (in capacity-weight units) at the utilization that results from
  /// serving exactly that much work. Exhaustive over per-class counts —
  /// class counts are small. Throws if the requirement exceeds
  /// max_capacity().
  ActiveCores optimal_active_cores(double required_capacity) const;

  /// Convenience: every core unparked.
  ActiveCores all_cores() const;

 private:
  CmpConfig config_;
  double max_capacity_ = 0.0;
};

/// Utilization-driven core-parking policy with hysteresis: unpark when the
/// unparked cores run hot, park when they idle, mirroring the OS "core
/// parking" feature the paper cites.
struct CoreParkingPolicyConfig {
  double unpark_utilization = 0.85;
  double park_utilization = 0.45;
  std::size_t min_cores = 1;
};

class CoreParkingPolicy {
 public:
  CoreParkingPolicy(const CmpPowerModel& model, CoreParkingPolicyConfig config = {});

  /// Observe one interval's utilization (of currently unparked capacity);
  /// returns the selection for the next interval. Steps one core at a time,
  /// unparking the most efficient class first and parking the least.
  const ActiveCores& decide(double utilization);
  const ActiveCores& current() const { return active_; }

 private:
  const CmpPowerModel* model_;
  CoreParkingPolicyConfig config_;
  ActiveCores active_;
};

}  // namespace epm::power
