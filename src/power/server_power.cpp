#include "power/server_power.h"

#include <cmath>

#include "core/require.h"

namespace epm::power {

ServerPowerModel::ServerPowerModel(ServerPowerConfig config) : config_(config) {
  require(config_.peak_power_w > 0.0, "ServerPowerModel: peak power must be positive");
  require(config_.idle_fraction >= 0.0 && config_.idle_fraction < 1.0,
          "ServerPowerModel: idle_fraction outside [0,1)");
  require(config_.sleep_power_w >= 0.0 && config_.off_power_w >= 0.0,
          "ServerPowerModel: negative sleep/off power");
  require(config_.max_frequency_hz > 0.0 &&
              config_.min_frequency_hz > 0.0 &&
              config_.min_frequency_hz <= config_.max_frequency_hz,
          "ServerPowerModel: invalid frequency range");
  require(config_.pstate_count >= 1, "ServerPowerModel: need at least one P-state");
  require(config_.dvfs_exponent >= 1.0, "ServerPowerModel: dvfs_exponent < 1");
  require(config_.boot_time_s >= 0.0 && config_.boot_power_w >= 0.0 &&
              config_.wake_from_sleep_s >= 0.0,
          "ServerPowerModel: invalid boot parameters");
  require(config_.reference_capacity_rps > 0.0,
          "ServerPowerModel: reference capacity must be positive");

  const double idle_w = config_.peak_power_w * config_.idle_fraction;
  const double dyn_w = config_.peak_power_w - idle_w;
  pstates_.reserve(config_.pstate_count);
  for (std::size_t i = 0; i < config_.pstate_count; ++i) {
    // Index 0 is the fastest state (P0), matching ACPI convention.
    const double frac =
        config_.pstate_count == 1
            ? 1.0
            : 1.0 - static_cast<double>(i) / static_cast<double>(config_.pstate_count - 1);
    const double f = config_.min_frequency_hz +
                     (config_.max_frequency_hz - config_.min_frequency_hz) * frac;
    const double rel = f / config_.max_frequency_hz;
    pstates_.push_back(PState{
        "P" + std::to_string(i), f,
        idle_w + dyn_w * std::pow(rel, config_.dvfs_exponent)});
  }
}

double ServerPowerModel::active_power_w(std::size_t pstate, double utilization,
                                        double duty) const {
  require(pstate < pstates_.size(), "ServerPowerModel: P-state out of range");
  require(utilization >= 0.0 && utilization <= 1.0,
          "ServerPowerModel: utilization outside [0,1]");
  require(duty > 0.0 && duty <= 1.0, "ServerPowerModel: duty outside (0,1]");
  const double idle_w = idle_power_w();
  // Throttling scales the dynamic headroom with the duty cycle: during
  // STPCLK intervals the core draws roughly idle power.
  const double busy_w = idle_w + (pstates_[pstate].busy_power_w - idle_w) * duty;
  return idle_w + (busy_w - idle_w) * utilization;
}

double ServerPowerModel::busy_power_w(std::size_t pstate) const {
  require(pstate < pstates_.size(), "ServerPowerModel: P-state out of range");
  return pstates_[pstate].busy_power_w;
}

double ServerPowerModel::capacity_rps(std::size_t pstate, double duty) const {
  return config_.reference_capacity_rps * relative_capacity(pstate, duty);
}

double ServerPowerModel::relative_capacity(std::size_t pstate, double duty) const {
  require(pstate < pstates_.size(), "ServerPowerModel: P-state out of range");
  require(duty > 0.0 && duty <= 1.0, "ServerPowerModel: duty outside (0,1]");
  return (pstates_[pstate].frequency_hz / config_.max_frequency_hz) * duty;
}

std::size_t ServerPowerModel::lowest_pstate_with_capacity(double required_fraction) const {
  require(required_fraction >= 0.0, "ServerPowerModel: negative required capacity");
  // P-states are ordered fastest-first, so capacity decreases with the
  // index; the first satisfying state found from the slow end is the answer.
  for (std::size_t i = pstates_.size(); i-- > 0;) {
    if (relative_capacity(i) + 1e-12 >= required_fraction) return i;
  }
  return 0;  // even P0 cannot cover it; caller must add servers
}

}  // namespace epm::power
