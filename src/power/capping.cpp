#include "power/capping.h"

#include <algorithm>
#include <numeric>

#include "core/require.h"

namespace epm::power {

CapDecision plan_caps(const std::vector<double>& draws_w, double idle_floor_w,
                      double budget_w) {
  require(idle_floor_w >= 0.0, "plan_caps: negative idle floor");
  require(budget_w >= 0.0, "plan_caps: negative budget");
  for (double d : draws_w) {
    require(d >= idle_floor_w, "plan_caps: draw below idle floor");
  }

  CapDecision decision;
  decision.caps_w = draws_w;
  const double total = std::accumulate(draws_w.begin(), draws_w.end(), 0.0);
  if (total <= budget_w || draws_w.empty()) return decision;

  decision.capped = true;
  const double n = static_cast<double>(draws_w.size());
  const double idle_total = idle_floor_w * n;
  const double dynamic_total = total - idle_total;
  if (budget_w <= idle_total || dynamic_total <= 0.0) {
    // Even all-idle busts the budget: clamp to idle and flag infeasibility.
    std::fill(decision.caps_w.begin(), decision.caps_w.end(), idle_floor_w);
    decision.infeasible = budget_w < idle_total;
    decision.shed_w = total - idle_total;
    return decision;
  }
  const double scale = (budget_w - idle_total) / dynamic_total;
  for (std::size_t i = 0; i < draws_w.size(); ++i) {
    decision.caps_w[i] = idle_floor_w + (draws_w[i] - idle_floor_w) * scale;
  }
  decision.shed_w = total - budget_w;
  return decision;
}

ThrottleSetting throttle_for_cap(const ServerPowerModel& model, double utilization,
                                 double cap_w) {
  require(utilization >= 0.0 && utilization <= 1.0,
          "throttle_for_cap: utilization outside [0,1]");
  require(cap_w >= 0.0, "throttle_for_cap: negative cap");

  // Prefer the fastest plain P-state that fits (no duty throttling).
  for (std::size_t p = 0; p < model.pstate_count(); ++p) {
    if (model.active_power_w(p, utilization) <= cap_w) {
      return ThrottleSetting{p, 1.0, model.relative_capacity(p)};
    }
  }
  // No P-state fits: T-state throttle the slowest one. Power is linear in
  // duty at fixed utilization, so solve directly.
  const std::size_t slowest = model.pstate_count() - 1;
  const double idle_w = model.idle_power_w();
  const double full = model.active_power_w(slowest, utilization, 1.0);
  if (full <= idle_w || utilization <= 0.0) {
    return ThrottleSetting{slowest, 1.0, model.relative_capacity(slowest)};
  }
  // active(duty) = idle + (busy(slowest)-idle)*duty*utilization.
  const double span = (model.busy_power_w(slowest) - idle_w) * utilization;
  double duty = span > 0.0 ? (cap_w - idle_w) / span : 1.0;
  duty = std::clamp(duty, 0.05, 1.0);  // keep a minimum duty so work drains
  return ThrottleSetting{slowest, duty, model.relative_capacity(slowest, duty)};
}

}  // namespace epm::power
