#include "power/ups.h"

#include <algorithm>
#include <limits>

#include "core/require.h"

namespace epm::power {

UpsBattery::UpsBattery(UpsBatteryConfig config)
    : config_(config), stored_j_(config.energy_capacity_j * config.initial_soc) {
  require(config_.energy_capacity_j > 0.0, "UpsBattery: capacity must be positive");
  require(config_.max_discharge_w > 0.0, "UpsBattery: discharge limit must be positive");
  require(config_.max_charge_w > 0.0, "UpsBattery: charge limit must be positive");
  require(config_.charge_efficiency > 0.0 && config_.charge_efficiency <= 1.0,
          "UpsBattery: charge efficiency outside (0,1]");
  require(config_.initial_soc >= 0.0 && config_.initial_soc <= 1.0,
          "UpsBattery: initial SoC outside [0,1]");
}

double UpsBattery::discharge(double load_w, double dt_s) {
  require(load_w >= 0.0, "UpsBattery: negative load");
  require(dt_s >= 0.0, "UpsBattery: negative interval");
  const double rate = std::min(load_w, config_.max_discharge_w);
  const double delivered = std::min(rate * dt_s, stored_j_);
  stored_j_ -= delivered;
  return delivered;
}

double UpsBattery::charge(double supply_w, double dt_s) {
  require(supply_w >= 0.0, "UpsBattery: negative supply");
  require(dt_s >= 0.0, "UpsBattery: negative interval");
  const double rate = std::min(supply_w, config_.max_charge_w);
  const double headroom_j = config_.energy_capacity_j - stored_j_;
  const double stored = std::min(rate * dt_s * config_.charge_efficiency, headroom_j);
  stored_j_ += stored;
  return stored / config_.charge_efficiency;
}

double UpsBattery::ride_through_s(double load_w) const {
  require(load_w >= 0.0, "UpsBattery: negative load");
  if (load_w == 0.0) return std::numeric_limits<double>::infinity();
  if (load_w > config_.max_discharge_w) return 0.0;
  return stored_j_ / load_w;
}

}  // namespace epm::power
