#include "faults/control_chaos.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "core/require.h"
#include "core/rng.h"
#include "faults/fault_domain.h"
#include "faults/fault_plan.h"
#include "macro/control_plane/controller.h"
#include "macro/geo.h"
#include "sensing/actuator_plane.h"
#include "sensing/fencing.h"
#include "sim/sharded_simulator.h"
#include "sim/snapshot.h"

namespace epm::faults {
namespace {

constexpr std::uint64_t kDriveTag = 1;
constexpr std::uint64_t kHbTag = 2;
constexpr std::uint64_t kCmdTag = 3;
constexpr std::uint64_t kJrnTag = 4;
constexpr std::uint64_t kCtlFaultTag = 5;
constexpr std::uint32_t kControlMagic = 0x776c7463;  // "ctlw"
constexpr std::uint32_t kControlVersion = 1;

/// Controller fault edges delivered into the world clock.
enum class CtlFaultAction : std::uint64_t {
  kCrash = 0,
  kRestart,
  kHang,
  kResume,
};

/// Deterministic uniform draw for (seed, dc, counter); same closed form as
/// the chaos fleet so streams never depend on sharding or threading.
double u01(std::uint64_t seed, std::uint64_t d, std::uint64_t ctr) {
  const std::uint64_t z =
      SplitMix64::mix(seed + 0x9e3779b97f4a7c15ULL * (d * 1000003ULL + ctr + 1));
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

void validate(const ControlChaosConfig& c) {
  require(c.dcs >= 1, "control chaos: need at least one datacenter");
  require(c.shards == 0 ||
              (c.shards <= c.dcs && c.dcs % c.shards == 0),
          "control chaos: shards must divide dcs");
  require(c.epoch_s > 0.0, "control chaos: epoch_s must be positive");
  require(c.lookahead_s > 0.0, "control chaos: lookahead_s must be positive");
  require(c.drive_until_s > 0.0 && c.drive_until_s <= c.horizon_s,
          "control chaos: need 0 < drive_until_s <= horizon_s");
  require(c.lease_ttl_s > 0.0, "control chaos: lease_ttl_s must be positive");
  require(c.servers_per_dc >= 1 && c.per_server_rps > 0.0,
          "control chaos: plant needs servers and a service rate");
  require(c.eco_cap > 0.0 && c.eco_cap <= 1.0 && c.eco_active_frac > 0.0 &&
              c.eco_active_frac <= 1.0,
          "control chaos: eco fractions must be in (0, 1]");
  require(c.demand_jitter >= 0.0 && c.demand_jitter < 1.0,
          "control chaos: demand_jitter must be in [0, 1)");
  require(c.end_window_s > 0.0 && c.end_window_s <= c.drive_until_s,
          "control chaos: end_window_s must be in (0, drive_until_s]");
}

std::size_t effective_shards(const ControlChaosConfig& c) {
  return c.shards == 0 ? c.dcs : c.shards;
}

sim::ShardedConfig make_sharded_config(const ControlChaosConfig& c) {
  sim::ShardedConfig sc;
  sc.shards = effective_shards(c);
  sc.threads = c.threads;
  sc.uniform_lookahead_s = c.lookahead_s;
  return sc;
}

/// The staged eco-mode transition: enter tightens cap, raises the CRAC
/// setpoint, and powers servers down per DC; exit reverses in the safe
/// order (capacity first). The exit sweep is rotated to start at DC 1 so
/// the reference leader kill lands while DC 0 is still unreached.
std::vector<macro::ProgramStep> make_program(const ControlChaosConfig& c) {
  std::vector<macro::ProgramStep> prog;
  const auto n = static_cast<std::uint32_t>(c.dcs);
  const double eco_servers = std::floor(
      static_cast<double>(c.servers_per_dc) * c.eco_active_frac);
  for (std::uint32_t dc = 0; dc < n; ++dc) {
    prog.push_back({c.eco_enter_s, dc, macro::ControlOp::kPowerCap, c.eco_cap});
    prog.push_back(
        {c.eco_enter_s, dc, macro::ControlOp::kCracSetpoint, c.eco_setpoint_c});
    prog.push_back(
        {c.eco_enter_s, dc, macro::ControlOp::kFleetActive, eco_servers});
  }
  for (std::uint32_t k = 0; k < n; ++k) {
    const std::uint32_t dc = (1 + k) % n;
    prog.push_back({c.eco_exit_s, dc, macro::ControlOp::kFleetActive,
                    static_cast<double>(c.servers_per_dc)});
    prog.push_back(
        {c.eco_exit_s, dc, macro::ControlOp::kCracSetpoint, c.safe_setpoint_c});
    prog.push_back({c.eco_exit_s, dc, macro::ControlOp::kPowerCap, 1.0});
  }
  return prog;
}

struct ScheduledCtlFault {
  std::size_t dc = 0;
  CtlFaultAction action = CtlFaultAction::kCrash;
  double at_s = 0.0;
};

/// Expands the controller FaultPlan text plus the grid script into crash /
/// hang / restart edges on replica clocks. Grid outages and ctl-kill events
/// kill the controllers co-located with their datacenters.
std::vector<ScheduledCtlFault> expand_controller_faults(
    const ControlChaosConfig& c) {
  std::vector<ScheduledCtlFault> out;
  const auto push = [&](std::size_t dc, CtlFaultAction a, double at) {
    if (at >= 0.0 && at < c.drive_until_s) out.push_back({dc, a, at});
  };
  if (!c.controller_faults.empty()) {
    const FaultPlan plan = FaultPlan::parse(c.controller_faults);
    plan.validate_targets(0, 0, c.dcs);
    for (const FaultEvent& e : plan.events()) {
      switch (e.type) {
        case FaultType::kControllerCrash:
        case FaultType::kControllerRestart:
          push(e.target, CtlFaultAction::kCrash, e.start_s);
          push(e.target, CtlFaultAction::kRestart, e.end_s());
          break;
        case FaultType::kControllerHang:
          push(e.target, CtlFaultAction::kHang, e.start_s);
          push(e.target, CtlFaultAction::kResume, e.end_s());
          break;
        default:
          throw std::invalid_argument(
              "control chaos: controller_faults may only contain ctl-crash / "
              "ctl-hang / ctl-restart entries, got '" +
              faults::to_string(e.type) + "'");
      }
    }
  }
  if (!c.grid_script.empty()) {
    std::vector<std::string> names;
    names.reserve(c.dcs);
    for (const macro::SiteConfig& s : macro::make_reference_fleet_sites(c.dcs)) {
      names.push_back(s.name);
    }
    const FaultDomainTree tree = make_reference_fault_domains(names);
    const DomainFaultPlan grid = DomainFaultPlan::parse(c.grid_script);
    DomainExpansionConfig expansion;
    expansion.seed = c.seed;
    for (const ExpandedDcFault& x :
         expand_to_datacenters(tree, grid, expansion)) {
      if (x.kind != GridEventKind::kOutage &&
          x.kind != GridEventKind::kControllerKill) {
        continue;  // price/brownout signals have no control-plane shadow here
      }
      push(x.dc, CtlFaultAction::kCrash, x.onset_s);
      push(x.dc, CtlFaultAction::kRestart, x.clear_s);
    }
  }
  return out;
}

sensing::ActuatorCommand to_actuator_command(const macro::ControlCommand& cmd) {
  sensing::ActuatorCommand ac;
  switch (cmd.op) {
    case macro::ControlOp::kPowerCap:
      ac.kind = sensing::CommandKind::kPowerCap;
      break;
    case macro::ControlOp::kCracSetpoint:
      ac.kind = sensing::CommandKind::kCracSupply;
      break;
    case macro::ControlOp::kFleetActive:
      ac.kind = sensing::CommandKind::kFleetSize;
      break;
    case macro::ControlOp::kPauseConsolidation:
      ac.kind = sensing::CommandKind::kConsolidation;
      break;
  }
  ac.target = cmd.dc;
  ac.value = cmd.value;
  return ac;
}

/// Snapshot-capable control-plane world: one TaggedKernel per shard, one
/// plant + actuator endpoint per DC, one controller replica per DC (or only
/// at DC 0 in the naive arm). All mutable state is plain data.
class ControlWorld {
 public:
  ControlWorld(const ControlChaosConfig& config, sim::ShardedSimulator& fed)
      : config_(config),
        fed_(fed),
        shards_(effective_shards(config)),
        dcs_per_shard_(config.dcs / effective_shards(config)),
        plants_(config.dcs),
        sent_per_shard_(effective_shards(config), 0) {
    const std::vector<macro::ProgramStep> program = make_program(config_);
    for (std::size_t d = 0; d < config_.dcs; ++d) {
      Plant& p = plants_[d];
      p.active_servers = static_cast<double>(config_.servers_per_dc);
      p.cap_frac = 1.0;
      p.setpoint_c = config_.safe_setpoint_c;
      endpoints_.push_back(std::make_unique<Endpoint>(config_, d));
      const bool hosted = config_.replicated || d == 0;
      if (hosted) {
        macro::ControllerConfig cc;
        cc.lease.replicas = config_.replicated ? config_.dcs : 1;
        cc.lease.id = config_.replicated ? d : 0;
        cc.lease.ttl_s = config_.lease_ttl_s;
        cc.lease.ttl_stagger_s = config_.lease_ttl_stagger_s;
        cc.lease.initial_leader = 0;
        cc.datacenters = config_.dcs;
        cc.max_steps_per_tick = config_.max_steps_per_tick;
        replicas_.push_back(
            std::make_unique<macro::ControllerReplica>(cc, program));
      } else {
        replicas_.push_back(nullptr);
      }
    }
    for (std::size_t s = 0; s < shards_; ++s) {
      kernels_.push_back(std::make_unique<sim::TaggedKernel>(fed_.shard(s)));
      sim::TaggedKernel& tk = *kernels_.back();
      tk.on(kDriveTag, [this](double now, const sim::TagPayload& p) {
        drive(static_cast<std::size_t>(p[0]), now);
      });
      tk.on(kHbTag, [this](double now, const sim::TagPayload& p) {
        on_heartbeat(static_cast<std::size_t>(p[0]), p[1], p[2], now);
      });
      tk.on(kCmdTag, [this](double now, const sim::TagPayload& p) {
        on_command(static_cast<std::size_t>(p[0]), p, now);
      });
      tk.on(kJrnTag, [this](double, const sim::TagPayload& p) {
        on_journal(static_cast<std::size_t>(p[0]), p);
      });
      tk.on(kCtlFaultTag, [this](double now, const sim::TagPayload& p) {
        on_ctl_fault(static_cast<std::size_t>(p[0]),
                     static_cast<CtlFaultAction>(p[1]), now);
      });
    }
    fed_.set_tagged_delivery(
        [this](std::size_t dst, double when_s, std::uint64_t tag,
               const std::vector<std::uint64_t>& payload) {
          kernels_[dst]->schedule_tagged_at(when_s, tag, payload);
        });
  }

  /// Fresh-run arming: first drive tick per DC plus every scheduled
  /// controller fault edge. NOT called on the restore path.
  void arm() {
    for (std::size_t d = 0; d < config_.dcs; ++d) {
      kernels_[shard_of(d)]->schedule_tagged_at(
          0.0, kDriveTag, {static_cast<std::uint64_t>(d)});
    }
    for (const ScheduledCtlFault& f : expand_controller_faults(config_)) {
      kernels_[shard_of(f.dc)]->schedule_tagged_at(
          f.at_s, kCtlFaultTag,
          {static_cast<std::uint64_t>(f.dc),
           static_cast<std::uint64_t>(f.action)});
    }
  }

  void save(sim::SnapshotWriter& w) const {
    w.begin_section(kControlMagic, kControlVersion);
    w.write_u64(config_.dcs);
    w.write_u64(shards_);
    for (const std::uint64_t n : sent_per_shard_) w.write_u64(n);
    for (const Plant& p : plants_) {
      w.write_f64(p.active_servers);
      w.write_f64(p.cap_frac);
      w.write_f64(p.setpoint_c);
      w.write_u8(p.paused ? 1 : 0);
      w.write_u64(p.rng_ctr);
      w.write_u64(p.epochs);
      w.write_f64(p.demand_total);
      w.write_f64(p.served_total);
      w.write_u64(p.sla_violation_epochs);
      w.write_u64(p.thermal_alarm_epochs);
      w.write_f64(p.max_temp_c);
      w.write_f64(p.prefault_demand);
      w.write_f64(p.prefault_served);
      w.write_f64(p.end_demand);
      w.write_f64(p.end_served);
    }
    for (const auto& e : endpoints_) {
      w.write_u64(e->hb_token_floor);
      w.write_u64(e->heartbeats_seen);
      e->ledger.save(w);
      e->deadman.save(w);
      e->plane.save(w);
    }
    for (const auto& r : replicas_) {
      w.write_u8(r != nullptr ? 1 : 0);
      if (r != nullptr) r->save(w);
    }
    for (std::size_t s = 0; s < shards_; ++s) kernels_[s]->save(w);
    fed_.save_state(w);
  }

  void restore(sim::SnapshotReader& r) {
    r.expect_section(kControlMagic, kControlVersion);
    require(r.read_u64() == config_.dcs,
            "control snapshot datacenter count does not match the config");
    require(r.read_u64() == shards_,
            "control snapshot shard count does not match the config");
    for (std::uint64_t& n : sent_per_shard_) n = r.read_u64();
    for (Plant& p : plants_) {
      p.active_servers = r.read_f64();
      p.cap_frac = r.read_f64();
      p.setpoint_c = r.read_f64();
      p.paused = r.read_u8() != 0;
      p.rng_ctr = r.read_u64();
      p.epochs = r.read_u64();
      p.demand_total = r.read_f64();
      p.served_total = r.read_f64();
      p.sla_violation_epochs = r.read_u64();
      p.thermal_alarm_epochs = r.read_u64();
      p.max_temp_c = r.read_f64();
      p.prefault_demand = r.read_f64();
      p.prefault_served = r.read_f64();
      p.end_demand = r.read_f64();
      p.end_served = r.read_f64();
    }
    for (auto& e : endpoints_) {
      e->hb_token_floor = r.read_u64();
      e->heartbeats_seen = r.read_u64();
      e->ledger.restore(r);
      e->deadman.restore(r);
      e->plane.restore(r);
    }
    for (auto& rep : replicas_) {
      const bool hosted = r.read_u8() != 0;
      require(hosted == (rep != nullptr),
              "control snapshot replica layout does not match the config");
      if (rep != nullptr) rep->restore(r);
    }
    for (std::size_t s = 0; s < shards_; ++s) kernels_[s]->restore(r);
    fed_.restore_state(r);
  }

  ControlChaosOutcome finish() const {
    ControlChaosOutcome out;
    out.dcs.resize(config_.dcs);
    out.replicas.resize(config_.dcs);
    double prefault_demand = 0.0, prefault_served = 0.0;
    double end_demand = 0.0, end_served = 0.0;
    for (std::size_t d = 0; d < config_.dcs; ++d) {
      const Plant& p = plants_[d];
      const Endpoint& e = *endpoints_[d];
      ControlDcOutcome& o = out.dcs[d];
      o.epochs = p.epochs;
      o.demand_total = p.demand_total;
      o.served_total = p.served_total;
      o.sla_violation_epochs = p.sla_violation_epochs;
      o.thermal_alarm_epochs = p.thermal_alarm_epochs;
      o.max_temp_c = p.max_temp_c;
      o.prefault_demand = p.prefault_demand;
      o.prefault_served = p.prefault_served;
      o.end_demand = p.end_demand;
      o.end_served = p.end_served;
      o.commands_applied = e.ledger.applied();
      o.fencing_rejections = e.plane.fencing_rejections();
      o.stale_rejected = e.ledger.rejected_stale();
      o.double_actuations = e.ledger.double_actuations();
      o.stale_applied = e.ledger.stale_applied();
      o.safe_state_trips = e.deadman.trips();
      o.heartbeats_seen = e.heartbeats_seen;
      out.max_token = std::max(out.max_token, e.ledger.max_token());
      out.total_sla_violations += o.sla_violation_epochs;
      out.total_alarms += o.thermal_alarm_epochs;
      prefault_demand += p.prefault_demand;
      prefault_served += p.prefault_served;
      end_demand += p.end_demand;
      end_served += p.end_served;

      ControlReplicaOutcome& ro = out.replicas[d];
      if (replicas_[d] != nullptr) {
        const macro::ControllerReplica& rep = *replicas_[d];
        ro.hosted = true;
        ro.claims = rep.lease().claimed_tokens().size();
        ro.depositions = rep.lease().depositions();
        ro.crashes = rep.lease().crashes();
        ro.stale_heartbeats = rep.lease().stale_heartbeats();
        ro.commands_issued = rep.commands_issued();
        ro.commands_replayed = rep.commands_replayed();
        ro.journal_entries = rep.journal().size();
        ro.journal_rejected_stale = rep.journal().rejected_stale();
        ro.final_max_token = rep.lease().max_token_seen();
        ro.claimed_tokens = rep.lease().claimed_tokens();
      }
    }
    out.final_now_s = fed_.now();
    out.final_pending = fed_.pending();
    for (const std::uint64_t n : sent_per_shard_) out.control_messages += n;
    out.fleet_prefault_frac =
        prefault_demand > 0.0 ? prefault_served / prefault_demand : 0.0;
    out.fleet_end_frac = end_demand > 0.0 ? end_served / end_demand : 0.0;

    // At most one live lease per epoch: every claimed token is globally
    // unique and congruent to its claimant mod the replica count.
    const std::uint64_t replicas =
        config_.replicated ? static_cast<std::uint64_t>(config_.dcs) : 1;
    std::set<std::uint64_t> seen_tokens;
    out.lease_unique_ok = true;
    for (std::size_t d = 0; d < config_.dcs; ++d) {
      const ControlReplicaOutcome& ro = out.replicas[d];
      const std::uint64_t id = config_.replicated ? d : 0;
      for (const std::uint64_t t : ro.claimed_tokens) {
        if (!seen_tokens.insert(t).second || t % replicas != id) {
          out.lease_unique_ok = false;
        }
      }
    }
    out.fencing_clean = true;
    for (const auto& e : endpoints_) {
      if (e->ledger.double_actuations() != 0) out.fencing_clean = false;
      if (e->ledger.enforced() && e->ledger.stale_applied() != 0) {
        out.fencing_clean = false;
      }
    }
    bool fractions_ok = true;
    for (const ControlDcOutcome& o : out.dcs) {
      if (o.served_total > o.demand_total + 1e-9) fractions_ok = false;
    }
    out.conservation_ok = fractions_ok && out.final_pending == 0 &&
                          fed_.messages_parked() == 0;
    std::ostringstream os;
    os << "prefault_frac=" << out.fleet_prefault_frac
       << " end_frac=" << out.fleet_end_frac
       << " sla_violations=" << out.total_sla_violations
       << " alarms=" << out.total_alarms << " max_token=" << out.max_token
       << " msgs=" << out.control_messages
       << (out.fencing_clean ? " [fencing-clean]" : " [DOUBLE-ACTUATED]")
       << (out.lease_unique_ok ? " [lease-unique]" : " [LEASE-DUP]")
       << (out.conservation_ok ? " [conserved]" : " [NOT conserved]");
    out.report = os.str();
    return out;
  }

 private:
  struct Plant {
    double active_servers = 0.0;
    double cap_frac = 1.0;
    double setpoint_c = 22.0;
    bool paused = false;
    std::uint64_t rng_ctr = 0;
    std::uint64_t epochs = 0;
    double demand_total = 0.0;
    double served_total = 0.0;
    std::uint64_t sla_violation_epochs = 0;
    std::uint64_t thermal_alarm_epochs = 0;
    double max_temp_c = 0.0;
    double prefault_demand = 0.0;
    double prefault_served = 0.0;
    double end_demand = 0.0;
    double end_served = 0.0;
  };

  /// Actuator-side state at one DC: the fenced plane, the ledger, and the
  /// dead-man watchdog. The plane's applier writes the owning world's plant
  /// (wired by the world after construction via set_applier).
  struct Endpoint {
    Endpoint(const ControlChaosConfig& c, std::size_t dc)
        : ledger(c.fencing),
          deadman(c.deadman ? c.deadman_ttl_s : 0.0),
          plane(sensing::ActuatorPlaneConfig{}) {
      (void)dc;
      plane.set_fencing(&ledger);
    }
    sensing::FencingLedger ledger;
    sensing::DeadMansSwitch deadman;
    sensing::ActuatorPlane plane;
    std::uint64_t hb_token_floor = 0;
    std::uint64_t heartbeats_seen = 0;
  };

  std::size_t shard_of(std::size_t dc) const { return dc / dcs_per_shard_; }

  /// Routes one control message with the per-source delay stagger: arrivals
  /// from different source DCs can never tie at one timestamp, so handler
  /// order — and therefore the whole world — is shard-mapping invariant.
  /// Same-shard sends go through the destination kernel directly because
  /// federation loopback would deliver immediately instead of after the
  /// delay. The send counter is per source shard: during a window only the
  /// owning shard's worker touches its slot.
  void route(std::size_t src_dc, std::size_t dst_dc, double now_s,
             std::uint64_t tag, sim::TagPayload payload) {
    ++sent_per_shard_[shard_of(src_dc)];
    const double delay =
        config_.lookahead_s *
        (1.0 + static_cast<double>(src_dc + 1) * 0x1.0p-20);
    const std::size_t ss = shard_of(src_dc);
    const std::size_t ds = shard_of(dst_dc);
    if (ss == ds) {
      kernels_[ds]->schedule_tagged_at(now_s + delay, tag, std::move(payload));
    } else {
      fed_.send_tagged(ss, ds, delay, tag, std::move(payload));
    }
  }

  void apply_to_plant(std::size_t d, const sensing::ActuatorCommand& c) {
    Plant& p = plants_[d];
    switch (c.kind) {
      case sensing::CommandKind::kPowerCap:
        p.cap_frac = std::clamp(c.value, 0.0, 1.0);
        break;
      case sensing::CommandKind::kCracSupply:
        p.setpoint_c = c.value;
        break;
      case sensing::CommandKind::kFleetSize:
        p.active_servers = std::clamp(
            c.value, 0.0, static_cast<double>(config_.servers_per_dc));
        break;
      case sensing::CommandKind::kConsolidation:
        p.paused = c.value != 0.0;
        break;
      default:
        break;
    }
  }

  /// The dead-man's safe state: caps released, CRAC to the safe setpoint,
  /// every server on, consolidation paused — uncontrolled but safe.
  void apply_safe_state(std::size_t d) {
    Plant& p = plants_[d];
    p.cap_frac = 1.0;
    p.setpoint_c = config_.safe_setpoint_c;
    p.active_servers = static_cast<double>(config_.servers_per_dc);
    p.paused = true;
  }

  void drive(std::size_t d, double now) {
    // Replica control tick first (messages leave; nothing lands before the
    // lookahead), then the local watchdog, then plant accounting.
    if (replicas_[d] != nullptr) {
      for (const macro::Outbound& msg : replicas_[d]->tick(now)) {
        switch (msg.kind) {
          case macro::OutboundKind::kHeartbeat:
            route(d, msg.dst, now, kHbTag,
                  {msg.dst, msg.token, msg.from});
            break;
          case macro::OutboundKind::kCommand: {
            sim::TagPayload p{msg.dst};
            const sim::TagPayload body = macro::encode_command(msg.cmd);
            p.insert(p.end(), body.begin(), body.end());
            route(d, msg.dst, now, kCmdTag, std::move(p));
            break;
          }
          case macro::OutboundKind::kJournalRecord: {
            sim::TagPayload p{msg.dst};
            const sim::TagPayload body = macro::encode_command(msg.cmd);
            p.insert(p.end(), body.begin(), body.end());
            route(d, msg.dst, now, kJrnTag, std::move(p));
            break;
          }
        }
      }
    }

    Endpoint& e = *endpoints_[d];
    if (e.deadman.expired(now)) apply_safe_state(d);
    e.plane.tick(now);

    Plant& p = plants_[d];
    ++p.epochs;
    const double u = u01(config_.seed, d, p.rng_ctr++);
    const double base = now < config_.demand_rise_s ? config_.base_demand_rps
                                                    : config_.peak_demand_rps;
    const double demand =
        base * (1.0 - config_.demand_jitter + 2.0 * config_.demand_jitter * u);
    const double capacity =
        p.active_servers * config_.per_server_rps * p.cap_frac;
    const double served = std::min(demand, capacity);
    const double util =
        capacity > 0.0 ? demand / capacity : config_.util_cap;
    const double temp =
        p.setpoint_c +
        config_.temp_util_gain_c * std::min(util, config_.util_cap);
    p.demand_total += demand;
    p.served_total += served;
    if (served < demand - 1e-9) ++p.sla_violation_epochs;
    if (temp > config_.alarm_temp_c) ++p.thermal_alarm_epochs;
    p.max_temp_c = std::max(p.max_temp_c, temp);
    if (now < config_.prefault_until_s) {
      p.prefault_demand += demand;
      p.prefault_served += served;
    }
    if (now >= config_.drive_until_s - config_.end_window_s) {
      p.end_demand += demand;
      p.end_served += served;
    }
    const double next = now + config_.epoch_s;
    if (next < config_.drive_until_s) {
      kernels_[shard_of(d)]->schedule_tagged_at(
          next, kDriveTag, {static_cast<std::uint64_t>(d)});
    }
  }

  void on_heartbeat(std::size_t d, std::uint64_t token, std::uint64_t from,
                    double now) {
    Endpoint& e = *endpoints_[d];
    // Only a non-stale leader's heartbeat proves the control plane is
    // alive: a deposed split-brain survivor must not keep the watchdog fed.
    if (token >= e.hb_token_floor) {
      e.hb_token_floor = token;
      ++e.heartbeats_seen;
      e.deadman.feed(now);
    }
    if (replicas_[d] != nullptr) replicas_[d]->on_heartbeat(token, from, now);
  }

  void on_command(std::size_t d, const sim::TagPayload& p, double now) {
    require(p.size() == 8, "control command message must be 8 words");
    const macro::ControlCommand cmd =
        macro::decode_command(sim::TagPayload(p.begin() + 1, p.end()));
    Endpoint& e = *endpoints_[d];
    e.plane.issue_fenced(to_actuator_command(cmd), now, cmd.token, cmd.uid);
  }

  void on_journal(std::size_t d, const sim::TagPayload& p) {
    require(p.size() == 8, "journal record message must be 8 words");
    if (replicas_[d] == nullptr) return;
    replicas_[d]->on_journal_record(
        macro::decode_command(sim::TagPayload(p.begin() + 1, p.end())));
  }

  void on_ctl_fault(std::size_t d, CtlFaultAction action, double now) {
    if (replicas_[d] == nullptr) return;
    macro::ControllerReplica& rep = *replicas_[d];
    switch (action) {
      case CtlFaultAction::kCrash:
        if (rep.lease().role() != macro::LeaseRole::kCrashed) rep.crash();
        break;
      case CtlFaultAction::kRestart:
        if (rep.lease().role() == macro::LeaseRole::kCrashed) rep.restart(now);
        break;
      case CtlFaultAction::kHang:
        rep.hang();
        break;
      case CtlFaultAction::kResume:
        rep.resume();
        break;
    }
  }

  const ControlChaosConfig config_;
  sim::ShardedSimulator& fed_;
  std::size_t shards_;
  std::size_t dcs_per_shard_;
  std::vector<Plant> plants_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::vector<std::unique_ptr<macro::ControllerReplica>> replicas_;
  std::vector<std::unique_ptr<sim::TaggedKernel>> kernels_;
  /// World-level sends, one slot per source shard (window-race-free).
  std::vector<std::uint64_t> sent_per_shard_;

 public:
  /// Wires each endpoint's actuator plane into its plant. Separate from the
  /// constructor so `this` is fully formed.
  void wire_appliers() {
    for (std::size_t d = 0; d < config_.dcs; ++d) {
      endpoints_[d]->plane.set_applier(
          [this, d](const sensing::ActuatorCommand& c) {
            apply_to_plant(d, c);
            return true;
          });
    }
  }
};

ControlChaosOutcome run_world(const ControlChaosConfig& config,
                              const network::InterDcLinkPlan* plan) {
  validate(config);
  if (plan != nullptr) {
    require(effective_shards(config) == config.dcs,
            "control chaos: a link plan requires shards == dcs");
    require(plan->site_count() == config.dcs,
            "control chaos: link plan site count must equal dcs");
  }
  sim::ShardedSimulator fed(make_sharded_config(config));
  if (plan != nullptr) fed.set_link_plan(plan);
  ControlWorld world(config, fed);
  world.wire_appliers();
  world.arm();
  fed.run_until(config.horizon_s);
  return world.finish();
}

}  // namespace

bool control_outcomes_equal(const ControlChaosOutcome& a,
                            const ControlChaosOutcome& b) {
  if (a.dcs.size() != b.dcs.size() || a.replicas.size() != b.replicas.size()) {
    return false;
  }
  for (std::size_t d = 0; d < a.dcs.size(); ++d) {
    const ControlDcOutcome& x = a.dcs[d];
    const ControlDcOutcome& y = b.dcs[d];
    const bool same =
        x.epochs == y.epochs && x.demand_total == y.demand_total &&
        x.served_total == y.served_total &&
        x.sla_violation_epochs == y.sla_violation_epochs &&
        x.thermal_alarm_epochs == y.thermal_alarm_epochs &&
        x.max_temp_c == y.max_temp_c &&
        x.prefault_demand == y.prefault_demand &&
        x.prefault_served == y.prefault_served &&
        x.end_demand == y.end_demand && x.end_served == y.end_served &&
        x.commands_applied == y.commands_applied &&
        x.fencing_rejections == y.fencing_rejections &&
        x.stale_rejected == y.stale_rejected &&
        x.double_actuations == y.double_actuations &&
        x.stale_applied == y.stale_applied &&
        x.safe_state_trips == y.safe_state_trips &&
        x.heartbeats_seen == y.heartbeats_seen;
    if (!same) return false;
  }
  for (std::size_t d = 0; d < a.replicas.size(); ++d) {
    const ControlReplicaOutcome& x = a.replicas[d];
    const ControlReplicaOutcome& y = b.replicas[d];
    const bool same =
        x.hosted == y.hosted && x.claims == y.claims &&
        x.depositions == y.depositions && x.crashes == y.crashes &&
        x.stale_heartbeats == y.stale_heartbeats &&
        x.commands_issued == y.commands_issued &&
        x.commands_replayed == y.commands_replayed &&
        x.journal_entries == y.journal_entries &&
        x.journal_rejected_stale == y.journal_rejected_stale &&
        x.final_max_token == y.final_max_token &&
        x.claimed_tokens == y.claimed_tokens;
    if (!same) return false;
  }
  return a.final_now_s == b.final_now_s &&
         a.final_pending == b.final_pending &&
         a.control_messages == b.control_messages &&
         a.max_token == b.max_token &&
         a.lease_unique_ok == b.lease_unique_ok &&
         a.fencing_clean == b.fencing_clean &&
         a.fleet_prefault_frac == b.fleet_prefault_frac &&
         a.fleet_end_frac == b.fleet_end_frac &&
         a.total_sla_violations == b.total_sla_violations &&
         a.total_alarms == b.total_alarms &&
         a.conservation_ok == b.conservation_ok && a.report == b.report;
}

ControlChaosOutcome run_control_plane(const ControlChaosConfig& config,
                                      const network::InterDcLinkPlan* plan) {
  return run_world(config, plan);
}

ControlRestoreReport run_control_plane_with_restore(
    const ControlChaosConfig& config, double snapshot_at_s, double kill_at_s) {
  validate(config);
  require(snapshot_at_s > 0.0 && snapshot_at_s <= kill_at_s &&
              kill_at_s < config.horizon_s,
          "control restore drill requires 0 < snapshot_at <= kill_at < horizon");
  ControlRestoreReport rep;
  rep.uninterrupted = run_world(config, nullptr);

  std::vector<std::uint8_t> snapshot;
  {
    sim::ShardedSimulator fed(make_sharded_config(config));
    ControlWorld world(config, fed);
    world.wire_appliers();
    world.arm();
    fed.run_until(snapshot_at_s);
    sim::SnapshotWriter w;
    world.save(w);
    snapshot = w.take();
    fed.run_until(kill_at_s);
    // "Kill": world and federation destroyed at scope exit; everything
    // after the snapshot is discarded.
  }
  rep.snapshot_bytes = snapshot.size();

  {
    sim::ShardedSimulator fed(make_sharded_config(config));
    ControlWorld world(config, fed);
    world.wire_appliers();
    sim::SnapshotReader r(snapshot);
    world.restore(r);
    require(r.at_end(), "control snapshot has trailing bytes");
    fed.run_until(config.horizon_s);
    rep.restored = world.finish();
  }
  rep.identical = control_outcomes_equal(rep.uninterrupted, rep.restored);
  return rep;
}

ControlLeaderKillReport run_leader_kill_drill(std::size_t dcs,
                                              std::size_t threads,
                                              std::uint64_t seed,
                                              bool with_partition) {
  require(dcs >= 3, "leader-kill drill needs >= 3 datacenters (the kill must "
                    "land mid-transition)");
  ControlChaosConfig base;
  base.dcs = dcs;
  base.threads = threads;
  base.seed = seed;
  base.controller_faults = make_leader_kill_plan();

  ControlLeaderKillReport rep;
  network::InterDcLinkPlan plan(dcs);
  if (with_partition) {
    // Isolate DC 0 (every inbound direction) through the failover window;
    // the closed window redelivers the backlog after it ends.
    for (std::size_t r = 1; r < dcs; ++r) plan.partition(r, 0, 13.0, 20.0);
  }
  const network::InterDcLinkPlan* plan_ptr =
      with_partition ? &plan : nullptr;

  ControlChaosConfig defended = base;
  if (with_partition) defended.shards = dcs;
  rep.defended = run_control_plane(defended, plan_ptr);

  ControlChaosConfig naive = base;
  naive.replicated = false;
  naive.fencing = false;
  naive.deadman = false;
  if (with_partition) naive.shards = dcs;
  rep.naive = run_control_plane(naive, plan_ptr);

  const auto goodput_ok = [&rep](const ControlChaosOutcome& o) {
    return o.fleet_prefault_frac > 0.0 &&
           o.fleet_end_frac >= rep.goodput_threshold * o.fleet_prefault_frac;
  };
  rep.defended_clean = goodput_ok(rep.defended) &&
                       rep.defended.total_alarms == 0 &&
                       rep.defended.total_sla_violations == 0 &&
                       rep.defended.fencing_clean &&
                       rep.defended.lease_unique_ok &&
                       rep.defended.conservation_ok;
  rep.naive_violates =
      !goodput_ok(rep.naive) || rep.naive.total_alarms > 0;
  rep.gate_ok = rep.defended_clean && rep.naive_violates;
  return rep;
}

ControlSplitBrainReport run_split_brain_drill(std::size_t dcs,
                                              std::size_t threads,
                                              std::uint64_t seed) {
  require(dcs >= 2, "split-brain drill needs >= 2 datacenters");
  ControlChaosConfig config;
  config.dcs = dcs;
  config.threads = threads;
  config.seed = seed;
  config.controller_faults = make_split_brain_plan();

  ControlSplitBrainReport rep;
  rep.outcome = run_control_plane(config);
  // Stale-token rejections specifically, not replay-duplicate suppressions:
  // the woken leader's actuations must die on the token watermark.
  for (const ControlDcOutcome& dc : rep.outcome.dcs) {
    rep.double_actuations += dc.double_actuations;
    rep.stale_fenced += dc.stale_rejected;
  }
  std::uint64_t journal_rejections = 0;
  for (const ControlReplicaOutcome& r : rep.outcome.replicas) {
    journal_rejections += r.journal_rejected_stale;
  }
  rep.stale_leader_deposed =
      !rep.outcome.replicas.empty() && rep.outcome.replicas[0].depositions >= 1;
  rep.passed = rep.stale_fenced > 0 && journal_rejections > 0 &&
               rep.double_actuations == 0 && rep.stale_leader_deposed &&
               rep.outcome.lease_unique_ok && rep.outcome.fencing_clean &&
               rep.outcome.conservation_ok;
  return rep;
}

std::string make_leader_kill_plan() {
  // Permanent loss: the duration outlives the drive window, so the dead
  // leader never comes back — failover, not reboot, must save the run.
  return "ctl-crash:0@13.25+40";
}

std::string make_split_brain_plan() {
  // A long GC pause: the leader freezes mid-run, a follower takes over at
  // ~13 s, and the stale leader wakes at 16.25 still believing it leads.
  return "ctl-hang:0@10.25+6";
}

std::string make_reference_control_grid_script() {
  return "ctl-kill:region/americas@13+10";
}

}  // namespace epm::faults
