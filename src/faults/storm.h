// Facility-level fault-storm runner.
//
// Drives a macro::Facility through a FaultPlan on the shared simulation
// clock: the injector delivers fault edges, the runner translates the
// active fault set into layer effects each control epoch (crashed servers,
// CRAC derates, utility outage carried by the UPS battery, demand surges,
// sensor faults on the telemetry path), optionally lets the
// macro::DegradationPolicy react, and accounts offered / locally-served /
// shed / re-routed / dropped requests over the storm.
//
// Everything is serial and seeded, so one StormConfig + FaultPlan maps to
// exactly one StormOutcome, regardless of how many sweep threads run storms
// concurrently.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "faults/fault_plan.h"
#include "macro/degradation.h"
#include "macro/facility.h"
#include "power/ups.h"
#include "sensing/actuator_plane.h"
#include "sensing/estimator.h"
#include "sensing/invariants.h"
#include "sensing/sensor_plane.h"

namespace epm::faults {

struct StormConfig {
  macro::FacilityConfig facility;
  /// Baseline demand (requests/s with the reference request model) per
  /// service; surges multiply it.
  std::vector<double> demand_rps;
  double horizon_s = 6.0 * 3600.0;
  double outside_c = 28.0;
  /// false = uncoordinated baseline: same provisioning, no fault reaction.
  bool policy_enabled = true;
  macro::DegradationPolicyConfig policy;
  power::UpsBatteryConfig battery;
  /// Zone temperature at which servers protectively trip: the facility
  /// serves nothing until the room has stayed cool for trip_lockout_epochs.
  double thermal_trip_c = 34.0;
  std::size_t trip_lockout_epochs = 5;
  /// Provisioning headroom: fleet sized for demand / (max_util / headroom).
  double provision_headroom = 1.1;
  /// Sensing plane for telemetry and the policy's IT-power estimate
  /// (fault_domains is overridden to service_count + 1 by the runner).
  sensing::SensorPlaneConfig sensors;
  /// Estimation applied to sensed channels; default raw passthrough.
  sensing::EstimatorConfig estimator;
  /// Actuation plane for setpoints, P-states, and provisioning commands;
  /// default single-attempt, infallible without kActuatorFail faults.
  sensing::ActuatorPlaneConfig actuators;
  /// Per-epoch invariant checking of the facility state and UPS SoC.
  sensing::InvariantMonitorConfig invariants;
};

struct StormOutcome {
  double offered_requests = 0.0;
  double served_requests = 0.0;    ///< served locally (excludes re-routes)
  double shed_requests = 0.0;      ///< policy-shed low-tier load
  double rerouted_requests = 0.0;  ///< policy re-routes served by a peer site
  double dropped_requests = 0.0;   ///< capacity / brown-out / trip losses
  double it_energy_kwh = 0.0;
  double mechanical_energy_kwh = 0.0;
  std::size_t epochs = 0;
  std::size_t brownout_epochs = 0;  ///< UPS exhausted during an outage
  std::size_t trip_epochs = 0;      ///< thermal protective trip lockout
  std::size_t sla_violation_epochs = 0;
  std::size_t thermal_alarms = 0;
  std::size_t overload_epochs = 0;
  double max_zone_temp_c = 0.0;
  double min_state_of_charge = 1.0;
  std::uint64_t telemetry_samples = 0;
  std::uint64_t degraded_samples = 0;
  std::uint64_t dropped_samples = 0;
  std::size_t faults_injected = 0;
  std::size_t faults_handled = 0;
  std::size_t faults_cleared = 0;
  bool faults_conserved = false;
  std::uint64_t sensor_readings = 0;
  std::uint64_t sensor_dropped = 0;
  std::uint64_t sensor_stuck = 0;
  std::uint64_t sensor_noisy = 0;
  std::uint64_t commands_issued = 0;
  std::uint64_t commands_acked = 0;
  std::uint64_t commands_failed = 0;
  std::uint64_t command_retries = 0;
  std::size_t invariant_violations = 0;
  bool invariants_ok = true;
  std::string invariant_report;
  std::map<std::string, std::size_t> decision_counts;

  double served_fraction() const {
    return offered_requests > 0.0 ? served_requests / offered_requests : 1.0;
  }
};

StormOutcome run_fault_storm(const StormConfig& config, const FaultPlan& plan);

/// StormConfig for the reference two-service facility with a UPS battery
/// deliberately sized so an unmanaged full-draw fleet cannot ride through
/// the storm plan's scripted outage — the scenario the degradation policy
/// exists for.
StormConfig make_reference_storm_config(std::size_t servers_per_service = 60);

}  // namespace epm::faults
