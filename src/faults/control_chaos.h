// Control-plane chaos harness: kill-the-leader drills for the survivable
// macro control plane (macro/control_plane + sensing/fencing).
//
// The drive world is a small per-datacenter plant — powered servers, a
// power-cap fraction, a CRAC setpoint — serving a deterministic demand curve
// that ramps from base to peak mid-run. The control plane walks the fleet
// through a staged eco-mode transition (caps tightened, setpoints raised,
// servers powered down) and back out, so the mid-run state is exactly the
// dangerous kind the paper warns about: half the fleet dark and throttled
// while demand is about to double. Drills then kill, hang, or partition the
// controllers mid-transition:
//
//   * leader-kill drill — the leader dies permanently while the eco-exit
//     transition is half-issued. Defended arm: per-DC replicas, lease
//     failover, journal replay, actuator fencing, dead-man safe state — the
//     new leader completes the transition before the demand ramp and the
//     fleet stays SLA- and thermally-clean. Naive arm: a single controller,
//     no defenses — the unreached datacenters stay stuck in eco mode and
//     violate at peak. The BENCH_controlplane gate demands defended end
//     goodput >= 99% of pre-fault AND zero alarms while naive violates.
//     Optionally a WAN partition isolates one datacenter through the
//     failover window: its dead-man's switch must trip and revert it to
//     safe defaults before the ramp.
//
//   * split-brain drill — the leader hangs (GC pause), a follower takes
//     over, the old leader wakes and keeps acting under its stale lease
//     token. Every one of its actuations must be fenced (zero double
//     actuations) and it must step down on the first higher-token
//     heartbeat.
//
//   * save/restore drill — lease, journal, fencing ledger, dead-man, and
//     actuator state all serialize through sim/snapshot.h; a run restored
//     mid-failover must finish bit-identical to the uninterrupted one.
//
// Determinism: all control messages travel the federation's tagged-message
// path with a per-source-DC delay stagger (lookahead * (1 + (src+1) *
// 2^-20)), so deliveries from different sources never tie at one timestamp
// and the whole world is bit-identical at any shard/thread count — the
// conformance sweep `epmctl controlplane` runs pins exactly that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "network/interdc_link.h"

namespace epm::faults {

struct ControlChaosConfig {
  std::size_t dcs = 4;     ///< datacenters (leader-kill drills need >= 3)
  std::size_t shards = 0;  ///< federation shards; 0 = one per DC (must divide dcs)
  std::size_t threads = 1;
  double epoch_s = 0.5;         ///< control tick
  double drive_until_s = 40.0;  ///< last tick strictly before this
  double horizon_s = 42.0;      ///< slack so in-flight messages land
  double lookahead_s = 0.05;

  /// Lease failure detection (staggered per replica id) and the actuator
  /// watchdog. deadman_ttl_s <= 0 disables the safe-state switch.
  double lease_ttl_s = 2.0;
  double lease_ttl_stagger_s = 0.5;
  double deadman_ttl_s = 4.0;
  std::uint64_t max_steps_per_tick = 2;  ///< transition staging width

  /// Plant: capacity = active_servers * per_server_rps * cap_fraction.
  std::uint64_t servers_per_dc = 20;
  double per_server_rps = 50.0;
  double base_demand_rps = 400.0;
  double peak_demand_rps = 900.0;
  double demand_rise_s = 20.0;
  double demand_jitter = 0.1;  ///< per-epoch uniform +-10%

  /// Thermal model: temp = setpoint + gain * min(demand/capacity, util_cap).
  /// Safe setpoint never alarms even overloaded; eco setpoint alarms only
  /// when the DC is left in eco under peak demand.
  double safe_setpoint_c = 22.0;
  double eco_setpoint_c = 27.0;
  double alarm_temp_c = 31.0;
  double temp_util_gain_c = 3.0;
  double util_cap = 1.5;

  /// Eco-mode transition program: enter at eco_enter_s (cap, setpoint,
  /// fleet per DC), exit at eco_exit_s (fleet, setpoint, cap per DC,
  /// rotated to start at DC 1 so DC 0 is still unreached when the
  /// reference kill lands).
  double eco_cap = 0.7;
  double eco_active_frac = 0.7;
  double eco_enter_s = 6.0;
  double eco_exit_s = 12.0;

  /// Arms: replicated = one controller replica per DC (false: single
  /// controller at DC 0); fencing = actuator ledgers enforce; deadman =
  /// safe-state watchdog armed.
  bool replicated = true;
  bool fencing = true;
  bool deadman = true;

  /// Controller fault schedule, FaultPlan text restricted to ctl-crash /
  /// ctl-hang / ctl-restart entries targeting a replica (= DC) index.
  std::string controller_faults;
  /// Grid-event script (fault_domain syntax) expanded over the reference
  /// domain tree: outage and ctl-kill events kill the controllers
  /// co-located with the target's datacenters (capacity is untouched —
  /// this world models the control-plane shadow of a grid event).
  std::string grid_script;

  /// Goodput windows: pre-fault = epochs before prefault_until_s, end =
  /// the last end_window_s of the drive window.
  double prefault_until_s = 12.0;
  double end_window_s = 8.0;
  std::uint64_t seed = 7;
};

struct ControlDcOutcome {
  std::uint64_t epochs = 0;
  double demand_total = 0.0;
  double served_total = 0.0;
  std::uint64_t sla_violation_epochs = 0;
  std::uint64_t thermal_alarm_epochs = 0;
  double max_temp_c = 0.0;
  double prefault_demand = 0.0;
  double prefault_served = 0.0;
  double end_demand = 0.0;
  double end_served = 0.0;
  /// Actuator-side ledger counters.
  std::uint64_t commands_applied = 0;
  std::uint64_t fencing_rejections = 0;  ///< stale + duplicate, plane-side
  std::uint64_t stale_rejected = 0;      ///< stale-token share of the above
  std::uint64_t double_actuations = 0;  ///< MUST be 0 unless fencing is off
  std::uint64_t stale_applied = 0;      ///< nonzero only with fencing off
  std::uint64_t safe_state_trips = 0;
  std::uint64_t heartbeats_seen = 0;
};

struct ControlReplicaOutcome {
  bool hosted = false;  ///< naive arm hosts a replica only at DC 0
  std::uint64_t claims = 0;
  std::uint64_t depositions = 0;
  std::uint64_t crashes = 0;
  std::uint64_t stale_heartbeats = 0;
  std::uint64_t commands_issued = 0;
  std::uint64_t commands_replayed = 0;
  std::uint64_t journal_entries = 0;
  std::uint64_t journal_rejected_stale = 0;
  std::uint64_t final_max_token = 0;
  std::vector<std::uint64_t> claimed_tokens;
};

struct ControlChaosOutcome {
  std::vector<ControlDcOutcome> dcs;
  std::vector<ControlReplicaOutcome> replicas;
  double final_now_s = 0.0;
  std::size_t final_pending = 0;
  std::uint64_t control_messages = 0;  ///< world-level sends (shard-invariant)
  std::uint64_t max_token = 0;         ///< highest fencing token fleet-wide
  /// Claimed lease tokens are globally unique and every token t claimed by
  /// replica r satisfies t % replicas == r — at most one live lease per
  /// epoch, by construction.
  bool lease_unique_ok = false;
  /// Zero double-actuations on every enforced ledger.
  bool fencing_clean = false;
  double fleet_prefault_frac = 0.0;  ///< served/demand in the pre-fault window
  double fleet_end_frac = 0.0;       ///< served/demand in the end window
  std::uint64_t total_sla_violations = 0;
  std::uint64_t total_alarms = 0;
  bool conservation_ok = false;
  std::string report;
};

/// Exact equality — the conformance and restore drills demand bit-identical.
bool control_outcomes_equal(const ControlChaosOutcome& a,
                            const ControlChaosOutcome& b);

/// Uninterrupted run. `plan` (optional, non-owning) degrades inter-DC links
/// and requires shards == dcs (the link plan is indexed by shard).
ControlChaosOutcome run_control_plane(
    const ControlChaosConfig& config,
    const network::InterDcLinkPlan* plan = nullptr);

/// Save/restore drill (mirrors chaos_fleet): snapshot at a barrier, run on,
/// destroy everything, rebuild from config, restore, finish — the restored
/// outcome must equal the uninterrupted one exactly.
struct ControlRestoreReport {
  ControlChaosOutcome uninterrupted;
  ControlChaosOutcome restored;
  bool identical = false;
  std::size_t snapshot_bytes = 0;
};
ControlRestoreReport run_control_plane_with_restore(
    const ControlChaosConfig& config, double snapshot_at_s, double kill_at_s);

/// The reference leader-kill drill: defended (replicas + fencing + journal
/// + dead-man) vs naive (single controller, no defenses) under a permanent
/// leader death mid-eco-exit; with_partition additionally cuts every link
/// into DC 0 through the failover window, so DC 0's dead-man must revert it
/// to safe state before the demand ramp.
struct ControlLeaderKillReport {
  ControlChaosOutcome defended;
  ControlChaosOutcome naive;
  double goodput_threshold = 0.99;
  bool defended_clean = false;  ///< >= threshold goodput, 0 alarms, 0 SLA
                                ///< violations, fencing clean, lease unique
  bool naive_violates = false;  ///< naive fails goodput or alarms
  bool gate_ok = false;         ///< defended_clean && naive_violates
};
ControlLeaderKillReport run_leader_kill_drill(std::size_t dcs,
                                              std::size_t threads,
                                              std::uint64_t seed,
                                              bool with_partition);

/// Split-brain drill: the leader hangs through a follower takeover, wakes
/// with a stale lease, and keeps actuating until deposed. Passes when the
/// stale commands were fenced (> 0 rejections), no double actuation
/// happened anywhere, and the woken leader stepped down.
struct ControlSplitBrainReport {
  ControlChaosOutcome outcome;
  std::uint64_t stale_fenced = 0;
  std::uint64_t double_actuations = 0;
  bool stale_leader_deposed = false;
  bool passed = false;
};
ControlSplitBrainReport run_split_brain_drill(std::size_t dcs,
                                              std::size_t threads,
                                              std::uint64_t seed);

/// Reference fault schedules for the drills above.
std::string make_leader_kill_plan();   ///< permanent ctl-crash on DC 0
std::string make_split_brain_plan();   ///< ctl-hang window on DC 0
/// Regional grid event whose datacenters' co-located controllers die with
/// it (a ctl-kill on the americas region).
std::string make_reference_control_grid_script();

}  // namespace epm::faults
