// Deterministic chaos harness for the federation (the robustness tentpole).
//
// Three drills, each pinning one resilience claim of the stack:
//
//   * kill-and-restore — a snapshot-capable fleet world (every event routed
//     through sim::TaggedKernel, every cross-shard message sent tagged) is
//     checkpointed at a barrier, run further, then "killed": the federation
//     and world are destroyed, rebuilt from the config alone, restored from
//     the snapshot bytes, and run to the horizon. The continuation must be
//     bit-identical to the uninterrupted run — same counters, same final
//     clock, same pending count.
//
//   * partition drill — an open-ended partition window on one directed link
//     parks every in-flight message in the bounded mailbox FIFO; after
//     heal() the backlog drains in send order and the run finishes with
//     zero message loss (forwarded item count == received item count) and
//     per-pair FIFO sequence numbers intact.
//
//   * recovery gate — the fleet retry-storm scenario under a correlated
//     regional grid event (faults/fault_domain.h expanded onto
//     FleetDisruptions): the defended arm (admission stack + grid
//     broadcasts steering forwards away from dark datacenters) must end the
//     run at >= `threshold` of its pre-fault fleet goodput while the naive
//     arm (no defense, blind round-robin forwards) must not.
//
// The drive world here is intentionally small — a per-datacenter
// generate/serve/forward loop with deterministic arrivals — because the
// harness' subject is the *infrastructure* (snapshots, mailboxes, link
// plans), not the workload model. The recovery gate reuses the full
// faults/fleet_storm.h scenario for realism.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "faults/fleet_storm.h"
#include "network/interdc_link.h"

namespace epm::faults {

struct ChaosFleetConfig {
  /// Datacenters == federation shards (one kernel each).
  std::size_t dcs = 4;
  /// Worker threads for the federation (1 = serial).
  std::size_t threads = 1;
  /// Drive epoch: each datacenter generates/serves/forwards once per epoch.
  double epoch_s = 0.5;
  /// Last epoch tick strictly before this time; leaves slack before the
  /// horizon so in-flight work (including partition redeliveries) lands.
  double drive_until_s = 40.0;
  double horizon_s = 60.0;
  /// Uniform inter-datacenter latency floor (the federation lookahead).
  double lookahead_s = 0.05;
  double arrival_rate_rps = 200.0;  ///< mean arrivals per DC (±20% jitter)
  double service_rate_rps = 240.0;  ///< per-DC service capacity
  /// Fraction of each epoch's arrivals forwarded to a peer (round-robin
  /// over peers by epoch), as one tagged message carrying the item count.
  double forward_fraction = 0.25;
  /// Local backlog bound; arrivals beyond it are dropped (and counted).
  std::uint64_t backlog_cap = 1000000;
  std::uint64_t seed = 1;
};

/// Per-datacenter ledger of the drive world.
struct ChaosDcOutcome {
  std::uint64_t generated = 0;
  std::uint64_t served = 0;
  std::uint64_t dropped = 0;
  std::uint64_t backlog = 0;
  std::uint64_t forwarded_items = 0;  ///< items sent to peers
  std::uint64_t received_items = 0;   ///< items received from peers
  std::uint64_t epochs = 0;
};

struct ChaosFleetOutcome {
  std::vector<ChaosDcOutcome> dcs;
  double final_now_s = 0.0;
  std::size_t final_pending = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_redelivered = 0;
  std::uint64_t messages_parked_end = 0;
  /// Per-(src,dst) sequence numbers arrived strictly in send order.
  bool fifo_ok = true;
  /// Zero message loss (sum forwarded == sum received at the horizon) and
  /// item conservation (generated == served + dropped + backlog).
  bool conservation_ok = false;
  std::string conservation_report;
};

/// Exact field-by-field equality (the restore drill demands bit-identical,
/// not close).
bool chaos_outcomes_equal(const ChaosFleetOutcome& a, const ChaosFleetOutcome& b);

/// Uninterrupted run. `plan` (optional, non-owning) degrades links; it must
/// have site_count() == config.dcs and any open partition must be healed
/// before the run (this entry point runs straight to the horizon).
ChaosFleetOutcome run_chaos_fleet(const ChaosFleetConfig& config,
                                  const network::InterDcLinkPlan* plan = nullptr);

/// Kill-and-restore drill: runs to `snapshot_at_s` (a barrier), snapshots,
/// keeps running to `kill_at_s`, then destroys the federation and world,
/// rebuilds both from the config, restores from the snapshot bytes, and
/// re-runs to the horizon. Requires 0 < snapshot_at_s <= kill_at_s <
/// horizon_s.
struct ChaosRestoreReport {
  ChaosFleetOutcome uninterrupted;
  ChaosFleetOutcome restored;
  bool identical = false;
  std::size_t snapshot_bytes = 0;
};
ChaosRestoreReport run_chaos_fleet_with_restore(const ChaosFleetConfig& config,
                                                double snapshot_at_s,
                                                double kill_at_s);

/// Partition drill: cuts 0->1 over [partition_at_s, inf), runs to
/// check_at_s (expects parked messages), heals at heal_at_s (>= the
/// committed horizon at that point), runs to the config horizon, and
/// verifies zero loss + FIFO + full drain.
struct ChaosPartitionReport {
  ChaosFleetOutcome outcome;
  std::uint64_t parked_at_check = 0;  ///< messages parked mid-partition
  std::uint64_t redelivered = 0;
  bool parked_seen = false;   ///< the partition actually parked something
  bool drained = false;       ///< nothing left parked at the horizon
  bool zero_loss = false;     ///< forwarded items == received items
  bool fifo_ok = false;
  bool passed = false;        ///< all of the above
};
ChaosPartitionReport run_chaos_partition_drill(const ChaosFleetConfig& config,
                                               double partition_at_s,
                                               double check_at_s,
                                               double heal_at_s);

/// Recovery gate: the reference fleet storm under a correlated grid script
/// (fault_domain text syntax, e.g. "outage:region/americas@30+20"),
/// expanded onto the reference fault-domain tree for the fleet's site
/// names. Runs two arms on a single-kernel fabric:
///   * defended — admission stack on, grid broadcasts steer forwards;
///   * naive    — defense off, broadcasts off (blind round-robin).
struct ChaosRecoveryArm {
  double fleet_prefault_goodput_rps = 0.0;
  double fleet_end_goodput_rps = 0.0;
  double ratio = 0.0;  ///< end / prefault (0 when prefault is 0)
  std::uint64_t grid_signals = 0;
  bool conservation_ok = false;
  bool recovered = false;  ///< ratio >= threshold
};
struct ChaosRecoveryReport {
  ChaosRecoveryArm defended;
  ChaosRecoveryArm naive;
  double threshold = 0.99;
  std::string grid_script;
  /// Defended recovers to >= threshold of pre-fault fleet goodput AND the
  /// naive arm does not — the gate BENCH_chaos.json enforces.
  bool gate_ok = false;
};
ChaosRecoveryReport run_chaos_recovery(std::size_t dcs,
                                       std::size_t clients_per_dc,
                                       std::uint64_t seed,
                                       const std::string& grid_script,
                                       double threshold = 0.99);

/// The reference grid script used by `epmctl chaos` and the bench: a
/// regional outage over the americas (taking out every DC in that region
/// at staggered onsets) plus an EU brownout.
std::string make_reference_grid_script();

}  // namespace epm::faults
