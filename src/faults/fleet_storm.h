// Fleet retry storm: the closed-loop login-storm scenario spanning a
// multi-datacenter fleet, with cross-datacenter re-routing (paper §3.2's
// geo-coordination applied to §3.1's retry storms).
//
// Each datacenter runs its own closed-loop client population behind its own
// admission stack (bounded queue + token bucket + circuit breaker), driven
// at epoch granularity by a driver-event chain on that datacenter's shard
// of a sim::Fabric. Datacenters interact only through fabric.send():
//
//   * forwards  — when a datacenter is dark (scripted outage) or its accept
//     queue overflows, a configured fraction of the affected attempts is
//     re-routed to peers (round-robin) as packed remote refs
//     (cluster::pack_remote_ref) arriving one latency floor later;
//   * responses — a peer that completes forwarded work sends the cohort of
//     client ids back to the owner, again one latency floor later, where
//     each id is served directly (fresh if the client is still waiting,
//     stale otherwise — the owner's ledger keeps the verdict).
//
// The model is valid on BOTH fabrics with bit-identical outcomes because
// its cross-shard interactions are insensitive to same-timestamp delivery
// order across different sources:
//
//   * inbound forwards append to a source-indexed inbox and are drained in
//     source order at the next epoch boundary, so the admission order never
//     depends on which message physically arrived first;
//   * response cohorts commute: each forwarded attempt targets one peer, so
//     same-timestamp response events touch disjoint client ids (and a
//     retried-then-forwarded-again id is served exactly once fresh and once
//     stale under either order, with identical RNG draws);
//   * the reference latency floors are geometric (network::InterDcNetwork),
//     hence never aligned with the epoch grid — no cross-shard event ties a
//     boundary event. Configs with hand-picked floors must preserve that.
//
// Remote sheds (a peer drops forwarded work because it is itself dark or
// full) are deliberately NOT answered with a reject message: the owner's
// client already received its one admission verdict (on_admitted at forward
// time) and resolves the loss through its request timeout, exactly like a
// request lost inside a dark service. This keeps the one-verdict-per-
// collected-id drive protocol of workload::ClientPopulation intact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "faults/fault_domain.h"
#include "faults/retry_storm.h"
#include "macro/geo.h"
#include "network/interdc.h"
#include "sim/fabric.h"
#include "sim/sharded_simulator.h"
#include "workload/client_population.h"

namespace epm::faults {

/// One datacenter's share of a correlated grid event (the expansion of a
/// fault-domain draw — see faults/fault_domain.h). Composes with the legacy
/// scripted outage: capacity factors of overlapping disruptions multiply.
struct FleetDisruption {
  std::size_t dc = 0;
  double start_s = 0.0;
  double duration_s = 0.0;
  /// Remaining service-capacity fraction while active: 0 = dark (outage),
  /// (0, 1) = brownout, 1 = signal-only (price spike / demand response).
  double capacity_factor = 1.0;
  /// Drop every session at onset (reconnect storm), as the legacy outage
  /// does. Typically true for outages, false for brownouts.
  bool drop_sessions = false;
  /// Announce onset/clear to every peer one latency floor later; peers with
  /// grid_broadcasts enabled then steer forwards away from this datacenter
  /// while the disruption is active.
  bool broadcast = false;

  double end_s() const { return start_s + duration_s; }
};

struct FleetStormConfig {
  /// One entry per datacenter (coordinates feed the latency floors); size
  /// in [2, cluster::kRemoteRefMaxOwner + 1]. See
  /// macro::make_reference_fleet_sites.
  std::vector<macro::SiteConfig> sites;
  /// Per-datacenter population; datacenter d runs `clients` with
  /// seed = clients.seed + d (distinct but reproducible streams).
  workload::ClientPopulationConfig clients;
  /// Interactive service capacity per datacenter (req/s).
  double service_capacity_rps = 1000.0;
  double epoch_s = 1.0;
  double horizon_s = 120.0;
  /// Scripted utility outage at one datacenter: dark over
  /// [outage_start_s, outage_start_s + outage_duration_s), sessions drop at
  /// onset (reconnect storm), and inbound forwarded work is shed.
  std::size_t outage_dc = 0;
  double outage_start_s = 30.0;
  double outage_duration_s = 20.0;
  /// Per-datacenter admission stack; disabled = naive arm (big queue, no
  /// bucket/breaker).
  RetryStormDefenseConfig defense;
  std::size_t naive_queue_capacity = 120000;
  /// Fraction of forward-eligible attempts (dark-service arrivals, queue
  /// overflow) re-routed to peers; deterministic fractional accumulator, no
  /// randomness. 0 disables re-routing (every eligible attempt fails
  /// locally), 1 forwards them all.
  double reroute_fraction = 1.0;
  /// Latency-floor derivation from site coordinates (network/interdc.h).
  double latency_detour_factor = 1.3;
  double min_latency_floor_s = 1e-3;
  /// Per-datacenter recovery verdict, as in the single-DC storm.
  double sla_goodput_fraction = 0.9;
  std::size_t recovery_window_epochs = 10;
  /// Correlated grid-event disruptions on top of the legacy outage (empty =
  /// the legacy scenario, bit-identical). The pre-fault SLA window ends at
  /// the earliest of any disruption/outage start; recovery is judged from
  /// the latest clear.
  std::vector<FleetDisruption> disruptions;
  /// Defended-fleet behavior: honor broadcast disruptions by steering
  /// forwards away from the affected datacenter while it is degraded. Off =
  /// naive arm (forwards round-robin blindly into the fault domain).
  bool grid_broadcasts = false;
};

/// Per-datacenter slice of the outcome: the single-DC storm's client-side
/// ledger plus the cross-datacenter flow counters.
struct FleetDcOutcome {
  std::string site;
  std::uint64_t intents = 0;
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;
  std::uint64_t served_fresh = 0;
  std::uint64_t served_stale = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t dark_failures = 0;
  std::uint64_t shed_breaker = 0;
  std::uint64_t shed_bucket = 0;
  std::uint64_t shed_queue = 0;
  /// Cross-datacenter flow, counted where the work happened.
  std::uint64_t forwarded = 0;        ///< own attempts re-routed to peers
  std::uint64_t remote_admitted = 0;  ///< peer work accepted into our queue
  std::uint64_t remote_served = 0;    ///< peer work we completed
  std::uint64_t remote_shed = 0;      ///< peer work we dropped (dark/full)
  double prefault_goodput_rps = 0.0;
  double end_offered_rps = 0.0;
  double end_goodput_rps = 0.0;
  /// Grid onset/clear broadcasts received from peers.
  std::uint64_t grid_signals = 0;
  bool recovered = false;
  double recovery_s = 0.0;
  std::size_t max_queue_depth = 0;
  std::uint64_t breaker_trips = 0;
  bool conservation_ok = false;
  std::string conservation_report;
};

struct FleetStormOutcome {
  std::vector<FleetDcOutcome> dcs;
  std::size_t epochs = 0;
  /// Fleet totals of the cross-datacenter flow.
  std::uint64_t forwarded = 0;
  std::uint64_t remote_served = 0;
  std::uint64_t remote_shed = 0;
  /// Fresh completions / intents over the whole fleet.
  double fleet_goodput_fraction = 0.0;
  /// Fleet-summed pre-fault and end-of-run goodput (req/s) — the chaos
  /// harness' recovery gate compares these.
  double fleet_prefault_goodput_rps = 0.0;
  double fleet_end_goodput_rps = 0.0;
  /// Every population's retry-budget ledger conserved AND the fleet flow
  /// identity holds: forwards == drained (admitted + shed) + still in
  /// flight at the horizon.
  bool conservation_ok = false;
  std::string conservation_report;
  /// Kernel events fired / events still pending at the horizon — identical
  /// across fabrics, so the differential suite compares them too.
  std::size_t events_run = 0;
  std::size_t events_pending = 0;
};

/// Latency-floor network derived from the config's site coordinates.
network::InterDcNetwork make_fleet_network(const FleetStormConfig& config);

/// ShardedConfig for running a `dcs`-datacenter fleet on `shards` shards
/// (contiguous groups of dcs/shards datacenters; dcs % shards must be 0).
/// The shard-pair lookahead is the minimum latency floor over cross-group
/// datacenter pairs, so every fleet send() clears its shard floor.
sim::ShardedConfig make_fleet_sharded_config(const network::InterDcNetwork& net,
                                             std::size_t shards,
                                             std::size_t threads);

/// Runs the scenario on the given fabric. Datacenter d lives on shard
/// d / (dcs / fabric.shard_count()); fabric.shard_count() must divide the
/// datacenter count. One config maps to exactly one outcome on EVERY
/// fabric — single-kernel, 1-shard federation, or N-shard federation at any
/// thread count (the differential suite asserts this bit-for-bit).
FleetStormOutcome run_fleet_storm(const FleetStormConfig& config,
                                  sim::Fabric& fabric);

/// Field-by-field equality (exact, including float fields — the runs being
/// compared are required to be bit-identical, not merely close).
bool fleet_storm_outcomes_equal(const FleetStormOutcome& a,
                                const FleetStormOutcome& b);

/// Maps expanded fault-domain events onto fleet disruptions: outage ->
/// dark + session drop, brownout -> capacity 1 - severity, price-spike and
/// demand-response -> signal-only. Every disruption broadcasts its
/// onset/clear (whether peers listen is config.grid_broadcasts).
std::vector<FleetDisruption> to_fleet_disruptions(
    const std::vector<ExpandedDcFault>& expanded);

/// Reference fleet scenario: `dcs` datacenters from
/// macro::make_reference_fleet_sites, `clients_per_dc` clients each,
/// defended admission stacks, a 20 s outage at the first site 30 s in, and
/// full re-routing of dark/overflow attempts.
FleetStormConfig make_reference_fleet_storm_config(std::size_t dcs,
                                                   std::size_t clients_per_dc,
                                                   std::uint64_t seed);

}  // namespace epm::faults
