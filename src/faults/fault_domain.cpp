#include "faults/fault_domain.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "core/require.h"
#include "core/rng.h"

namespace epm::faults {
namespace {

constexpr std::size_t kDomainLevelCount = 4;
const char* kLevelTokens[kDomainLevelCount] = {"feed", "region", "dc",
                                               "cluster"};

constexpr std::size_t kGridEventKindCount = 5;
const char* kKindTokens[kGridEventKindCount] = {"outage", "brownout",
                                                "price-spike",
                                                "demand-response", "ctl-kill"};

std::string trim(const std::string& s) {
  std::size_t lo = 0;
  std::size_t hi = s.size();
  while (lo < hi && std::isspace(static_cast<unsigned char>(s[lo]))) ++lo;
  while (hi > lo && std::isspace(static_cast<unsigned char>(s[hi - 1]))) --hi;
  return s.substr(lo, hi - lo);
}

std::string format_double(double value) {
  // Shortest representation that parses back to the same double (same
  // contract as FaultPlan::to_string); "e+06" would collide with the
  // '+duration' separator, so rewrite it as "e6".
  const auto normalize = [](std::string text) {
    const auto e = text.find("e+");
    if (e != std::string::npos) {
      std::size_t digits = e + 2;
      while (digits + 1 < text.size() && text[digits] == '0') ++digits;
      text = text.substr(0, e + 1) + text.substr(digits);
    }
    return text;
  };
  std::string best;
  for (int precision : {6, 15, 16, 17}) {
    std::ostringstream out;
    out << std::setprecision(precision) << value;
    best = normalize(out.str());
    if (std::strtod(best.c_str(), nullptr) == value) {
      return best;
    }
  }
  return best;
}

double parse_number(const std::string& raw, const char* field,
                    const std::string& entry) {
  const std::string token = trim(raw);
  if (token.empty()) {
    throw std::invalid_argument(std::string("grid event has empty ") + field +
                                " in '" + entry + "'");
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || errno == ERANGE ||
      !std::isfinite(value)) {
    throw std::invalid_argument(std::string("bad ") + field + " token '" +
                                token + "' in grid event '" + entry + "'");
  }
  return value;
}

void validate_event(const DomainFault& event) {
  if (!(event.start_s >= 0.0) || !std::isfinite(event.start_s)) {
    throw std::invalid_argument("DomainFault start_s must be finite and >= 0");
  }
  if (!(event.duration_s > 0.0) || !std::isfinite(event.duration_s)) {
    throw std::invalid_argument("DomainFault duration_s must be > 0");
  }
  if (!(event.severity > 0.0) || !std::isfinite(event.severity)) {
    throw std::invalid_argument("DomainFault severity must be > 0");
  }
  if (event.kind == GridEventKind::kBrownout && event.severity > 1.0) {
    throw std::invalid_argument(
        "DomainFault brownout severity is a capacity-loss fraction in (0, 1]");
  }
  if (trim(event.target).empty()) {
    throw std::invalid_argument("DomainFault target name must be non-empty");
  }
}

/// Uniform [0, 1) draw keyed by (seed, event, dc, which): counter-mode
/// SplitMix64, so every (event, dc) pair owns an independent stream and
/// adding events or datacenters never perturbs the others.
double stagger_u(std::uint64_t seed, std::size_t event, std::size_t dc,
                 std::uint64_t which) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto fold = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xffU;
      h *= 0x100000001b3ULL;
    }
  };
  fold(seed);
  fold(static_cast<std::uint64_t>(event));
  fold(static_cast<std::uint64_t>(dc));
  fold(which);
  return static_cast<double>(SplitMix64::mix(h) >> 11) * 0x1.0p-53;
}

}  // namespace

std::string to_string(DomainLevel level) {
  const auto index = static_cast<std::size_t>(level);
  if (index >= kDomainLevelCount) {
    throw std::invalid_argument("unknown DomainLevel");
  }
  return kLevelTokens[index];
}

DomainLevel domain_level_from_string(const std::string& token) {
  for (std::size_t i = 0; i < kDomainLevelCount; ++i) {
    if (token == kLevelTokens[i]) {
      return static_cast<DomainLevel>(i);
    }
  }
  throw std::invalid_argument(
      "unknown fault-domain level token: '" + token +
      "' (expected feed, region, dc, or cluster)");
}

std::string to_string(GridEventKind kind) {
  const auto index = static_cast<std::size_t>(kind);
  if (index >= kGridEventKindCount) {
    throw std::invalid_argument("unknown GridEventKind");
  }
  return kKindTokens[index];
}

GridEventKind grid_event_from_string(const std::string& token) {
  for (std::size_t i = 0; i < kGridEventKindCount; ++i) {
    if (token == kKindTokens[i]) {
      return static_cast<GridEventKind>(i);
    }
  }
  throw std::invalid_argument(
      "unknown grid event token: '" + token +
      "' (expected outage, brownout, price-spike, or demand-response)");
}

void FaultDomainTree::check_fresh(DomainLevel level,
                                  const std::string& name) const {
  require(!trim(name).empty(), "FaultDomainTree: node name must be non-empty");
  if (has(level, name)) {
    throw std::invalid_argument("FaultDomainTree: duplicate " +
                                faults::to_string(level) + " name '" + name +
                                "'");
  }
}

std::size_t FaultDomainTree::add_grid_feed(std::string name) {
  check_fresh(DomainLevel::kGridFeed, name);
  feeds_.push_back(std::move(name));
  return feeds_.size() - 1;
}

std::size_t FaultDomainTree::add_region(std::string name,
                                        const std::string& grid_feed) {
  check_fresh(DomainLevel::kRegion, name);
  const std::size_t feed = resolve(DomainLevel::kGridFeed, grid_feed);
  regions_.push_back(Region{std::move(name), feed});
  return regions_.size() - 1;
}

std::size_t FaultDomainTree::add_datacenter(std::string name,
                                            const std::string& region) {
  check_fresh(DomainLevel::kDatacenter, name);
  const std::size_t r = resolve(DomainLevel::kRegion, region);
  datacenters_.push_back(Datacenter{std::move(name), r});
  return datacenters_.size() - 1;
}

std::size_t FaultDomainTree::add_cluster(std::string name,
                                         const std::string& datacenter) {
  check_fresh(DomainLevel::kCluster, name);
  const std::size_t dc = resolve(DomainLevel::kDatacenter, datacenter);
  clusters_.push_back(Cluster{std::move(name), dc});
  return clusters_.size() - 1;
}

const std::string& FaultDomainTree::datacenter_name(std::size_t dc) const {
  require(dc < datacenters_.size(),
          "FaultDomainTree: datacenter index out of range");
  return datacenters_[dc].name;
}

std::size_t FaultDomainTree::region_of(std::size_t dc) const {
  require(dc < datacenters_.size(),
          "FaultDomainTree: datacenter index out of range");
  return datacenters_[dc].region;
}

std::size_t FaultDomainTree::feed_of(std::size_t dc) const {
  return regions_[region_of(dc)].feed;
}

bool FaultDomainTree::has(DomainLevel level, const std::string& name) const {
  switch (level) {
    case DomainLevel::kGridFeed:
      for (const auto& f : feeds_) {
        if (f == name) return true;
      }
      return false;
    case DomainLevel::kRegion:
      for (const auto& r : regions_) {
        if (r.name == name) return true;
      }
      return false;
    case DomainLevel::kDatacenter:
      for (const auto& d : datacenters_) {
        if (d.name == name) return true;
      }
      return false;
    case DomainLevel::kCluster:
      for (const auto& c : clusters_) {
        if (c.name == name) return true;
      }
      return false;
  }
  return false;
}

std::size_t FaultDomainTree::resolve(DomainLevel level,
                                     const std::string& name) const {
  const auto fail = [&](auto begin, auto end, auto name_of) -> std::size_t {
    std::string known;
    for (auto it = begin; it != end; ++it) {
      if (!known.empty()) known += ", ";
      known += name_of(*it);
    }
    if (known.empty()) known = "<none>";
    // One line: the operator pastes it straight into the plan they mistyped.
    throw std::invalid_argument("unknown " + faults::to_string(level) + " '" +
                                name + "' (known: " + known + ")");
  };
  switch (level) {
    case DomainLevel::kGridFeed: {
      for (std::size_t i = 0; i < feeds_.size(); ++i) {
        if (feeds_[i] == name) return i;
      }
      return fail(feeds_.begin(), feeds_.end(),
                  [](const std::string& f) { return f; });
    }
    case DomainLevel::kRegion: {
      for (std::size_t i = 0; i < regions_.size(); ++i) {
        if (regions_[i].name == name) return i;
      }
      return fail(regions_.begin(), regions_.end(),
                  [](const Region& r) { return r.name; });
    }
    case DomainLevel::kDatacenter: {
      for (std::size_t i = 0; i < datacenters_.size(); ++i) {
        if (datacenters_[i].name == name) return i;
      }
      return fail(datacenters_.begin(), datacenters_.end(),
                  [](const Datacenter& d) { return d.name; });
    }
    case DomainLevel::kCluster: {
      for (std::size_t i = 0; i < clusters_.size(); ++i) {
        if (clusters_[i].name == name) return i;
      }
      return fail(clusters_.begin(), clusters_.end(),
                  [](const Cluster& c) { return c.name; });
    }
  }
  throw std::invalid_argument("unknown DomainLevel");
}

std::vector<std::size_t> FaultDomainTree::datacenters_under(
    DomainLevel level, const std::string& name) const {
  const std::size_t index = resolve(level, name);
  std::vector<std::size_t> out;
  switch (level) {
    case DomainLevel::kGridFeed:
      for (std::size_t dc = 0; dc < datacenters_.size(); ++dc) {
        if (regions_[datacenters_[dc].region].feed == index) out.push_back(dc);
      }
      break;
    case DomainLevel::kRegion:
      for (std::size_t dc = 0; dc < datacenters_.size(); ++dc) {
        if (datacenters_[dc].region == index) out.push_back(dc);
      }
      break;
    case DomainLevel::kDatacenter:
      out.push_back(index);
      break;
    case DomainLevel::kCluster:
      out.push_back(clusters_[index].datacenter);
      break;
  }
  return out;
}

DomainFaultPlan DomainFaultPlan::scripted(std::vector<DomainFault> events) {
  for (const auto& event : events) {
    validate_event(event);
  }
  std::sort(events.begin(), events.end(),
            [](const DomainFault& a, const DomainFault& b) {
              return std::make_tuple(a.start_s, static_cast<int>(a.kind),
                                     static_cast<int>(a.level), a.target,
                                     a.duration_s) <
                     std::make_tuple(b.start_s, static_cast<int>(b.kind),
                                     static_cast<int>(b.level), b.target,
                                     b.duration_s);
            });
  DomainFaultPlan plan;
  plan.events_ = std::move(events);
  return plan;
}

DomainFaultPlan DomainFaultPlan::parse(const std::string& spec) {
  std::vector<DomainFault> events;
  std::stringstream stream(spec);
  std::string entry;
  while (std::getline(stream, entry, ';')) {
    entry = trim(entry);
    if (entry.empty()) continue;
    const auto at = entry.find('@');
    if (at == std::string::npos) {
      throw std::invalid_argument("grid event missing '@': '" + entry + "'");
    }
    std::string head = entry.substr(0, at);
    std::string tail = entry.substr(at + 1);
    const auto colon = head.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument(
          "grid event missing ':level/name' target: '" + entry + "'");
    }
    DomainFault event;
    event.kind = grid_event_from_string(trim(head.substr(0, colon)));
    std::string target = trim(head.substr(colon + 1));
    const auto slash = target.find('/');
    if (slash == std::string::npos) {
      throw std::invalid_argument(
          "grid event target must be 'level/name': '" + entry + "'");
    }
    event.level = domain_level_from_string(trim(target.substr(0, slash)));
    // Cluster names themselves contain '/', so only the first one splits.
    event.target = trim(target.substr(slash + 1));
    if (event.target.empty()) {
      throw std::invalid_argument("grid event has empty target name: '" +
                                  entry + "'");
    }
    const auto plus = tail.find('+');
    if (plus == std::string::npos) {
      throw std::invalid_argument("grid event missing '+duration': '" + entry +
                                  "'");
    }
    event.start_s = parse_number(tail.substr(0, plus), "start", entry);
    std::string rest = tail.substr(plus + 1);
    const auto x = rest.find('x');
    if (x != std::string::npos) {
      event.severity = parse_number(rest.substr(x + 1), "severity", entry);
      rest = rest.substr(0, x);
    }
    event.duration_s = parse_number(rest, "duration", entry);
    events.push_back(std::move(event));
  }
  return scripted(std::move(events));
}

std::string DomainFaultPlan::to_string() const {
  std::string out;
  for (const auto& event : events_) {
    if (!out.empty()) out += ';';
    out += faults::to_string(event.kind);
    out += ':' + faults::to_string(event.level) + '/' + event.target;
    out += '@' + format_double(event.start_s);
    out += '+' + format_double(event.duration_s);
    if (event.severity != 1.0) {
      out += 'x' + format_double(event.severity);
    }
  }
  return out;
}

std::vector<ExpandedDcFault> expand_to_datacenters(
    const FaultDomainTree& tree, const DomainFaultPlan& plan,
    const DomainExpansionConfig& config) {
  require(config.onset_stagger_s >= 0.0 &&
              std::isfinite(config.onset_stagger_s),
          "DomainExpansionConfig: onset stagger must be finite and >= 0");
  require(config.clear_stagger_s >= 0.0 &&
              std::isfinite(config.clear_stagger_s),
          "DomainExpansionConfig: clear stagger must be finite and >= 0");
  std::vector<ExpandedDcFault> out;
  for (std::size_t e = 0; e < plan.events().size(); ++e) {
    const DomainFault& event = plan.events()[e];
    const std::vector<std::size_t> dcs =
        tree.datacenters_under(event.level, event.target);
    for (const std::size_t dc : dcs) {
      ExpandedDcFault x;
      x.dc = dc;
      x.kind = event.kind;
      x.severity = event.severity;
      x.source_event = e;
      x.onset_s = event.start_s +
                  config.onset_stagger_s * stagger_u(config.seed, e, dc, 0);
      x.clear_s = event.end_s() +
                  config.clear_stagger_s * stagger_u(config.seed, e, dc, 1);
      out.push_back(std::move(x));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ExpandedDcFault& a, const ExpandedDcFault& b) {
              return std::make_tuple(a.onset_s, a.dc, a.source_event) <
                     std::make_tuple(b.onset_s, b.dc, b.source_event);
            });
  return out;
}

FaultDomainTree make_reference_fault_domains(
    const std::vector<std::string>& dc_names) {
  struct Known {
    const char* dc;
    const char* region;
  };
  static constexpr Known kKnown[] = {
      {"pnw", "americas"},      {"virginia", "americas"},
      {"saopaulo", "americas"}, {"ireland", "emea"},
      {"singapore", "apac"},    {"tokyo", "apac"},
  };
  FaultDomainTree tree;
  tree.add_grid_feed("grid-na");
  tree.add_grid_feed("grid-eu");
  tree.add_grid_feed("grid-apac");
  tree.add_region("americas", "grid-na");
  tree.add_region("emea", "grid-eu");
  tree.add_region("apac", "grid-apac");
  for (const std::string& name : dc_names) {
    const char* region = nullptr;
    for (const Known& k : kKnown) {
      if (name == k.dc) {
        region = k.region;
        break;
      }
    }
    std::string region_name;
    if (region != nullptr) {
      region_name = region;
    } else {
      // A fleet we don't recognize still gets a valid tree: a private
      // single-DC region on a private feed.
      tree.add_grid_feed("grid-" + name);
      region_name = name + "-region";
      tree.add_region(region_name, "grid-" + name);
    }
    tree.add_datacenter(name, region_name);
    tree.add_cluster(name + "/interactive", name);
    tree.add_cluster(name + "/batch", name);
  }
  return tree;
}

}  // namespace epm::faults
