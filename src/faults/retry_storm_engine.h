// Phase-split retry-storm epoch engine.
//
// The closed-loop retry-storm scenario (see retry_storm.h) advances in
// control epochs, and each epoch factors into two phases separated by the
// epoch's completion cohort:
//
//   begin_epoch(e)  [t0 = e*dt]   outage edges, admission of the attempts
//                                 due this epoch, queue drain within the
//                                 interactive capacity — and the completion
//                                 cohort scheduled on a caller-supplied
//                                 kernel at t1 = t0 + dt;
//   (kernel fires the cohort at t1)
//   end_epoch(e)    [t1]          client deadlines, breaker verdict,
//                                 shed/retry telemetry through the sensor
//                                 plane, macro overload posture, invariant
//                                 checks.
//
// Splitting the loop body this way lets the SAME code drive two execution
// shapes with bit-identical results:
//
//   * the serial runner (run_retry_storm): a plain for-loop with a private
//     completion kernel, exactly the PR 4-6 shape;
//   * the federated runner (run_retry_storm_federated): begin/end become
//     event callbacks on a sim::ShardedSimulator shard, chained so that at
//     every boundary t1 the completion cohort (scheduled first, lower seq)
//     fires before end_epoch(e) + begin_epoch(e+1) — the same-timestamp
//     FIFO guarantee replays the serial loop order exactly, which is what
//     the "degenerate federation" golden tests assert.
//
// Population is the client engine (workload::ClientPopulation or the PR 5
// legacy heap engine); see retry_storm.cpp for the drive protocol.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/admission.h"
#include "core/arena.h"
#include "core/require.h"
#include "faults/retry_storm.h"
#include "macro/decision_log.h"
#include "macro/degradation.h"
#include "sensing/channels.h"
#include "sensing/estimator.h"
#include "sensing/invariants.h"
#include "sensing/sensor_plane.h"
#include "sensing/telemetry_feed.h"
#include "sim/event_fn.h"
#include "telemetry/store.h"

namespace epm::faults {

/// Trailing-window mean over series[end-window, end).
inline double retry_storm_window_mean(const std::vector<double>& series,
                                      std::size_t end, std::size_t window) {
  const std::size_t lo = end > window ? end - window : 0;
  if (end <= lo) return 0.0;
  double sum = 0.0;
  for (std::size_t i = lo; i < end; ++i) sum += series[i];
  return sum / static_cast<double>(end - lo);
}

template <typename Population>
class RetryStormEngine {
 public:
  explicit RetryStormEngine(const RetryStormConfig& config)
      : config_(config),
        population_(config.clients),
        queue_(config.defense.enabled ? config.defense.queue_capacity
                                      : config.naive_queue_capacity),
        bucket_(config.defense.bucket),
        breaker_(config.defense.breaker),
        policy_(config.policy, /*service_count=*/2, &log_),
        estimator_(config.estimator),
        monitor_(config.invariants) {
    require(config.epoch_s > 0.0, "RetryStorm: epoch must be positive");
    require(config.service_capacity_rps > 0.0,
            "RetryStorm: service capacity must be positive");
    require(config.batch_rps >= 0.0 &&
                config.batch_rps < config.service_capacity_rps,
            "RetryStorm: batch tier must leave interactive capacity");
    require(config.outage_start_s > 0.0 && config.outage_duration_s > 0.0,
            "RetryStorm: outage must have positive start and duration");
    require(config.horizon_s >
                config.outage_start_s + config.outage_duration_s,
            "RetryStorm: horizon must extend past the outage");
    require(config.sla_goodput_fraction > 0.0 &&
                config.sla_goodput_fraction <= 1.0,
            "RetryStorm: SLA fraction outside (0, 1]");
    require(config.recovery_window_epochs >= 1,
            "RetryStorm: recovery window must be at least one epoch");
    dt_ = config.epoch_s;
    epochs_ = static_cast<std::size_t>(std::ceil(config.horizon_s / dt_));
    const auto window = config.recovery_window_epochs;
    outage_start_epoch_ =
        static_cast<std::size_t>(config.outage_start_s / dt_);
    require(outage_start_epoch_ / 2 + window <= outage_start_epoch_,
            "RetryStorm: outage starts too early for a pre-fault SLA window");
    outage_end_s_ = config.outage_start_s + config.outage_duration_s;

    sensing::SensorPlaneConfig sensor_config = config.sensors;
    sensor_config.fault_domains = 1;
    sensors_.emplace(sensor_config);

    offered_rate_.assign(epochs_, 0.0);
    goodput_rate_.assign(epochs_, 0.0);
    failure_rate_.assign(epochs_, 0.0);
    interactive_capacity_rps_ =
        config.service_capacity_rps - config.batch_rps;
  }

  RetryStormEngine(const RetryStormEngine&) = delete;
  RetryStormEngine& operator=(const RetryStormEngine&) = delete;

  std::size_t epochs() const { return epochs_; }
  double epoch_s() const { return dt_; }

  /// Phase A of epoch e, at t0 = e*dt. `kernel` receives the epoch's
  /// completion cohort at t1 = t0 + dt (any Simulator-shaped scheduler: the
  /// serial runner's private kernel, or a federation shard).
  template <typename Kernel>
  void begin_epoch(std::size_t e, Kernel& kernel) {
    const double t0 = static_cast<double>(e) * dt_;
    const double t1 = t0 + dt_;
    const bool outage = t0 >= config_.outage_start_s && t0 < outage_end_s_;

    // Outage onset: every session drops; reconnects spread out like the
    // Fig. 3 login spike.
    if (outage && !sessions_dropped_) {
      population_.disconnect_all(t0);
      sessions_dropped_ = true;
    }

    if (config_.defense.enabled) {
      breaker_.begin_epoch(t0);
      bucket_.refill(dt_);
    }

    // Snapshot ledger deltas for this epoch's breaker/telemetry accounting.
    led0_ = population_.ledger();
    dark_ = 0;
    shed_breaker_ = 0;
    shed_bucket_ = 0;
    shed_queue_ = 0;

    // 1. Client attempts due this epoch, through the admission stack.
    for (const std::uint32_t id : population_.collect_due(t0, dt_)) {
      if (config_.defense.enabled && !breaker_.allow()) {
        ++shed_breaker_;
        population_.on_rejected(id, t0);
      } else if (outage) {
        ++dark_;  // reached a dark service: connection failure
        population_.on_rejected(id, t0);
      } else if (config_.defense.enabled && !bucket_.try_acquire()) {
        ++shed_bucket_;
        population_.on_rejected(id, t0);
      } else if (!queue_.try_push(id, t0)) {
        ++shed_queue_;
        population_.on_rejected(id, t0);
      } else {
        population_.on_admitted(id, t0);
      }
    }
    out_.max_queue_depth = std::max(out_.max_queue_depth, queue_.size());

    // 2. Interactive capacity: total minus the surviving batch tier (the
    // macro overload posture sheds batch to make headroom).
    const double batch_served_rps =
        outage ? 0.0 : config_.batch_rps * (1.0 - batch_shed_frac_);
    interactive_capacity_rps_ =
        outage ? 0.0 : config_.service_capacity_rps - batch_served_rps;

    // 3. Drain the accept queue FIFO; completions land at the epoch end.
    // Fractional credit carries over only while the server is backlogged
    // (an idle server cannot bank capacity).
    fresh0_ = population_.ledger().served;
    stale0_ = population_.ledger().stale_served;
    double credit = serve_carry_ + interactive_capacity_rps_ * dt_;
    if constexpr (Population::kBatchServe) {
      // One id span for the whole cohort, reused epoch over epoch via the
      // arena; the single event keeps the kernel O(1) per epoch instead of
      // O(completions).
      cohort_arena_.reset();
      const std::size_t budget =
          std::min(static_cast<std::size_t>(credit), queue_.size());
      std::uint32_t* cohort = cohort_arena_.template alloc<std::uint32_t>(budget);
      std::size_t cohort_n = 0;
      while (credit >= 1.0 && !queue_.empty()) {
        cohort[cohort_n++] = queue_.front().id;
        queue_.pop();
        credit -= 1.0;
      }
      serve_carry_ = queue_.empty() ? 0.0 : credit;
      if (cohort_n > 0) {
        Population* population = &population_;
        sim::EventFn event{[population, cohort, cohort_n, t1] {
          population->on_served_batch(cohort, cohort_n, t1);
        }};
        kernel.schedule_batch_at(t1, &event, &event + 1);
      }
    } else {
      completion_batch_.clear();
      while (credit >= 1.0 && !queue_.empty()) {
        const std::uint32_t id = queue_.front().id;
        Population* population = &population_;
        completion_batch_.emplace_back(
            [population, id, t1] { population->on_served(id, t1); });
        queue_.pop();
        credit -= 1.0;
      }
      serve_carry_ = queue_.empty() ? 0.0 : credit;
      kernel.schedule_batch_at(t1, completion_batch_.begin(),
                               completion_batch_.end());
    }
  }

  /// Phase B of epoch e, at t1 = (e+1)*dt, after the kernel fired the
  /// epoch's completion cohort.
  void end_epoch(std::size_t e) {
    const double t1 = static_cast<double>(e) * dt_ + dt_;

    // 4. Client deadlines fire after this epoch's completions.
    const auto expired0 = population_.ledger().timed_out;
    population_.expire_timeouts(t1);

    const auto& led1 = population_.ledger();
    const auto fresh_delta = led1.served - fresh0_;
    const auto stale_delta = led1.stale_served - stale0_;
    const auto expired_delta = led1.timed_out - expired0;
    const auto retry_delta = led1.retries - led0_.retries;
    const auto abandoned_delta = led1.abandoned - led0_.abandoned;
    const std::uint64_t shed_delta = shed_breaker_ + shed_bucket_ + shed_queue_;

    // 5. Breaker verdict from downstream outcomes: completions, client
    // timeouts, and dark failures. The stack's own sheds are deliberate and
    // must not trip it.
    if (config_.defense.enabled) {
      const std::uint64_t observed =
          dark_ + fresh_delta + stale_delta + expired_delta;
      breaker_.on_epoch_end(observed, observed - fresh_delta, t1);
    }

    // 6. Shed/retry telemetry through the sensor plane, and the overload
    // signal (from the *estimated* rates, like every macro observation)
    // into the degradation policy for next epoch's posture.
    const double shed_rps = static_cast<double>(shed_delta) / dt_;
    const double retry_rps = static_cast<double>(retry_delta) / dt_;
    telemetry_.record_shed(shed_delta);
    telemetry_.record_retried(retry_delta);
    telemetry_.record_abandoned(abandoned_delta);
    macro::OverloadSignal signal;
    signal.breaker_open =
        config_.defense.enabled &&
        breaker_.state() != cluster::BreakerState::kClosed;
    {
      const auto readings = sensors_->sample(shed_channel_, shed_rps, t1);
      feed_.publish(shed_key_, readings, t1);
      signal.shed_rate_per_s =
          estimator_.update(shed_channel_, readings, t1).value;
    }
    {
      const auto readings = sensors_->sample(retry_channel_, retry_rps, t1);
      feed_.publish(retry_key_, readings, t1);
      signal.retry_rate_per_s =
          estimator_.update(retry_channel_, readings, t1).value;
    }
    if (config_.policy_enabled) {
      policy_.observe_overload(signal, t1);
      const auto action = policy_.react(t1, /*battery_ride_through_s=*/1e12);
      batch_shed_frac_ = action.shed_scale[config_.policy.low_tier_service];
    }

    // 7. Invariants: cumulative flow identities and the retry-budget
    // conservation ledger, every epoch.
    sensing::InvariantMonitor::RequestFlow flow;
    flow.time_s = t1;
    flow.offered = static_cast<double>(led1.attempts);
    flow.served = static_cast<double>(led1.served + led1.stale_served);
    flow.goodput = static_cast<double>(led1.served);
    flow.intents = static_cast<double>(led1.intents);
    flow.retries = static_cast<double>(led1.retries);
    monitor_.check_request_flow(flow);
    monitor_.check_condition("retry-budget-conservation",
                             population_.conservation_ok(),
                             population_.conservation_report(), t1);

    const auto attempts_delta = led1.attempts - led0_.attempts;
    offered_rate_[e] = static_cast<double>(attempts_delta) / dt_;
    goodput_rate_[e] = static_cast<double>(fresh_delta) / dt_;
    failure_rate_[e] = static_cast<double>(stale_delta + expired_delta +
                                           shed_delta + dark_) /
                       dt_;
    out_.dark_failures += dark_;
    out_.shed_breaker += shed_breaker_;
    out_.shed_bucket += shed_bucket_;
    out_.shed_queue += shed_queue_;
    ++out_.epochs;
  }

  /// Post-loop summary: recovery scan, metastability verdict, ledger
  /// copy-out. Call exactly once, after end_epoch(epochs() - 1).
  RetryStormOutcome finish() {
    const auto window = config_.recovery_window_epochs;

    // Pre-fault SLA basis: steady-state goodput over the half of the warm
    // period closest to the outage.
    out_.prefault_goodput_rps =
        retry_storm_window_mean(goodput_rate_, outage_start_epoch_,
                                outage_start_epoch_ - outage_start_epoch_ / 2);
    const double sla_rps =
        config_.sla_goodput_fraction * out_.prefault_goodput_rps;
    const double fail_budget_rps =
        (1.0 - config_.sla_goodput_fraction) * out_.prefault_goodput_rps;

    // Recovery: the first run of `window` consecutive healthy epochs after
    // the outage clears.
    const auto clear_epoch = std::min(
        epochs_, static_cast<std::size_t>(std::ceil(outage_end_s_ / dt_)));
    std::size_t healthy_run = 0;
    for (std::size_t e = clear_epoch; e < epochs_ && !out_.recovered; ++e) {
      const bool healthy = goodput_rate_[e] >= sla_rps &&
                           failure_rate_[e] <= fail_budget_rps;
      healthy_run = healthy ? healthy_run + 1 : 0;
      if (healthy_run >= window) {
        out_.recovered = true;
        out_.recovery_s = static_cast<double>(e + 1) * dt_ - outage_end_s_;
      }
    }

    out_.end_offered_rps = retry_storm_window_mean(offered_rate_, epochs_, window);
    out_.end_goodput_rps = retry_storm_window_mean(goodput_rate_, epochs_, window);
    out_.end_interactive_capacity_rps = interactive_capacity_rps_;
    out_.metastable = !out_.recovered &&
                      out_.end_offered_rps > out_.end_interactive_capacity_rps;

    const auto& led = population_.ledger();
    out_.intents = led.intents;
    out_.attempts = led.attempts;
    out_.retries = led.retries;
    out_.served_fresh = led.served;
    out_.served_stale = led.stale_served;
    out_.timed_out = led.timed_out;
    out_.abandoned = led.abandoned;
    out_.breaker_trips = breaker_.trips();
    out_.breaker_probes = breaker_.probes_issued();
    out_.telemetry_samples = telemetry_.total_samples();
    out_.telemetry_shed = telemetry_.shed_requests();
    out_.telemetry_retried = telemetry_.retried_requests();
    out_.telemetry_abandoned = telemetry_.abandoned_requests();
    out_.conservation_ok = population_.conservation_ok();
    out_.conservation_report = population_.conservation_report();
    out_.invariants_ok = monitor_.ok();
    out_.invariant_violations = monitor_.violation_count();
    out_.invariant_report = monitor_.report();
    out_.decision_counts = log_.counts_by_kind();
    return out_;
  }

 private:
  RetryStormConfig config_;
  double dt_ = 1.0;
  std::size_t epochs_ = 0;
  std::size_t outage_start_epoch_ = 0;
  double outage_end_s_ = 0.0;

  Population population_;
  cluster::BoundedQueue queue_;
  cluster::TokenBucket bucket_;
  cluster::CircuitBreaker breaker_;
  macro::DecisionLog log_;
  macro::DegradationPolicy policy_;
  std::optional<sensing::SensorPlane> sensors_;
  sensing::ValidatedEstimator estimator_;
  sensing::InvariantMonitor monitor_;
  telemetry::TelemetryStore telemetry_;
  sensing::TelemetryFeed feed_{telemetry_};
  const std::uint64_t shed_channel_ =
      sensing::make_channel(sensing::ChannelKind::kShedRate, 0);
  const std::uint64_t retry_channel_ =
      sensing::make_channel(sensing::ChannelKind::kRetryRate, 0);
  const std::uint64_t shed_key_ = telemetry::make_key(0, 1);
  const std::uint64_t retry_key_ = telemetry::make_key(0, 2);

  RetryStormOutcome out_;
  std::vector<double> offered_rate_;
  std::vector<double> goodput_rate_;
  std::vector<double> failure_rate_;
  bool sessions_dropped_ = false;
  std::vector<sim::EventFn> completion_batch_;
  EpochArena cohort_arena_;
  double serve_carry_ = 0.0;
  double batch_shed_frac_ = 0.0;  // from last epoch's policy reaction
  double interactive_capacity_rps_ = 0.0;

  // Phase-A snapshot consumed by phase B of the same epoch.
  workload::ClientLedger led0_;
  std::uint64_t dark_ = 0;
  std::uint64_t shed_breaker_ = 0;
  std::uint64_t shed_bucket_ = 0;
  std::uint64_t shed_queue_ = 0;
  std::uint64_t fresh0_ = 0;
  std::uint64_t stale0_ = 0;
};

}  // namespace epm::faults
