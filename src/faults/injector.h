// FaultInjector: delivers a FaultPlan into the simulation clock.
//
// For each event in the plan the injector schedules an onset callback at
// event.start_s and a clear callback at event.end_s(). Subscribers (one per
// affected layer — cluster, thermal, power, telemetry, the degradation
// policy) receive both edges and report whether they handled the fault;
// the injector keeps a FaultRecord per event so tests can assert the
// conservation property: every injected fault is observed, handled, and
// eventually cleared.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "faults/fault_plan.h"
#include "sim/simulator.h"

namespace epm::faults {

/// Subscriber callback. `onset` is true at event.start_s and false at
/// event.end_s(). Return true if the subscriber reacted to the event.
using FaultHandler =
    std::function<bool(const FaultEvent& event, bool onset, double now_s)>;

/// Per-event bookkeeping for the conservation property.
struct FaultRecord {
  FaultEvent event;
  bool observed = false;   ///< onset delivered to subscribers
  bool handled = false;    ///< at least one subscriber returned true at onset
  bool cleared = false;    ///< clear delivered to subscribers
  double observed_at_s = -1.0;
  double cleared_at_s = -1.0;
};

class FaultInjector {
 public:
  /// Schedules `edge(now_s)` at absolute simulated time `when_s` on
  /// whatever clock the injector was bound to.
  using ScheduleHook =
      std::function<void(double when_s, std::function<void(double now_s)> edge)>;

  /// Binds the plan to one kernel. Kept as the common-case constructor, but
  /// note it captures *that specific* Simulator — under the sharded
  /// federation a world has several kernels, and a plan armed against the
  /// wrong one would deliver edges on another datacenter's clock (the
  /// latent single-kernel assumption PR 7 removed). Delegates to the hook
  /// constructor below.
  FaultInjector(sim::Simulator& sim, FaultPlan plan);

  /// Binds the plan to an arbitrary scheduler — a federation shard, a
  /// fabric, or a test double. arm() schedules every edge through the hook,
  /// and the hook supplies the observation clock (`now_s`), so two
  /// injectors armed on two shards of one sim::ShardedSimulator each see
  /// their own kernel's time.
  FaultInjector(ScheduleHook schedule, FaultPlan plan);

  /// Registers a subscriber; must be called before arm().
  void subscribe(FaultHandler handler);

  /// Schedules every event's onset and clear into the simulator. Call once;
  /// the plan then unfolds as the caller advances the clock.
  void arm();

  const FaultPlan& plan() const { return plan_; }
  const std::vector<FaultRecord>& records() const { return records_; }

  /// Events whose onset has fired but whose clear has not, as of the last
  /// delivered edge.
  std::vector<FaultEvent> active_events() const;
  /// Active events of one type (e.g. all in-progress CRAC failures).
  std::vector<FaultEvent> active_events(FaultType type) const;
  /// True when a fault of `type` is currently active.
  bool any_active(FaultType type) const;

  std::size_t observed_count() const;
  std::size_t handled_count() const;
  std::size_t cleared_count() const;

  /// Conservation check: every event observed, handled, and cleared. Only
  /// meaningful once the clock has passed the plan horizon.
  bool conserved() const;

 private:
  void deliver(std::size_t index, bool onset, double now_s);

  ScheduleHook schedule_;
  FaultPlan plan_;
  std::vector<FaultHandler> handlers_;
  std::vector<FaultRecord> records_;
  bool armed_ = false;
};

}  // namespace epm::faults
