#include "faults/retry_storm.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/arena.h"
#include "core/require.h"
#include "macro/decision_log.h"
#include "sensing/channels.h"
#include "sim/simulator.h"
#include "telemetry/store.h"
#include "workload/client_population_legacy.h"

namespace epm::faults {
namespace {

double window_mean(const std::vector<double>& series, std::size_t end,
                   std::size_t window) {
  const std::size_t lo = end > window ? end - window : 0;
  if (end <= lo) return 0.0;
  double sum = 0.0;
  for (std::size_t i = lo; i < end; ++i) sum += series[i];
  return sum / static_cast<double>(end - lo);
}

/// The epoch driver, generic over the population engine. Population must
/// expose the ClientPopulation drive protocol plus a kBatchServe constant:
/// batch-serve engines get one arena-backed completion cohort per epoch
/// (a single kernel event), per-serve engines get the PR 5 shape — one
/// inline EventFn per completion, batch-scheduled at the epoch end.
template <typename Population>
RetryStormOutcome run_retry_storm_impl(const RetryStormConfig& config) {
  require(config.epoch_s > 0.0, "RetryStorm: epoch must be positive");
  require(config.service_capacity_rps > 0.0,
          "RetryStorm: service capacity must be positive");
  require(config.batch_rps >= 0.0 &&
              config.batch_rps < config.service_capacity_rps,
          "RetryStorm: batch tier must leave interactive capacity");
  require(config.outage_start_s > 0.0 && config.outage_duration_s > 0.0,
          "RetryStorm: outage must have positive start and duration");
  require(config.horizon_s >
              config.outage_start_s + config.outage_duration_s,
          "RetryStorm: horizon must extend past the outage");
  require(config.sla_goodput_fraction > 0.0 &&
              config.sla_goodput_fraction <= 1.0,
          "RetryStorm: SLA fraction outside (0, 1]");
  require(config.recovery_window_epochs >= 1,
          "RetryStorm: recovery window must be at least one epoch");
  const double dt = config.epoch_s;
  const auto epochs =
      static_cast<std::size_t>(std::ceil(config.horizon_s / dt));
  const auto window = config.recovery_window_epochs;
  const auto outage_start_epoch =
      static_cast<std::size_t>(config.outage_start_s / dt);
  require(outage_start_epoch / 2 + window <= outage_start_epoch,
          "RetryStorm: outage starts too early for a pre-fault SLA window");

  Population population(config.clients);
  cluster::BoundedQueue queue(config.defense.enabled
                                  ? config.defense.queue_capacity
                                  : config.naive_queue_capacity);
  cluster::TokenBucket bucket(config.defense.bucket);
  cluster::CircuitBreaker breaker(config.defense.breaker);

  macro::DecisionLog log;
  macro::DegradationPolicy policy(config.policy, /*service_count=*/2, &log);

  sensing::SensorPlaneConfig sensor_config = config.sensors;
  sensor_config.fault_domains = 1;
  sensing::SensorPlane sensors(sensor_config);
  sensing::ValidatedEstimator estimator(config.estimator);
  sensing::InvariantMonitor monitor(config.invariants);
  telemetry::TelemetryStore telemetry;
  const auto shed_channel =
      sensing::make_channel(sensing::ChannelKind::kShedRate, 0);
  const auto retry_channel =
      sensing::make_channel(sensing::ChannelKind::kRetryRate, 0);
  const auto shed_key = telemetry::make_key(0, 1);
  const auto retry_key = telemetry::make_key(0, 2);

  RetryStormOutcome out;
  std::vector<double> offered_rate(epochs, 0.0);
  std::vector<double> goodput_rate(epochs, 0.0);
  std::vector<double> failure_rate(epochs, 0.0);

  const double outage_end_s =
      config.outage_start_s + config.outage_duration_s;
  bool sessions_dropped = false;
  // Completion timeline. Batch-serve engines stage the epoch's completion
  // cohort as one arena-backed id span delivered by a single kernel event;
  // per-serve engines stage one inline EventFn per completed request,
  // batch-scheduled at the epoch end (one bucket lookup for the whole
  // batch) and fired in FIFO order by the seq tiebreak.
  sim::Simulator completions;
  std::vector<sim::EventFn> completion_batch;
  EpochArena cohort_arena;
  double serve_carry = 0.0;
  double batch_shed_frac = 0.0;  // from last epoch's policy reaction
  double interactive_capacity_rps =
      config.service_capacity_rps - config.batch_rps;

  for (std::size_t e = 0; e < epochs; ++e) {
    const double t0 = static_cast<double>(e) * dt;
    const double t1 = t0 + dt;
    const bool outage = t0 >= config.outage_start_s && t0 < outage_end_s;

    // Outage onset: every session drops; reconnects spread out like the
    // Fig. 3 login spike.
    if (outage && !sessions_dropped) {
      population.disconnect_all(t0);
      sessions_dropped = true;
    }

    if (config.defense.enabled) {
      breaker.begin_epoch(t0);
      bucket.refill(dt);
    }

    // Snapshot ledger deltas for this epoch's breaker/telemetry accounting.
    const auto led0 = population.ledger();
    std::uint64_t dark = 0;
    std::uint64_t shed_breaker = 0;
    std::uint64_t shed_bucket = 0;
    std::uint64_t shed_queue = 0;

    // 1. Client attempts due this epoch, through the admission stack.
    for (const std::uint32_t id : population.collect_due(t0, dt)) {
      if (config.defense.enabled && !breaker.allow()) {
        ++shed_breaker;
        population.on_rejected(id, t0);
      } else if (outage) {
        ++dark;  // reached a dark service: connection failure
        population.on_rejected(id, t0);
      } else if (config.defense.enabled && !bucket.try_acquire()) {
        ++shed_bucket;
        population.on_rejected(id, t0);
      } else if (!queue.try_push(id, t0)) {
        ++shed_queue;
        population.on_rejected(id, t0);
      } else {
        population.on_admitted(id, t0);
      }
    }
    out.max_queue_depth = std::max(out.max_queue_depth, queue.size());

    // 2. Interactive capacity: total minus the surviving batch tier (the
    // macro overload posture sheds batch to make headroom).
    const double batch_served_rps =
        outage ? 0.0 : config.batch_rps * (1.0 - batch_shed_frac);
    interactive_capacity_rps =
        outage ? 0.0 : config.service_capacity_rps - batch_served_rps;

    // 3. Drain the accept queue FIFO; completions land at the epoch end.
    // Fractional credit carries over only while the server is backlogged
    // (an idle server cannot bank capacity).
    const auto fresh0 = population.ledger().served;
    const auto stale0 = population.ledger().stale_served;
    double credit = serve_carry + interactive_capacity_rps * dt;
    if constexpr (Population::kBatchServe) {
      // One id span for the whole cohort, reused epoch over epoch via the
      // arena; the single event keeps the kernel O(1) per epoch instead of
      // O(completions).
      cohort_arena.reset();
      const std::size_t budget =
          std::min(static_cast<std::size_t>(credit), queue.size());
      std::uint32_t* cohort = cohort_arena.alloc<std::uint32_t>(budget);
      std::size_t cohort_n = 0;
      while (credit >= 1.0 && !queue.empty()) {
        cohort[cohort_n++] = queue.front().id;
        queue.pop();
        credit -= 1.0;
      }
      serve_carry = queue.empty() ? 0.0 : credit;
      if (cohort_n > 0) {
        sim::EventFn event{[&population, cohort, cohort_n, t1] {
          population.on_served_batch(cohort, cohort_n, t1);
        }};
        completions.schedule_batch_at(t1, &event, &event + 1);
      }
    } else {
      completion_batch.clear();
      while (credit >= 1.0 && !queue.empty()) {
        const std::uint32_t id = queue.front().id;
        completion_batch.emplace_back(
            [&population, id, t1] { population.on_served(id, t1); });
        queue.pop();
        credit -= 1.0;
      }
      serve_carry = queue.empty() ? 0.0 : credit;
      completions.schedule_batch_at(t1, completion_batch.begin(),
                                    completion_batch.end());
    }
    completions.run_until(t1);

    // 4. Client deadlines fire after this epoch's completions.
    const auto expired0 = population.ledger().timed_out;
    population.expire_timeouts(t1);

    const auto& led1 = population.ledger();
    const auto fresh_delta = led1.served - fresh0;
    const auto stale_delta = led1.stale_served - stale0;
    const auto expired_delta = led1.timed_out - expired0;
    const auto retry_delta = led1.retries - led0.retries;
    const auto abandoned_delta = led1.abandoned - led0.abandoned;
    const std::uint64_t shed_delta = shed_breaker + shed_bucket + shed_queue;

    // 5. Breaker verdict from downstream outcomes: completions, client
    // timeouts, and dark failures. The stack's own sheds are deliberate and
    // must not trip it.
    if (config.defense.enabled) {
      const std::uint64_t observed =
          dark + fresh_delta + stale_delta + expired_delta;
      breaker.on_epoch_end(observed, observed - fresh_delta, t1);
    }

    // 6. Shed/retry telemetry through the sensor plane, and the overload
    // signal (from the *estimated* rates, like every macro observation)
    // into the degradation policy for next epoch's posture.
    const double shed_rps = static_cast<double>(shed_delta) / dt;
    const double retry_rps = static_cast<double>(retry_delta) / dt;
    telemetry.record_shed(shed_delta);
    telemetry.record_retried(retry_delta);
    telemetry.record_abandoned(abandoned_delta);
    macro::OverloadSignal signal;
    signal.breaker_open =
        config.defense.enabled &&
        breaker.state() != cluster::BreakerState::kClosed;
    {
      const auto readings = sensors.sample(shed_channel, shed_rps, t1);
      if (!readings.front().valid) {
        telemetry.record_dropout(1);
      } else {
        telemetry.append(shed_key, t1, readings.front().value,
                         readings.front().degraded);
      }
      signal.shed_rate_per_s = estimator.update(shed_channel, readings, t1).value;
    }
    {
      const auto readings = sensors.sample(retry_channel, retry_rps, t1);
      if (!readings.front().valid) {
        telemetry.record_dropout(1);
      } else {
        telemetry.append(retry_key, t1, readings.front().value,
                         readings.front().degraded);
      }
      signal.retry_rate_per_s =
          estimator.update(retry_channel, readings, t1).value;
    }
    if (config.policy_enabled) {
      policy.observe_overload(signal, t1);
      const auto action =
          policy.react(t1, /*battery_ride_through_s=*/1e12);
      batch_shed_frac = action.shed_scale[config.policy.low_tier_service];
    }

    // 7. Invariants: cumulative flow identities and the retry-budget
    // conservation ledger, every epoch.
    sensing::InvariantMonitor::RequestFlow flow;
    flow.time_s = t1;
    flow.offered = static_cast<double>(led1.attempts);
    flow.served = static_cast<double>(led1.served + led1.stale_served);
    flow.goodput = static_cast<double>(led1.served);
    flow.intents = static_cast<double>(led1.intents);
    flow.retries = static_cast<double>(led1.retries);
    monitor.check_request_flow(flow);
    monitor.check_condition("retry-budget-conservation",
                            population.conservation_ok(),
                            population.conservation_report(), t1);

    const auto attempts_delta = led1.attempts - led0.attempts;
    offered_rate[e] = static_cast<double>(attempts_delta) / dt;
    goodput_rate[e] = static_cast<double>(fresh_delta) / dt;
    failure_rate[e] =
        static_cast<double>(stale_delta + expired_delta + shed_delta + dark) /
        dt;
    out.dark_failures += dark;
    out.shed_breaker += shed_breaker;
    out.shed_bucket += shed_bucket;
    out.shed_queue += shed_queue;
    ++out.epochs;
  }

  // Pre-fault SLA basis: steady-state goodput over the half of the warm
  // period closest to the outage.
  out.prefault_goodput_rps =
      window_mean(goodput_rate, outage_start_epoch,
                  outage_start_epoch - outage_start_epoch / 2);
  const double sla_rps =
      config.sla_goodput_fraction * out.prefault_goodput_rps;
  const double fail_budget_rps =
      (1.0 - config.sla_goodput_fraction) * out.prefault_goodput_rps;

  // Recovery: the first run of `window` consecutive healthy epochs after
  // the outage clears.
  const auto clear_epoch =
      std::min(epochs, static_cast<std::size_t>(std::ceil(outage_end_s / dt)));
  std::size_t healthy_run = 0;
  for (std::size_t e = clear_epoch; e < epochs && !out.recovered; ++e) {
    const bool healthy =
        goodput_rate[e] >= sla_rps && failure_rate[e] <= fail_budget_rps;
    healthy_run = healthy ? healthy_run + 1 : 0;
    if (healthy_run >= window) {
      out.recovered = true;
      out.recovery_s = static_cast<double>(e + 1) * dt - outage_end_s;
    }
  }

  out.end_offered_rps = window_mean(offered_rate, epochs, window);
  out.end_goodput_rps = window_mean(goodput_rate, epochs, window);
  out.end_interactive_capacity_rps = interactive_capacity_rps;
  out.metastable =
      !out.recovered && out.end_offered_rps > out.end_interactive_capacity_rps;

  const auto& led = population.ledger();
  out.intents = led.intents;
  out.attempts = led.attempts;
  out.retries = led.retries;
  out.served_fresh = led.served;
  out.served_stale = led.stale_served;
  out.timed_out = led.timed_out;
  out.abandoned = led.abandoned;
  out.breaker_trips = breaker.trips();
  out.breaker_probes = breaker.probes_issued();
  out.telemetry_samples = telemetry.total_samples();
  out.telemetry_shed = telemetry.shed_requests();
  out.telemetry_retried = telemetry.retried_requests();
  out.telemetry_abandoned = telemetry.abandoned_requests();
  out.conservation_ok = population.conservation_ok();
  out.conservation_report = population.conservation_report();
  out.invariants_ok = monitor.ok();
  out.invariant_violations = monitor.violation_count();
  out.invariant_report = monitor.report();
  out.decision_counts = log.counts_by_kind();
  return out;
}

}  // namespace

RetryStormOutcome run_retry_storm(const RetryStormConfig& config) {
  return run_retry_storm_impl<workload::ClientPopulation>(config);
}

RetryStormOutcome run_retry_storm_legacy(const RetryStormConfig& config) {
  return run_retry_storm_impl<workload::LegacyClientPopulation>(config);
}

RetryStormConfig make_reference_retry_storm_config(
    workload::RetryBackoff backoff, double outage_duration_s, bool defended) {
  RetryStormConfig config;
  config.clients.clients = 20000;
  config.clients.think_time_s = 40.0;
  config.clients.request_timeout_s = 4.0;
  config.clients.reconnect_spread_s = 60.0;
  config.clients.start_spread_s = 40.0;
  config.clients.seed = 7;
  config.clients.retry.backoff = backoff;
  config.clients.retry.base_delay_s = 2.0;
  config.clients.retry.multiplier = 2.0;
  config.clients.retry.max_delay_s = 60.0;
  config.clients.retry.jitter_frac = 0.5;
  config.clients.retry.max_attempts = 8;
  // Abandoned users come back: a login storm is not solved by losing the
  // customers (and a cooldown that returns them is what sustains the
  // congestion the defense must survive).
  config.clients.retry.abandon_cooldown_s = 30.0;

  config.service_capacity_rps = 1000.0;
  config.batch_rps = 300.0;
  config.outage_start_s = 180.0;
  config.outage_duration_s = outage_duration_s;
  config.horizon_s = 1200.0;

  config.defense.enabled = defended;
  config.defense.bucket = {900.0, 900.0};
  // Worst-case sojourn 1800 / 1000 rps = 1.8 s < the 4 s client timeout:
  // everything the queue accepts is still fresh when served.
  config.defense.queue_capacity = 1800;
  config.defense.breaker.failure_ratio = 0.5;
  config.defense.breaker.min_volume = 20;
  config.defense.breaker.open_duration_s = 5.0;
  config.defense.breaker.half_open_probes = 5;
  config.defense.breaker.close_after_healthy_epochs = 2;

  config.policy_enabled = defended;
  config.policy.low_tier_service = 1;  // batch
  config.policy.overload_shed_fraction = 1.0;
  config.policy.overload_min_shed_rate_per_s = 1.0;
  return config;
}

}  // namespace epm::faults
