#include "faults/retry_storm.h"

#include <cstddef>
#include <memory>

#include "faults/retry_storm_engine.h"
#include "sim/sharded_simulator.h"
#include "sim/simulator.h"
#include "workload/client_population_legacy.h"

namespace epm::faults {
namespace {

/// The serial runner: a plain epoch loop over the phase-split engine with a
/// private completion kernel — the exact PR 4-6 execution shape (the engine
/// is verbatim code motion from the old monolithic loop, so outcomes are
/// bit-identical to every checked-in anchor).
template <typename Population>
RetryStormOutcome run_retry_storm_impl(const RetryStormConfig& config) {
  RetryStormEngine<Population> engine(config);
  sim::Simulator completions;
  const double dt = engine.epoch_s();
  for (std::size_t e = 0; e < engine.epochs(); ++e) {
    engine.begin_epoch(e, completions);
    completions.run_until(static_cast<double>(e) * dt + dt);
    engine.end_epoch(e);
  }
  return engine.finish();
}

}  // namespace

RetryStormOutcome run_retry_storm(const RetryStormConfig& config) {
  return run_retry_storm_impl<workload::ClientPopulation>(config);
}

RetryStormOutcome run_retry_storm_legacy(const RetryStormConfig& config) {
  return run_retry_storm_impl<workload::LegacyClientPopulation>(config);
}

struct FederatedRetryStorm::Impl {
  explicit Impl(const RetryStormConfig& config) : engine(config) {}
  RetryStormEngine<workload::ClientPopulation> engine;
};

FederatedRetryStorm::FederatedRetryStorm(const RetryStormConfig& config,
                                         sim::ShardedSimulator& fed,
                                         std::size_t shard)
    : impl_(std::make_unique<Impl>(config)) {
  auto* eng = &impl_->engine;
  sim::Simulator* kernel = &fed.shard(shard);
  const double dt = eng->epoch_s();
  const std::size_t epochs = eng->epochs();
  end_s_ = static_cast<double>(epochs) * dt;

  // Driver event chain: D(e) fires at t = e*dt and runs phase B of epoch
  // e-1, then phase A of epoch e, then schedules D(e+1). Because phase A
  // schedules epoch e's completion cohort at (e+1)*dt BEFORE D(e+1) is
  // pushed, the kernel's same-timestamp FIFO fires the cohort first — the
  // serial loop's "completions.run_until(t1); end_epoch(e)" order, replayed
  // event-by-event. D(epochs) closes the final epoch.
  struct Driver {
    RetryStormEngine<workload::ClientPopulation>* eng;
    sim::Simulator* kernel;
    double dt;
    std::size_t epochs;
    void operator()(std::size_t e) {
      if (e > 0) eng->end_epoch(e - 1);
      if (e >= epochs) return;
      eng->begin_epoch(e, *kernel);
      kernel->schedule_at(static_cast<double>(e) * dt + dt,
                          [self = *this, e]() mutable { self(e + 1); });
    }
  };
  kernel->schedule_at(0.0, [driver = Driver{eng, kernel, dt, epochs}]() mutable {
    driver(0);
  });
}

FederatedRetryStorm::~FederatedRetryStorm() = default;

RetryStormOutcome FederatedRetryStorm::finish() {
  ensure(impl_ != nullptr, "FederatedRetryStorm: finish() called twice");
  RetryStormOutcome out = impl_->engine.finish();
  impl_.reset();
  return out;
}

RetryStormOutcome run_retry_storm_federated(const RetryStormConfig& config,
                                            sim::ShardedSimulator& fed,
                                            std::size_t shard) {
  FederatedRetryStorm storm(config, fed, shard);
  fed.run_until(storm.end_s());
  return storm.finish();
}

RetryStormConfig make_reference_retry_storm_config(
    workload::RetryBackoff backoff, double outage_duration_s, bool defended) {
  RetryStormConfig config;
  config.clients.clients = 20000;
  config.clients.think_time_s = 40.0;
  config.clients.request_timeout_s = 4.0;
  config.clients.reconnect_spread_s = 60.0;
  config.clients.start_spread_s = 40.0;
  config.clients.seed = 7;
  config.clients.retry.backoff = backoff;
  config.clients.retry.base_delay_s = 2.0;
  config.clients.retry.multiplier = 2.0;
  config.clients.retry.max_delay_s = 60.0;
  config.clients.retry.jitter_frac = 0.5;
  config.clients.retry.max_attempts = 8;
  // Abandoned users come back: a login storm is not solved by losing the
  // customers (and a cooldown that returns them is what sustains the
  // congestion the defense must survive).
  config.clients.retry.abandon_cooldown_s = 30.0;

  config.service_capacity_rps = 1000.0;
  config.batch_rps = 300.0;
  config.outage_start_s = 180.0;
  config.outage_duration_s = outage_duration_s;
  config.horizon_s = 1200.0;

  config.defense.enabled = defended;
  config.defense.bucket = {900.0, 900.0};
  // Worst-case sojourn 1800 / 1000 rps = 1.8 s < the 4 s client timeout:
  // everything the queue accepts is still fresh when served.
  config.defense.queue_capacity = 1800;
  config.defense.breaker.failure_ratio = 0.5;
  config.defense.breaker.min_volume = 20;
  config.defense.breaker.open_duration_s = 5.0;
  config.defense.breaker.half_open_probes = 5;
  config.defense.breaker.close_after_healthy_epochs = 2;

  config.policy_enabled = defended;
  config.policy.low_tier_service = 1;  // batch
  config.policy.overload_shed_fraction = 1.0;
  config.policy.overload_min_shed_rate_per_s = 1.0;
  return config;
}

}  // namespace epm::faults
