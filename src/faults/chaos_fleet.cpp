#include "faults/chaos_fleet.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <utility>

#include "core/require.h"
#include "core/rng.h"
#include "faults/fault_domain.h"
#include "sim/fabric.h"
#include "sim/sharded_simulator.h"
#include "sim/snapshot.h"

namespace epm::faults {
namespace {

constexpr std::uint64_t kDriveTag = 1;
constexpr std::uint64_t kWorkTag = 2;
constexpr std::uint32_t kChaosMagic = 0x736f6163;  // "caos"
constexpr std::uint32_t kChaosVersion = 1;

/// Deterministic uniform draw for (seed, dc, counter) — one independent
/// value per drive epoch, never shared across datacenters.
double u01(std::uint64_t seed, std::uint64_t d, std::uint64_t ctr) {
  const std::uint64_t z =
      SplitMix64::mix(seed + 0x9e3779b97f4a7c15ULL * (d * 1000003ULL + ctr + 1));
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

void validate(const ChaosFleetConfig& c) {
  require(c.dcs >= 1, "chaos fleet: need at least one datacenter");
  require(c.epoch_s > 0.0, "chaos fleet: epoch_s must be positive");
  require(c.lookahead_s > 0.0, "chaos fleet: lookahead_s must be positive");
  require(c.drive_until_s > 0.0 && c.drive_until_s <= c.horizon_s,
          "chaos fleet: need 0 < drive_until_s <= horizon_s");
  require(c.arrival_rate_rps >= 0.0 && c.service_rate_rps >= 0.0,
          "chaos fleet: rates must be non-negative");
  require(c.forward_fraction >= 0.0 && c.forward_fraction <= 1.0,
          "chaos fleet: forward_fraction must be in [0, 1]");
}

sim::ShardedConfig make_sharded_config(const ChaosFleetConfig& c) {
  sim::ShardedConfig sc;
  sc.shards = c.dcs;
  sc.threads = c.threads;
  sc.uniform_lookahead_s = c.lookahead_s;
  return sc;
}

/// The snapshot-capable drive world: one TaggedKernel per shard, every
/// event a (tag, payload) record, every cross-shard message tagged. All
/// mutable state is plain data, so save()/restore() capture it exactly.
class ChaosWorld {
 public:
  ChaosWorld(const ChaosFleetConfig& config, sim::ShardedSimulator& fed)
      : config_(config), fed_(fed), dcs_(config.dcs) {
    for (std::size_t d = 0; d < config_.dcs; ++d) {
      dcs_[d].fwd_seq.assign(config_.dcs, 0);
      dcs_[d].last_seen.assign(config_.dcs, 0);
      kernels_.push_back(std::make_unique<sim::TaggedKernel>(fed_.shard(d)));
      sim::TaggedKernel& tk = *kernels_.back();
      tk.on(kDriveTag, [this](double now, const sim::TagPayload& p) {
        drive(static_cast<std::size_t>(p[0]), now);
      });
      tk.on(kWorkTag, [this, d](double, const sim::TagPayload& p) {
        work(d, p);
      });
    }
    fed_.set_tagged_delivery(
        [this](std::size_t dst, double when_s, std::uint64_t tag,
               const std::vector<std::uint64_t>& payload) {
          kernels_[dst]->schedule_tagged_at(when_s, tag, payload);
        });
  }

  /// Starts a fresh run (first drive tick on every shard at t = 0). NOT
  /// called on the restore path — the snapshot carries the pending records.
  void arm() {
    for (std::size_t d = 0; d < config_.dcs; ++d) {
      kernels_[d]->schedule_tagged_at(0.0, kDriveTag,
                                      {static_cast<std::uint64_t>(d)});
    }
  }

  void save(sim::SnapshotWriter& w) const {
    w.begin_section(kChaosMagic, kChaosVersion);
    w.write_u64(config_.dcs);
    w.write_u8(fifo_ok_ ? 1 : 0);
    for (const Dc& dc : dcs_) {
      w.write_u64(dc.generated);
      w.write_u64(dc.served);
      w.write_u64(dc.dropped);
      w.write_u64(dc.backlog);
      w.write_u64(dc.forwarded_items);
      w.write_u64(dc.received_items);
      w.write_u64(dc.epoch);
      w.write_u64(dc.rng_ctr);
      w.write_payload(dc.fwd_seq);
      w.write_payload(dc.last_seen);
    }
    for (std::size_t d = 0; d < config_.dcs; ++d) kernels_[d]->save(w);
    fed_.save_state(w);
  }

  void restore(sim::SnapshotReader& r) {
    r.expect_section(kChaosMagic, kChaosVersion);
    require(r.read_u64() == config_.dcs,
            "chaos snapshot datacenter count does not match the config");
    fifo_ok_ = r.read_u8() != 0;
    for (Dc& dc : dcs_) {
      dc.generated = r.read_u64();
      dc.served = r.read_u64();
      dc.dropped = r.read_u64();
      dc.backlog = r.read_u64();
      dc.forwarded_items = r.read_u64();
      dc.received_items = r.read_u64();
      dc.epoch = r.read_u64();
      dc.rng_ctr = r.read_u64();
      dc.fwd_seq = r.read_payload();
      dc.last_seen = r.read_payload();
      require(dc.fwd_seq.size() == config_.dcs &&
                  dc.last_seen.size() == config_.dcs,
              "chaos snapshot sequence tables do not match the fleet size");
    }
    for (std::size_t d = 0; d < config_.dcs; ++d) kernels_[d]->restore(r);
    fed_.restore_state(r);
  }

  ChaosFleetOutcome finish() const {
    ChaosFleetOutcome out;
    out.dcs.resize(config_.dcs);
    std::uint64_t gen = 0, served = 0, dropped = 0, backlog = 0, fwd = 0,
                  recv = 0;
    for (std::size_t d = 0; d < config_.dcs; ++d) {
      const Dc& dc = dcs_[d];
      ChaosDcOutcome& o = out.dcs[d];
      o.generated = dc.generated;
      o.served = dc.served;
      o.dropped = dc.dropped;
      o.backlog = dc.backlog;
      o.forwarded_items = dc.forwarded_items;
      o.received_items = dc.received_items;
      o.epochs = dc.epoch;
      gen += dc.generated;
      served += dc.served;
      dropped += dc.dropped;
      backlog += dc.backlog;
      fwd += dc.forwarded_items;
      recv += dc.received_items;
    }
    out.final_now_s = fed_.now();
    out.final_pending = fed_.pending();
    out.messages_sent = fed_.messages_sent();
    out.messages_redelivered = fed_.messages_redelivered();
    out.messages_parked_end = fed_.messages_parked();
    out.fifo_ok = fifo_ok_;
    const bool drained =
        out.messages_parked_end == 0 && out.final_pending == 0;
    const bool zero_loss = fwd == recv;
    const bool ledger = gen == served + dropped + backlog + (fwd - recv);
    out.conservation_ok = drained && zero_loss && ledger;
    std::ostringstream os;
    os << "generated=" << gen << " served=" << served << " dropped=" << dropped
       << " backlog=" << backlog << " forwarded=" << fwd
       << " received=" << recv << " parked=" << out.messages_parked_end
       << " pending=" << out.final_pending
       << (out.conservation_ok ? " [conserved]" : " [NOT conserved]");
    out.conservation_report = os.str();
    return out;
  }

 private:
  struct Dc {
    std::uint64_t generated = 0;
    std::uint64_t served = 0;
    std::uint64_t dropped = 0;
    std::uint64_t backlog = 0;
    std::uint64_t forwarded_items = 0;
    std::uint64_t received_items = 0;
    std::uint64_t epoch = 0;
    std::uint64_t rng_ctr = 0;
    /// fwd_seq[dst]: messages ever forwarded to `dst` (the FIFO sequence
    /// stamped on each work message); last_seen[src]: highest sequence
    /// received from `src` — arrival must be exactly last_seen + 1.
    std::vector<std::uint64_t> fwd_seq;
    std::vector<std::uint64_t> last_seen;
  };

  void drive(std::size_t d, double now) {
    Dc& dc = dcs_[d];
    ++dc.epoch;
    const double u = u01(config_.seed, d, dc.rng_ctr++);
    const auto arrivals = static_cast<std::uint64_t>(std::floor(
        config_.arrival_rate_rps * config_.epoch_s * (0.8 + 0.4 * u)));
    dc.generated += arrivals;
    const std::size_t n = config_.dcs;
    std::uint64_t fwd = static_cast<std::uint64_t>(
        std::floor(static_cast<double>(arrivals) * config_.forward_fraction));
    if (n <= 1) fwd = 0;
    dc.backlog += arrivals - fwd;
    if (fwd > 0) {
      // Rotate over peers by epoch; d + 1 + offset is never d itself.
      const std::size_t offset =
          static_cast<std::size_t>((dc.epoch - 1) % (n - 1));
      const std::size_t peer = (d + 1 + offset) % n;
      const std::uint64_t seq = ++dc.fwd_seq[peer];
      dc.forwarded_items += fwd;
      fed_.send_tagged(d, peer, config_.lookahead_s, kWorkTag,
                       {static_cast<std::uint64_t>(d), fwd, seq});
    }
    const auto capacity = static_cast<std::uint64_t>(
        std::floor(config_.service_rate_rps * config_.epoch_s));
    const std::uint64_t serve = std::min(dc.backlog, capacity);
    dc.backlog -= serve;
    dc.served += serve;
    if (dc.backlog > config_.backlog_cap) {
      dc.dropped += dc.backlog - config_.backlog_cap;
      dc.backlog = config_.backlog_cap;
    }
    // Self-reschedule with a fresh record id (snapshot invariant) until the
    // drive window closes; the slack to the horizon drains in-flight work.
    const double next = now + config_.epoch_s;
    if (next < config_.drive_until_s) {
      kernels_[d]->schedule_tagged_at(next, kDriveTag,
                                      {static_cast<std::uint64_t>(d)});
    }
  }

  void work(std::size_t dst, const sim::TagPayload& p) {
    require(p.size() == 3, "chaos work payload must be (src, count, seq)");
    const auto src = static_cast<std::size_t>(p[0]);
    require(src < config_.dcs, "chaos work message from unknown datacenter");
    Dc& dc = dcs_[dst];
    if (p[2] != dc.last_seen[src] + 1) fifo_ok_ = false;
    dc.last_seen[src] = p[2];
    dc.received_items += p[1];
    dc.backlog += p[1];
  }

  const ChaosFleetConfig config_;
  sim::ShardedSimulator& fed_;
  std::vector<Dc> dcs_;
  std::vector<std::unique_ptr<sim::TaggedKernel>> kernels_;
  bool fifo_ok_ = true;
};

ChaosRecoveryArm summarize_arm(const FleetStormOutcome& o, double threshold) {
  ChaosRecoveryArm arm;
  arm.fleet_prefault_goodput_rps = o.fleet_prefault_goodput_rps;
  arm.fleet_end_goodput_rps = o.fleet_end_goodput_rps;
  arm.ratio = o.fleet_prefault_goodput_rps > 0.0
                  ? o.fleet_end_goodput_rps / o.fleet_prefault_goodput_rps
                  : 0.0;
  for (const FleetDcOutcome& dc : o.dcs) arm.grid_signals += dc.grid_signals;
  arm.conservation_ok = o.conservation_ok;
  arm.recovered = arm.ratio >= threshold;
  return arm;
}

}  // namespace

bool chaos_outcomes_equal(const ChaosFleetOutcome& a,
                          const ChaosFleetOutcome& b) {
  if (a.dcs.size() != b.dcs.size()) return false;
  for (std::size_t d = 0; d < a.dcs.size(); ++d) {
    const ChaosDcOutcome& x = a.dcs[d];
    const ChaosDcOutcome& y = b.dcs[d];
    if (x.generated != y.generated || x.served != y.served ||
        x.dropped != y.dropped || x.backlog != y.backlog ||
        x.forwarded_items != y.forwarded_items ||
        x.received_items != y.received_items || x.epochs != y.epochs) {
      return false;
    }
  }
  return a.final_now_s == b.final_now_s &&
         a.final_pending == b.final_pending && a.fifo_ok == b.fifo_ok &&
         a.messages_redelivered == b.messages_redelivered &&
         a.messages_parked_end == b.messages_parked_end &&
         a.conservation_ok == b.conservation_ok &&
         a.conservation_report == b.conservation_report;
}

ChaosFleetOutcome run_chaos_fleet(const ChaosFleetConfig& config,
                                  const network::InterDcLinkPlan* plan) {
  validate(config);
  sim::ShardedSimulator fed(make_sharded_config(config));
  if (plan != nullptr) fed.set_link_plan(plan);
  ChaosWorld world(config, fed);
  world.arm();
  fed.run_until(config.horizon_s);
  return world.finish();
}

ChaosRestoreReport run_chaos_fleet_with_restore(const ChaosFleetConfig& config,
                                                double snapshot_at_s,
                                                double kill_at_s) {
  validate(config);
  require(snapshot_at_s > 0.0 && snapshot_at_s <= kill_at_s &&
              kill_at_s < config.horizon_s,
          "chaos restore drill requires 0 < snapshot_at <= kill_at < horizon");
  ChaosRestoreReport rep;
  rep.uninterrupted = run_chaos_fleet(config);

  std::vector<std::uint8_t> snapshot;
  {
    sim::ShardedSimulator fed(make_sharded_config(config));
    ChaosWorld world(config, fed);
    world.arm();
    fed.run_until(snapshot_at_s);
    sim::SnapshotWriter w;
    world.save(w);
    snapshot = w.take();
    // Keep running past the checkpoint, then "kill": federation and world
    // are destroyed at scope exit, everything after the snapshot discarded.
    fed.run_until(kill_at_s);
  }
  rep.snapshot_bytes = snapshot.size();

  {
    // A cold process: fresh federation, fresh world (handlers registered,
    // nothing armed), state rebuilt purely from the snapshot bytes.
    sim::ShardedSimulator fed(make_sharded_config(config));
    ChaosWorld world(config, fed);
    sim::SnapshotReader r(snapshot);
    world.restore(r);
    require(r.at_end(), "chaos snapshot has trailing bytes");
    fed.run_until(config.horizon_s);
    rep.restored = world.finish();
  }
  rep.identical = chaos_outcomes_equal(rep.uninterrupted, rep.restored);
  return rep;
}

ChaosPartitionReport run_chaos_partition_drill(const ChaosFleetConfig& config,
                                               double partition_at_s,
                                               double check_at_s,
                                               double heal_at_s) {
  validate(config);
  require(config.dcs >= 2, "partition drill needs at least two datacenters");
  require(partition_at_s >= 0.0 && partition_at_s < check_at_s &&
              check_at_s <= heal_at_s && heal_at_s < config.horizon_s,
          "partition drill requires partition < check <= heal < horizon");

  network::InterDcLinkPlan plan(config.dcs);
  plan.partition(0, 1, partition_at_s);

  sim::ShardedSimulator fed(make_sharded_config(config));
  fed.set_link_plan(&plan);
  ChaosWorld world(config, fed);
  world.arm();
  fed.run_until(check_at_s);

  ChaosPartitionReport rep;
  rep.parked_at_check = fed.messages_parked();
  rep.parked_seen = rep.parked_at_check > 0;

  plan.heal(0, 1, heal_at_s);
  fed.run_until(config.horizon_s);

  rep.outcome = world.finish();
  rep.redelivered = rep.outcome.messages_redelivered;
  rep.drained = rep.outcome.messages_parked_end == 0;
  std::uint64_t fwd = 0, recv = 0;
  for (const ChaosDcOutcome& dc : rep.outcome.dcs) {
    fwd += dc.forwarded_items;
    recv += dc.received_items;
  }
  rep.zero_loss = fwd == recv && rep.outcome.final_pending == 0;
  rep.fifo_ok = rep.outcome.fifo_ok;
  rep.passed = rep.parked_seen && rep.drained && rep.zero_loss && rep.fifo_ok;
  return rep;
}

ChaosRecoveryReport run_chaos_recovery(std::size_t dcs,
                                       std::size_t clients_per_dc,
                                       std::uint64_t seed,
                                       const std::string& grid_script,
                                       double threshold) {
  require(threshold > 0.0 && threshold <= 1.0,
          "chaos recovery threshold must be in (0, 1]");
  ChaosRecoveryReport rep;
  rep.threshold = threshold;
  rep.grid_script = grid_script;

  const FleetStormConfig base =
      make_reference_fleet_storm_config(dcs, clients_per_dc, seed);
  std::vector<std::string> names;
  names.reserve(base.sites.size());
  for (const macro::SiteConfig& s : base.sites) names.push_back(s.name);
  const FaultDomainTree tree = make_reference_fault_domains(names);
  const DomainFaultPlan grid = DomainFaultPlan::parse(grid_script);
  DomainExpansionConfig expansion;
  expansion.seed = seed;
  const std::vector<FleetDisruption> disruptions =
      to_fleet_disruptions(expand_to_datacenters(tree, grid, expansion));

  const auto run_arm = [&](bool defended) {
    FleetStormConfig c = base;
    c.disruptions = disruptions;
    c.grid_broadcasts = defended;
    c.defense.enabled = defended;
    sim::SingleKernelFabric fabric(c.sites.size());
    return summarize_arm(run_fleet_storm(c, fabric), threshold);
  };
  rep.defended = run_arm(true);
  rep.naive = run_arm(false);
  rep.gate_ok = rep.defended.recovered && !rep.naive.recovered;
  return rep;
}

std::string make_reference_grid_script() {
  return "outage:region/americas@32+16;brownout:feed/grid-eu@36+12x0.5";
}

}  // namespace epm::faults
