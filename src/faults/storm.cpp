#include "faults/storm.h"

#include <algorithm>
#include <cmath>

#include "core/require.h"
#include "faults/injector.h"
#include "sensing/telemetry_feed.h"
#include "sim/simulator.h"
#include "telemetry/store.h"

namespace epm::faults {
namespace {

/// The active fault set folded into per-layer effect magnitudes. All
/// aggregates are additive (sums / counts), so applying the same edges in
/// the same order always reproduces the same state bit-for-bit.
struct FaultState {
  std::vector<double> crash_frac;     ///< per service: Σ active crash/PSU severities
  std::vector<double> surge_excess;   ///< per service: Σ active (severity - 1)
  std::vector<double> crac_derate;    ///< per CRAC: Σ active derate severities
  int outage_active = 0;

  FaultState(std::size_t services, std::size_t cracs)
      : crash_frac(services, 0.0),
        surge_excess(services, 0.0),
        crac_derate(cracs, 0.0) {}

  bool apply(const FaultEvent& event, bool onset) {
    const double sign = onset ? 1.0 : -1.0;
    switch (event.type) {
      case FaultType::kServerCrash:
      case FaultType::kPsuTrip:
        crash_frac[event.target % crash_frac.size()] +=
            sign * std::clamp(event.severity, 0.0, 1.0);
        return true;
      case FaultType::kCracFailure:
        crac_derate[event.target % crac_derate.size()] += sign * 1.0;
        return true;
      case FaultType::kCoolingDerate:
        crac_derate[event.target % crac_derate.size()] +=
            sign * std::clamp(event.severity, 0.0, 1.0);
        return true;
      case FaultType::kUtilityOutage:
        outage_active += onset ? 1 : -1;
        return true;
      case FaultType::kRegionLoss:
        // At facility scope a regional grid loss is a utility outage; the
        // correlation across sites lives in the fleet layer (fault_domain).
        outage_active += onset ? 1 : -1;
        return true;
      case FaultType::kFlashCrowd:
        surge_excess[event.target % surge_excess.size()] +=
            sign * std::max(0.0, event.severity - 1.0);
        return true;
      case FaultType::kSensorDropout:
      case FaultType::kSensorStuck:
      case FaultType::kSensorNoise:
      case FaultType::kActuatorFail:
        return false;  // the sensing / actuation planes own these
      case FaultType::kControllerCrash:
      case FaultType::kControllerHang:
      case FaultType::kControllerRestart:
        return false;  // the macro control plane owns these
    }
    return false;
  }
};

}  // namespace

StormOutcome run_fault_storm(const StormConfig& config, const FaultPlan& plan) {
  require(!config.facility.services.empty(), "Storm: facility has no services");
  require(config.demand_rps.size() == config.facility.services.size(),
          "Storm: demand_rps must cover every service");
  require(config.horizon_s > 0.0, "Storm: horizon must be positive");
  require(config.provision_headroom >= 1.0, "Storm: headroom below 1");

  macro::Facility facility(config.facility);
  const std::size_t services = facility.service_count();
  const std::size_t cracs = facility.room().crac_count();
  // A fat-fingered plan (crash on service 7 of a 2-service facility) must
  // fail loudly before the injector arms anything.
  plan.validate_targets(services, cracs);
  const double epoch_s = facility.epoch_s();

  sim::Simulator sim;
  FaultInjector injector(sim, plan);
  FaultState state(services, cracs);
  injector.subscribe([&state](const FaultEvent& event, bool onset, double) {
    return state.apply(event, onset);
  });

  // Sensing plane: service channels in per-service fault domains, plant
  // channels (IT power) in the final domain.
  sensing::SensorPlaneConfig sensor_config = config.sensors;
  sensor_config.fault_domains = static_cast<std::uint32_t>(services) + 1;
  sensing::SensorPlane sensors(sensor_config);
  sensing::ValidatedEstimator estimator(config.estimator);
  injector.subscribe([&sensors](const FaultEvent& event, bool onset,
                                double now_s) {
    return sensors.on_fault(event, onset, now_s);
  });

  macro::DecisionLog log;
  sensing::ActuatorPlane actuators(config.actuators);
  injector.subscribe([&actuators](const FaultEvent& event, bool onset,
                                  double now_s) {
    return actuators.on_fault(event, onset, now_s);
  });
  actuators.set_logger([&log](double now_s, const std::string& text) {
    log.record({now_s, macro::DecisionKind::kActuation, "", text});
  });
  actuators.set_applier([&facility](const sensing::ActuatorCommand& command) {
    switch (command.kind) {
      case sensing::CommandKind::kFleetSize:
        facility.service(command.target)
            .set_target_committed(
                static_cast<std::size_t>(std::llround(command.value)),
                /*use_sleep=*/false);
        return true;
      case sensing::CommandKind::kPstate:
      case sensing::CommandKind::kPowerCap:
        facility.service(command.target)
            .set_uniform_pstate(
                static_cast<std::size_t>(std::llround(command.value)));
        return true;
      case sensing::CommandKind::kCracReturnSetpoint:
        facility.room().crac(command.target).set_return_setpoint_c(command.value);
        return true;
      case sensing::CommandKind::kCracSupply:
        facility.room().set_crac_auto(command.target, false);
        facility.room().crac(command.target).set_supply_temp_c(command.value);
        return true;
      case sensing::CommandKind::kZoneShare:
        facility.set_zone_share(command.target, command.values);
        return true;
      case sensing::CommandKind::kConsolidation:
        // No migration machinery in the storm facility; ack the pause.
        return true;
    }
    return false;
  });

  macro::DegradationPolicy policy(config.policy, services, &log);
  if (config.policy_enabled) {
    injector.subscribe(
        [&policy](const FaultEvent& event, bool onset, double now_s) {
          return policy.on_fault(event, onset, now_s);
        });
  }
  injector.arm();

  sensing::InvariantMonitor monitor(config.invariants);
  facility.attach_invariant_monitor(&monitor);

  power::UpsBattery battery(config.battery);
  telemetry::TelemetryStore telemetry;
  sensing::TelemetryFeed feed(telemetry);
  const auto& topo = facility.power_topology();
  const double ups_loss = topo.tree.spec(topo.ups_id).loss_fraction;
  const double ups_fixed_w = topo.tree.spec(topo.ups_id).fixed_loss_w;

  // Baseline return setpoints: the policy's deltas are applied on top each
  // epoch, never accumulated.
  std::vector<double> base_setpoint_c(cracs, 0.0);
  for (std::size_t k = 0; k < cracs; ++k) {
    base_setpoint_c[k] = facility.room().crac(k).config().return_setpoint_c;
  }

  const std::size_t deepest_pstate =
      facility.service(0).power_model().pstate_count() - 1;

  StormOutcome out;
  double prev_it_power_w = 0.0;
  for (std::size_t s = 0; s < services; ++s) {
    // First-epoch draw estimate: the initially active fleet at idle.
    prev_it_power_w += static_cast<double>(facility.service(s).serving_count()) *
                       facility.service(s).power_model().idle_power_w();
  }
  std::size_t lockout_left = 0;

  const auto epochs =
      static_cast<std::size_t>(std::ceil(config.horizon_s / epoch_s));
  for (std::size_t e = 0; e < epochs; ++e) {
    const double t0 = static_cast<double>(e) * epoch_s;
    sim.run_until(t0);
    actuators.tick(t0);

    // 1. Fold the active fault set into the layers.
    for (std::size_t s = 0; s < services; ++s) {
      const auto& cl = facility.service(s);
      const double frac = std::clamp(state.crash_frac[s], 0.0, 1.0);
      const auto lost = static_cast<std::size_t>(std::lround(
          frac * static_cast<double>(cl.server_count())));
      facility.service(s).set_unavailable(lost);
    }
    for (std::size_t k = 0; k < cracs; ++k) {
      facility.room().crac(k).set_derate(
          std::clamp(state.crac_derate[k], 0.0, 1.0));
    }

    // 2. Offered demand under any active surges.
    std::vector<double> offered(services, 0.0);
    for (std::size_t s = 0; s < services; ++s) {
      offered[s] = config.demand_rps[s] * (1.0 + state.surge_excess[s]);
    }

    // 3. Policy reaction from the active fault set and the UPS margin.
    const double est_draw_w = prev_it_power_w * (1.0 + ups_loss) + ups_fixed_w;
    macro::DegradationAction action;
    if (config.policy_enabled) {
      action = policy.react(t0, battery.ride_through_s(est_draw_w));
    } else {
      action.serve_scale.assign(services, 1.0);
      action.shed_scale.assign(services, 0.0);
      action.reroute_scale.assign(services, 0.0);
    }
    for (std::size_t k = 0; k < cracs; ++k) {
      double setpoint = base_setpoint_c[k] + action.setpoint_delta_c;
      if (state.crac_derate[k] <= 0.0) {
        setpoint += action.healthy_setpoint_delta_c;
      }
      actuators.issue({sensing::CommandKind::kCracReturnSetpoint, k,
                       std::max(1.0, setpoint), {}},
                      t0);
    }
    const std::size_t pstate = action.throttle ? deepest_pstate : 0;
    for (std::size_t s = 0; s < services; ++s) {
      actuators.issue({sensing::CommandKind::kPstate, s,
                       static_cast<double>(pstate), {}},
                      t0);
    }

    std::vector<double> local(services, 0.0);
    for (std::size_t s = 0; s < services; ++s) {
      local[s] = offered[s] * action.serve_scale[s];
    }

    // 4. Brown-out: during an outage the UPS must carry the whole epoch;
    //    if it cannot, the facility is dark until utility power returns.
    const bool brownout =
        state.outage_active > 0 &&
        battery.ride_through_s(est_draw_w) < epoch_s;
    const bool tripped = lockout_left > 0;
    if (brownout || tripped) {
      std::fill(local.begin(), local.end(), 0.0);
    }

    // 5. Provision each fleet for its local demand.
    for (std::size_t s = 0; s < services; ++s) {
      auto& cl = facility.service(s);
      std::size_t target = 0;
      if (!brownout && !tripped) {
        const auto& model = cl.power_model();
        const double per_server_rps =
            model.relative_capacity(pstate) /
            facility.request_model(s).config().mean_service_demand_s;
        const double util_target =
            cl.config().max_utilization / config.provision_headroom;
        target = static_cast<std::size_t>(
            std::ceil(local[s] / (per_server_rps * util_target)));
        target = std::min(std::max<std::size_t>(target, 1), cl.available_count());
        if (action.consolidation_paused) {
          target = std::max(target,
                            std::min(cl.committed_count(), cl.available_count()));
        }
      }
      actuators.issue({sensing::CommandKind::kFleetSize, s,
                       static_cast<double>(target), {}},
                      t0);
    }

    // 6. Advance the cyber-physical plant one epoch.
    const auto step = facility.step(local, config.outside_c);

    // 7. UPS energy flow.
    if (state.outage_active > 0) {
      const double draw_w = step.it_power_w * (1.0 + ups_loss) + ups_fixed_w;
      battery.discharge(draw_w, epoch_s);
    } else {
      battery.charge(battery.config().max_charge_w, epoch_s);
    }
    out.min_state_of_charge =
        std::min(out.min_state_of_charge, battery.state_of_charge());
    monitor.check_scalar("soc-bounds", battery.state_of_charge(), 0.0, 1.0, t0);

    // 8. Thermal protective trip.
    if (step.max_zone_temp_c > config.thermal_trip_c) {
      lockout_left = config.trip_lockout_epochs;
    } else if (lockout_left > 0) {
      --lockout_left;
    }

    // 9. Accounting.
    ++out.epochs;
    if (brownout) ++out.brownout_epochs;
    if (tripped) ++out.trip_epochs;
    out.thermal_alarms += step.new_thermal_alarms;
    if (step.power_overloaded) ++out.overload_epochs;
    out.max_zone_temp_c = std::max(out.max_zone_temp_c, step.max_zone_temp_c);
    // The policy's next ride-through estimate comes from the sensed (and
    // possibly stale or noisy) IT power, not the ground truth.
    {
      const auto key = sensing::make_channel(sensing::ChannelKind::kItPower, 0);
      prev_it_power_w =
          estimator.update(key, sensors.sample(key, step.it_power_w, t0), t0)
              .value;
    }

    for (std::size_t s = 0; s < services; ++s) {
      const double dropped = step.services[s].dropped_rate_per_s;
      const double served = std::max(0.0, local[s] - dropped);
      out.offered_requests += offered[s] * epoch_s;
      out.served_requests += served * epoch_s;
      if (brownout || tripped) {
        // Policy shed/re-route still happened upstream of the dark epoch.
        out.shed_requests += offered[s] * action.shed_scale[s] * epoch_s;
        out.rerouted_requests += offered[s] * action.reroute_scale[s] * epoch_s;
        out.dropped_requests +=
            offered[s] * action.serve_scale[s] * epoch_s;
      } else {
        out.shed_requests += offered[s] * action.shed_scale[s] * epoch_s;
        out.rerouted_requests += offered[s] * action.reroute_scale[s] * epoch_s;
        out.dropped_requests += dropped * epoch_s;
      }
      if (step.services[s].sla_violated) ++out.sla_violation_epochs;

      // 10. Telemetry path: the served-rate counter goes through the
      // sensing plane, so dropout/stuck/noise faults degrade it exactly as
      // they degrade the controller's view.
      const auto key = telemetry::make_key(static_cast<std::uint32_t>(s), 0);
      const auto readings = sensors.sample(
          sensing::make_channel(sensing::ChannelKind::kServiceArrival,
                                static_cast<std::uint32_t>(s)),
          served, t0);
      feed.publish(key, readings, t0);
    }
  }
  // Deliver any clears scheduled past the horizon so conservation holds for
  // plans that fit inside the storm.
  sim.run_all();

  out.it_energy_kwh = facility.total_it_energy_j() / 3.6e6;
  out.mechanical_energy_kwh = facility.total_mechanical_energy_j() / 3.6e6;
  out.telemetry_samples = telemetry.total_samples();
  out.degraded_samples = telemetry.degraded_samples();
  out.dropped_samples = telemetry.dropped_samples();
  out.faults_injected = injector.plan().size();
  out.faults_handled = injector.handled_count();
  out.faults_cleared = injector.cleared_count();
  out.faults_conserved = injector.conserved();
  out.sensor_readings = sensors.readings();
  out.sensor_dropped = sensors.dropped_readings();
  out.sensor_stuck = sensors.stuck_readings();
  out.sensor_noisy = sensors.noisy_readings();
  out.commands_issued = actuators.issued();
  out.commands_acked = actuators.acked();
  out.commands_failed = actuators.failed();
  out.command_retries = actuators.retries();
  out.invariant_violations = monitor.violation_count();
  out.invariants_ok = monitor.ok();
  out.invariant_report = monitor.report();
  out.decision_counts = log.counts_by_kind();
  return out;
}

StormConfig make_reference_storm_config(std::size_t servers_per_service) {
  StormConfig config;
  config.facility = macro::make_reference_facility(servers_per_service);

  // Give the storm facility a second CRAC sharing the room 50/50, so a
  // CRAC failure halves the cooling path instead of erasing it and the
  // policy's "healthy CRACs cool harder" reaction has a surviving unit to
  // lean on.
  thermal::CracConfig spare = config.facility.room.cracs[0];
  spare.name = "crac1";
  spare.zone_sensitivity = {0.4, 0.6};
  config.facility.room.cracs.push_back(spare);
  config.facility.room.airflow_share = {{0.5, 0.5}, {0.5, 0.5}};

  // Moderate steady demand: ~60% of each fleet's full capacity (100 rps per
  // server at the reference demand of 0.01 s/request).
  const double capacity_rps = static_cast<double>(servers_per_service) * 100.0;
  config.demand_rps = {0.6 * capacity_rps, 0.6 * capacity_rps};

  // Size the UPS so the *unmanaged* fleet (everything on, near-peak draw
  // with conversion losses) rides through only ~3 minutes — far shorter
  // than every storm outage — while the policy's shed/re-routed fleet
  // stretches the same battery across several more epochs.
  const double full_draw_w =
      2.0 * static_cast<double>(servers_per_service) * 300.0 * 1.1;
  config.battery.energy_capacity_j = full_draw_w * 180.0;
  config.battery.max_discharge_w = full_draw_w * 2.0;
  config.battery.max_charge_w = full_draw_w * 0.25;

  config.policy.low_tier_service = 1;  // batch
  // Shed modestly and lean on geo re-routing: re-routed requests are served
  // by the peer site without spending the local UPS window, while every
  // shed request is a loss the policy must win back in ride-through.
  config.policy.low_tier_shed_fraction = 0.5;
  config.policy.reroute_fraction = 0.5;
  // Race-to-idle beats throttling here: the 60% idle floor means fewer fast
  // servers draw less than many slow ones for the same served load.
  config.policy.throttle_on_power_emergency = false;
  // With a surviving CRAC to cool harder, heat-shedding is not needed.
  config.policy.cooling_shed_fraction = 0.0;
  return config;
}

}  // namespace epm::faults
