// Typed fault events for the deterministic fault-injection engine.
//
// The paper's macro-resource management layer exists to ride through
// physical-side disruptions — utility outages carried by the UPS window
// (§2.1), CRAC failures and cooling derates (§2.2), and flash-crowd login
// storms (§3, Fig. 3). Each fault is a typed interval [start, start +
// duration) with a target index and a type-specific severity; the injector
// delivers the onset and the clear into the simulation clock.
#pragma once

#include <cstddef>
#include <string>

namespace epm::faults {

enum class FaultType {
  kServerCrash = 0,  ///< a fraction of one service's servers crash and reboot
  kPsuTrip,          ///< a PSU/PDU feeding a chunk of one service trips
  kCracFailure,      ///< a CRAC unit fails outright (full derate)
  kCoolingDerate,    ///< partial cooling-capacity derate of a CRAC
  kSensorDropout,    ///< a service's telemetry sensor produces no samples
  kSensorStuck,      ///< a service's telemetry sensor repeats its last value
  kUtilityOutage,    ///< utility feed lost; UPS battery ride-through
  kFlashCrowd,       ///< login-storm demand surge on one service
  kSensorNoise,      ///< a sensing domain's readings gain Gaussian noise
  kActuatorFail,     ///< actuation commands fail with probability = severity
  kRegionLoss,       ///< correlated regional grid loss (fault-domain fan-out)
  kControllerCrash,  ///< a DC's macro controller replica dies (volatile state
                     ///< lost; restarts from its durable journal at clear)
  kControllerHang,   ///< a replica freezes (GC pause / livelock): it drops
                     ///< traffic while hung and resumes with STALE state —
                     ///< the split-brain source fencing must contain
  kControllerRestart,///< planned controller bounce (maintenance reboot):
                     ///< mechanically crash + restart over a short window
};

inline constexpr std::size_t kFaultTypeCount = 14;

/// Short stable token, e.g. "crash", "outage", "surge"; used by the
/// FaultPlan text syntax and by reports.
std::string to_string(FaultType type);

/// Inverse of to_string; throws std::invalid_argument for unknown tokens.
FaultType fault_type_from_string(const std::string& token);

struct FaultEvent {
  FaultType type = FaultType::kServerCrash;
  double start_s = 0.0;
  double duration_s = 0.0;
  /// Type-dependent index: service for crash/PSU/sensor/surge faults, CRAC
  /// unit for cooling faults; ignored for utility outages.
  std::size_t target = 0;
  /// Type-dependent magnitude: fraction of the service's servers lost
  /// (crash/PSU), derate fraction in [0,1] (cooling), demand multiplier
  /// (surge); ignored for sensor faults and utility outages.
  double severity = 1.0;

  double end_s() const { return start_s + duration_s; }
};

}  // namespace epm::faults
