// Seeded, deterministic fault plans.
//
// A FaultPlan is the full schedule of fault events for one run. Plans are
// either scripted (explicit events, or the compact text syntax below) or
// sampled from per-type rate distributions. Sampling expands the plan seed
// into one SplitMix64-derived stream per fault type, so the plan — and any
// simulation driven by it — is bit-identical across thread counts and across
// machines; adding a fault type never perturbs another type's stream.
//
// Text syntax (round-trips through parse/to_string):
//
//   plan     := entry (';' entry)*
//   entry    := type [':' target] '@' start '+' duration ['x' severity]
//   type     := crash | psu | crac | derate | sensor-drop | sensor-stuck |
//               outage | surge | sensor-noise | actuator-fail | region-loss |
//               ctl-crash | ctl-hang | ctl-restart
//
// Times are seconds. Example: "outage@3600+1200;crac:0@7200+1800;
// surge:1@10000+300x3.0" — a 20-minute utility outage at t=1h, CRAC 0 down
// for 30 minutes at t=2h, and a 3x login surge on service 1 at t=10000s.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "faults/types.h"

namespace epm::faults {

/// Sampling distribution for one fault type.
struct FaultRateSpec {
  double rate_per_day = 0.0;      ///< Poisson arrival rate; 0 disables
  double mean_duration_s = 600.0; ///< exponential, floored at min_duration_s
  double min_duration_s = 60.0;
  double severity_lo = 1.0;       ///< uniform severity range
  double severity_hi = 1.0;
  std::size_t target_count = 1;   ///< targets drawn uniformly in [0, count)
};

struct FaultPlanConfig {
  double horizon_s = 86400.0;
  std::uint64_t seed = 1;
  std::array<FaultRateSpec, kFaultTypeCount> rates{};

  FaultRateSpec& rate(FaultType type) {
    return rates[static_cast<std::size_t>(type)];
  }
  const FaultRateSpec& rate(FaultType type) const {
    return rates[static_cast<std::size_t>(type)];
  }
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Validates and sorts `events` by (start, type, target, duration).
  static FaultPlan scripted(std::vector<FaultEvent> events);
  /// Samples a plan from per-type Poisson processes, one independent
  /// SplitMix64-derived stream per type.
  static FaultPlan sampled(const FaultPlanConfig& config);
  /// Parses the text syntax documented above.
  static FaultPlan parse(const std::string& spec);

  /// Concatenates two plans (events re-sorted).
  FaultPlan merged_with(const FaultPlan& other) const;

  const std::vector<FaultEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  /// Time the last event clears; 0 for an empty plan.
  double horizon_s() const;
  std::size_t count(FaultType type) const;

  /// Rejects events whose target index is outside the facility: service-
  /// indexed types (crash, psu, sensor faults, surge) must target
  /// [0, service_count) and CRAC-indexed types (crac, derate) must target
  /// [0, crac_count). Controller faults (ctl-crash / ctl-hang /
  /// ctl-restart) target a datacenter's controller replica and must target
  /// [0, controller_count) when a count is given; the default kAnyTarget
  /// skips the check for worlds with no control plane. Throws
  /// std::invalid_argument with a one-line diagnostic naming the offending
  /// entry. Outages and region losses are facility/fleet-wide and carry no
  /// target to validate.
  static constexpr std::size_t kAnyTarget = static_cast<std::size_t>(-1);
  void validate_targets(std::size_t service_count, std::size_t crac_count,
                        std::size_t controller_count = kAnyTarget) const;

  /// Round-trips through parse().
  std::string to_string() const;
  /// Order-sensitive 64-bit digest over every event field; two plans with
  /// the same fingerprint are (for testing purposes) the same plan.
  std::uint64_t fingerprint() const;

 private:
  std::vector<FaultEvent> events_;  // sorted by (start, type, target, duration)
};

/// The canonical "fault storm" profile used by the bench and epmctl: a
/// scripted utility-outage + CRAC-failure core (so the storm always
/// exercises the UPS window and the cooling path at every intensity) plus
/// intensity-scaled sampled crashes, derates, sensor faults, and surges.
FaultPlan make_storm_plan(double intensity, double horizon_s, std::uint64_t seed,
                          std::size_t service_count, std::size_t crac_count);

}  // namespace epm::faults
