// Closed-loop retry-storm scenario runner.
//
// Couples a workload::ClientPopulation (clients that retry and reconnect)
// to a fluid service with an optional overload-defense stack (bounded
// accept queue + token-bucket admission + circuit breaker) and the
// macro::DegradationPolicy overload posture. A scripted utility outage
// drops every client session; when power returns, the reconnect surge plus
// retry amplification is exactly the regime where an undefended service
// goes metastable (paper §3: login storms, the Animoto flash crowd): the
// backlog pushes queue sojourn past the client timeout, every completion
// is stale, goodput pins at zero, and the re-offered load keeps the system
// saturated long after the fault cleared. The defended arm fails fast while
// dark, sheds the batch tier for interactive headroom, and bounds queue
// sojourn below the client timeout, so served work is fresh and the
// population drains back to pre-fault SLA in bounded time.
//
// Serial and seeded: one RetryStormConfig maps to exactly one
// RetryStormOutcome, regardless of how many sweep threads run scenarios
// concurrently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "cluster/admission.h"
#include "macro/degradation.h"
#include "sensing/estimator.h"
#include "sensing/invariants.h"
#include "sensing/sensor_plane.h"
#include "workload/client_population.h"

namespace epm::sim {
class ShardedSimulator;
}

namespace epm::faults {

struct RetryStormDefenseConfig {
  bool enabled = false;
  cluster::TokenBucketConfig bucket{900.0, 900.0};
  /// Accept-queue depth; sized so worst-case sojourn (capacity_rps full)
  /// stays below the client timeout — queued work is never doomed.
  std::size_t queue_capacity = 1800;
  cluster::CircuitBreakerConfig breaker;
};

struct RetryStormConfig {
  workload::ClientPopulationConfig clients;
  /// Shared service capacity (req/s); the open-loop batch tier consumes
  /// part of it unless the macro policy sheds batch under overload.
  double service_capacity_rps = 1000.0;
  double batch_rps = 300.0;
  double epoch_s = 1.0;
  double horizon_s = 1200.0;
  /// Scripted utility outage [start, start + duration): the service is
  /// dark and every client session drops at onset (reconnect storm).
  double outage_start_s = 180.0;
  double outage_duration_s = 120.0;
  /// Accept-queue depth of the undefended arm — large enough that backlog,
  /// not shedding, is what kills it.
  std::size_t naive_queue_capacity = 120000;
  RetryStormDefenseConfig defense;
  /// Drive macro::DegradationPolicy with the per-epoch OverloadSignal
  /// (batch-tier shed under congestion). Off = uncoordinated baseline.
  bool policy_enabled = false;
  macro::DegradationPolicyConfig policy;
  /// Recovered = goodput back to this fraction of the pre-fault rate.
  double sla_goodput_fraction = 0.9;
  /// Consecutive healthy epochs required to declare recovery; also the
  /// trailing window for the end-of-run metastability verdict.
  std::size_t recovery_window_epochs = 30;
  /// Sensing plane for the shed/retry telemetry channels.
  sensing::SensorPlaneConfig sensors;
  sensing::EstimatorConfig estimator;
  sensing::InvariantMonitorConfig invariants;
};

struct RetryStormOutcome {
  // Client-side ledger totals over the run.
  std::uint64_t intents = 0;
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;
  std::uint64_t served_fresh = 0;
  std::uint64_t served_stale = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t abandoned = 0;
  // Where rejected attempts died.
  std::uint64_t dark_failures = 0;  ///< service unreachable (outage)
  std::uint64_t shed_breaker = 0;
  std::uint64_t shed_bucket = 0;
  std::uint64_t shed_queue = 0;

  double prefault_goodput_rps = 0.0;
  /// Trailing-window means over the final recovery_window_epochs.
  double end_offered_rps = 0.0;
  double end_goodput_rps = 0.0;
  /// Interactive capacity (total minus surviving batch) in the last epoch.
  double end_interactive_capacity_rps = 0.0;

  bool recovered = false;
  /// Seconds from outage clear to the end of the first healthy window.
  double recovery_s = 0.0;
  /// Sustained congestion at the horizon: never recovered AND trailing
  /// offered load still exceeds the interactive capacity.
  bool metastable = false;

  std::size_t epochs = 0;
  std::size_t max_queue_depth = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_probes = 0;

  std::uint64_t telemetry_samples = 0;
  std::uint64_t telemetry_shed = 0;
  std::uint64_t telemetry_retried = 0;
  std::uint64_t telemetry_abandoned = 0;

  bool conservation_ok = false;
  std::string conservation_report;
  bool invariants_ok = false;
  std::size_t invariant_violations = 0;
  std::string invariant_report;
  std::map<std::string, std::size_t> decision_counts;

  double goodput_fraction() const {
    return intents > 0
               ? static_cast<double>(served_fresh) / static_cast<double>(intents)
               : 1.0;
  }
};

/// Runs the scenario on the vectorized epoch engine
/// (workload::ClientPopulation): arena-backed completion cohorts delivered
/// as one batch-scheduled kernel event per epoch.
RetryStormOutcome run_retry_storm(const RetryStormConfig& config);

/// Same scenario on the PR 5 heap engine (workload::LegacyClientPopulation)
/// with one kernel event per completion — the faithful A/B baseline the
/// kernel bench gates against. Outcomes are bit-identical to
/// run_retry_storm by construction (asserted by the equivalence suite).
RetryStormOutcome run_retry_storm_legacy(const RetryStormConfig& config);

/// The same scenario executed event-by-event on shard `shard` of a
/// federation: the epoch loop becomes a driver-event chain on that shard's
/// kernel (see retry_storm_engine.h), so a 1-shard federation replays
/// run_retry_storm bit-identically — the "degenerate federation" golden
/// invariant — and independent storms on different shards of one
/// ShardedSimulator run concurrently without perturbing each other.
RetryStormOutcome run_retry_storm_federated(const RetryStormConfig& config,
                                            sim::ShardedSimulator& fed,
                                            std::size_t shard);

/// The armed-but-not-run form of run_retry_storm_federated: construction
/// schedules the scenario's driver-event chain on shard `shard` without
/// advancing the federation, so several storms can share one
/// ShardedSimulator and run concurrently (one per shard — the parallel arm
/// of the kernel_federation bench). Drive the federation to at least
/// end_s(), then call finish() exactly once.
class FederatedRetryStorm {
 public:
  FederatedRetryStorm(const RetryStormConfig& config,
                      sim::ShardedSimulator& fed, std::size_t shard);
  FederatedRetryStorm(const FederatedRetryStorm&) = delete;
  FederatedRetryStorm& operator=(const FederatedRetryStorm&) = delete;
  ~FederatedRetryStorm();

  /// Simulated time at which the scenario's last driver event fires.
  double end_s() const { return end_s_; }
  /// Post-run summary; requires the federation to have run past end_s().
  RetryStormOutcome finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  double end_s_ = 0.0;
};

/// Reference scenario: 20k clients against a 1000 req/s shared service with
/// a 300 req/s batch tier. `defended` enables the admission stack and the
/// macro overload posture; undefended arms differ only in the (effectively
/// unbounded) accept queue and absent admission control.
RetryStormConfig make_reference_retry_storm_config(
    workload::RetryBackoff backoff, double outage_duration_s, bool defended);

}  // namespace epm::faults
