#include "faults/fault_plan.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "core/rng.h"

namespace epm::faults {
namespace {

const char* kTypeTokens[kFaultTypeCount] = {
    "crash", "psu", "crac", "derate", "sensor-drop", "sensor-stuck",
    "outage", "surge", "sensor-noise", "actuator-fail", "region-loss",
    "ctl-crash", "ctl-hang", "ctl-restart",
};

void validate_event(const FaultEvent& event) {
  if (event.start_s < 0.0) {
    throw std::invalid_argument("FaultEvent start_s must be >= 0");
  }
  if (!(event.duration_s > 0.0)) {
    throw std::invalid_argument("FaultEvent duration_s must be > 0");
  }
  if (event.severity < 0.0) {
    throw std::invalid_argument("FaultEvent severity must be >= 0");
  }
}

void sort_events(std::vector<FaultEvent>& events) {
  std::sort(events.begin(), events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return std::make_tuple(a.start_s, static_cast<int>(a.type),
                                     a.target, a.duration_s, a.severity) <
                     std::make_tuple(b.start_s, static_cast<int>(b.type),
                                     b.target, b.duration_s, b.severity);
            });
}

std::string trim(const std::string& s) {
  std::size_t lo = 0;
  std::size_t hi = s.size();
  while (lo < hi && std::isspace(static_cast<unsigned char>(s[lo]))) ++lo;
  while (hi > lo && std::isspace(static_cast<unsigned char>(s[hi - 1]))) --hi;
  return s.substr(lo, hi - lo);
}

std::string format_double(double value) {
  // Shortest representation that parses back to the exact same double, so
  // to_string() -> parse() round-trips fingerprint-equal even for sampled
  // plans whose times carry full mantissas.
  // A "+" inside scientific notation ("2e+06") would collide with the
  // '+duration' separator on re-parse, so rewrite "e+06" as "e6".
  const auto normalize = [](std::string text) {
    const auto e = text.find("e+");
    if (e != std::string::npos) {
      std::size_t digits = e + 2;
      while (digits + 1 < text.size() && text[digits] == '0') ++digits;
      text = text.substr(0, e + 1) + text.substr(digits);
    }
    return text;
  };
  std::string best;
  for (int precision : {6, 15, 16, 17}) {
    std::ostringstream out;
    out << std::setprecision(precision) << value;
    best = normalize(out.str());
    if (std::strtod(best.c_str(), nullptr) == value) {
      return best;
    }
  }
  return best;
}

/// Parses a full token as a finite double; rejects empty tokens, trailing
/// garbage ("12abc"), inf, and NaN with a message naming the bad token.
double parse_number(const std::string& raw, const char* field,
                    const std::string& entry) {
  const std::string token = trim(raw);
  if (token.empty()) {
    throw std::invalid_argument(std::string("fault entry has empty ") + field +
                                " in '" + entry + "'");
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || errno == ERANGE ||
      !std::isfinite(value)) {
    throw std::invalid_argument(std::string("bad ") + field + " token '" +
                                token + "' in fault entry '" + entry + "'");
  }
  return value;
}

/// Parses a full token as an unsigned target index; rejects signs, trailing
/// garbage, and values that overflow std::size_t.
std::size_t parse_target(const std::string& raw, const std::string& entry) {
  const std::string token = trim(raw);
  if (token.empty() ||
      !std::isdigit(static_cast<unsigned char>(token.front()))) {
    throw std::invalid_argument("bad target token '" + token +
                                "' in fault entry '" + entry + "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size() || errno == ERANGE ||
      value > std::numeric_limits<std::size_t>::max()) {
    throw std::invalid_argument("bad target token '" + token +
                                "' in fault entry '" + entry + "'");
  }
  return static_cast<std::size_t>(value);
}

}  // namespace

std::string to_string(FaultType type) {
  const auto index = static_cast<std::size_t>(type);
  if (index >= kFaultTypeCount) {
    throw std::invalid_argument("unknown FaultType");
  }
  return kTypeTokens[index];
}

FaultType fault_type_from_string(const std::string& token) {
  for (std::size_t i = 0; i < kFaultTypeCount; ++i) {
    if (token == kTypeTokens[i]) {
      return static_cast<FaultType>(i);
    }
  }
  throw std::invalid_argument("unknown fault type token: " + token);
}

FaultPlan FaultPlan::scripted(std::vector<FaultEvent> events) {
  for (const auto& event : events) {
    validate_event(event);
  }
  sort_events(events);
  FaultPlan plan;
  plan.events_ = std::move(events);
  return plan;
}

FaultPlan FaultPlan::sampled(const FaultPlanConfig& config) {
  if (!(config.horizon_s > 0.0)) {
    throw std::invalid_argument("FaultPlanConfig horizon_s must be > 0");
  }
  std::vector<FaultEvent> events;
  // One independent stream per type: SplitMix64 seeded from the plan seed
  // produces the per-type sub-seed at position `type`, so disabling or
  // retuning one type never shifts another type's draws.
  SplitMix64 expander(config.seed);
  for (std::size_t i = 0; i < kFaultTypeCount; ++i) {
    const std::uint64_t stream_seed = expander.next();
    const FaultRateSpec& spec = config.rates[i];
    if (!(spec.rate_per_day > 0.0)) {
      continue;
    }
    if (spec.target_count == 0) {
      throw std::invalid_argument("FaultRateSpec target_count must be > 0");
    }
    Rng rng(stream_seed);
    const double rate_per_s = spec.rate_per_day / 86400.0;
    double t = rng.exponential(rate_per_s);
    while (t < config.horizon_s) {
      FaultEvent event;
      event.type = static_cast<FaultType>(i);
      event.start_s = t;
      event.duration_s = std::max(
          spec.min_duration_s, rng.exponential(1.0 / spec.mean_duration_s));
      event.target = spec.target_count > 1
                         ? static_cast<std::size_t>(rng.uniform_int(
                               0, static_cast<std::int64_t>(spec.target_count) - 1))
                         : 0;
      event.severity = spec.severity_lo < spec.severity_hi
                           ? rng.uniform(spec.severity_lo, spec.severity_hi)
                           : spec.severity_lo;
      events.push_back(event);
      t += rng.exponential(rate_per_s);
    }
  }
  return scripted(std::move(events));
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  std::vector<FaultEvent> events;
  std::stringstream stream(spec);
  std::string entry;
  while (std::getline(stream, entry, ';')) {
    entry = trim(entry);
    if (entry.empty()) {
      continue;
    }
    const auto at = entry.find('@');
    if (at == std::string::npos) {
      throw std::invalid_argument("fault entry missing '@': " + entry);
    }
    if (entry.find('@', entry.find('@') + 1) != std::string::npos) {
      throw std::invalid_argument("fault entry has duplicate '@': '" + entry +
                                  "'");
    }
    std::string head = entry.substr(0, at);
    std::string tail = entry.substr(at + 1);
    FaultEvent event;
    const auto colon = head.find(':');
    if (colon != std::string::npos) {
      event.target = parse_target(head.substr(colon + 1), entry);
      head = head.substr(0, colon);
    }
    const std::string type_token = trim(head);
    if (type_token.empty()) {
      throw std::invalid_argument("fault entry missing type: '" + entry + "'");
    }
    event.type = fault_type_from_string(type_token);
    const auto plus = tail.find('+');
    if (plus == std::string::npos) {
      throw std::invalid_argument("fault entry missing '+duration': '" + entry +
                                  "'");
    }
    event.start_s = parse_number(tail.substr(0, plus), "start", entry);
    std::string rest = tail.substr(plus + 1);
    const auto x = rest.find('x');
    if (x != std::string::npos) {
      event.severity = parse_number(rest.substr(x + 1), "severity", entry);
      rest = rest.substr(0, x);
    }
    event.duration_s = parse_number(rest, "duration", entry);
    if (event.start_s < 0.0) {
      throw std::invalid_argument("fault entry start must be >= 0: '" + entry +
                                  "'");
    }
    if (!(event.duration_s > 0.0)) {
      throw std::invalid_argument("fault entry duration must be > 0: '" +
                                  entry + "'");
    }
    if (event.severity < 0.0) {
      throw std::invalid_argument("fault entry severity must be >= 0: '" +
                                  entry + "'");
    }
    events.push_back(event);
  }
  return scripted(std::move(events));
}

FaultPlan FaultPlan::merged_with(const FaultPlan& other) const {
  std::vector<FaultEvent> events = events_;
  events.insert(events.end(), other.events_.begin(), other.events_.end());
  return scripted(std::move(events));
}

double FaultPlan::horizon_s() const {
  double horizon = 0.0;
  for (const auto& event : events_) {
    horizon = std::max(horizon, event.end_s());
  }
  return horizon;
}

std::size_t FaultPlan::count(FaultType type) const {
  std::size_t n = 0;
  for (const auto& event : events_) {
    if (event.type == type) {
      ++n;
    }
  }
  return n;
}

void FaultPlan::validate_targets(std::size_t service_count,
                                 std::size_t crac_count,
                                 std::size_t controller_count) const {
  const auto reject = [](const FaultEvent& event, const char* kind,
                         std::size_t count) {
    throw std::invalid_argument(
        "fault entry '" + faults::to_string(event.type) + ":" +
        std::to_string(event.target) + "@" + std::to_string(event.start_s) +
        "' targets unknown " + kind + " " + std::to_string(event.target) +
        " (facility has " + std::to_string(count) + ")");
  };
  for (const auto& event : events_) {
    switch (event.type) {
      case FaultType::kServerCrash:
      case FaultType::kPsuTrip:
      case FaultType::kSensorDropout:
      case FaultType::kSensorStuck:
      case FaultType::kSensorNoise:
      case FaultType::kFlashCrowd:
        if (event.target >= service_count) {
          reject(event, "service", service_count);
        }
        break;
      case FaultType::kCracFailure:
      case FaultType::kCoolingDerate:
        if (event.target >= crac_count) {
          reject(event, "CRAC unit", crac_count);
        }
        break;
      case FaultType::kControllerCrash:
      case FaultType::kControllerHang:
      case FaultType::kControllerRestart:
        if (controller_count != kAnyTarget &&
            event.target >= controller_count) {
          reject(event, "controller replica", controller_count);
        }
        break;
      case FaultType::kUtilityOutage:
      case FaultType::kActuatorFail:
      case FaultType::kRegionLoss:
        break;  // facility- or fleet-wide; no index to check
    }
  }
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const auto& event : events_) {
    if (!out.empty()) {
      out += ';';
    }
    out += faults::to_string(event.type);
    if (event.target != 0) {
      out += ':' + std::to_string(event.target);
    }
    out += '@' + format_double(event.start_s);
    out += '+' + format_double(event.duration_s);
    if (event.severity != 1.0) {
      out += 'x' + format_double(event.severity);
    }
  }
  return out;
}

std::uint64_t FaultPlan::fingerprint() const {
  // FNV-1a over every event field (doubles bit-cast through their IEEE
  // representation), order-sensitive because events_ is canonically sorted.
  auto mix = [](std::uint64_t hash, std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (byte * 8)) & 0xffU;
      hash *= 0x100000001b3ULL;
    }
    return hash;
  };
  auto bits = [](double value) {
    std::uint64_t out;
    static_assert(sizeof(out) == sizeof(value));
    __builtin_memcpy(&out, &value, sizeof(out));
    return out;
  };
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const auto& event : events_) {
    hash = mix(hash, static_cast<std::uint64_t>(event.type));
    hash = mix(hash, bits(event.start_s));
    hash = mix(hash, bits(event.duration_s));
    hash = mix(hash, static_cast<std::uint64_t>(event.target));
    hash = mix(hash, bits(event.severity));
  }
  return hash;
}

FaultPlan make_storm_plan(double intensity, double horizon_s,
                          std::uint64_t seed, std::size_t service_count,
                          std::size_t crac_count) {
  if (intensity < 0.0) {
    throw std::invalid_argument("storm intensity must be >= 0");
  }
  // Scripted core: a guaranteed utility outage long enough to exhaust a
  // reference UPS window, and a full CRAC failure, both scaling in duration
  // with intensity so every swept point exercises both the power and the
  // cooling paths.
  std::vector<FaultEvent> core;
  const double outage_start = 0.25 * horizon_s;
  const double outage_duration = (600.0 + 1800.0 * intensity);
  core.push_back({FaultType::kUtilityOutage, outage_start, outage_duration,
                  0, 1.0});
  const double crac_start = 0.55 * horizon_s;
  const double crac_duration = (900.0 + 2700.0 * intensity);
  core.push_back({FaultType::kCracFailure, crac_start, crac_duration,
                  crac_count > 0 ? crac_count - 1 : 0, 1.0});
  FaultPlan plan = FaultPlan::scripted(std::move(core));

  if (intensity > 0.0) {
    FaultPlanConfig config;
    config.horizon_s = horizon_s;
    config.seed = seed;
    auto& crash = config.rate(FaultType::kServerCrash);
    crash.rate_per_day = 4.0 * intensity;
    crash.mean_duration_s = 900.0;
    crash.severity_lo = 0.05;
    crash.severity_hi = 0.25;
    crash.target_count = service_count;
    auto& psu = config.rate(FaultType::kPsuTrip);
    psu.rate_per_day = 1.5 * intensity;
    psu.mean_duration_s = 1800.0;
    psu.severity_lo = 0.1;
    psu.severity_hi = 0.3;
    psu.target_count = service_count;
    auto& derate = config.rate(FaultType::kCoolingDerate);
    derate.rate_per_day = 2.0 * intensity;
    derate.mean_duration_s = 1800.0;
    derate.severity_lo = 0.2;
    derate.severity_hi = 0.6;
    derate.target_count = crac_count;
    auto& dropout = config.rate(FaultType::kSensorDropout);
    dropout.rate_per_day = 3.0 * intensity;
    dropout.mean_duration_s = 600.0;
    dropout.target_count = service_count;
    auto& stuck = config.rate(FaultType::kSensorStuck);
    stuck.rate_per_day = 2.0 * intensity;
    stuck.mean_duration_s = 600.0;
    stuck.target_count = service_count;
    auto& surge = config.rate(FaultType::kFlashCrowd);
    surge.rate_per_day = 1.0 * intensity;
    surge.mean_duration_s = 1200.0;
    surge.severity_lo = 1.5;
    surge.severity_hi = 1.5 + intensity;
    surge.target_count = service_count;
    plan = plan.merged_with(FaultPlan::sampled(config));
  }
  return plan;
}

}  // namespace epm::faults
