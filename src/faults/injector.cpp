#include "faults/injector.h"

#include <stdexcept>

namespace epm::faults {

FaultInjector::FaultInjector(sim::Simulator& sim, FaultPlan plan)
    : FaultInjector(
          ScheduleHook([&sim](double when_s,
                              std::function<void(double)> edge) {
            sim.schedule_at(when_s,
                            [&sim, edge = std::move(edge)] { edge(sim.now()); });
          }),
          std::move(plan)) {}

FaultInjector::FaultInjector(ScheduleHook schedule, FaultPlan plan)
    : schedule_(std::move(schedule)), plan_(std::move(plan)) {
  if (!schedule_) {
    throw std::invalid_argument("FaultInjector: null schedule hook");
  }
  records_.reserve(plan_.size());
  for (const auto& event : plan_.events()) {
    FaultRecord record;
    record.event = event;
    records_.push_back(record);
  }
}

void FaultInjector::subscribe(FaultHandler handler) {
  if (armed_) {
    throw std::logic_error("FaultInjector: subscribe() after arm()");
  }
  if (!handler) {
    throw std::invalid_argument("FaultInjector: null handler");
  }
  handlers_.push_back(std::move(handler));
}

void FaultInjector::arm() {
  if (armed_) {
    throw std::logic_error("FaultInjector: arm() called twice");
  }
  armed_ = true;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const FaultEvent& event = records_[i].event;
    schedule_(event.start_s,
              [this, i](double now_s) { deliver(i, true, now_s); });
    schedule_(event.end_s(),
              [this, i](double now_s) { deliver(i, false, now_s); });
  }
}

void FaultInjector::deliver(std::size_t index, bool onset, double now_s) {
  FaultRecord& record = records_[index];
  if (onset) {
    record.observed = true;
    record.observed_at_s = now_s;
  } else {
    record.cleared = true;
    record.cleared_at_s = now_s;
  }
  for (auto& handler : handlers_) {
    const bool reacted = handler(record.event, onset, now_s);
    if (onset && reacted) {
      record.handled = true;
    }
  }
}

std::vector<FaultEvent> FaultInjector::active_events() const {
  std::vector<FaultEvent> active;
  for (const auto& record : records_) {
    if (record.observed && !record.cleared) {
      active.push_back(record.event);
    }
  }
  return active;
}

std::vector<FaultEvent> FaultInjector::active_events(FaultType type) const {
  std::vector<FaultEvent> active;
  for (const auto& record : records_) {
    if (record.observed && !record.cleared && record.event.type == type) {
      active.push_back(record.event);
    }
  }
  return active;
}

bool FaultInjector::any_active(FaultType type) const {
  for (const auto& record : records_) {
    if (record.observed && !record.cleared && record.event.type == type) {
      return true;
    }
  }
  return false;
}

std::size_t FaultInjector::observed_count() const {
  std::size_t n = 0;
  for (const auto& record : records_) {
    if (record.observed) ++n;
  }
  return n;
}

std::size_t FaultInjector::handled_count() const {
  std::size_t n = 0;
  for (const auto& record : records_) {
    if (record.handled) ++n;
  }
  return n;
}

std::size_t FaultInjector::cleared_count() const {
  std::size_t n = 0;
  for (const auto& record : records_) {
    if (record.cleared) ++n;
  }
  return n;
}

bool FaultInjector::conserved() const {
  for (const auto& record : records_) {
    if (!record.observed || !record.handled || !record.cleared) {
      return false;
    }
  }
  return true;
}

}  // namespace epm::faults
