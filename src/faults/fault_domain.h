// Hierarchical correlated fault domains: grid feed -> region -> datacenter
// -> cluster.
//
// The paper's §3.2 fleet-level picture makes one thing explicit: failures
// are not independent across datacenters. A regional grid disturbance takes
// every DC on that feed down (or brown) *together*, and demand-response /
// price-spike signals arrive fleet-wide, not per-site. This module models
// that correlation structure as a four-level containment tree. A scripted
// grid event names a node at ANY level ("outage on region americas",
// "brownout on feed grid-na") and fans out to every descendant datacenter
// with a small deterministic per-descendant stagger — breakers do not trip
// in perfect lockstep, but the correlation (same cause, near-same time) is
// preserved.
//
// Determinism: the tree is plain data; expansion draws its onset/clear
// stagger from SplitMix64 counter streams keyed by (seed, event index,
// datacenter index), so the expanded schedule is bit-identical across
// machines and never perturbed by unrelated events.
//
// Unknown target names are rejected at expansion time with a one-line
// diagnostic listing the known names at that level — a fat-fingered region
// name must fail loudly, not silently fault nothing.
//
// Text syntax for grid-event scripts (round-trips through parse/to_string):
//
//   plan   := entry (';' entry)*
//   entry  := kind ':' level '/' name '@' start '+' duration ['x' severity]
//   kind   := outage | brownout | price-spike | demand-response | ctl-kill
//   level  := feed | region | dc | cluster
//
// Times are seconds. Example:
//   "outage:region/americas@40+25;brownout:feed/grid-eu@70+30x0.6"
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace epm::faults {

enum class DomainLevel : std::uint8_t {
  kGridFeed = 0,
  kRegion,
  kDatacenter,
  kCluster,
};

/// Level token used by the plan syntax: "feed", "region", "dc", "cluster".
std::string to_string(DomainLevel level);
DomainLevel domain_level_from_string(const std::string& token);

/// The containment tree. Nodes are added top-down (a region names its feed,
/// a datacenter its region, a cluster its datacenter); names are unique per
/// level. Datacenter indices are assigned in insertion order and are the
/// indices the federation shards / macro fleet use.
class FaultDomainTree {
 public:
  std::size_t add_grid_feed(std::string name);
  std::size_t add_region(std::string name, const std::string& grid_feed);
  std::size_t add_datacenter(std::string name, const std::string& region);
  std::size_t add_cluster(std::string name, const std::string& datacenter);

  std::size_t feed_count() const { return feeds_.size(); }
  std::size_t region_count() const { return regions_.size(); }
  std::size_t datacenter_count() const { return datacenters_.size(); }
  std::size_t cluster_count() const { return clusters_.size(); }

  const std::string& datacenter_name(std::size_t dc) const;
  /// Region index owning datacenter `dc`.
  std::size_t region_of(std::size_t dc) const;
  /// Grid-feed index powering datacenter `dc`.
  std::size_t feed_of(std::size_t dc) const;

  /// Index of the named node at `level`. Unknown names throw
  /// std::invalid_argument with a one-line diagnostic naming the level and
  /// listing every known name at it.
  std::size_t resolve(DomainLevel level, const std::string& name) const;
  bool has(DomainLevel level, const std::string& name) const;

  /// Every datacenter index in the subtree under the named node, ascending.
  /// A cluster maps to its owning datacenter. Resolution failures throw as
  /// in resolve().
  std::vector<std::size_t> datacenters_under(DomainLevel level,
                                             const std::string& name) const;

 private:
  struct Region {
    std::string name;
    std::size_t feed;
  };
  struct Datacenter {
    std::string name;
    std::size_t region;
  };
  struct Cluster {
    std::string name;
    std::size_t datacenter;
  };

  void check_fresh(DomainLevel level, const std::string& name) const;

  std::vector<std::string> feeds_;
  std::vector<Region> regions_;
  std::vector<Datacenter> datacenters_;
  std::vector<Cluster> clusters_;
};

/// Grid-side event kinds delivered down the tree. Outage and brownout
/// remove capacity; price-spike and demand-response are elastic-power
/// signals (§3.2) that ask the fleet to shed or shift load without any
/// physical capacity loss.
enum class GridEventKind : std::uint8_t {
  kOutage = 0,
  kBrownout,
  kPriceSpike,
  kDemandResponse,
  /// Kills the macro controller replicas co-located with the target's
  /// datacenters without touching serving capacity — the control plane goes
  /// dark while the plant keeps running. (An outage implies this too: a
  /// dark DC's controller dies with it; ctl-kill isolates the control-plane
  /// loss.) No effect on worlds without a control plane.
  kControllerKill,
};

std::string to_string(GridEventKind kind);
GridEventKind grid_event_from_string(const std::string& token);

struct DomainFault {
  GridEventKind kind = GridEventKind::kOutage;
  DomainLevel level = DomainLevel::kRegion;
  std::string target;  ///< node name at `level`
  double start_s = 0.0;
  double duration_s = 0.0;
  /// Brownout: fraction of capacity lost, in (0, 1]. Price-spike: price
  /// multiplier. Ignored for outage (always full) and demand-response.
  double severity = 1.0;

  double end_s() const { return start_s + duration_s; }
};

class DomainFaultPlan {
 public:
  DomainFaultPlan() = default;

  /// Validates fields (finite non-negative times, positive duration,
  /// severity > 0) and sorts by (start, kind, level, target).
  static DomainFaultPlan scripted(std::vector<DomainFault> events);
  /// Parses the text syntax documented at the top of this header.
  static DomainFaultPlan parse(const std::string& spec);

  const std::vector<DomainFault>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Round-trips through parse().
  std::string to_string() const;

 private:
  std::vector<DomainFault> events_;
};

struct DomainExpansionConfig {
  /// Max per-datacenter onset delay after the scripted start (uniform
  /// jitter): correlated, not lockstep.
  double onset_stagger_s = 0.5;
  /// Max per-datacenter extra recovery time after the scripted end —
  /// restoration is raggeder than failure.
  double clear_stagger_s = 2.0;
  std::uint64_t seed = 1;
};

/// One datacenter's share of a scripted grid event.
struct ExpandedDcFault {
  std::size_t dc = 0;
  GridEventKind kind = GridEventKind::kOutage;
  double onset_s = 0.0;
  double clear_s = 0.0;
  double severity = 1.0;
  /// Index of the originating event in the plan (events() order).
  std::size_t source_event = 0;
};

/// Fans every scripted event out to the datacenters under its target, with
/// deterministic jittered onset/clear staggers. Unknown target names throw
/// the resolve() diagnostic. Result is sorted by (onset, dc, source_event).
std::vector<ExpandedDcFault> expand_to_datacenters(
    const FaultDomainTree& tree, const DomainFaultPlan& plan,
    const DomainExpansionConfig& config);

/// Containment tree for the reference fleet (macro::make_reference_fleet_
/// sites): regions americas {pnw, virginia, saopaulo}, emea {ireland},
/// apac {singapore, tokyo}; feeds grid-na/grid-eu/grid-apac; clusters
/// "<dc>/interactive" and "<dc>/batch" per datacenter. Unrecognized
/// datacenter names get a private "<name>-region" on a private
/// "grid-<name>" feed, so any fleet gets a valid tree.
FaultDomainTree make_reference_fault_domains(
    const std::vector<std::string>& dc_names);

}  // namespace epm::faults
