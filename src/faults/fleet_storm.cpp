#include "faults/fleet_storm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "cluster/remote_ref.h"
#include "core/require.h"
#include "faults/retry_storm_engine.h"  // retry_storm_window_mean

namespace epm::faults {

namespace {

/// One datacenter's state. Heap-allocated (stable address: event callbacks
/// capture raw pointers) and touched only by events on its own shard —
/// forward/response arrivals execute on the destination shard, so during a
/// federation window each FleetDc belongs to exactly one worker.
struct FleetDc {
  std::size_t index;
  std::size_t shard;
  workload::ClientPopulation population;
  cluster::BoundedQueue queue;
  cluster::TokenBucket bucket;
  cluster::CircuitBreaker breaker;
  /// inbox[src]: forwarded refs arrived since the last epoch boundary.
  /// Drained in src order at begin_epoch, so admission order never depends
  /// on physical arrival interleaving — the fabric-equality condition.
  std::vector<std::vector<std::uint32_t>> inbox;
  std::vector<std::vector<std::uint32_t>> fwd;   ///< [peer] epoch staging
  std::vector<std::vector<std::uint32_t>> resp;  ///< [owner] cohort scratch
  std::vector<std::uint32_t> cohort;             ///< refs served this epoch
  std::vector<std::uint32_t> local_ids;
  std::vector<std::size_t> peers;  ///< other dcs, rotation starting index+1
  std::size_t rr_peer = 0;
  double reroute_acc = 0.0;
  double serve_carry = 0.0;
  bool sessions_dropped = false;
  /// avoid[dc]: active broadcast disruptions at that peer, maintained by
  /// commutative ++/-- arrival events. Nonzero steers forwards elsewhere
  /// (only consulted when grid_broadcasts is on).
  std::vector<std::uint32_t> avoid;
  std::uint64_t grid_signals = 0;  ///< broadcast edges received

  // Cumulative counters.
  std::uint64_t dark = 0;
  std::uint64_t shed_breaker = 0;
  std::uint64_t shed_bucket = 0;
  std::uint64_t shed_queue = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t arrived = 0;  ///< refs landed in our inbox
  std::uint64_t remote_admitted = 0;
  std::uint64_t remote_served = 0;
  std::uint64_t remote_shed = 0;
  std::uint64_t responses_received = 0;
  std::size_t max_queue_depth = 0;

  // Phase-A snapshot consumed by phase B of the same epoch.
  workload::ClientLedger led0;
  std::uint64_t dark0 = 0;
  std::uint64_t shed0 = 0;
  std::uint64_t fresh0 = 0;
  std::uint64_t stale0 = 0;
  std::uint64_t expired0 = 0;

  // Per-epoch series for the recovery verdict.
  std::vector<double> offered_rate;
  std::vector<double> goodput_rate;
  std::vector<double> failure_rate;

  FleetDc(std::size_t idx, std::size_t shard_idx, const FleetStormConfig& cfg,
          workload::ClientPopulationConfig pop_cfg, std::size_t dcs)
      : index(idx),
        shard(shard_idx),
        population(std::move(pop_cfg)),
        queue(cfg.defense.enabled ? cfg.defense.queue_capacity
                                  : cfg.naive_queue_capacity),
        bucket(cfg.defense.bucket),
        breaker(cfg.defense.breaker),
        inbox(dcs),
        fwd(dcs),
        resp(dcs),
        avoid(dcs, 0) {
    for (std::size_t p = 1; p < dcs; ++p) peers.push_back((idx + p) % dcs);
  }
};

class FleetWorld {
 public:
  FleetWorld(const FleetStormConfig& config, sim::Fabric& fabric)
      : config_(config), fabric_(fabric), net_(make_fleet_network(config)) {
    const std::size_t dcs = config.sites.size();
    require(config.clients.clients <=
                static_cast<std::size_t>(cluster::kRemoteRefMaxId) + 1,
            "FleetStorm: per-datacenter population exceeds the 28-bit "
            "remote-ref id bound");
    require(config.epoch_s > 0.0, "FleetStorm: epoch must be positive");
    require(config.service_capacity_rps > 0.0,
            "FleetStorm: service capacity must be positive");
    require(config.outage_dc < dcs, "FleetStorm: outage_dc out of range");
    require(config.outage_start_s > 0.0 && config.outage_duration_s > 0.0,
            "FleetStorm: outage must have positive start and duration");
    require(config.horizon_s >
                config.outage_start_s + config.outage_duration_s,
            "FleetStorm: horizon must extend past the outage");
    for (const FleetDisruption& dis : config.disruptions) {
      require(dis.dc < dcs, "FleetStorm: disruption dc out of range");
      require(dis.start_s > 0.0 && dis.duration_s > 0.0,
              "FleetStorm: disruption must have positive start and duration");
      require(dis.capacity_factor >= 0.0 && dis.capacity_factor <= 1.0 &&
                  std::isfinite(dis.capacity_factor),
              "FleetStorm: disruption capacity factor outside [0, 1]");
      require(config.horizon_s > dis.end_s(),
              "FleetStorm: horizon must extend past every disruption");
    }
    require(config.reroute_fraction >= 0.0 && config.reroute_fraction <= 1.0,
            "FleetStorm: reroute fraction outside [0, 1]");
    require(config.sla_goodput_fraction > 0.0 &&
                config.sla_goodput_fraction <= 1.0,
            "FleetStorm: SLA fraction outside (0, 1]");
    require(config.recovery_window_epochs >= 1,
            "FleetStorm: recovery window must be at least one epoch");
    if (!config.defense.enabled) {
      require(config.naive_queue_capacity >= 1,
              "FleetStorm: naive queue capacity must be at least 1");
    }
    require(fabric.shard_count() >= 1 && dcs % fabric.shard_count() == 0,
            "FleetStorm: fabric shard count must divide the datacenter "
            "count (contiguous groups)");

    dt_ = config.epoch_s;
    epochs_ = static_cast<std::size_t>(std::ceil(config.horizon_s / dt_));
    // The pre-fault window ends at the FIRST disturbance (legacy outage or
    // any disruption); recovery is judged from the LAST clear. With no
    // disruptions both collapse to the legacy outage bounds.
    double first_start_s = config.outage_start_s;
    double last_end_s = config.outage_start_s + config.outage_duration_s;
    for (const FleetDisruption& dis : config.disruptions) {
      first_start_s = std::min(first_start_s, dis.start_s);
      last_end_s = std::max(last_end_s, dis.end_s());
    }
    outage_start_epoch_ = static_cast<std::size_t>(first_start_s / dt_);
    require(outage_start_epoch_ / 2 + config.recovery_window_epochs <=
                outage_start_epoch_,
            "FleetStorm: outage starts too early for a pre-fault SLA window");
    outage_end_s_ = config.outage_start_s + config.outage_duration_s;
    last_clear_s_ = last_end_s;

    const std::size_t per_shard = dcs / fabric.shard_count();
    for (std::size_t d = 0; d < dcs; ++d) {
      workload::ClientPopulationConfig pop = config.clients;
      pop.seed += d;  // distinct but reproducible per-datacenter streams
      dcs_.push_back(
          std::make_unique<FleetDc>(d, d / per_shard, config, pop, dcs));
    }
  }

  FleetStormOutcome run() {
    for (std::size_t d = 0; d < dcs_.size(); ++d) {
      FleetWorld* w = this;
      fabric_.kernel(dcs_[d]->shard).schedule_at(
          0.0, [w, d] { w->drive(d, 0); });
    }
    // Defended fleets hear the grid: every broadcast disruption announces
    // its onset and clear to the peers, one latency floor later. The ++/--
    // arrivals commute, so the fabric-equality argument is untouched; with
    // broadcasts off (or no disruptions) nothing is scheduled and the
    // legacy event sequence is bit-identical.
    if (config_.grid_broadcasts) {
      for (const FleetDisruption& dis : config_.disruptions) {
        if (!dis.broadcast) continue;
        schedule_broadcast(dis.dc, dis.start_s, +1);
        schedule_broadcast(dis.dc, dis.end_s(), -1);
      }
    }
    events_run_ = fabric_.run_until(static_cast<double>(epochs_) * dt_);
    return finish();
  }

 private:
  /// Epoch driver for datacenter d: end_epoch(e-1) then begin_epoch(e),
  /// both at t = e*dt. The epoch's completion cohort is scheduled *inside*
  /// begin_epoch, i.e. before the next driver — at every boundary the
  /// same-timestamp FIFO fires the cohort first, replaying the serial
  /// storm's loop order. drive(epochs) only closes the final epoch.
  void drive(std::size_t d, std::size_t e) {
    if (e > 0) end_epoch(d, e - 1);
    if (e >= epochs_) return;
    begin_epoch(d, e);
    FleetWorld* w = this;
    fabric_.kernel(dcs_[d]->shard)
        .schedule_at(static_cast<double>(e + 1) * dt_,
                     [w, d, e] { w->drive(d, e + 1); });
  }

  /// Announces a disruption edge: an event on the home shard at `when_s`
  /// sends one counter message per peer.
  void schedule_broadcast(std::size_t home, double when_s, int delta) {
    FleetWorld* w = this;
    fabric_.kernel(dcs_[home]->shard).schedule_at(when_s, [w, home, delta] {
      FleetDc& src = *w->dcs_[home];
      for (const std::size_t peer : src.peers) {
        FleetDc* p = w->dcs_[peer].get();
        w->fabric_.send(src.shard, p->shard,
                        w->net_.latency_floor_s(home, peer),
                        [p, home, delta] {
                          if (delta > 0) {
                            ++p->avoid[home];
                          } else if (p->avoid[home] > 0) {
                            --p->avoid[home];
                          }
                          ++p->grid_signals;
                        });
      }
    });
  }

  /// Deterministic fractional re-route: no randomness, an accumulator
  /// forwards exactly reroute_fraction of eligible attempts, spread
  /// round-robin over the peers. Returns true when the attempt was staged.
  bool try_forward(FleetDc& dc, std::uint32_t id) {
    if (dc.peers.empty() || config_.reroute_fraction <= 0.0) return false;
    dc.reroute_acc += config_.reroute_fraction;
    if (dc.reroute_acc < 1.0) return false;
    dc.reroute_acc -= 1.0;
    // Steer around peers with an active broadcast disruption. With nothing
    // avoided k == 0 and this is exactly the legacy rotation (pick rr_peer,
    // advance by one).
    const std::size_t n = dc.peers.size();
    std::size_t k = 0;
    while (k < n && dc.avoid[dc.peers[(dc.rr_peer + k) % n]] != 0) ++k;
    if (k == n) k = 0;  // every peer degraded: plain rotation beats nothing
    const std::size_t peer = dc.peers[(dc.rr_peer + k) % n];
    dc.rr_peer = (dc.rr_peer + k + 1) % n;
    dc.fwd[peer].push_back(
        cluster::pack_remote_ref(static_cast<std::uint32_t>(dc.index), id));
    ++dc.forwarded;
    return true;
  }

  /// Ships the epoch's staged forwards, one message per peer, arriving one
  /// latency floor later. The arrival appends to the peer's src-indexed
  /// inbox; nothing else, so same-timestamp arrivals commute.
  void flush_forwards(FleetDc& dc) {
    for (std::size_t peer = 0; peer < dcs_.size(); ++peer) {
      if (dc.fwd[peer].empty()) continue;
      FleetDc* dst = dcs_[peer].get();
      fabric_.send(dc.shard, dst->shard, net_.latency_floor_s(dc.index, peer),
                   [dst, src = dc.index, batch = dc.fwd[peer]] {
                     auto& box = dst->inbox[src];
                     box.insert(box.end(), batch.begin(), batch.end());
                     dst->arrived += batch.size();
                   });
      dc.fwd[peer].clear();
    }
  }

  void begin_epoch(std::size_t d, std::size_t e) {
    FleetDc& dc = *dcs_[d];
    const double t0 = static_cast<double>(e) * dt_;
    const double t1 = t0 + dt_;
    const bool legacy_dark = d == config_.outage_dc &&
                             t0 >= config_.outage_start_s &&
                             t0 < outage_end_s_;
    double factor = 1.0;
    bool drop_wanted = legacy_dark;
    for (const FleetDisruption& dis : config_.disruptions) {
      if (dis.dc != d || t0 < dis.start_s || t0 >= dis.end_s()) continue;
      factor *= dis.capacity_factor;
      if (dis.drop_sessions) drop_wanted = true;
    }
    const bool dark = legacy_dark || factor == 0.0;
    const bool defended = config_.defense.enabled;

    if (dark && drop_wanted && !dc.sessions_dropped) {
      dc.population.disconnect_all(t0);
      dc.sessions_dropped = true;
    } else if (!dark && dc.sessions_dropped) {
      // Re-arm for a later disruption; a no-op under the legacy single
      // outage, where dark never returns.
      dc.sessions_dropped = false;
    }
    if (defended) {
      dc.breaker.begin_epoch(t0);
      dc.bucket.refill(dt_);
    }

    dc.led0 = dc.population.ledger();
    dc.dark0 = dc.dark;
    dc.shed0 = dc.shed_breaker + dc.shed_bucket + dc.shed_queue;
    dc.fresh0 = dc.led0.served;
    dc.stale0 = dc.led0.stale_served;
    dc.expired0 = dc.led0.timed_out;

    // 1. Forwarded work that arrived during the previous epoch, in source
    // order. It carried its admission verdict at the owner already, so a
    // loss here is resolved by the owner's client timeout — only the token
    // bucket and the queue gate it (the breaker protects local clients
    // against a dark *local* service, which this work has already left).
    for (std::size_t src = 0; src < dcs_.size(); ++src) {
      for (const std::uint32_t ref : dc.inbox[src]) {
        if (dark || (defended && !dc.bucket.try_acquire()) ||
            !dc.queue.try_push(ref, t0)) {
          ++dc.remote_shed;
        } else {
          ++dc.remote_admitted;
        }
      }
      dc.inbox[src].clear();
    }

    // 2. Local attempts due this epoch, through the admission stack. A dark
    // service forwards (ride-through) what the re-route budget allows and
    // fails the rest; queue overflow likewise forwards before shedding.
    for (const std::uint32_t id : dc.population.collect_due(t0, dt_)) {
      if (dark) {
        if (try_forward(dc, id)) {
          dc.population.on_admitted(id, t0);
        } else {
          ++dc.dark;
          dc.population.on_rejected(id, t0);
        }
      } else if (defended && !dc.breaker.allow()) {
        ++dc.shed_breaker;
        dc.population.on_rejected(id, t0);
      } else if (defended && !dc.bucket.try_acquire()) {
        ++dc.shed_bucket;
        dc.population.on_rejected(id, t0);
      } else if (!dc.queue.try_push(
                     cluster::pack_remote_ref(
                         static_cast<std::uint32_t>(d), id),
                     t0)) {
        if (try_forward(dc, id)) {
          dc.population.on_admitted(id, t0);
        } else {
          ++dc.shed_queue;
          dc.population.on_rejected(id, t0);
        }
      } else {
        dc.population.on_admitted(id, t0);
      }
    }
    flush_forwards(dc);
    dc.max_queue_depth = std::max(dc.max_queue_depth, dc.queue.size());

    // 3. Drain the accept queue FIFO within the epoch's service credit;
    // the completion cohort lands at the epoch end. Fractional credit
    // carries over only while the server is backlogged.
    // Brownouts scale the epoch's service credit; factor == 1.0 multiplies
    // exactly (IEEE identity), keeping disruption-free runs bit-identical.
    double credit = dark ? 0.0
                         : dc.serve_carry +
                               config_.service_capacity_rps * factor * dt_;
    dc.cohort.clear();
    while (credit >= 1.0 && !dc.queue.empty()) {
      dc.cohort.push_back(dc.queue.front().id);
      dc.queue.pop();
      credit -= 1.0;
    }
    dc.serve_carry = (dark || dc.queue.empty()) ? 0.0 : credit;
    if (!dc.cohort.empty()) {
      FleetWorld* w = this;
      fabric_.kernel(dc.shard)
          .schedule_at(t1, [w, d, t1, cohort = dc.cohort] {
            w->complete(d, t1, cohort);
          });
    }
  }

  /// Fires the epoch's completion cohort on datacenter d: local ids are
  /// served in one batch; forwarded work is answered with one response
  /// message per owner, arriving one latency floor later. Each forwarded
  /// attempt lives in exactly one peer's queue, so same-timestamp response
  /// events touch disjoint waiting clients and commute.
  void complete(std::size_t d, double t1,
                const std::vector<std::uint32_t>& cohort) {
    FleetDc& dc = *dcs_[d];
    dc.local_ids.clear();
    for (auto& r : dc.resp) r.clear();
    for (const std::uint32_t ref : cohort) {
      const std::uint32_t owner = cluster::remote_ref_owner(ref);
      if (owner == d) {
        dc.local_ids.push_back(cluster::remote_ref_client(ref));
      } else {
        dc.resp[owner].push_back(cluster::remote_ref_client(ref));
      }
    }
    if (!dc.local_ids.empty()) {
      dc.population.on_served_batch(dc.local_ids.data(), dc.local_ids.size(),
                                    t1);
    }
    for (std::size_t owner = 0; owner < dcs_.size(); ++owner) {
      if (dc.resp[owner].empty()) continue;
      dc.remote_served += dc.resp[owner].size();
      const double lat = net_.latency_floor_s(d, owner);
      FleetDc* op = dcs_[owner].get();
      fabric_.send(dc.shard, op->shard, lat,
                   [op, ids = dc.resp[owner], t = t1 + lat] {
                     op->responses_received += ids.size();
                     for (const std::uint32_t id : ids) {
                       op->population.on_served(id, t);
                     }
                   });
    }
  }

  void end_epoch(std::size_t d, std::size_t e) {
    FleetDc& dc = *dcs_[d];
    const double t1 = static_cast<double>(e) * dt_ + dt_;
    dc.population.expire_timeouts(t1);

    const auto& led1 = dc.population.ledger();
    const std::uint64_t fresh_delta = led1.served - dc.fresh0;
    const std::uint64_t stale_delta = led1.stale_served - dc.stale0;
    const std::uint64_t expired_delta = led1.timed_out - dc.expired0;
    const std::uint64_t dark_delta = dc.dark - dc.dark0;
    const std::uint64_t shed_delta =
        dc.shed_breaker + dc.shed_bucket + dc.shed_queue - dc.shed0;

    dc.offered_rate.push_back(
        static_cast<double>(led1.attempts - dc.led0.attempts) / dt_);
    dc.goodput_rate.push_back(static_cast<double>(fresh_delta) / dt_);
    dc.failure_rate.push_back(
        static_cast<double>(stale_delta + expired_delta + shed_delta +
                            dark_delta) /
        dt_);

    if (config_.defense.enabled) {
      // Breaker verdict from downstream outcomes, as in the single-DC
      // storm: completions (fresh/stale), client timeouts, dark failures.
      // Deliberate sheds do not trip it.
      const std::uint64_t observed =
          dark_delta + fresh_delta + stale_delta + expired_delta;
      dc.breaker.on_epoch_end(observed, observed - fresh_delta, t1);
    }
  }

  FleetStormOutcome finish() {
    FleetStormOutcome out;
    out.epochs = epochs_;
    const std::size_t window = config_.recovery_window_epochs;
    const std::size_t clear_epoch = std::min(
        epochs_, static_cast<std::size_t>(std::ceil(last_clear_s_ / dt_)));

    std::uint64_t intents = 0;
    std::uint64_t fresh = 0;
    std::uint64_t arrived = 0;
    std::uint64_t drained = 0;
    std::uint64_t inboxed = 0;
    std::uint64_t responses_sent = 0;
    std::uint64_t responses_received = 0;
    bool ok = true;
    std::string report;
    const auto violation = [&](std::string what) {
      ok = false;
      if (report.empty()) report = std::move(what);
    };

    for (const auto& dcp : dcs_) {
      const FleetDc& dc = *dcp;
      ensure(dc.offered_rate.size() == epochs_,
             "FleetStorm: epoch series incomplete — driver chain broken");
      FleetDcOutcome o;
      o.site = config_.sites[dc.index].name;
      const auto& led = dc.population.ledger();
      o.intents = led.intents;
      o.attempts = led.attempts;
      o.retries = led.retries;
      o.served_fresh = led.served;
      o.served_stale = led.stale_served;
      o.timed_out = led.timed_out;
      o.abandoned = led.abandoned;
      o.dark_failures = dc.dark;
      o.shed_breaker = dc.shed_breaker;
      o.shed_bucket = dc.shed_bucket;
      o.shed_queue = dc.shed_queue;
      o.forwarded = dc.forwarded;
      o.remote_admitted = dc.remote_admitted;
      o.remote_served = dc.remote_served;
      o.remote_shed = dc.remote_shed;
      o.max_queue_depth = dc.max_queue_depth;
      o.breaker_trips = dc.breaker.trips();
      o.grid_signals = dc.grid_signals;

      o.prefault_goodput_rps = retry_storm_window_mean(
          dc.goodput_rate, outage_start_epoch_,
          outage_start_epoch_ - outage_start_epoch_ / 2);
      const double sla_rps =
          config_.sla_goodput_fraction * o.prefault_goodput_rps;
      const double fail_budget_rps =
          (1.0 - config_.sla_goodput_fraction) * o.prefault_goodput_rps;
      std::size_t healthy_run = 0;
      for (std::size_t e = clear_epoch; e < epochs_ && !o.recovered; ++e) {
        const bool healthy = dc.goodput_rate[e] >= sla_rps &&
                             dc.failure_rate[e] <= fail_budget_rps;
        healthy_run = healthy ? healthy_run + 1 : 0;
        if (healthy_run >= window) {
          o.recovered = true;
          o.recovery_s = static_cast<double>(e + 1) * dt_ - last_clear_s_;
        }
      }
      o.end_offered_rps =
          retry_storm_window_mean(dc.offered_rate, epochs_, window);
      o.end_goodput_rps =
          retry_storm_window_mean(dc.goodput_rate, epochs_, window);
      out.fleet_prefault_goodput_rps += o.prefault_goodput_rps;
      out.fleet_end_goodput_rps += o.end_goodput_rps;
      o.conservation_ok = dc.population.conservation_ok();
      o.conservation_report = dc.population.conservation_report();
      if (!o.conservation_ok) violation(o.site + ": " + o.conservation_report);

      intents += o.intents;
      fresh += o.served_fresh;
      out.forwarded += dc.forwarded;
      out.remote_served += dc.remote_served;
      out.remote_shed += dc.remote_shed;
      arrived += dc.arrived;
      drained += dc.remote_admitted + dc.remote_shed;
      for (const auto& box : dc.inbox) inboxed += box.size();
      responses_sent += dc.remote_served;
      responses_received += dc.responses_received;
      out.dcs.push_back(std::move(o));
    }

    // Fleet flow identities. Every ref that landed in an inbox was drained
    // or is still in the inbox; what was forwarded but has not landed (and
    // every response not yet received) is in flight in the fabric — both
    // gaps must be non-negative. A federation that loses or duplicates a
    // mailbox message breaks one of these.
    if (arrived != drained + inboxed) {
      violation("fleet flow: arrived refs != drained + inboxed");
    }
    if (out.forwarded < arrived) {
      violation("fleet flow: more refs arrived than were forwarded");
    }
    if (responses_sent < responses_received) {
      violation("fleet flow: more responses received than sent");
    }

    out.fleet_goodput_fraction =
        intents > 0
            ? static_cast<double>(fresh) / static_cast<double>(intents)
            : 1.0;
    out.conservation_ok = ok;
    out.conservation_report = report;
    out.events_run = events_run_;
    out.events_pending = fabric_.pending();
    return out;
  }

  const FleetStormConfig& config_;
  sim::Fabric& fabric_;
  network::InterDcNetwork net_;
  double dt_ = 1.0;
  std::size_t epochs_ = 0;
  std::size_t outage_start_epoch_ = 0;
  double outage_end_s_ = 0.0;   ///< legacy scripted outage clear
  double last_clear_s_ = 0.0;   ///< latest clear over outage + disruptions
  std::vector<std::unique_ptr<FleetDc>> dcs_;
  std::size_t events_run_ = 0;
};

}  // namespace

network::InterDcNetwork make_fleet_network(const FleetStormConfig& config) {
  require(config.sites.size() >= 2,
          "FleetStorm: need at least two datacenters");
  require(config.sites.size() <=
              static_cast<std::size_t>(cluster::kRemoteRefMaxOwner) + 1,
          "FleetStorm: fleet exceeds the 4-bit remote-ref owner bound");
  std::vector<network::InterDcSite> sites;
  sites.reserve(config.sites.size());
  for (const auto& s : config.sites) {
    sites.push_back({s.name, s.latitude_deg, s.longitude_deg});
  }
  return network::InterDcNetwork(std::move(sites),
                                 config.latency_detour_factor,
                                 config.min_latency_floor_s);
}

sim::ShardedConfig make_fleet_sharded_config(const network::InterDcNetwork& net,
                                             std::size_t shards,
                                             std::size_t threads) {
  require(shards >= 1, "make_fleet_sharded_config: need at least one shard");
  require(net.site_count() % shards == 0,
          "make_fleet_sharded_config: shard count must divide the "
          "datacenter count");
  sim::ShardedConfig cfg;
  cfg.shards = shards;
  cfg.threads = threads;
  if (shards == 1) return cfg;  // no cross-shard constraint to derive
  const std::size_t group = net.site_count() / shards;
  cfg.lookahead_s.assign(shards * shards, 0.0);
  for (std::size_t a = 0; a < shards; ++a) {
    for (std::size_t b = 0; b < shards; ++b) {
      if (a == b) continue;
      double floor = std::numeric_limits<double>::infinity();
      for (std::size_t i = a * group; i < (a + 1) * group; ++i) {
        for (std::size_t j = b * group; j < (b + 1) * group; ++j) {
          floor = std::min(floor, net.latency_floor_s(i, j));
        }
      }
      cfg.lookahead_s[a * shards + b] = floor;
    }
  }
  return cfg;
}

FleetStormOutcome run_fleet_storm(const FleetStormConfig& config,
                                  sim::Fabric& fabric) {
  FleetWorld world(config, fabric);
  return world.run();
}

bool fleet_storm_outcomes_equal(const FleetStormOutcome& a,
                                const FleetStormOutcome& b) {
  if (a.dcs.size() != b.dcs.size()) return false;
  for (std::size_t i = 0; i < a.dcs.size(); ++i) {
    const FleetDcOutcome& x = a.dcs[i];
    const FleetDcOutcome& y = b.dcs[i];
    const bool same =
        x.site == y.site && x.intents == y.intents &&
        x.attempts == y.attempts && x.retries == y.retries &&
        x.served_fresh == y.served_fresh && x.served_stale == y.served_stale &&
        x.timed_out == y.timed_out && x.abandoned == y.abandoned &&
        x.dark_failures == y.dark_failures &&
        x.shed_breaker == y.shed_breaker && x.shed_bucket == y.shed_bucket &&
        x.shed_queue == y.shed_queue && x.forwarded == y.forwarded &&
        x.remote_admitted == y.remote_admitted &&
        x.remote_served == y.remote_served && x.remote_shed == y.remote_shed &&
        x.prefault_goodput_rps == y.prefault_goodput_rps &&
        x.end_offered_rps == y.end_offered_rps &&
        x.end_goodput_rps == y.end_goodput_rps &&
        x.grid_signals == y.grid_signals &&
        x.recovered == y.recovered && x.recovery_s == y.recovery_s &&
        x.max_queue_depth == y.max_queue_depth &&
        x.breaker_trips == y.breaker_trips &&
        x.conservation_ok == y.conservation_ok;
    if (!same) return false;
  }
  return a.epochs == b.epochs && a.forwarded == b.forwarded &&
         a.remote_served == b.remote_served &&
         a.remote_shed == b.remote_shed &&
         a.fleet_goodput_fraction == b.fleet_goodput_fraction &&
         a.fleet_prefault_goodput_rps == b.fleet_prefault_goodput_rps &&
         a.fleet_end_goodput_rps == b.fleet_end_goodput_rps &&
         a.conservation_ok == b.conservation_ok &&
         a.events_run == b.events_run &&
         a.events_pending == b.events_pending;
}

std::vector<FleetDisruption> to_fleet_disruptions(
    const std::vector<ExpandedDcFault>& expanded) {
  std::vector<FleetDisruption> out;
  out.reserve(expanded.size());
  for (const ExpandedDcFault& x : expanded) {
    FleetDisruption dis;
    dis.dc = x.dc;
    dis.start_s = x.onset_s;
    dis.duration_s = x.clear_s - x.onset_s;
    dis.broadcast = true;
    switch (x.kind) {
      case GridEventKind::kOutage:
        dis.capacity_factor = 0.0;
        dis.drop_sessions = true;
        break;
      case GridEventKind::kBrownout:
        dis.capacity_factor = 1.0 - std::clamp(x.severity, 0.0, 1.0);
        break;
      case GridEventKind::kPriceSpike:
      case GridEventKind::kDemandResponse:
        dis.capacity_factor = 1.0;  // elastic-power signal, no capacity loss
        break;
      case GridEventKind::kControllerKill:
        // Control-plane-only loss: serving capacity is untouched; the
        // control_chaos world maps this onto controller crash windows.
        dis.capacity_factor = 1.0;
        break;
    }
    out.push_back(dis);
  }
  return out;
}

FleetStormConfig make_reference_fleet_storm_config(std::size_t dcs,
                                                   std::size_t clients_per_dc,
                                                   std::uint64_t seed) {
  require(clients_per_dc >= 1,
          "make_reference_fleet_storm_config: need at least one client");
  FleetStormConfig config;
  config.sites = macro::make_reference_fleet_sites(dcs);
  config.clients.clients = clients_per_dc;
  config.clients.seed = seed;
  config.clients.think_time_s = 40.0;
  config.clients.start_spread_s = 40.0;
  config.clients.request_timeout_s = 4.0;
  // Fast enough reconnect spread that the post-outage surge lands inside
  // the 120 s horizon.
  config.clients.reconnect_spread_s = 15.0;
  // Capacity sized ~25% above each datacenter's steady-state demand
  // (clients / think time), mirroring the single-DC reference scenario.
  const double demand =
      static_cast<double>(clients_per_dc) / config.clients.think_time_s;
  const double capacity = std::max(100.0, demand * 1.25);
  config.service_capacity_rps = capacity;
  config.defense.enabled = true;
  config.defense.bucket = {0.9 * capacity, 0.9 * capacity};
  // Worst-case sojourn below the 4 s client timeout.
  config.defense.queue_capacity =
      static_cast<std::size_t>(capacity * 1.8) + 1;
  config.epoch_s = 1.0;
  config.horizon_s = 120.0;
  config.outage_dc = 0;
  config.outage_start_s = 30.0;
  config.outage_duration_s = 20.0;
  config.reroute_fraction = 1.0;
  config.latency_detour_factor = 1.3;
  config.min_latency_floor_s = 1e-3;
  config.sla_goodput_fraction = 0.9;
  config.recovery_window_epochs = 10;
  return config;
}

}  // namespace epm::faults
