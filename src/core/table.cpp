#include "core/table.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/require.h"

namespace epm {

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string fmt_percent(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

std::string fmt_si(double v, int precision) {
  const double a = std::fabs(v);
  if (a >= 1e9) return fmt(v / 1e9, precision) + " G";
  if (a >= 1e6) return fmt(v / 1e6, precision) + " M";
  if (a >= 1e3) return fmt(v / 1e3, precision) + " k";
  return fmt(v, precision);
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  require(row.size() == header_.size(), "Table::add_row: column count mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::render(int indent) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    os << pad;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << "  ";
      // Left-align the first column (labels), right-align numeric columns.
      if (c == 0) {
        os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      } else {
        os << std::string(widths[c] - row[c].size(), ' ') << row[c];
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  os << pad << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string ascii_chart(const std::vector<double>& values, std::size_t width,
                        std::size_t height) {
  if (values.empty() || width == 0 || height == 0) return "";
  // Downsample (mean) to `width` columns.
  std::vector<double> cols(std::min(width, values.size()), 0.0);
  const std::size_t w = cols.size();
  for (std::size_t c = 0; c < w; ++c) {
    const std::size_t b = c * values.size() / w;
    const std::size_t e = std::max(b + 1, (c + 1) * values.size() / w);
    double s = 0.0;
    for (std::size_t i = b; i < e; ++i) s += values[i];
    cols[c] = s / static_cast<double>(e - b);
  }
  const double lo = *std::min_element(cols.begin(), cols.end());
  const double hi = *std::max_element(cols.begin(), cols.end());
  const double span = (hi - lo) > 0.0 ? (hi - lo) : 1.0;
  std::ostringstream os;
  for (std::size_t r = 0; r < height; ++r) {
    const double level = 1.0 - static_cast<double>(r) / static_cast<double>(height);
    os << "  ";
    if (r == 0) {
      os << fmt(hi, 2) << " |";
    } else if (r + 1 == height) {
      os << fmt(lo, 2) << " |";
    } else {
      os << std::string(fmt(hi, 2).size(), ' ') << " |";
    }
    for (std::size_t c = 0; c < w; ++c) {
      const double frac = (cols[c] - lo) / span;
      os << (frac >= level - 1e-12 ? '#' : ' ');
    }
    os << '\n';
  }
  return os.str();
}

std::string banner(const std::string& title) {
  return "\n==== " + title + " ====\n";
}

}  // namespace epm
