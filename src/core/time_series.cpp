#include "core/time_series.h"

#include <algorithm>
#include <cmath>

#include "core/require.h"

namespace epm {

TimeSeries::TimeSeries(double start_s, double step_s) : start_s_(start_s), step_s_(step_s) {
  require(step_s > 0.0, "TimeSeries: step must be positive");
}

TimeSeries::TimeSeries(double start_s, double step_s, std::vector<double> values)
    : start_s_(start_s), step_s_(step_s), values_(std::move(values)) {
  require(step_s > 0.0, "TimeSeries: step must be positive");
}

double TimeSeries::end_s() const {
  return start_s_ + step_s_ * static_cast<double>(values_.size());
}

double TimeSeries::time_at(std::size_t i) const {
  return start_s_ + step_s_ * static_cast<double>(i);
}

double TimeSeries::value_at(double t_s) const {
  require(!values_.empty(), "TimeSeries::value_at on empty series");
  if (t_s <= start_s_) return values_.front();
  const auto idx = static_cast<std::size_t>((t_s - start_s_) / step_s_);
  if (idx >= values_.size()) return values_.back();
  return values_[idx];
}

OnlineStats TimeSeries::stats() const {
  OnlineStats s;
  for (double v : values_) s.add(v);
  return s;
}

OnlineStats TimeSeries::stats_between(double t0_s, double t1_s) const {
  OnlineStats s;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const double t = time_at(i);
    if (t >= t0_s && t < t1_s) s.add(values_[i]);
  }
  return s;
}

TimeSeries TimeSeries::downsample_mean(std::size_t factor) const {
  return downsample(factor, mean_of);
}

TimeSeries TimeSeries::operator+(const TimeSeries& other) const {
  require(size() == other.size(), "TimeSeries::operator+: length mismatch");
  require(std::abs(start_s_ - other.start_s_) < 1e-9 &&
              std::abs(step_s_ - other.step_s_) < 1e-9,
          "TimeSeries::operator+: timing mismatch");
  TimeSeries out(start_s_, step_s_);
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.push_back(values_[i] + other.values_[i]);
  return out;
}

TimeSeries TimeSeries::scaled(double factor) const {
  return map([factor](double v) { return v * factor; });
}

double mean_of(const double* data, std::size_t n) {
  ensure(n > 0, "mean_of: empty group");
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += data[i];
  return s / static_cast<double>(n);
}

double max_of(const double* data, std::size_t n) {
  ensure(n > 0, "max_of: empty group");
  return *std::max_element(data, data + n);
}

}  // namespace epm
