// Precondition / invariant checking helpers.
//
// Public API entry points validate their arguments with `require()`, which
// throws std::invalid_argument; internal invariants use `ensure()`, which
// throws std::logic_error. Both are always on: the simulations in this
// library are configuration-heavy and silent misconfiguration is far more
// expensive than a branch.
#pragma once

#include <stdexcept>
#include <string>

namespace epm {

/// Throws std::invalid_argument with `what` unless `cond` holds.
inline void require(bool cond, const std::string& what) {
  if (!cond) throw std::invalid_argument(what);
}

/// Throws std::logic_error with `what` unless `cond` holds.
inline void ensure(bool cond, const std::string& what) {
  if (!cond) throw std::logic_error(what);
}

}  // namespace epm
