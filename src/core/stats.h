// Streaming statistics used throughout the simulators and experiments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace epm {

/// Welford online mean/variance plus min/max.
class OnlineStats {
 public:
  void add(double x);
  /// Merges another accumulator into this one (parallel-safe combination).
  void merge(const OnlineStats& other);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return count_ ? mean_ * static_cast<double>(count_) : 0.0; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi) with overflow/underflow bins and
/// interpolated quantile queries. Used for response-time and power
/// distributions where exact order statistics over millions of samples would
/// be wasteful.
class Histogram {
 public:
  /// `bins` uniform bins across [lo, hi); values outside land in under/over.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);
  void reset();

  std::uint64_t total_count() const { return total_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_[i]; }

  /// Interpolated quantile, q in [0,1]. Underflow maps to lo(), overflow to
  /// hi(). Returns lo() for an empty histogram.
  double quantile(double q) const;
  /// Fraction of samples strictly above `x` (bin-resolution approximation).
  double fraction_above(double x) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Exponentially weighted moving average with optional bias-corrected warmup.
class Ewma {
 public:
  /// `alpha` in (0, 1]: weight of the newest observation.
  explicit Ewma(double alpha);

  void add(double x);
  bool empty() const { return count_ == 0; }
  /// Current estimate; 0 when empty.
  double value() const { return value_; }
  std::size_t count() const { return count_; }
  void reset();

 private:
  double alpha_;
  double value_ = 0.0;
  std::size_t count_ = 0;
};

/// Pearson correlation of two equal-length samples; 0 if degenerate.
double pearson_correlation(const std::vector<double>& a, const std::vector<double>& b);

/// Exact quantile of a sample (copies and partially sorts). q in [0,1].
double sample_quantile(std::vector<double> values, double q);

}  // namespace epm
