// Epoch-scoped monotonic bump allocator.
//
// Epoch-granular models (the client sweep, the retry-storm driver, the
// request DES) need short-lived scratch — candidate lists, completion
// cohorts, block-RNG buffers — whose lifetime is exactly one epoch. Going
// through the heap for those means an allocator round-trip per vector per
// epoch and, at 10M clients, hundreds of megabytes of churn per simulated
// second. EpochArena replaces that with pointer-bump allocation out of
// chunks that are retained across reset(), so after the first epoch the
// steady state performs zero heap traffic: reset() is one pointer rewind.
//
// Only trivially-destructible element types are allowed (enforced at
// compile time): reset() never runs destructors. The arena is not
// thread-safe; the sharded sweep allocates every shard's span up front on
// the control thread and hands workers disjoint spans to fill.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace epm {

class EpochArena {
 public:
  /// `chunk_bytes` is the granularity of growth; oversized requests get a
  /// dedicated chunk of exactly their size.
  explicit EpochArena(std::size_t chunk_bytes = std::size_t{1} << 20)
      : chunk_bytes_(chunk_bytes < kMinChunk ? kMinChunk : chunk_bytes) {}

  /// Uninitialized storage for `count` elements of T. Alignment comes from
  /// T; the span stays valid until the next reset().
  template <typename T>
  T* alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "EpochArena never runs destructors");
    if (count == 0) return nullptr;
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty. Every chunk is retained, so the steady state
  /// re-serves the same memory with zero heap traffic.
  void reset() {
    cursor_ = 0;
    chunk_index_ = 0;
  }

  /// Bytes currently handed out (diagnostics; includes alignment padding).
  std::size_t bytes_used() const { return bytes_used_; }
  /// Bytes held across resets.
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const auto& chunk : chunks_) total += chunk.size;
    return total;
  }

 private:
  static constexpr std::size_t kMinChunk = 4096;

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* allocate(std::size_t bytes, std::size_t align) {
    while (chunk_index_ < chunks_.size()) {
      Chunk& chunk = chunks_[chunk_index_];
      const auto base = reinterpret_cast<std::uintptr_t>(chunk.data.get());
      const std::size_t aligned = align_up(base + cursor_, align) - base;
      if (aligned + bytes <= chunk.size) {
        cursor_ = aligned + bytes;
        bytes_used_ += bytes;
        return chunk.data.get() + aligned;
      }
      ++chunk_index_;
      cursor_ = 0;
    }
    // No retained chunk fits: grow by at least one chunk granule.
    const std::size_t size = bytes > chunk_bytes_ ? bytes : chunk_bytes_;
    Chunk chunk;
    chunk.data = std::make_unique<std::byte[]>(size + align);
    chunk.size = size + align;
    chunks_.push_back(std::move(chunk));
    chunk_index_ = chunks_.size() - 1;
    const auto base =
        reinterpret_cast<std::uintptr_t>(chunks_.back().data.get());
    const std::size_t aligned = align_up(base, align) - base;
    cursor_ = aligned + bytes;
    bytes_used_ += bytes;
    return chunks_.back().data.get() + aligned;
  }

  static std::uintptr_t align_up(std::uintptr_t p, std::size_t align) {
    return (p + align - 1) & ~static_cast<std::uintptr_t>(align - 1);
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t chunk_index_ = 0;  ///< chunk currently being bumped
  std::size_t cursor_ = 0;       ///< bump offset within that chunk
  std::size_t bytes_used_ = 0;
};

}  // namespace epm
