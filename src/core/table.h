// Console table / series rendering for the experiment harnesses: every bench
// binary prints paper-style rows through this, so output formats stay uniform
// across experiments.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace epm {

/// Right-aligned fixed-precision formatting helpers.
std::string fmt(double v, int precision = 2);
std::string fmt_percent(double fraction, int precision = 2);
std::string fmt_si(double v, int precision = 2);  // 1.2 k, 3.4 M, ...

/// A simple console table with a header row; column widths auto-fit.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Renders with aligned columns, a rule under the header, and `indent`
  /// leading spaces on every line.
  std::string render(int indent = 2) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders an ASCII sparkline chart of `values` (one row of block glyphs per
/// `height` level), with min/max labels. Used by benches to show series shape.
std::string ascii_chart(const std::vector<double>& values, std::size_t width = 72,
                        std::size_t height = 8);

/// Prints a section banner, e.g. "==== Figure 3: ... ====".
std::string banner(const std::string& title);

}  // namespace epm
