// Deterministic parallel execution engine.
//
// Every hot path in the library — Monte Carlo replicas, DES replications,
// fleet telemetry ingest, bench parameter sweeps — has the same shape: a
// fixed batch of independent work items fanned out across cores and reduced
// in input order. This module provides that substrate with one hard
// guarantee: **the same seed produces bit-identical results at every thread
// count, including 1**. Determinism comes from construction, not luck:
//
//   * work is partitioned by index, never by completion order;
//   * `parallel_map` returns results in input order regardless of which
//     thread finished first;
//   * `parallel_replicate` derives one independent `Rng` stream per task
//     from the caller's seed via `SplitMix64`, so task i's randomness never
//     depends on which thread ran tasks 0..i-1.
//
// Reductions stay the caller's job and must be performed in task order
// (e.g. `OnlineStats::merge` over results[0..n)), which keeps floating-point
// summation order — and therefore every bit of the output — invariant.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "core/rng.h"

namespace epm {

/// Thread count used when a caller passes 0: the `EPM_THREADS` environment
/// variable when set to a positive integer, else `hardware_concurrency`
/// (minimum 1).
std::size_t default_thread_count();

/// Maps a user-facing `--threads` value to an actual count: values >= 1 are
/// taken verbatim, anything else falls back to default_thread_count().
std::size_t resolve_thread_count(std::int64_t requested);

/// Fixed-size worker pool. One pool runs one parallel call at a time
/// (concurrent submissions from different external threads serialize);
/// calling back into the same pool from inside a task throws instead of
/// deadlocking.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means default_thread_count().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// True when the calling thread is one of this pool's workers, i.e. the
  /// caller is executing inside a task submitted to this pool. Lets layered
  /// engines (the sharded DES federation runs shard windows on a pool)
  /// reject re-entrant driving with a domain-specific error instead of the
  /// generic nested-parallel_for one.
  bool on_worker_thread() const;

  using ChunkFn = std::function<void(std::size_t begin, std::size_t end)>;

  /// Runs `chunk(begin, end)` over a partition of [0, n). Chunks are
  /// contiguous, cover every index exactly once, and may run on any worker.
  /// Blocks until all chunks finish. The first exception thrown by a chunk
  /// is rethrown here (remaining chunks still run to completion).
  /// Throws std::logic_error when called from inside one of this pool's own
  /// tasks (nested calls would deadlock a fixed-size pool).
  void parallel_for(std::size_t n, const ChunkFn& chunk);

  /// Ordered map: out[i] = fn(i) for i in [0, n), with out in input order
  /// regardless of completion order. R must be default-constructible.
  template <typename Fn>
  auto parallel_map(std::size_t n, Fn&& fn) {
    using R = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
    std::vector<R> out(n);
    parallel_for(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
    });
    return out;
  }

  /// Seeded replication: expands `seed` into n stream seeds with SplitMix64
  /// (all derived up front, independent of thread count), hands task i a
  /// private Rng, and returns fn(rng, i) results in input order.
  template <typename Fn>
  auto parallel_replicate(std::size_t n, std::uint64_t seed, Fn&& fn) {
    using R = std::decay_t<std::invoke_result_t<Fn&, Rng&, std::size_t>>;
    std::vector<std::uint64_t> seeds(n);
    SplitMix64 mix(seed);
    for (auto& s : seeds) s = mix.next();
    std::vector<R> out(n);
    parallel_for(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        Rng rng(seeds[i]);
        out[i] = fn(rng, i);
      }
    });
    return out;
  }

 private:
  struct Range {
    std::size_t begin;
    std::size_t end;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex submit_mu_;  ///< serializes whole parallel_for calls
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<Range> pending_;
  const ChunkFn* job_ = nullptr;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace epm
