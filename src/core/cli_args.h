// Minimal command-line argument parsing for the epmctl tool and any
// downstream binaries: subcommand + `--flag value` / `--switch` pairs, with
// typed accessors and unknown-flag detection.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace epm {

class CliArgs {
 public:
  /// Parses `argv[1]` as the subcommand (empty if argv[1] starts with "--")
  /// and the rest as `--key value` pairs; a `--key` followed by another
  /// `--flag` or by nothing is a boolean switch. Throws std::invalid_argument
  /// on malformed input (non-flag positional after the subcommand).
  CliArgs(int argc, const char* const argv[]);

  const std::string& command() const { return command_; }
  bool has(const std::string& flag) const;

  /// Typed accessors with defaults; throw std::invalid_argument when the
  /// present value does not parse.
  std::string get(const std::string& flag, const std::string& fallback) const;
  double get(const std::string& flag, double fallback) const;
  std::int64_t get(const std::string& flag, std::int64_t fallback) const;
  bool get_switch(const std::string& flag) const;

  /// Worker count from `--threads N` (>= 1 required when present); defaults
  /// to the EPM_THREADS environment override, else hardware_concurrency.
  std::size_t threads() const;

  /// Flags that were provided but never read — for "unknown flag" errors.
  std::vector<std::string> unused() const;

 private:
  std::string command_;
  std::map<std::string, std::string> values_;  // switches map to ""
  mutable std::set<std::string> used_;
};

}  // namespace epm
