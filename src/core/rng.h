// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library owns an epm::Rng seeded from the
// experiment configuration, so runs are exactly reproducible and independent
// components draw from statistically independent streams (derive per-component
// seeds with Rng::fork or SplitMix64).
#pragma once

#include <cstdint>
#include <vector>

namespace epm {

/// SplitMix64: tiny, high-quality 64-bit mixer. Used to expand one user seed
/// into many stream seeds and to seed Xoshiro state.
///
/// The generator is a pure function of its counter: the k-th output after
/// seeding with `s` is `mix(s + k * kGamma)`. Batch consumers (the epoch
/// engine's block draws) exploit this by carrying raw counter states in
/// flat arrays and advancing whole blocks branch-free; `next()` on an
/// equivalent SplitMix64 produces the identical stream bit-for-bit
/// (asserted by the stream-equivalence regression test).
class SplitMix64 {
 public:
  static constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;

  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// The stateless finalizer: one stream step is mix(state += kGamma).
  static std::uint64_t mix(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t next() { return mix(state_ += kGamma); }

  /// Raw counter state, for block-draw consumers that advance streams in
  /// flat arrays and need to round-trip through a SplitMix64.
  std::uint64_t state() const { return state_; }

 private:
  std::uint64_t state_;
};

/// xoshiro256** generator with a distribution toolkit sized for this library.
///
/// Satisfies UniformRandomBitGenerator, so it also composes with <random>
/// distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 256-bit state words via SplitMix64 from `seed`.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Raw 64 uniform bits.
  result_type operator()() { return next_u64(); }
  result_type next_u64();

  /// A new independent generator derived from this one's stream.
  Rng fork();

  /// Uniform double in [0, 1).
  double uniform01();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller (cached second deviate).
  double normal(double mean = 0.0, double stddev = 1.0);
  /// Lognormal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);
  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);
  /// Poisson-distributed count with the given mean (Knuth for small mean,
  /// normal approximation above 64).
  std::int64_t poisson(double mean);
  /// Bernoulli trial.
  bool bernoulli(double p);
  /// Pareto (heavy-tailed) with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha);
  /// Index drawn according to `weights` (need not be normalized).
  std::size_t weighted_index(const std::vector<double>& weights);

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace epm
