#include "core/stats.h"

#include <algorithm>
#include <cmath>

#include "core/require.h"

namespace epm {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void OnlineStats::reset() { *this = OnlineStats{}; }

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const {
  ensure(count_ > 0, "OnlineStats::min on empty accumulator");
  return min_;
}

double OnlineStats::max() const {
  ensure(count_ > 0, "OnlineStats::max on empty accumulator");
  return max_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  require(hi > lo, "Histogram: hi must exceed lo");
  require(bins > 0, "Histogram: need at least one bin");
}

void Histogram::add(double x, std::uint64_t weight) {
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / bin_width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // float edge guard
  counts_[idx] += weight;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  underflow_ = overflow_ = total_ = 0;
}

double Histogram::quantile(double q) const {
  require(q >= 0.0 && q <= 1.0, "Histogram::quantile: q outside [0,1]");
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return lo_ + (static_cast<double>(i) + frac) * bin_width_;
    }
    cum = next;
  }
  return hi_;
}

double Histogram::fraction_above(double x) const {
  if (total_ == 0) return 0.0;
  if (x < lo_) return 1.0 - static_cast<double>(underflow_) / static_cast<double>(total_);
  std::uint64_t above = overflow_;
  if (x < hi_) {
    const auto first = static_cast<std::size_t>((x - lo_) / bin_width_);
    for (std::size_t i = first + 1; i < counts_.size(); ++i) above += counts_[i];
    // Interpolate within the straddled bin.
    if (first < counts_.size()) {
      const double bin_hi = lo_ + static_cast<double>(first + 1) * bin_width_;
      const double frac = (bin_hi - x) / bin_width_;
      above += static_cast<std::uint64_t>(frac * static_cast<double>(counts_[first]));
    }
  }
  return static_cast<double>(above) / static_cast<double>(total_);
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  require(alpha > 0.0 && alpha <= 1.0, "Ewma: alpha must be in (0,1]");
}

void Ewma::add(double x) {
  if (count_ == 0) {
    value_ = x;
  } else {
    value_ += alpha_ * (x - value_);
  }
  ++count_;
}

void Ewma::reset() {
  value_ = 0.0;
  count_ = 0;
}

double pearson_correlation(const std::vector<double>& a, const std::vector<double>& b) {
  require(a.size() == b.size(), "pearson_correlation: length mismatch");
  const std::size_t n = a.size();
  if (n < 2) return 0.0;
  double ma = 0.0;
  double mb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

double sample_quantile(std::vector<double> values, double q) {
  require(!values.empty(), "sample_quantile: empty sample");
  require(q >= 0.0 && q <= 1.0, "sample_quantile: q outside [0,1]");
  const auto idx =
      static_cast<std::size_t>(q * static_cast<double>(values.size() - 1) + 0.5);
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(idx),
                   values.end());
  return values[idx];
}

}  // namespace epm
