#include "core/rng.h"

#include <cmath>
#include <numbers>

#include "core/require.h"

namespace epm {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork() { return Rng(next_u64()); }

double Rng::uniform01() {
  // 53 uniform mantissa bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  require(lo <= hi, "Rng::uniform: lo > hi");
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::uniform_int: lo > hi");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full span
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~std::uint64_t{0} / range) * range;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::normal(double mean, double stddev) {
  require(stddev >= 0.0, "Rng::normal: negative stddev");
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double rate) {
  require(rate > 0.0, "Rng::exponential: rate must be positive");
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::int64_t Rng::poisson(double mean) {
  require(mean >= 0.0, "Rng::poisson: negative mean");
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction; adequate for the
    // aggregate arrival counts this library draws.
    const double v = normal(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<std::int64_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  double prod = 1.0;
  std::int64_t n = -1;
  do {
    prod *= uniform01();
    ++n;
  } while (prod > limit);
  return n;
}

bool Rng::bernoulli(double p) {
  require(p >= 0.0 && p <= 1.0, "Rng::bernoulli: p outside [0,1]");
  return uniform01() < p;
}

double Rng::pareto(double xm, double alpha) {
  require(xm > 0.0 && alpha > 0.0, "Rng::pareto: parameters must be positive");
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  require(!weights.empty(), "Rng::weighted_index: empty weights");
  double total = 0.0;
  for (double w : weights) {
    require(w >= 0.0, "Rng::weighted_index: negative weight");
    total += w;
  }
  require(total > 0.0, "Rng::weighted_index: all weights zero");
  double x = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace epm
