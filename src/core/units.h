// Unit conventions and conversion helpers.
//
// The library uses plain `double` with SI base units everywhere and a strict
// suffix naming convention instead of wrapper types:
//
//   *_s       time in seconds            *_w    power in watts
//   *_j       energy in joules           *_c    temperature in Celsius
//   *_hz      frequency in hertz         *_frac dimensionless fraction [0,1]
//
// Conversion helpers below keep magic constants out of call sites.
#pragma once

namespace epm {

// ---- time ------------------------------------------------------------
inline constexpr double kSecondsPerMinute = 60.0;
inline constexpr double kSecondsPerHour = 3600.0;
inline constexpr double kSecondsPerDay = 86400.0;
inline constexpr double kSecondsPerWeek = 7.0 * kSecondsPerDay;

constexpr double minutes(double m) { return m * kSecondsPerMinute; }
constexpr double hours(double h) { return h * kSecondsPerHour; }
constexpr double days(double d) { return d * kSecondsPerDay; }
constexpr double weeks(double w) { return w * kSecondsPerWeek; }

constexpr double to_minutes(double s) { return s / kSecondsPerMinute; }
constexpr double to_hours(double s) { return s / kSecondsPerHour; }
constexpr double to_days(double s) { return s / kSecondsPerDay; }

// ---- power / energy ---------------------------------------------------
constexpr double kilowatts(double kw) { return kw * 1e3; }
constexpr double megawatts(double mw) { return mw * 1e6; }
constexpr double to_kilowatts(double w) { return w / 1e3; }
constexpr double to_megawatts(double w) { return w / 1e6; }

/// Joules for a given number of kilowatt-hours.
constexpr double kwh(double k) { return k * 3.6e6; }
/// Kilowatt-hours for a given number of joules.
constexpr double to_kwh(double j) { return j / 3.6e6; }
/// Megawatt-hours for a given number of joules.
constexpr double to_mwh(double j) { return j / 3.6e9; }

// ---- frequency --------------------------------------------------------
constexpr double gigahertz(double g) { return g * 1e9; }
constexpr double to_gigahertz(double hz) { return hz / 1e9; }

}  // namespace epm
