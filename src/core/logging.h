// Minimal leveled logging. Off by default so tests and benches stay quiet;
// experiments flip the level to Info to narrate macro-manager decisions.
#pragma once

#include <sstream>
#include <string>

namespace epm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits `message` to stderr with a level tag when `level` >= the threshold.
void log(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() <= LogLevel::kDebug) log(LogLevel::kDebug, detail::concat(args...));
}
template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() <= LogLevel::kInfo) log(LogLevel::kInfo, detail::concat(args...));
}
template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() <= LogLevel::kWarn) log(LogLevel::kWarn, detail::concat(args...));
}
template <typename... Args>
void log_error(const Args&... args) {
  if (log_level() <= LogLevel::kError) log(LogLevel::kError, detail::concat(args...));
}

}  // namespace epm
