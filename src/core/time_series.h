// A regularly sampled time series: the exchange format between the workload
// generators, the simulators, the telemetry pipeline, and the experiment
// harnesses.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/stats.h"

namespace epm {

/// Values sampled every `step_s` seconds starting at `start_s`.
class TimeSeries {
 public:
  TimeSeries() = default;
  /// An empty series with the given timing; samples are appended later.
  TimeSeries(double start_s, double step_s);
  TimeSeries(double start_s, double step_s, std::vector<double> values);

  double start_s() const { return start_s_; }
  double step_s() const { return step_s_; }
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  /// End of the covered interval: start + size * step.
  double end_s() const;

  double operator[](std::size_t i) const { return values_[i]; }
  const std::vector<double>& values() const { return values_; }

  void push_back(double v) { values_.push_back(v); }
  void reserve(std::size_t n) { values_.reserve(n); }

  /// Timestamp of sample i (its interval start).
  double time_at(std::size_t i) const;
  /// Value at an arbitrary time via zero-order hold; clamps at the ends.
  /// Requires a non-empty series.
  double value_at(double t_s) const;

  OnlineStats stats() const;
  /// Statistics restricted to [t0_s, t1_s).
  OnlineStats stats_between(double t0_s, double t1_s) const;

  /// Downsamples by an integer factor, aggregating each group with `agg`
  /// (e.g. mean of each group). A trailing partial group is aggregated too.
  TimeSeries downsample(std::size_t factor,
                        const std::function<double(const double*, std::size_t)>& agg) const;
  /// Convenience mean-downsampling.
  TimeSeries downsample_mean(std::size_t factor) const;

  /// Element-wise map into a new series with the same timing.
  TimeSeries map(const std::function<double(double)>& f) const;
  /// Element-wise sum; series must have identical timing and length.
  TimeSeries operator+(const TimeSeries& other) const;
  /// Scales every value.
  TimeSeries scaled(double factor) const;

 private:
  double start_s_ = 0.0;
  double step_s_ = 1.0;
  std::vector<double> values_;
};

/// Mean over each group of `n` values, as a plain helper for downsample().
double mean_of(const double* data, std::size_t n);
/// Max over each group of `n` values.
double max_of(const double* data, std::size_t n);

}  // namespace epm
