// A regularly sampled time series: the exchange format between the workload
// generators, the simulators, the telemetry pipeline, and the experiment
// harnesses.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <type_traits>
#include <vector>

#include "core/require.h"
#include "core/stats.h"

namespace epm {

/// Values sampled every `step_s` seconds starting at `start_s`.
class TimeSeries {
 public:
  TimeSeries() = default;
  /// An empty series with the given timing; samples are appended later.
  TimeSeries(double start_s, double step_s);
  TimeSeries(double start_s, double step_s, std::vector<double> values);

  double start_s() const { return start_s_; }
  double step_s() const { return step_s_; }
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  /// End of the covered interval: start + size * step.
  double end_s() const;

  double operator[](std::size_t i) const { return values_[i]; }
  const std::vector<double>& values() const { return values_; }

  void push_back(double v) { values_.push_back(v); }
  void reserve(std::size_t n) { values_.reserve(n); }

  /// Timestamp of sample i (its interval start).
  double time_at(std::size_t i) const;
  /// Value at an arbitrary time via zero-order hold; clamps at the ends.
  /// Requires a non-empty series.
  double value_at(double t_s) const;

  OnlineStats stats() const;
  /// Statistics restricted to [t0_s, t1_s).
  OnlineStats stats_between(double t0_s, double t1_s) const;

  /// Downsamples by an integer factor, aggregating each group with `agg`
  /// (e.g. mean of each group). A trailing partial group is aggregated too.
  /// Takes the callable by template so per-group calls inline (telemetry
  /// post-processing runs this over every channel; a std::function here put
  /// an indirect call in every group).
  template <typename Agg,
            typename = std::enable_if_t<std::is_invocable_r_v<
                double, Agg&, const double*, std::size_t>>>
  TimeSeries downsample(std::size_t factor, Agg&& agg) const {
    require(factor > 0, "TimeSeries::downsample: factor must be positive");
    TimeSeries out(start_s_, step_s_ * static_cast<double>(factor));
    out.reserve((values_.size() + factor - 1) / factor);
    for (std::size_t i = 0; i < values_.size(); i += factor) {
      const std::size_t n = std::min(factor, values_.size() - i);
      out.push_back(agg(values_.data() + i, n));
    }
    return out;
  }
  /// Convenience mean-downsampling.
  TimeSeries downsample_mean(std::size_t factor) const;

  /// Element-wise map into a new series with the same timing; template for
  /// the same per-point inlining reason as downsample().
  template <typename F,
            typename = std::enable_if_t<std::is_invocable_r_v<double, F&, double>>>
  TimeSeries map(F&& f) const {
    TimeSeries out(start_s_, step_s_);
    out.reserve(values_.size());
    for (double v : values_) out.push_back(f(v));
    return out;
  }
  /// Element-wise sum; series must have identical timing and length.
  TimeSeries operator+(const TimeSeries& other) const;
  /// Scales every value.
  TimeSeries scaled(double factor) const;

 private:
  double start_s_ = 0.0;
  double step_s_ = 1.0;
  std::vector<double> values_;
};

/// Mean over each group of `n` values, as a plain helper for downsample().
double mean_of(const double* data, std::size_t n);
/// Max over each group of `n` values.
double max_of(const double* data, std::size_t n);

}  // namespace epm
