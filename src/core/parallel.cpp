#include "core/parallel.h"

#include <algorithm>
#include <cstdlib>

#include "core/require.h"

namespace epm {
namespace {

/// Set while a worker thread is executing a task, so parallel_for can refuse
/// re-entrant use of the same pool (which would deadlock: the waiting task
/// occupies the worker its children would need).
thread_local const ThreadPool* t_worker_pool = nullptr;

}  // namespace

std::size_t default_thread_count() {
  if (const char* env = std::getenv("EPM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::size_t resolve_thread_count(std::int64_t requested) {
  return requested >= 1 ? static_cast<std::size_t>(requested) : default_thread_count();
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = threads > 0 ? threads : default_thread_count();
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

bool ThreadPool::on_worker_thread() const { return t_worker_pool == this; }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  t_worker_pool = this;
  for (;;) {
    Range range{0, 0};
    const ChunkFn* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stop_ set and queue drained
      range = pending_.front();
      pending_.pop_front();
      job = job_;
    }
    try {
      (*job)(range.begin, range.end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n, const ChunkFn& chunk) {
  require(static_cast<bool>(chunk), "ThreadPool::parallel_for: empty chunk function");
  if (t_worker_pool == this) {
    throw std::logic_error(
        "ThreadPool::parallel_for: nested call from one of this pool's own "
        "tasks (would deadlock a fixed-size pool)");
  }
  if (n == 0) return;

  // Several small chunks per worker smooth out unequal task costs without
  // affecting results (chunking changes scheduling, never index->task
  // assignment).
  const std::size_t chunks = std::min(n, thread_count() * 4);
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;

  std::lock_guard<std::mutex> submit(submit_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t begin = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t len = base + (c < extra ? 1 : 0);
      pending_.push_back(Range{begin, begin + len});
      begin += len;
    }
    job_ = &chunk;
    in_flight_ = chunks;
    first_error_ = nullptr;
  }
  work_cv_.notify_all();

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return in_flight_ == 0; });
    job_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace epm
