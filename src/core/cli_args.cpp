#include "core/cli_args.h"

#include "core/parallel.h"
#include "core/require.h"

namespace epm {
namespace {

bool is_flag(const std::string& arg) { return arg.rfind("--", 0) == 0; }

}  // namespace

CliArgs::CliArgs(int argc, const char* const argv[]) {
  int i = 1;
  if (i < argc && !is_flag(argv[i])) {
    command_ = argv[i];
    ++i;
  }
  while (i < argc) {
    const std::string arg = argv[i];
    require(is_flag(arg), "CliArgs: expected --flag, got '" + arg + "'");
    const std::string key = arg.substr(2);
    require(!key.empty(), "CliArgs: empty flag name");
    if (i + 1 < argc && !is_flag(argv[i + 1])) {
      values_[key] = argv[i + 1];
      i += 2;
    } else {
      values_[key] = "";  // boolean switch
      ++i;
    }
  }
}

bool CliArgs::has(const std::string& flag) const {
  const bool present = values_.count(flag) > 0;
  if (present) used_.insert(flag);
  return present;
}

std::string CliArgs::get(const std::string& flag, const std::string& fallback) const {
  auto it = values_.find(flag);
  if (it == values_.end()) return fallback;
  used_.insert(flag);
  return it->second;
}

double CliArgs::get(const std::string& flag, double fallback) const {
  auto it = values_.find(flag);
  if (it == values_.end()) return fallback;
  used_.insert(flag);
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(it->second, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("CliArgs: --" + flag + " expects a number, got '" +
                                it->second + "'");
  }
  require(pos == it->second.size(),
          "CliArgs: --" + flag + " expects a number, got '" + it->second + "'");
  return v;
}

std::int64_t CliArgs::get(const std::string& flag, std::int64_t fallback) const {
  auto it = values_.find(flag);
  if (it == values_.end()) return fallback;
  used_.insert(flag);
  std::size_t pos = 0;
  long long v = 0;
  try {
    v = std::stoll(it->second, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("CliArgs: --" + flag + " expects an integer, got '" +
                                it->second + "'");
  }
  require(pos == it->second.size(),
          "CliArgs: --" + flag + " expects an integer, got '" + it->second + "'");
  return v;
}

bool CliArgs::get_switch(const std::string& flag) const {
  auto it = values_.find(flag);
  if (it == values_.end()) return false;
  used_.insert(flag);
  require(it->second.empty(),
          "CliArgs: --" + flag + " is a switch and takes no value");
  return true;
}

std::size_t CliArgs::threads() const {
  const std::int64_t requested = get("threads", std::int64_t{0});
  require(values_.count("threads") == 0 || requested >= 1,
          "CliArgs: --threads must be a positive integer");
  return resolve_thread_count(requested);
}

std::vector<std::string> CliArgs::unused() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    if (used_.count(key) == 0) out.push_back(key);
  }
  return out;
}

}  // namespace epm
