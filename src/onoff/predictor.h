// Demand predictors used by predictive provisioning and the macro layer.
//
// SeasonalPredictor implements the multi-scale idea of §5.3: a time-of-week
// profile (hourly buckets) captures the diurnal/weekly trend, an EWMA tracks
// the residual level, and the residual variance feeds safety margins.
#pragma once

#include <cstddef>
#include <vector>

#include "core/stats.h"

namespace epm::onoff {

/// Plain EWMA level predictor (no seasonality).
class EwmaPredictor {
 public:
  explicit EwmaPredictor(double alpha = 0.3);
  void observe(double time_s, double value);
  /// Prediction for any future time (EWMA is horizon-free).
  double predict(double future_time_s) const;
  double residual_stddev() const;

 private:
  Ewma level_;
  OnlineStats residuals_;
};

struct SeasonalPredictorConfig {
  /// Bucket width of the time-of-week profile.
  double bucket_s = 3600.0;
  /// Seasonal period (one week by default; one day also works).
  double period_s = 7.0 * 86400.0;
  /// Learning rate of per-bucket profile updates.
  double profile_alpha = 0.25;
  /// Learning rate of the residual (level) correction.
  double residual_alpha = 0.3;
  /// When the exact bucket is still cold, fall back to the same phase one
  /// `fallback_period_s` earlier (daily by default): Tuesday 2pm borrows
  /// Monday 2pm until Tuesdays have been seen. 0 disables the fallback.
  double fallback_period_s = 86400.0;
};

/// Time-of-week profile + EWMA residual. Cold buckets fall back to the
/// global mean until they have seen data.
class SeasonalPredictor {
 public:
  explicit SeasonalPredictor(SeasonalPredictorConfig config = {});

  void observe(double time_s, double value);
  double predict(double future_time_s) const;
  double residual_stddev() const;
  std::size_t observations() const { return observations_; }

 private:
  std::size_t bucket_of(double time_s) const;

  SeasonalPredictorConfig config_;
  std::vector<double> profile_;
  std::vector<bool> warm_;
  Ewma residual_level_;
  OnlineStats residuals_;
  OnlineStats global_;
  std::size_t observations_ = 0;
};

}  // namespace epm::onoff
