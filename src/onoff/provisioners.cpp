#include "onoff/provisioners.h"

#include <algorithm>
#include <cmath>

#include "core/require.h"

namespace epm::onoff {

std::size_t servers_for_load(double arrival_rate, double service_demand_s,
                             double capacity_fraction, double target_utilization) {
  require(arrival_rate >= 0.0, "servers_for_load: negative arrival rate");
  require(service_demand_s > 0.0, "servers_for_load: demand must be positive");
  require(capacity_fraction > 0.0, "servers_for_load: capacity must be positive");
  require(target_utilization > 0.0 && target_utilization < 1.0,
          "servers_for_load: target utilization outside (0,1)");
  const double per_server_rate = capacity_fraction / service_demand_s;
  const double needed = arrival_rate / (per_server_rate * target_utilization);
  return static_cast<std::size_t>(std::ceil(needed - 1e-9));
}

DelayThresholdProvisioner::DelayThresholdProvisioner(DelayThresholdConfig config)
    : config_(config) {
  require(config_.down_factor > 0.0 && config_.down_factor < config_.up_factor,
          "DelayThresholdProvisioner: need 0 < down < up");
  require(config_.add_step >= 1, "DelayThresholdProvisioner: add_step must be >= 1");
  require(config_.min_servers >= 1, "DelayThresholdProvisioner: min_servers must be >= 1");
}

std::size_t DelayThresholdProvisioner::decide(const cluster::ServiceCluster& cluster,
                                              const cluster::EpochResult& last) {
  const double target = cluster.config().sla.target_mean_response_s;
  const std::size_t committed = cluster.committed_count();
  if (last.mean_response_s > target * config_.up_factor) {
    // "Increased delay may cause the (DVS oblivious) On/Off policy to
    //  consider the system to be overloaded, hence turning more machines
    //  on." (§5.1) — no coordination with what DVFS is doing.
    calm_epochs_ = 0;
    return std::min(committed + config_.add_step, cluster.server_count());
  }
  if (last.mean_response_s < target * config_.down_factor) {
    if (++calm_epochs_ >= config_.down_dwell_epochs && committed > config_.min_servers) {
      calm_epochs_ = 0;
      return committed - 1;
    }
  } else {
    calm_epochs_ = 0;
  }
  return committed;
}

UtilizationBandProvisioner::UtilizationBandProvisioner(UtilizationBandConfig config)
    : config_(config) {
  require(config_.lower > 0.0 && config_.lower < config_.target_utilization &&
              config_.target_utilization < config_.upper && config_.upper < 1.0,
          "UtilizationBandProvisioner: need 0 < lower < target < upper < 1");
  require(config_.min_servers >= 1,
          "UtilizationBandProvisioner: min_servers must be >= 1");
}

std::size_t UtilizationBandProvisioner::decide(const cluster::ServiceCluster& cluster,
                                               const cluster::EpochResult& last) {
  const std::size_t committed = cluster.committed_count();
  ++epochs_since_change_;
  if (last.utilization >= config_.lower && last.utilization <= config_.upper) {
    return committed;  // inside the band: leave the fleet alone
  }
  if (epochs_since_change_ < config_.min_dwell_epochs) return committed;
  // Re-size for the observed load at the target utilization.
  const double capacity_fraction =
      cluster.power_model().relative_capacity(0);  // sized at full speed
  std::size_t target = servers_for_load(last.arrival_rate_per_s, last.service_demand_s,
                                        capacity_fraction, config_.target_utilization);
  target = std::clamp(target, config_.min_servers, cluster.server_count());
  if (target != committed) {
    epochs_since_change_ = 0;
    last_target_ = target;
  }
  return target;
}

PredictiveProvisioner::PredictiveProvisioner(PredictiveConfig config)
    : config_(config), predictor_(config.predictor) {
  require(config_.target_utilization > 0.0 && config_.target_utilization < 1.0,
          "PredictiveProvisioner: target utilization outside (0,1)");
  require(config_.margin_sigmas >= 0.0, "PredictiveProvisioner: negative margin");
  require(config_.min_servers >= 1, "PredictiveProvisioner: min_servers must be >= 1");
}

std::size_t PredictiveProvisioner::decide(const cluster::ServiceCluster& cluster,
                                          const cluster::EpochResult& last) {
  predictor_.observe(last.time_s, last.arrival_rate_per_s);
  // Look one boot time ahead: servers started now arrive then.
  const double lead_s = cluster.power_model().config().boot_time_s + last.epoch_s;
  const double predicted =
      std::max(0.0, predictor_.predict(last.time_s + lead_s) +
                        config_.margin_sigmas * predictor_.residual_stddev());
  const double capacity_fraction = cluster.power_model().relative_capacity(0);
  std::size_t target =
      predicted > 0.0 ? servers_for_load(predicted, last.service_demand_s,
                                         capacity_fraction, config_.target_utilization)
                      : config_.min_servers;
  target = std::clamp(target, config_.min_servers, cluster.server_count());
  // Hysteresis: prediction jitter of a server or two is not worth a boot.
  const std::size_t committed = cluster.committed_count();
  const std::size_t diff = target > committed ? target - committed : committed - target;
  if (diff <= config_.hysteresis_servers) return committed;
  return target;
}

}  // namespace epm::onoff
