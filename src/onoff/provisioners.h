// On/Off (sleep) scheduling policies (paper §4.3).
//
// Each provisioner observes the finished epoch and returns the number of
// servers that should be committed (active + in transition) for the next
// one. Policies:
//   * StaticProvisioner       — fixed fleet ("over-provisioned for every
//                                application", §3.1 baseline)
//   * DelayThresholdProvisioner — reactive On/Off keyed on end-to-end delay;
//                                the DVS-oblivious actor of §5.1 (ref [29])
//   * UtilizationBandProvisioner — keeps predicted utilization in a band
//                                with hysteresis and a minimum dwell time
//   * PredictiveProvisioner   — provisions for the demand predicted one boot
//                                time ahead plus a safety margin (ref [18],
//                                Chen et al., energy-aware provisioning)
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "cluster/service_cluster.h"
#include "onoff/predictor.h"

namespace epm::onoff {

class Provisioner {
 public:
  virtual ~Provisioner() = default;
  virtual std::string name() const = 0;
  /// Number of committed servers to aim for in the next epoch.
  virtual std::size_t decide(const cluster::ServiceCluster& cluster,
                             const cluster::EpochResult& last) = 0;
};

class StaticProvisioner final : public Provisioner {
 public:
  explicit StaticProvisioner(std::size_t count) : count_(count) {}
  std::string name() const override { return "static"; }
  std::size_t decide(const cluster::ServiceCluster&,
                     const cluster::EpochResult&) override {
    return count_;
  }

 private:
  std::size_t count_;
};

struct DelayThresholdConfig {
  /// Add servers when mean response exceeds target * up_factor.
  double up_factor = 1.0;
  /// Remove one server when response stays under target * down_factor.
  double down_factor = 0.5;
  std::size_t add_step = 2;
  std::size_t min_servers = 1;
  /// Consecutive calm epochs required before shrinking.
  std::size_t down_dwell_epochs = 3;
};

class DelayThresholdProvisioner final : public Provisioner {
 public:
  explicit DelayThresholdProvisioner(DelayThresholdConfig config = {});
  std::string name() const override { return "delay-threshold"; }
  std::size_t decide(const cluster::ServiceCluster& cluster,
                     const cluster::EpochResult& last) override;

 private:
  DelayThresholdConfig config_;
  std::size_t calm_epochs_ = 0;
};

struct UtilizationBandConfig {
  double target_utilization = 0.65;
  double upper = 0.80;
  double lower = 0.45;
  std::size_t min_servers = 1;
  std::size_t min_dwell_epochs = 2;  ///< epochs between size changes
};

class UtilizationBandProvisioner final : public Provisioner {
 public:
  explicit UtilizationBandProvisioner(UtilizationBandConfig config = {});
  std::string name() const override { return "utilization-band"; }
  std::size_t decide(const cluster::ServiceCluster& cluster,
                     const cluster::EpochResult& last) override;

 private:
  UtilizationBandConfig config_;
  std::size_t epochs_since_change_ = 1000;
  std::size_t last_target_ = 0;
};

struct PredictiveConfig {
  double target_utilization = 0.65;
  /// Safety margin in residual standard deviations.
  double margin_sigmas = 2.0;
  std::size_t min_servers = 1;
  /// Ignore target changes of at most this many servers, so prediction
  /// jitter does not translate into boot churn.
  std::size_t hysteresis_servers = 1;
  SeasonalPredictorConfig predictor;
};

class PredictiveProvisioner final : public Provisioner {
 public:
  explicit PredictiveProvisioner(PredictiveConfig config = {});
  std::string name() const override { return "predictive"; }
  std::size_t decide(const cluster::ServiceCluster& cluster,
                     const cluster::EpochResult& last) override;
  const SeasonalPredictor& predictor() const { return predictor_; }

 private:
  PredictiveConfig config_;
  SeasonalPredictor predictor_;
};

/// Servers needed so that per-server utilization is `target_utilization`
/// when serving `arrival_rate` of requests with `service_demand_s` CPU each
/// at relative capacity `capacity_fraction` per server.
std::size_t servers_for_load(double arrival_rate, double service_demand_s,
                             double capacity_fraction, double target_utilization);

}  // namespace epm::onoff
