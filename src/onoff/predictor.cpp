#include "onoff/predictor.h"

#include <cmath>

#include "core/require.h"

namespace epm::onoff {

EwmaPredictor::EwmaPredictor(double alpha) : level_(alpha) {}

void EwmaPredictor::observe(double, double value) {
  if (!level_.empty()) residuals_.add(value - level_.value());
  level_.add(value);
}

double EwmaPredictor::predict(double) const { return level_.empty() ? 0.0 : level_.value(); }

double EwmaPredictor::residual_stddev() const { return residuals_.stddev(); }

SeasonalPredictor::SeasonalPredictor(SeasonalPredictorConfig config)
    : config_(config), residual_level_(config.residual_alpha) {
  require(config_.bucket_s > 0.0, "SeasonalPredictor: bucket must be positive");
  require(config_.period_s >= config_.bucket_s,
          "SeasonalPredictor: period shorter than bucket");
  require(config_.profile_alpha > 0.0 && config_.profile_alpha <= 1.0,
          "SeasonalPredictor: profile_alpha outside (0,1]");
  require(config_.fallback_period_s >= 0.0,
          "SeasonalPredictor: negative fallback period");
  const auto buckets = static_cast<std::size_t>(config_.period_s / config_.bucket_s);
  profile_.assign(buckets, 0.0);
  warm_.assign(buckets, false);
}

std::size_t SeasonalPredictor::bucket_of(double time_s) const {
  double phase = std::fmod(time_s, config_.period_s);
  if (phase < 0.0) phase += config_.period_s;
  auto b = static_cast<std::size_t>(phase / config_.bucket_s);
  if (b >= profile_.size()) b = profile_.size() - 1;
  return b;
}

void SeasonalPredictor::observe(double time_s, double value) {
  const std::size_t b = bucket_of(time_s);
  const double predicted = predict(time_s);
  if (observations_ > 0) {
    residuals_.add(value - predicted);
  }
  if (!warm_[b]) {
    profile_[b] = value;
    warm_[b] = true;
  } else {
    profile_[b] += config_.profile_alpha * (value - profile_[b]);
  }
  residual_level_.add(value - profile_[b]);
  global_.add(value);
  ++observations_;
}

double SeasonalPredictor::predict(double future_time_s) const {
  if (observations_ == 0) return 0.0;
  std::size_t b = bucket_of(future_time_s);
  if (!warm_[b] && config_.fallback_period_s > 0.0) {
    // Borrow the same phase from earlier fallback periods (e.g. yesterday's
    // hour-of-day) until this bucket has seen real data.
    const auto shift =
        static_cast<std::size_t>(config_.fallback_period_s / config_.bucket_s);
    if (shift > 0) {
      for (std::size_t back = shift; back < profile_.size(); back += shift) {
        const std::size_t alt = (b + profile_.size() - back % profile_.size()) %
                                profile_.size();
        if (warm_[alt]) {
          b = alt;
          break;
        }
      }
    }
  }
  const double base = warm_[b] ? profile_[b] : global_.mean();
  return base + (residual_level_.empty() ? 0.0 : residual_level_.value());
}

double SeasonalPredictor::residual_stddev() const { return residuals_.stddev(); }

}  // namespace epm::onoff
