// Oversubscription risk analytics (paper §3.1, §3.2, §5.2).
//
// Answers the macro-management questions the paper poses: "How much can
// resources, e.g. power be oversubscribed? How to protect the safety of the
// facility in the rare events that the demand exceeds the capacity?"
//
// Three estimators of P(aggregate draw > capacity):
//   * independent Monte Carlo  — services sampled independently (the
//     statistical-multiplexing best case),
//   * time-aligned Monte Carlo — services sampled at a common trace index,
//     preserving their real correlation (diurnal services peak together!),
//   * normal approximation     — sum of means/variances with an optional
//     pairwise correlation, for closed-form exploration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "oversub/power_profile.h"

namespace epm::oversub {

struct RiskConfig {
  std::size_t monte_carlo_draws = 200000;
  std::uint64_t seed = 99;
};

/// P(sum of independent draws > capacity).
double overflow_probability_independent(const std::vector<ServicePowerProfile>& services,
                                        double capacity_w, const RiskConfig& config = {});

/// P(sum at a uniformly random common time index > capacity); preserves
/// cross-service correlation embedded in the aligned traces.
double overflow_probability_aligned(const std::vector<ServicePowerProfile>& services,
                                    double capacity_w, const RiskConfig& config = {});

/// Normal approximation with common pairwise correlation rho in [0, 1].
double overflow_probability_normal(const std::vector<ServicePowerProfile>& services,
                                   double capacity_w, double rho = 0.0);

/// Oversubscription ratio: sum of rated peaks / capacity ("the host
/// oversells its services to the extent that if every subscriber uses the
/// services at the same time, the capacity will be exceeded").
double oversubscription_ratio(const std::vector<ServicePowerProfile>& services,
                              double capacity_w);

/// Largest number of identical services hostable under `capacity_w` with
/// aligned-trace overflow risk <= `max_risk`. Returns the count and the
/// resulting ratio/risk.
struct PackingResult {
  std::size_t services = 0;
  double ratio = 0.0;
  double risk = 0.0;
};

PackingResult max_services_at_risk(const ServicePowerProfile& prototype,
                                   double capacity_w, double max_risk,
                                   std::size_t hard_limit = 4096,
                                   const RiskConfig& config = {});

/// Expected capping statistics when a capper enforces `capacity_w` over the
/// aligned traces: fraction of epochs capped and mean power shed while
/// capped. This is the "protect the safety of the facility" backstop cost.
struct CappingImpact {
  double capped_fraction = 0.0;
  double mean_shed_w = 0.0;      ///< average shed over capped epochs
  double worst_shed_w = 0.0;
};

CappingImpact capping_impact_aligned(const std::vector<ServicePowerProfile>& services,
                                     double capacity_w);

/// Gaussian upper-tail probability Q(z) = P(N(0,1) > z).
double normal_tail(double z);

}  // namespace epm::oversub
