#include "oversub/power_profile.h"

#include <algorithm>
#include <cmath>

#include "core/require.h"
#include "core/stats.h"

namespace epm::oversub {

ServicePowerProfile::ServicePowerProfile(std::string name, const TimeSeries& power_trace_w,
                                         double rated_peak_w)
    : name_(std::move(name)) {
  require(!power_trace_w.empty(), "ServicePowerProfile: empty trace");
  samples_ = power_trace_w.values();
  for (double v : samples_) {
    require(v >= 0.0, "ServicePowerProfile: negative power sample");
  }
  sorted_samples_ = samples_;
  std::sort(sorted_samples_.begin(), sorted_samples_.end());
  const auto stats = power_trace_w.stats();
  mean_w_ = stats.mean();
  stddev_w_ = stats.stddev();
  rated_peak_w_ = rated_peak_w > 0.0 ? rated_peak_w : stats.max();
  require(rated_peak_w_ > 0.0, "ServicePowerProfile: rated peak must be positive");
}

double ServicePowerProfile::quantile(double q) const {
  require(q >= 0.0 && q <= 1.0, "ServicePowerProfile: q outside [0,1]");
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_samples_.size() - 1) + 0.5);
  return sorted_samples_[idx];
}

double ServicePowerProfile::sample(Rng& rng) const {
  const auto idx = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(samples_.size()) - 1));
  return samples_[idx];
}

double ServicePowerProfile::sample_at(std::size_t index) const {
  return samples_[index % samples_.size()];
}

}  // namespace epm::oversub
