#include "oversub/aggregation.h"

#include <algorithm>
#include <cmath>

#include "core/require.h"

namespace epm::oversub {

double normal_tail(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

double overflow_probability_independent(const std::vector<ServicePowerProfile>& services,
                                        double capacity_w, const RiskConfig& config) {
  require(!services.empty(), "overflow_probability: no services");
  require(capacity_w > 0.0, "overflow_probability: capacity must be positive");
  require(config.monte_carlo_draws > 0, "overflow_probability: zero draws");
  Rng rng(config.seed);
  std::size_t overflows = 0;
  for (std::size_t d = 0; d < config.monte_carlo_draws; ++d) {
    double total = 0.0;
    for (const auto& s : services) total += s.sample(rng);
    if (total > capacity_w) ++overflows;
  }
  return static_cast<double>(overflows) / static_cast<double>(config.monte_carlo_draws);
}

double overflow_probability_aligned(const std::vector<ServicePowerProfile>& services,
                                    double capacity_w, const RiskConfig& config) {
  require(!services.empty(), "overflow_probability: no services");
  require(capacity_w > 0.0, "overflow_probability: capacity must be positive");
  // Exhaustive over the common index set when it is small; Monte Carlo over
  // indices otherwise.
  std::size_t max_len = 0;
  for (const auto& s : services) max_len = std::max(max_len, s.sample_count());
  if (max_len <= config.monte_carlo_draws) {
    std::size_t overflows = 0;
    for (std::size_t i = 0; i < max_len; ++i) {
      double total = 0.0;
      for (const auto& s : services) total += s.sample_at(i);
      if (total > capacity_w) ++overflows;
    }
    return static_cast<double>(overflows) / static_cast<double>(max_len);
  }
  Rng rng(config.seed);
  std::size_t overflows = 0;
  for (std::size_t d = 0; d < config.monte_carlo_draws; ++d) {
    const auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(max_len) - 1));
    double total = 0.0;
    for (const auto& s : services) total += s.sample_at(idx);
    if (total > capacity_w) ++overflows;
  }
  return static_cast<double>(overflows) / static_cast<double>(config.monte_carlo_draws);
}

double overflow_probability_normal(const std::vector<ServicePowerProfile>& services,
                                   double capacity_w, double rho) {
  require(!services.empty(), "overflow_probability: no services");
  require(capacity_w > 0.0, "overflow_probability: capacity must be positive");
  require(rho >= 0.0 && rho <= 1.0, "overflow_probability: rho outside [0,1]");
  double mean = 0.0;
  double var = 0.0;
  for (const auto& s : services) {
    mean += s.mean_w();
    var += s.stddev_w() * s.stddev_w();
  }
  // Common-correlation covariance: sum_{i != j} rho * sd_i * sd_j.
  if (rho > 0.0) {
    double sd_sum = 0.0;
    for (const auto& s : services) sd_sum += s.stddev_w();
    double sd_sq_sum = 0.0;
    for (const auto& s : services) sd_sq_sum += s.stddev_w() * s.stddev_w();
    var += rho * (sd_sum * sd_sum - sd_sq_sum);
  }
  if (var <= 0.0) return mean > capacity_w ? 1.0 : 0.0;
  return normal_tail((capacity_w - mean) / std::sqrt(var));
}

double oversubscription_ratio(const std::vector<ServicePowerProfile>& services,
                              double capacity_w) {
  require(capacity_w > 0.0, "oversubscription_ratio: capacity must be positive");
  double peaks = 0.0;
  for (const auto& s : services) peaks += s.rated_peak_w();
  return peaks / capacity_w;
}

PackingResult max_services_at_risk(const ServicePowerProfile& prototype,
                                   double capacity_w, double max_risk,
                                   std::size_t hard_limit, const RiskConfig& config) {
  require(max_risk >= 0.0 && max_risk < 1.0, "max_services_at_risk: bad risk bound");
  require(hard_limit >= 1, "max_services_at_risk: hard_limit must be >= 1");
  PackingResult best;
  std::vector<ServicePowerProfile> pack;
  for (std::size_t n = 1; n <= hard_limit; ++n) {
    pack.push_back(prototype);
    const double risk = overflow_probability_aligned(pack, capacity_w, config);
    if (risk > max_risk) break;
    best.services = n;
    best.risk = risk;
    best.ratio = oversubscription_ratio(pack, capacity_w);
  }
  return best;
}

CappingImpact capping_impact_aligned(const std::vector<ServicePowerProfile>& services,
                                     double capacity_w) {
  require(!services.empty(), "capping_impact: no services");
  require(capacity_w > 0.0, "capping_impact: capacity must be positive");
  std::size_t max_len = 0;
  for (const auto& s : services) max_len = std::max(max_len, s.sample_count());
  CappingImpact impact;
  std::size_t capped = 0;
  double shed_sum = 0.0;
  for (std::size_t i = 0; i < max_len; ++i) {
    double total = 0.0;
    for (const auto& s : services) total += s.sample_at(i);
    if (total > capacity_w) {
      ++capped;
      const double shed = total - capacity_w;
      shed_sum += shed;
      impact.worst_shed_w = std::max(impact.worst_shed_w, shed);
    }
  }
  impact.capped_fraction = static_cast<double>(capped) / static_cast<double>(max_len);
  if (capped > 0) impact.mean_shed_w = shed_sum / static_cast<double>(capped);
  return impact;
}

}  // namespace epm::oversub
