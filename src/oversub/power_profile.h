// Statistical power profiles of hosted services (paper §3.1).
//
// "Oversubscription is a key to maximize the utilization of data center
//  capacities": providers host more rated peak power than the UPS can carry
//  because services rarely peak together. A ServicePowerProfile captures one
//  service's power draw as an empirical distribution (with its rated peak),
//  so aggregation can quantify the overflow risk of any co-hosted set.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/time_series.h"

namespace epm::oversub {

class ServicePowerProfile {
 public:
  /// Builds the empirical distribution from a measured/simulated power trace
  /// (watts). `rated_peak_w` defaults to the trace maximum.
  ServicePowerProfile(std::string name, const TimeSeries& power_trace_w,
                      double rated_peak_w = 0.0);

  const std::string& name() const { return name_; }
  double mean_w() const { return mean_w_; }
  double stddev_w() const { return stddev_w_; }
  double rated_peak_w() const { return rated_peak_w_; }
  std::size_t sample_count() const { return samples_.size(); }
  const std::vector<double>& samples() const { return samples_; }

  /// Empirical quantile of the service's draw.
  double quantile(double q) const;
  /// Draws one sample from the empirical distribution.
  double sample(Rng& rng) const;
  /// Draws the value at a specific trace position (preserves time alignment
  /// across services built from co-indexed traces, keeping correlations).
  double sample_at(std::size_t index) const;

 private:
  std::string name_;
  std::vector<double> samples_;         ///< trace order (for aligned sampling)
  std::vector<double> sorted_samples_;  ///< for quantiles
  double mean_w_ = 0.0;
  double stddev_w_ = 0.0;
  double rated_peak_w_ = 0.0;
};

}  // namespace epm::oversub
