// VM placement / consolidation algorithms (paper §4.4, §5.2).
//
//   * first_fit_decreasing  — classic CPU-driven consolidation: minimizes
//     host count, oblivious to interference and power correlation.
//   * interference_aware    — respects all resource dimensions and refuses
//     to co-locate multiple IO-intensive VMs on one spindle set.
//   * correlation_aware     — packs VMs whose load profiles are
//     anti-correlated, cutting the co-located *peak* ("two processes, or
//     VMs, from different applications are unlikely to generate power
//     spikes at the same time. This will reduce the probability of power
//     capping.", §5.2).
#pragma once

#include <cstddef>
#include <vector>

#include "vm/interference.h"
#include "vm/vm.h"

namespace epm::vm {

/// assignment[i] = index into `hosts` for vms[i]; kUnplaced if it didn't fit.
inline constexpr std::size_t kUnplaced = static_cast<std::size_t>(-1);

struct Placement {
  std::vector<std::size_t> assignment;
  std::size_t hosts_used = 0;
  std::size_t unplaced = 0;

  /// VM indices (into the original vm vector) grouped by host.
  std::vector<std::vector<std::size_t>> by_host(std::size_t host_count) const;
};

/// Sorts by CPU demand descending, first host with room wins.
Placement first_fit_decreasing(const std::vector<VmSpec>& vms,
                               const std::vector<HostSpec>& hosts);

/// First-fit on all dimensions + an interference guard: a host may hold at
/// most `max_io_intensive` IO-intensive VMs (default 1).
Placement interference_aware(const std::vector<VmSpec>& vms,
                             const std::vector<HostSpec>& hosts,
                             const InterferenceConfig& config = {},
                             std::size_t max_io_intensive = 1);

struct CorrelationAwareConfig {
  /// Candidate hosts are scored by the *resulting* co-located load peak (a
  /// peak-aware worst-fit): the host whose combined profile peaks lowest
  /// after adding the VM wins, with ties going to the emptier host. This
  /// both spreads same-phase VMs and pairs anti-correlated ones. Scores
  /// within `tie_epsilon` count as ties.
  double tie_epsilon = 1e-9;
};

Placement correlation_aware(const std::vector<VmSpec>& vms,
                            const std::vector<HostSpec>& hosts,
                            const CorrelationAwareConfig& config = {});

/// The co-located load peak of a host under `assignment`: max over time of
/// the sum of member profiles (mean demands x profile). Used to compare
/// packing quality; `dimension` selects cpu (0), disk (1), or net (2).
double colocated_peak(const std::vector<VmSpec>& vms,
                      const std::vector<std::size_t>& members, int dimension);

}  // namespace epm::vm
