#include "vm/vm.h"

#include "core/require.h"

namespace epm::vm {

bool fits(const VmSpec& vm, const HostSpec& host, const HostUsage& used) {
  return used.cpu_cores + vm.cpu_cores <= host.cpu_cores + 1e-9 &&
         used.disk_iops + vm.disk_iops <= host.disk_iops + 1e-9 &&
         used.net_mbps + vm.net_mbps <= host.net_mbps + 1e-9 &&
         used.memory_gb + vm.memory_gb <= host.memory_gb + 1e-9;
}

HostUsage add_usage(const HostUsage& used, const VmSpec& vm) {
  return HostUsage{used.cpu_cores + vm.cpu_cores, used.disk_iops + vm.disk_iops,
                   used.net_mbps + vm.net_mbps, used.memory_gb + vm.memory_gb};
}

bool is_disk_bound(const VmSpec& vm, const HostSpec& reference) {
  require(reference.cpu_cores > 0.0 && reference.disk_iops > 0.0,
          "is_disk_bound: invalid reference host");
  const double cpu_pressure = vm.cpu_cores / reference.cpu_cores;
  const double disk_pressure = vm.disk_iops / reference.disk_iops;
  return disk_pressure > cpu_pressure;
}

}  // namespace epm::vm
