#include "vm/migration.h"

#include "core/require.h"
#include "vm/placement.h"

namespace epm::vm {

MigrationCost migration_cost(const VmSpec& vm, const MigrationCostConfig& config) {
  require(config.network_gbps > 0.0, "migration_cost: bandwidth must be positive");
  require(config.dirty_factor >= 1.0, "migration_cost: dirty_factor must be >= 1");
  require(config.overhead_power_w >= 0.0 && config.downtime_s >= 0.0,
          "migration_cost: negative overheads");
  MigrationCost cost;
  cost.bytes_moved = vm.memory_gb * 1e9 * config.dirty_factor;
  const double bytes_per_s = config.network_gbps * 1e9 / 8.0;
  cost.duration_s = cost.bytes_moved / bytes_per_s;
  // Overhead is paid on both the source and the destination.
  cost.energy_j = 2.0 * config.overhead_power_w * cost.duration_s;
  cost.downtime_s = config.downtime_s;
  return cost;
}

MigrationPlan plan_migration(const std::vector<VmSpec>& vms,
                             const std::vector<std::size_t>& from_assignment,
                             const std::vector<std::size_t>& to_assignment,
                             const MigrationCostConfig& config) {
  require(from_assignment.size() == vms.size() && to_assignment.size() == vms.size(),
          "plan_migration: assignment size mismatch");
  MigrationPlan plan;
  for (std::size_t i = 0; i < vms.size(); ++i) {
    const std::size_t from = from_assignment[i];
    const std::size_t to = to_assignment[i];
    if (from == to) continue;
    if (from == kUnplaced || to == kUnplaced) continue;
    Move move{i, from, to, migration_cost(vms[i], config)};
    plan.total_duration_s += move.cost.duration_s;
    plan.total_energy_j += move.cost.energy_j;
    plan.total_bytes += move.cost.bytes_moved;
    plan.moves.push_back(move);
  }
  return plan;
}

}  // namespace epm::vm
