// Live-migration cost model and planner (paper §4.4: "dynamically migrate
// VMs (and the services running on them) to improve resource utilizations on
// active servers. And through doing so, shut down inactive servers"; §3:
// "VM migration or server repurpose may happen at the time scale of days or
// weeks" — migrations are slow, bulky actions whose cost the macro layer
// must weigh).
#pragma once

#include <cstddef>
#include <vector>

#include "vm/vm.h"

namespace epm::vm {

struct MigrationCostConfig {
  double network_gbps = 1.0;        ///< migration link bandwidth
  /// Pre-copy rounds re-send dirtied memory; total bytes moved =
  /// memory * dirty_factor.
  double dirty_factor = 1.3;
  /// Extra CPU+network power on source and destination while migrating.
  double overhead_power_w = 60.0;
  /// Stop-and-copy blackout at the end of pre-copy.
  double downtime_s = 0.3;
};

struct MigrationCost {
  double duration_s = 0.0;
  double energy_j = 0.0;    ///< overhead on both endpoints over the duration
  double downtime_s = 0.0;  ///< service blackout
  double bytes_moved = 0.0;
};

MigrationCost migration_cost(const VmSpec& vm, const MigrationCostConfig& config = {});

/// One planned move.
struct Move {
  std::size_t vm_index;
  std::size_t from_host;
  std::size_t to_host;
  MigrationCost cost;
};

/// Diffs two placements over the same VM set into the moves required, with
/// per-move costs and totals. VMs unplaced in either placement are skipped.
struct MigrationPlan {
  std::vector<Move> moves;
  double total_duration_s = 0.0;  ///< serialized on one migration link
  double total_energy_j = 0.0;
  double total_bytes = 0.0;
};

MigrationPlan plan_migration(const std::vector<VmSpec>& vms,
                             const std::vector<std::size_t>& from_assignment,
                             const std::vector<std::size_t>& to_assignment,
                             const MigrationCostConfig& config = {});

}  // namespace epm::vm
