// Dynamic consolidation planning (paper §4.4):
//
//   "Another potential benefit of using VMs is to dynamically migrate VMs
//    (and the services running on them) to improve resource utilizations on
//    active servers. And through doing so, shut down inactive servers."
//
// Given the fleet's *current* placement and current VM demands, proposes a
// tighter interference-aware packing, prices the live migrations it would
// take, and decides whether the energy saved by powering freed hosts off
// pays the migration bill back within a configurable horizon. The paper's
// macro layer is exactly the place such cost/benefit calls belong.
#pragma once

#include <cstddef>
#include <vector>

#include "vm/interference.h"
#include "vm/migration.h"
#include "vm/placement.h"

namespace epm::vm {

struct ConsolidationConfig {
  /// Power saved per emptied host when it is switched off (its idle floor).
  double host_idle_power_w = 180.0;
  /// Migration energy must pay back within this horizon for the plan to be
  /// worthwhile (i.e. the freed hosts are expected to stay off this long).
  double payback_horizon_s = 3600.0;
  MigrationCostConfig migration;
  InterferenceConfig interference;
  /// Per-host limit on IO-intensive tenants in the target packing.
  std::size_t max_io_intensive = 1;
};

struct ConsolidationPlan {
  Placement target;
  MigrationPlan moves;
  std::size_t hosts_before = 0;
  std::size_t hosts_after = 0;
  std::size_t hosts_freed = 0;
  double power_saved_w = 0.0;     ///< idle power of the freed hosts
  double migration_energy_j = 0.0;
  /// Time for the saving to repay the migration energy; infinity when
  /// nothing is saved.
  double payback_s = 0.0;
  bool worthwhile = false;
};

/// Proposes and prices a consolidation of `vms` (with their *current*
/// demand vectors) from `current` onto the fewest interference-safe hosts.
/// VMs unplaced in `current` are ignored (they are not running anywhere).
ConsolidationPlan plan_consolidation(const std::vector<VmSpec>& vms,
                                     const std::vector<HostSpec>& hosts,
                                     const Placement& current,
                                     const ConsolidationConfig& config = {});

}  // namespace epm::vm
