// Non-additive resource interference (paper §4.4):
//
//   "how to group VMs together remains challenging since hardware resource
//    utilization across VMs are not additive. For example, due to disk
//    contention, putting two disk IO intensive applications on the same
//    host machine may cause significant throughput degradation."
//
// CPU and network are modeled as additive (work-conserving shared
// resources). Disk is not: every additional IO-intensive tenant adds seek
// amplification, inflating each tenant's effective IO cost. Achieved
// throughput is a proportional share of the deflated effective capacity.
#pragma once

#include <cstddef>
#include <vector>

#include "vm/vm.h"

namespace epm::vm {

struct InterferenceConfig {
  /// A VM counts as IO-intensive when its disk demand exceeds this fraction
  /// of the host's disk capacity.
  double io_intensive_fraction = 0.25;
  /// Seek-amplification per extra IO-intensive co-tenant: the host's
  /// effective IO capacity becomes capacity / (1 + penalty * (k - 1)).
  double contention_penalty = 0.35;
};

/// Per-VM outcome of running a group on one host.
struct VmPerformance {
  std::size_t vm_id = 0;
  /// Achieved / demanded throughput, in (0, 1]. 1 = no degradation.
  double throughput_ratio = 1.0;
  /// Which resource bound it (0=cpu, 1=disk, 2=net, -1=unbound).
  int bottleneck = -1;
};

struct HostEvaluation {
  std::vector<VmPerformance> vms;
  double cpu_utilization = 0.0;
  double disk_utilization = 0.0;       ///< of *effective* (deflated) capacity
  double effective_disk_iops = 0.0;    ///< capacity after seek amplification
  std::size_t io_intensive_count = 0;
  /// Minimum throughput ratio across tenants (the co-location's worst case).
  double worst_throughput_ratio = 1.0;
};

/// Evaluates the performance of `vms` co-located on `host`.
HostEvaluation evaluate_host(const std::vector<VmSpec>& vms, const HostSpec& host,
                             const InterferenceConfig& config = {});

}  // namespace epm::vm
