#include "vm/placement.h"

#include <algorithm>
#include <numeric>

#include "core/require.h"

namespace epm::vm {
namespace {

std::size_t count_hosts_used(const Placement& placement) {
  std::vector<std::size_t> used(placement.assignment.begin(), placement.assignment.end());
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  std::size_t n = used.size();
  if (!used.empty() && used.back() == kUnplaced) --n;
  return n;
}

/// Demand of `vm` along a dimension at profile sample `t` (flat when no
/// profile).
double demand_at(const VmSpec& vm, int dimension, std::size_t t) {
  const double mean = dimension == 0 ? vm.cpu_cores
                      : dimension == 1 ? vm.disk_iops
                                       : vm.net_mbps;
  if (vm.load_profile.empty()) return mean;
  return mean * vm.load_profile[t % vm.load_profile.size()];
}

}  // namespace

std::vector<std::vector<std::size_t>> Placement::by_host(std::size_t host_count) const {
  std::vector<std::vector<std::size_t>> out(host_count);
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] != kUnplaced) {
      require(assignment[i] < host_count, "Placement::by_host: bad assignment");
      out[assignment[i]].push_back(i);
    }
  }
  return out;
}

Placement first_fit_decreasing(const std::vector<VmSpec>& vms,
                               const std::vector<HostSpec>& hosts) {
  require(!hosts.empty(), "first_fit_decreasing: no hosts");
  std::vector<std::size_t> order(vms.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return vms[a].cpu_cores > vms[b].cpu_cores;
  });

  Placement placement;
  placement.assignment.assign(vms.size(), kUnplaced);
  std::vector<HostUsage> usage(hosts.size());
  for (std::size_t idx : order) {
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      if (fits(vms[idx], hosts[h], usage[h])) {
        usage[h] = add_usage(usage[h], vms[idx]);
        placement.assignment[idx] = h;
        break;
      }
    }
    if (placement.assignment[idx] == kUnplaced) ++placement.unplaced;
  }
  placement.hosts_used = count_hosts_used(placement);
  return placement;
}

Placement interference_aware(const std::vector<VmSpec>& vms,
                             const std::vector<HostSpec>& hosts,
                             const InterferenceConfig& config,
                             std::size_t max_io_intensive) {
  require(!hosts.empty(), "interference_aware: no hosts");
  require(max_io_intensive >= 1, "interference_aware: max_io_intensive must be >= 1");
  std::vector<std::size_t> order(vms.size());
  std::iota(order.begin(), order.end(), 0);
  // Place IO-intensive VMs first so they claim separate spindle sets before
  // CPU-bound fillers take space.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return vms[a].disk_iops > vms[b].disk_iops;
  });

  Placement placement;
  placement.assignment.assign(vms.size(), kUnplaced);
  std::vector<HostUsage> usage(hosts.size());
  std::vector<std::size_t> io_count(hosts.size(), 0);
  for (std::size_t idx : order) {
    const bool io_heavy =
        vms[idx].disk_iops > config.io_intensive_fraction * hosts[0].disk_iops;
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      const bool heavy_here =
          vms[idx].disk_iops > config.io_intensive_fraction * hosts[h].disk_iops;
      if ((io_heavy || heavy_here) && io_count[h] >= max_io_intensive) continue;
      if (!fits(vms[idx], hosts[h], usage[h])) continue;
      usage[h] = add_usage(usage[h], vms[idx]);
      if (heavy_here) ++io_count[h];
      placement.assignment[idx] = h;
      break;
    }
    if (placement.assignment[idx] == kUnplaced) ++placement.unplaced;
  }
  placement.hosts_used = count_hosts_used(placement);
  return placement;
}

double colocated_peak(const std::vector<VmSpec>& vms,
                      const std::vector<std::size_t>& members, int dimension) {
  require(dimension >= 0 && dimension <= 2, "colocated_peak: bad dimension");
  if (members.empty()) return 0.0;
  // Common profile length: the longest member profile (flat VMs repeat).
  std::size_t samples = 1;
  for (std::size_t m : members) {
    require(m < vms.size(), "colocated_peak: member out of range");
    samples = std::max(samples, vms[m].load_profile.size());
  }
  double peak = 0.0;
  for (std::size_t t = 0; t < samples; ++t) {
    double total = 0.0;
    for (std::size_t m : members) total += demand_at(vms[m], dimension, t);
    peak = std::max(peak, total);
  }
  return peak;
}

Placement correlation_aware(const std::vector<VmSpec>& vms,
                            const std::vector<HostSpec>& hosts,
                            const CorrelationAwareConfig& config) {
  require(!hosts.empty(), "correlation_aware: no hosts");
  require(config.tie_epsilon >= 0.0, "correlation_aware: negative tie epsilon");
  std::vector<std::size_t> order(vms.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return vms[a].cpu_cores > vms[b].cpu_cores;
  });

  Placement placement;
  placement.assignment.assign(vms.size(), kUnplaced);
  std::vector<HostUsage> usage(hosts.size());
  std::vector<std::vector<std::size_t>> members(hosts.size());
  for (std::size_t idx : order) {
    double best_peak = 0.0;
    std::size_t best_host = kUnplaced;
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      if (!fits(vms[idx], hosts[h], usage[h])) continue;
      // Peak-aware worst-fit: score each candidate by the co-located peak
      // that would *result*. A same-phase host roughly doubles its peak, an
      // anti-correlated host barely moves — so opposite phases attract and
      // same phases repel. Ties go to the emptier host.
      auto trial = members[h];
      trial.push_back(idx);
      const double after = colocated_peak(vms, trial, 0);
      const bool better =
          best_host == kUnplaced || after < best_peak - config.tie_epsilon ||
          (after < best_peak + config.tie_epsilon &&
           members[h].size() < members[best_host].size());
      if (better) {
        best_peak = after;
        best_host = h;
      }
    }
    if (best_host == kUnplaced) {
      ++placement.unplaced;
      continue;
    }
    usage[best_host] = add_usage(usage[best_host], vms[idx]);
    members[best_host].push_back(idx);
    placement.assignment[idx] = best_host;
  }
  placement.hosts_used = count_hosts_used(placement);
  return placement;
}

}  // namespace epm::vm
