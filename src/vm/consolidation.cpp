#include "vm/consolidation.h"

#include <limits>

#include "core/require.h"

namespace epm::vm {

ConsolidationPlan plan_consolidation(const std::vector<VmSpec>& vms,
                                     const std::vector<HostSpec>& hosts,
                                     const Placement& current,
                                     const ConsolidationConfig& config) {
  require(current.assignment.size() == vms.size(),
          "plan_consolidation: placement does not match the VM set");
  require(config.host_idle_power_w >= 0.0,
          "plan_consolidation: negative host idle power");
  require(config.payback_horizon_s > 0.0,
          "plan_consolidation: payback horizon must be positive");

  // Only the VMs that are actually running can be consolidated.
  std::vector<VmSpec> running;
  std::vector<std::size_t> running_index;
  for (std::size_t i = 0; i < vms.size(); ++i) {
    if (current.assignment[i] != kUnplaced) {
      running.push_back(vms[i]);
      running_index.push_back(i);
    }
  }

  ConsolidationPlan plan;
  plan.hosts_before = current.hosts_used;
  if (running.empty()) {
    plan.target = current;
    plan.hosts_after = current.hosts_used;
    plan.payback_s = std::numeric_limits<double>::infinity();
    return plan;
  }

  const Placement packed = interference_aware(running, hosts, config.interference,
                                              config.max_io_intensive);
  // Map the packed assignment back onto the full VM index space; VMs the
  // packer could not place stay where they are.
  plan.target = current;
  for (std::size_t r = 0; r < running.size(); ++r) {
    if (packed.assignment[r] != kUnplaced) {
      plan.target.assignment[running_index[r]] = packed.assignment[r];
    }
  }
  // Recompute hosts used for the stitched assignment.
  std::vector<bool> used(hosts.size(), false);
  for (std::size_t h : plan.target.assignment) {
    if (h != kUnplaced) used[h] = true;
  }
  plan.hosts_after = 0;
  for (bool u : used) {
    if (u) ++plan.hosts_after;
  }
  plan.target.hosts_used = plan.hosts_after;

  plan.moves =
      plan_migration(vms, current.assignment, plan.target.assignment, config.migration);
  plan.migration_energy_j = plan.moves.total_energy_j;
  plan.hosts_freed =
      plan.hosts_before > plan.hosts_after ? plan.hosts_before - plan.hosts_after : 0;
  plan.power_saved_w = static_cast<double>(plan.hosts_freed) * config.host_idle_power_w;
  plan.payback_s = plan.power_saved_w > 0.0
                       ? plan.migration_energy_j / plan.power_saved_w
                       : std::numeric_limits<double>::infinity();
  plan.worthwhile = plan.hosts_freed > 0 && plan.payback_s <= config.payback_horizon_s;
  return plan;
}

}  // namespace epm::vm
