#include "vm/interference.h"

#include <algorithm>

#include "core/require.h"

namespace epm::vm {

HostEvaluation evaluate_host(const std::vector<VmSpec>& vms, const HostSpec& host,
                             const InterferenceConfig& config) {
  require(host.cpu_cores > 0.0 && host.disk_iops > 0.0 && host.net_mbps > 0.0,
          "evaluate_host: invalid host capacities");
  require(config.io_intensive_fraction > 0.0 && config.io_intensive_fraction <= 1.0,
          "evaluate_host: io_intensive_fraction outside (0,1]");
  require(config.contention_penalty >= 0.0, "evaluate_host: negative penalty");

  HostEvaluation eval;
  double cpu_demand = 0.0;
  double disk_demand = 0.0;
  double net_demand = 0.0;
  for (const auto& v : vms) {
    cpu_demand += v.cpu_cores;
    disk_demand += v.disk_iops;
    net_demand += v.net_mbps;
    if (v.disk_iops > config.io_intensive_fraction * host.disk_iops) {
      ++eval.io_intensive_count;
    }
  }

  // Seek amplification from multiple IO-intensive tenants (non-additive).
  const std::size_t k = eval.io_intensive_count;
  const double amplification =
      k >= 2 ? 1.0 + config.contention_penalty * static_cast<double>(k - 1) : 1.0;
  eval.effective_disk_iops = host.disk_iops / amplification;

  // Work-conserving proportional sharing on each resource.
  const double cpu_ratio = cpu_demand > host.cpu_cores ? host.cpu_cores / cpu_demand : 1.0;
  const double disk_ratio =
      disk_demand > eval.effective_disk_iops ? eval.effective_disk_iops / disk_demand : 1.0;
  const double net_ratio = net_demand > host.net_mbps ? host.net_mbps / net_demand : 1.0;

  eval.cpu_utilization = host.cpu_cores > 0.0 ? std::min(cpu_demand / host.cpu_cores, 1.0) : 0.0;
  eval.disk_utilization = eval.effective_disk_iops > 0.0
                              ? std::min(disk_demand / eval.effective_disk_iops, 1.0)
                              : 0.0;

  eval.vms.reserve(vms.size());
  for (const auto& v : vms) {
    VmPerformance perf;
    perf.vm_id = v.id;
    perf.throughput_ratio = 1.0;
    // A VM is slowed by the most-contended resource it actually uses.
    if (v.cpu_cores > 0.0 && cpu_ratio < perf.throughput_ratio) {
      perf.throughput_ratio = cpu_ratio;
      perf.bottleneck = 0;
    }
    if (v.disk_iops > 0.0 && disk_ratio < perf.throughput_ratio) {
      perf.throughput_ratio = disk_ratio;
      perf.bottleneck = 1;
    }
    if (v.net_mbps > 0.0 && net_ratio < perf.throughput_ratio) {
      perf.throughput_ratio = net_ratio;
      perf.bottleneck = 2;
    }
    eval.worst_throughput_ratio =
        std::min(eval.worst_throughput_ratio, perf.throughput_ratio);
    eval.vms.push_back(perf);
  }
  return eval;
}

}  // namespace epm::vm
