#include "vm/virtual_power.h"

#include <algorithm>

#include "core/require.h"

namespace epm::vm {

VpmChannel::VpmChannel(const power::ServerPowerModel& host_model, VpmRuleConfig config)
    : host_model_(&host_model), config_(config) {
  require(config_.min_duty > 0.0 && config_.min_duty <= 1.0,
          "VpmChannel: min_duty outside (0,1]");
}

double VpmChannel::requested_speed_fraction(const SoftPStateRequest& request) {
  require(request.soft_pstate_count >= 1, "VpmChannel: guest with zero soft states");
  require(request.soft_pstate < request.soft_pstate_count,
          "VpmChannel: soft state out of range");
  if (request.soft_pstate_count == 1) return 1.0;
  // Linear ladder: state 0 -> 1.0, last state -> 1/count.
  const double lo = 1.0 / static_cast<double>(request.soft_pstate_count);
  const double frac = static_cast<double>(request.soft_pstate) /
                      static_cast<double>(request.soft_pstate_count - 1);
  return 1.0 - (1.0 - lo) * frac;
}

VpmDecision VpmChannel::apply(const std::vector<SoftPStateRequest>& requests) const {
  VpmDecision decision;
  if (requests.empty()) {
    // No guests: park the host at its slowest state.
    decision.host_pstate = host_model_->pstate_count() - 1;
    return decision;
  }
  // The host must be fast enough for the share-weighted *most demanding*
  // guest: hosting a guest at speed s with share c needs host speed >= s
  // on the guest's share of the machine, i.e. host relative capacity >=
  // max_i(s_i) to avoid slowing anyone beyond their own request.
  double max_speed = 0.0;
  for (const auto& r : requests) {
    require(r.cpu_share > 0.0 && r.cpu_share <= 1.0,
            "VpmChannel: cpu_share outside (0,1]");
    max_speed = std::max(max_speed, requested_speed_fraction(r));
  }
  decision.host_pstate = host_model_->lowest_pstate_with_capacity(max_speed);
  const double host_speed = host_model_->relative_capacity(decision.host_pstate);

  // Guests that requested less speed than the host delivers get squeezed to
  // their ask through a scheduler duty factor ("soft" states realized by
  // scheduling, exactly the VPM mechanism split).
  decision.vm_duty.reserve(requests.size());
  for (const auto& r : requests) {
    const double want = requested_speed_fraction(r);
    const double duty = std::clamp(want / host_speed, config_.min_duty, 1.0);
    decision.vm_duty.push_back(duty);
  }
  return decision;
}

}  // namespace epm::vm
