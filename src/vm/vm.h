// Virtual machine and host descriptors (paper §4.4).
//
// Resource demands are vectors over CPU, disk IO, and network — "different
// processes stress physical resources differently - some are CPU bound,
// some are disk IO bound, and some are network bound" (§5.2). Placement and
// interference reasoning operates on these vectors plus, for
// correlation-aware packing, on each VM's load-over-time profile.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/time_series.h"

namespace epm::vm {

struct VmSpec {
  std::size_t id = 0;
  std::string name;
  double cpu_cores = 1.0;       ///< mean demand, in cores
  double disk_iops = 50.0;      ///< mean demand, IO operations/s
  double net_mbps = 10.0;       ///< mean demand, Mbit/s
  double memory_gb = 4.0;
  /// Optional normalized load-over-time profile (multiplies the mean
  /// demands); empty means "flat". Used by correlation-aware packing
  /// ("two processes, or VMs, from different applications are unlikely to
  /// generate power spikes at the same time", §5.2).
  TimeSeries load_profile;
};

struct HostSpec {
  std::size_t id = 0;
  std::string name;
  double cpu_cores = 16.0;
  double disk_iops = 400.0;    ///< a single spindle-limited disk subsystem
  double net_mbps = 1000.0;
  double memory_gb = 64.0;
};

/// True when the VM's *mean* demands fit in the host's remaining capacity.
struct HostUsage {
  double cpu_cores = 0.0;
  double disk_iops = 0.0;
  double net_mbps = 0.0;
  double memory_gb = 0.0;
};

bool fits(const VmSpec& vm, const HostSpec& host, const HostUsage& used);
HostUsage add_usage(const HostUsage& used, const VmSpec& vm);

/// Classification helper: a VM is disk-IO-bound when its normalized disk
/// pressure dominates its CPU pressure (used by interference-aware
/// placement and by tests).
bool is_disk_bound(const VmSpec& vm, const HostSpec& reference);

}  // namespace epm::vm
