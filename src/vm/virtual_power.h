// VirtualPower-style soft power states (paper §4.4, ref [27], Nathuji &
// Schwan SOSP'07).
//
// Guest VMs apply their own power-management policies to *soft* P-states;
// the Virtual Power Management (VPM) channel collects those soft requests
// and a rule maps them onto the host's real P-state and per-VM scheduler
// shares — preserving the isolation VMs assume while letting the host
// coordinate globally.
#pragma once

#include <cstddef>
#include <vector>

#include "power/server_power.h"

namespace epm::vm {

/// A guest's requested soft state: 0 = fastest.
struct SoftPStateRequest {
  std::size_t vm_id = 0;
  std::size_t soft_pstate = 0;
  std::size_t soft_pstate_count = 1;  ///< how many states the guest believes in
  double cpu_share = 1.0;             ///< guest's share of the host CPU
};

/// Host-level decision derived from all guests' soft states.
struct VpmDecision {
  std::size_t host_pstate = 0;
  /// Per-VM scheduler duty factor emulating the residual slowdown each
  /// guest asked for beyond what the host P-state provides; aligned with
  /// the request order.
  std::vector<double> vm_duty;
};

struct VpmRuleConfig {
  /// Host runs no slower than the *most demanding* guest requires
  /// (share-weighted); guests that asked for less speed are squeezed via
  /// their duty factor instead.
  double min_duty = 0.1;
};

class VpmChannel {
 public:
  explicit VpmChannel(const power::ServerPowerModel& host_model,
                      VpmRuleConfig config = {});

  /// Maps guest soft states to a host P-state + per-VM duties.
  VpmDecision apply(const std::vector<SoftPStateRequest>& requests) const;

  /// The speed fraction a soft request represents: linear ladder from 1.0
  /// (state 0) down to 1/count.
  static double requested_speed_fraction(const SoftPStateRequest& request);

 private:
  const power::ServerPowerModel* host_model_;
  VpmRuleConfig config_;
};

}  // namespace epm::vm
