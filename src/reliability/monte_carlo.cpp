#include "reliability/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/parallel.h"
#include "core/require.h"
#include "core/rng.h"
#include "core/stats.h"

namespace epm::reliability {
namespace {

constexpr double kHoursPerYear = 8760.0;

struct LeafState {
  const ComponentSpec* spec;
  bool failed = false;
  bool in_maintenance = false;
  double next_fail_toggle_h = 0.0;
  double next_maint_h = std::numeric_limits<double>::infinity();
  bool maint_is_start = true;

  bool up() const { return !failed && !in_maintenance; }
};

/// Recursive system evaluation; `cursor` walks leaves in the same preorder
/// as Block::collect_leaves.
bool system_up(const Block& block, const std::vector<LeafState>& states,
               std::size_t& cursor) {
  if (block.is_leaf()) return states[cursor++].up();
  if (block.required() == 0) {
    bool all = true;
    for (const auto& c : block.children()) {
      // Evaluate every child so the cursor stays consistent.
      if (!system_up(c, states, cursor)) all = false;
    }
    return all;
  }
  std::size_t up = 0;
  for (const auto& c : block.children()) {
    if (system_up(c, states, cursor)) ++up;
  }
  return up >= block.required();
}

/// One independent replica's contribution, reduced across replicas in
/// replica order so the result is invariant to the thread count.
struct ReplicaOutcome {
  double availability = 0.0;
  OnlineStats outages;
  double max_outage_h = 0.0;
};

ReplicaOutcome run_replica(const Block& topology,
                           const std::vector<const Block*>& leaves,
                           double horizon_h, Rng& rng) {
  ReplicaOutcome outcome;
  std::vector<LeafState> states;
  states.reserve(leaves.size());
  for (const Block* leaf : leaves) {
    LeafState s;
    s.spec = &leaf->spec();
    s.next_fail_toggle_h = rng.exponential(1.0 / s.spec->mtbf_h);
    if (s.spec->maintenance_h_per_year > 0.0) {
      // One planned window per year at a random phase.
      s.next_maint_h = rng.uniform(0.0, kHoursPerYear);
      s.maint_is_start = true;
    }
    states.push_back(s);
  }

  double t = 0.0;
  double downtime_h = 0.0;
  double outage_started_h = -1.0;
  std::size_t cursor = 0;
  bool up = system_up(topology, states, cursor);

  while (t < horizon_h) {
    // Next event over all components.
    double t_next = horizon_h;
    for (const auto& s : states) {
      t_next = std::min({t_next, s.next_fail_toggle_h, s.next_maint_h});
    }
    const double dt = t_next - t;
    if (!up) downtime_h += dt;
    t = t_next;
    if (t >= horizon_h) break;

    for (auto& s : states) {
      if (s.next_fail_toggle_h <= t + 1e-12) {
        if (!s.failed && s.spec->mttr_h <= 0.0) {
          // Instant repair: the failure contributes no downtime.
          s.next_fail_toggle_h = t + rng.exponential(1.0 / s.spec->mtbf_h);
        } else {
          s.failed = !s.failed;
          const double rate = s.failed ? 1.0 / s.spec->mttr_h : 1.0 / s.spec->mtbf_h;
          s.next_fail_toggle_h = t + rng.exponential(rate);
        }
      }
      if (s.next_maint_h <= t + 1e-12) {
        if (s.maint_is_start) {
          s.in_maintenance = true;
          s.next_maint_h = t + s.spec->maintenance_h_per_year;
          s.maint_is_start = false;
        } else {
          s.in_maintenance = false;
          s.next_maint_h = t + (kHoursPerYear - s.spec->maintenance_h_per_year);
          s.maint_is_start = true;
        }
      }
    }
    cursor = 0;
    const bool now_up = system_up(topology, states, cursor);
    if (up && !now_up) {
      outage_started_h = t;
    } else if (!up && now_up && outage_started_h >= 0.0) {
      const double duration = t - outage_started_h;
      outcome.outages.add(duration);
      outcome.max_outage_h = std::max(outcome.max_outage_h, duration);
    }
    up = now_up;
  }
  outcome.availability = 1.0 - downtime_h / horizon_h;
  return outcome;
}

}  // namespace

MonteCarloResult simulate_availability(const Block& topology,
                                       const MonteCarloConfig& config) {
  require(config.years > 0.0, "simulate_availability: years must be positive");
  require(config.replicas >= 1, "simulate_availability: need at least one replica");

  std::vector<const Block*> leaves;
  topology.collect_leaves(leaves);
  require(!leaves.empty(), "simulate_availability: topology has no components");

  const double horizon_h = config.years * kHoursPerYear;
  ThreadPool pool(resolve_thread_count(static_cast<std::int64_t>(config.threads)));
  const auto outcomes = pool.parallel_replicate(
      config.replicas, config.seed, [&](Rng& rng, std::size_t) {
        return run_replica(topology, leaves, horizon_h, rng);
      });

  // Ordered reduction: replica index order, independent of completion order.
  OnlineStats replica_availability;
  OnlineStats outage_durations;
  double max_outage = 0.0;
  for (const auto& outcome : outcomes) {
    replica_availability.add(outcome.availability);
    outage_durations.merge(outcome.outages);
    max_outage = std::max(max_outage, outcome.max_outage_h);
  }

  MonteCarloResult result;
  result.availability = replica_availability.mean();
  result.availability_stddev = replica_availability.stddev();
  result.mean_outage_h = outage_durations.count() ? outage_durations.mean() : 0.0;
  result.max_outage_h = max_outage;
  result.outage_count = outage_durations.count();

  // 95% interval. The normal interval across replicas collapses to zero
  // width when every replica reports the same availability — in particular
  // when none of them sampled a failure. Union it with a Wilson score
  // interval on the pooled downtime fraction, treating each simulated hour
  // as one Bernoulli down/up trial, which stays strictly positive-width for
  // any finite horizon.
  constexpr double kZ = 1.959963984540054;  // Phi^-1(0.975)
  const double n_replicas = static_cast<double>(config.replicas);
  const double normal_half =
      kZ * result.availability_stddev / std::sqrt(n_replicas);
  double lo = result.availability - normal_half;
  double hi = result.availability + normal_half;

  const double trials = n_replicas * horizon_h;
  const double p_down = std::clamp(1.0 - result.availability, 0.0, 1.0);
  const double z2 = kZ * kZ;
  const double denom = 1.0 + z2 / trials;
  const double center = (p_down + z2 / (2.0 * trials)) / denom;
  const double half =
      kZ *
      std::sqrt(p_down * (1.0 - p_down) / trials + z2 / (4.0 * trials * trials)) /
      denom;
  lo = std::min(lo, 1.0 - (center + half));
  hi = std::max(hi, 1.0 - (center - half));

  result.ci_lo = std::clamp(lo, 0.0, 1.0);
  result.ci_hi = std::clamp(hi, 0.0, 1.0);
  return result;
}

}  // namespace epm::reliability
