// Event-driven Monte Carlo availability simulation, cross-checking the
// analytic block model and exposing the distribution of outage durations
// (which the analytic steady-state number hides).
#pragma once

#include <cstdint>

#include "reliability/availability.h"

namespace epm::reliability {

struct MonteCarloConfig {
  double years = 50.0;
  std::size_t replicas = 8;
  std::uint64_t seed = 2025;
  /// Worker threads for the replica fan-out; 0 = default_thread_count().
  /// Results are bit-identical for any value (replica streams are derived
  /// from `seed` by index and reduced in replica order).
  std::size_t threads = 0;
};

struct MonteCarloResult {
  double availability = 0.0;        ///< mean over replicas
  double availability_stddev = 0.0; ///< across replicas
  /// 95% confidence interval on availability: the union of the normal
  /// interval across replicas and a Wilson score interval on the pooled
  /// downtime fraction (pseudo-trials = simulated hours). The Wilson term
  /// keeps the interval strictly wider than zero even when no replica saw a
  /// single failure — observing zero failures over a finite horizon is
  /// evidence of high availability, not proof of perfect availability.
  double ci_lo = 0.0;
  double ci_hi = 1.0;
  double mean_outage_h = 0.0;       ///< average system-outage duration
  double max_outage_h = 0.0;
  std::size_t outage_count = 0;     ///< across all replicas

  double ci_width() const { return ci_hi - ci_lo; }
};

/// Simulates every leaf component as an alternating exponential
/// up(MTBF)/down(MTTR) renewal process plus one planned maintenance window
/// per year, evaluates the block structure at every transition, and
/// integrates system downtime.
MonteCarloResult simulate_availability(const Block& topology,
                                       const MonteCarloConfig& config = {});

}  // namespace epm::reliability
