#include "reliability/availability.h"

#include <cmath>

#include "core/require.h"

namespace epm::reliability {

namespace {
constexpr double kHoursPerYear = 8760.0;
}

double ComponentSpec::availability() const {
  return mtbf_h / (mtbf_h + mttr_h);
}

double ComponentSpec::availability_with_maintenance() const {
  const double maint_unavail = maintenance_h_per_year / kHoursPerYear;
  return availability() * (1.0 - maint_unavail);
}

Block Block::component(ComponentSpec spec) {
  require(spec.mtbf_h > 0.0, "Block: MTBF must be positive");
  require(spec.mttr_h >= 0.0, "Block: negative MTTR");
  require(spec.maintenance_h_per_year >= 0.0 &&
              spec.maintenance_h_per_year < kHoursPerYear,
          "Block: invalid maintenance hours");
  Block b;
  b.name_ = spec.name;
  b.spec_ = std::move(spec);
  return b;
}

Block Block::series(std::string name, std::vector<Block> children) {
  require(!children.empty(), "Block::series: no children");
  Block b;
  b.name_ = std::move(name);
  b.children_ = std::move(children);
  b.required_ = 0;
  return b;
}

Block Block::parallel(std::string name, std::size_t required,
                      std::vector<Block> children) {
  require(!children.empty(), "Block::parallel: no children");
  require(required >= 1 && required <= children.size(),
          "Block::parallel: required outside [1, n]");
  Block b;
  b.name_ = std::move(name);
  b.children_ = std::move(children);
  b.required_ = required;
  return b;
}

double Block::availability(bool include_maintenance) const {
  if (is_leaf()) {
    return include_maintenance ? spec_.availability_with_maintenance()
                               : spec_.availability();
  }
  if (required_ == 0) {
    double a = 1.0;
    for (const auto& c : children_) a *= c.availability(include_maintenance);
    return a;
  }
  // k-of-n over possibly heterogeneous children: enumerate up/down subsets.
  // Redundancy groups are small (n <= ~4), so 2^n enumeration is fine.
  const std::size_t n = children_.size();
  require(n <= 20, "Block::parallel: too many children for exact evaluation");
  double total = 0.0;
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    std::size_t up = 0;
    double p = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double a = children_[i].availability(include_maintenance);
      if (mask & (std::size_t{1} << i)) {
        p *= a;
        ++up;
      } else {
        p *= 1.0 - a;
      }
    }
    if (up >= required_) total += p;
  }
  return total;
}

void Block::collect_leaves(std::vector<const Block*>& out) const {
  if (is_leaf()) {
    out.push_back(this);
    return;
  }
  for (const auto& c : children_) c.collect_leaves(out);
}

namespace {

ComponentSpec utility() { return {"utility", 2000.0, 2.0, 0.0}; }
ComponentSpec generator() { return {"generator", 300.0, 10.0, 0.0}; }
ComponentSpec ups_module() { return {"ups-module", 20000.0, 8.0, 0.0}; }
ComponentSpec crac_unit() { return {"crac", 15000.0, 12.0, 0.0}; }
ComponentSpec pdu() { return {"pdu", 100000.0, 6.0, 0.0}; }
ComponentSpec switchgear() { return {"switchgear", 150000.0, 24.0, 0.0}; }
ComponentSpec maintenance(double hours_per_year) {
  // A pure planned-outage pseudo-component: practically no unplanned
  // failures, only the scheduled shutdown window.
  return {"planned-maintenance", 1.0e9, 0.0, hours_per_year};
}

/// One complete power+cooling path with optional N+1 module redundancy.
Block make_path(const std::string& tag, bool redundant_modules) {
  std::vector<Block> chain;
  chain.push_back(Block::parallel(
      tag + ".feed", 1, {Block::component(utility()), Block::component(generator())}));
  if (redundant_modules) {
    chain.push_back(Block::parallel(
        tag + ".ups", 1,
        {Block::component(ups_module()), Block::component(ups_module())}));
    chain.push_back(Block::parallel(
        tag + ".cooling", 1,
        {Block::component(crac_unit()), Block::component(crac_unit())}));
  } else {
    chain.push_back(Block::component(ups_module()));
    chain.push_back(Block::component(crac_unit()));
  }
  chain.push_back(Block::component(switchgear()));
  chain.push_back(Block::component(pdu()));
  return Block::series(tag, std::move(chain));
}

}  // namespace

Block make_tier_topology(int tier) {
  switch (tier) {
    case 1:
      // Single non-redundant path; annual shutdowns for maintenance.
      return Block::series(
          "tier1", {make_path("path", false), Block::component(maintenance(16.0))});
    case 2:
      // Single path with N+1 UPS/cooling modules; the path itself must still
      // be shut down to maintain, and there is more equipment to maintain —
      // which is why the Uptime numbers put tier II so close to tier I.
      return Block::series(
          "tier2", {make_path("path", true), Block::component(maintenance(20.5))});
    case 3:
      // Two paths, one active, concurrently maintainable (no planned
      // downtime); the single active-transfer switchboard remains in series.
      return Block::series(
          "tier3",
          {Block::parallel("paths", 1, {make_path("pathA", true), make_path("pathB", true)}),
           Block::component({"transfer-switch", 50000.0, 8.5, 0.0})});
    case 4:
      // Two active paths, fault tolerant; residual common-cause exposure.
      return Block::series(
          "tier4",
          {Block::parallel("paths", 1, {make_path("pathA", true), make_path("pathB", true)}),
           Block::component({"common-cause", 200000.0, 9.0, 0.0})});
    default:
      require(false, "make_tier_topology: tier must be 1..4");
      return Block::component(utility());  // unreachable
  }
}

double uptime_institute_reference(int tier) {
  switch (tier) {
    case 1:
      return 0.99671;
    case 2:
      return 0.99741;
    case 3:
      return 0.99982;
    case 4:
      return 0.99995;
    default:
      require(false, "uptime_institute_reference: tier must be 1..4");
      return 0.0;  // unreachable
  }
}

double downtime_hours_per_year(double availability) {
  require(availability >= 0.0 && availability <= 1.0,
          "downtime_hours_per_year: availability outside [0,1]");
  return (1.0 - availability) * kHoursPerYear;
}

}  // namespace epm::reliability
