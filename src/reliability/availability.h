// Availability modeling of data-center power/cooling paths (paper §2.1:
// "A tier-2 data center, providing 99.741% availability, is typical for
// hosting Internet services", citing the Uptime Institute tier white paper
// [6]).
//
// Components carry MTBF/MTTR; blocks compose in series (all required) or
// k-of-n parallel (redundancy). Analytic steady-state availability assumes
// independent failures; the Monte Carlo module cross-checks it and adds
// maintenance windows, which dominate the difference between tiers I/II
// (maintenance takes the single path down) and III/IV (concurrently
// maintainable).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace epm::reliability {

struct ComponentSpec {
  std::string name;
  double mtbf_h;  ///< mean time between failures, hours
  double mttr_h;  ///< mean time to repair, hours
  /// Scheduled maintenance: hours per year the component is deliberately
  /// taken out of service.
  double maintenance_h_per_year = 0.0;

  /// Steady-state availability from unplanned failures alone.
  double availability() const;
  /// Availability including planned maintenance downtime.
  double availability_with_maintenance() const;
};

/// A block in the reliability diagram: a leaf component or a k-of-n
/// composition of child blocks.
class Block {
 public:
  static Block component(ComponentSpec spec);
  /// All children required (series path).
  static Block series(std::string name, std::vector<Block> children);
  /// At least `required` of the children must be up (N+1 => required = n-1).
  static Block parallel(std::string name, std::size_t required,
                        std::vector<Block> children);

  const std::string& name() const { return name_; }
  bool is_leaf() const { return children_.empty(); }
  const std::vector<Block>& children() const { return children_; }
  std::size_t required() const { return required_; }
  const ComponentSpec& spec() const { return spec_; }

  /// Analytic steady-state availability (independent components).
  double availability(bool include_maintenance = false) const;

  /// All leaf components in the subtree (preorder), for the Monte Carlo.
  void collect_leaves(std::vector<const Block*>& out) const;

 private:
  Block() = default;

  std::string name_;
  ComponentSpec spec_{};
  std::vector<Block> children_;
  std::size_t required_ = 0;  // 0 => series (all)
};

/// Uptime-Institute-style topologies. Tier I: single path, no redundancy.
/// Tier II: single path with redundant (N+1) UPS/cooling modules. Tier III:
/// multiple paths, one active (concurrently maintainable). Tier IV: two
/// active paths, fault tolerant.
Block make_tier_topology(int tier);

/// Reference availabilities from the Uptime Institute white paper [6],
/// indexed by tier 1..4: 99.671, 99.741, 99.982, 99.995 (percent).
double uptime_institute_reference(int tier);

/// Converts availability to downtime hours per year.
double downtime_hours_per_year(double availability);

}  // namespace epm::reliability
