#include "sensing/invariants.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace epm::sensing {
namespace {

std::string describe(const InvariantViolation& violation) {
  std::ostringstream out;
  out << "[" << violation.name << "] t=" << violation.time_s << "s: "
      << violation.detail;
  return out.str();
}

}  // namespace

InvariantMonitor::InvariantMonitor(const InvariantMonitorConfig& config)
    : config_(config) {}

void InvariantMonitor::record(const std::string& name, double time_s,
                              const std::string& detail) {
  ++violation_count_;
  if (violations_.size() < config_.max_recorded) {
    violations_.push_back({name, time_s, detail});
  }
  if (config_.throw_on_violation) {
    throw std::logic_error("invariant violation " +
                           describe({name, time_s, detail}));
  }
}

void InvariantMonitor::check(const InvariantInputs& in) {
  ++checks_;
  const double t = in.time_s;
  auto fmt = [](double v) {
    std::ostringstream out;
    out << v;
    return out.str();
  };

  // Finiteness first: a NaN anywhere else would sail through comparisons.
  const bool scalars_finite =
      std::isfinite(in.it_power_w) && std::isfinite(in.mechanical_power_w) &&
      std::isfinite(in.utility_draw_w) && std::isfinite(in.pue) &&
      std::isfinite(in.max_zone_temp_c) && std::isfinite(in.state_of_charge);
  bool vectors_finite = true;
  for (const auto* vec :
       {&in.zone_temps_c, &in.arrival_rate_per_s, &in.dropped_rate_per_s}) {
    for (double v : *vec) {
      if (!std::isfinite(v)) vectors_finite = false;
    }
  }
  if (!scalars_finite || !vectors_finite) {
    record("finite-state", t, "non-finite value in facility state");
    return;  // nothing else is meaningful
  }

  if (in.it_power_w < 0.0 || in.mechanical_power_w < 0.0 ||
      in.utility_draw_w < 0.0) {
    record("non-negative-power", t,
           "it=" + fmt(in.it_power_w) + "W mech=" +
               fmt(in.mechanical_power_w) + "W utility=" +
               fmt(in.utility_draw_w) + "W");
  }

  // Power-tree conservation: the utility feed must cover every downstream
  // load; distribution only adds losses.
  const double load_w = in.it_power_w + in.mechanical_power_w;
  if (in.utility_draw_w + config_.power_epsilon_w < load_w) {
    record("energy-conservation", t,
           "utility " + fmt(in.utility_draw_w) + "W < it+mech " + fmt(load_w) +
               "W");
  }

  if (in.it_power_w > config_.power_epsilon_w && in.pue < 1.0) {
    record("pue-floor", t, "pue=" + fmt(in.pue));
  }

  const std::size_t services =
      std::min(in.arrival_rate_per_s.size(), in.dropped_rate_per_s.size());
  for (std::size_t s = 0; s < services; ++s) {
    const double offered = in.arrival_rate_per_s[s];
    const double dropped = in.dropped_rate_per_s[s];
    if (dropped < -1e-9 || dropped > offered + 1e-9) {
      record("served-within-offered", t,
             "service " + std::to_string(s) + ": dropped " + fmt(dropped) +
                 "/s of offered " + fmt(offered) + "/s");
    }
  }

  auto check_temp = [&](double temp_c, const std::string& where) {
    if (temp_c < config_.temp_lo_c || temp_c > config_.temp_hi_c) {
      record("temperature-bounds", t, where + " at " + fmt(temp_c) + "C");
    }
  };
  check_temp(in.max_zone_temp_c, "max zone");
  for (std::size_t z = 0; z < in.zone_temps_c.size(); ++z) {
    check_temp(in.zone_temps_c[z], "zone " + std::to_string(z));
  }

  if (in.state_of_charge >= 0.0 && in.state_of_charge > 1.0 + 1e-9) {
    record("soc-bounds", t, "soc=" + fmt(in.state_of_charge));
  }
}

void InvariantMonitor::check_scalar(const std::string& name, double value,
                                    double lo, double hi, double time_s) {
  ++checks_;
  std::ostringstream detail;
  detail << value << " outside [" << lo << ", " << hi << "]";
  if (!std::isfinite(value) || value < lo - 1e-9 || value > hi + 1e-9) {
    record(name, time_s, detail.str());
  }
}

void InvariantMonitor::check_request_flow(const RequestFlow& flow) {
  ++checks_;
  const double t = flow.time_s;
  auto fmt = [](double v) {
    std::ostringstream out;
    out << v;
    return out.str();
  };
  const double counts[] = {flow.offered, flow.served, flow.goodput,
                           flow.intents, flow.retries};
  for (double c : counts) {
    if (!std::isfinite(c) || c < -1e-9) {
      record("request-flow-counts", t, "non-finite or negative count " + fmt(c));
      return;
    }
  }
  if (flow.goodput > flow.served + 1e-9) {
    record("goodput-within-served", t,
           "goodput " + fmt(flow.goodput) + " > served " + fmt(flow.served));
  }
  if (flow.served > flow.offered + 1e-9) {
    record("served-within-offered", t,
           "served " + fmt(flow.served) + " > offered " + fmt(flow.offered));
  }
  if (std::abs(flow.offered - (flow.intents + flow.retries)) > 1e-6) {
    record("retry-amplification", t,
           "offered " + fmt(flow.offered) + " != intents " + fmt(flow.intents) +
               " + retries " + fmt(flow.retries));
  }
}

void InvariantMonitor::check_condition(const std::string& name, bool ok,
                                       const std::string& detail,
                                       double time_s) {
  ++checks_;
  if (!ok) record(name, time_s, detail);
}

std::string InvariantMonitor::report() const {
  std::ostringstream out;
  if (ok()) {
    out << "all invariants held over " << checks_ << " checks";
    return out.str();
  }
  out << violation_count_ << " invariant violation(s) over " << checks_
      << " checks:";
  for (const auto& violation : violations_) {
    out << "\n  " << describe(violation);
  }
  if (violation_count_ > violations_.size()) {
    out << "\n  ... and " << (violation_count_ - violations_.size()) << " more";
  }
  return out.str();
}

}  // namespace epm::sensing
