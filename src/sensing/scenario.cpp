#include "sensing/scenario.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/require.h"
#include "faults/injector.h"
#include "macro/coordinator.h"
#include "macro/facility.h"
#include "sensing/actuator_plane.h"
#include "sensing/estimator.h"
#include "sensing/sensor_plane.h"
#include "sim/simulator.h"

namespace epm::sensing {

DegradedScenarioOutcome run_degraded_scenario(
    const DegradedScenarioConfig& config, const faults::FaultPlan& plan) {
  require(config.servers_per_service > 0,
          "DegradedScenario: servers_per_service must be positive");
  require(config.horizon_s > 0.0, "DegradedScenario: horizon must be positive");
  require(config.period_s > 0.0, "DegradedScenario: period must be positive");
  require(config.base_demand_frac >= 0.0 && config.swing_frac >= 0.0 &&
              config.base_demand_frac + config.swing_frac <= 1.0,
          "DegradedScenario: demand wave must stay within fleet capacity");
  require(config.redundancy >= 1, "DegradedScenario: redundancy must be >= 1");

  macro::Facility facility(
      macro::make_reference_facility(config.servers_per_service));
  const std::size_t services = facility.service_count();
  const double epoch_s = facility.epoch_s();
  // Sensing targets are sensor domains, one per service plus the plant
  // domain — a fat-fingered plan beyond that must fail before arming.
  plan.validate_targets(services + 1, facility.room().crac_count());

  sim::Simulator sim;
  faults::FaultInjector injector(sim, plan);

  // Both arms share the same sensor hardware (redundancy, base noise) and
  // the same fault exposure; only the estimator and the retry policy differ.
  SensorPlaneConfig sensor_config;
  sensor_config.seed = config.seed ^ 0x5e11505ULL;
  sensor_config.redundancy = config.redundancy;
  sensor_config.base_noise_frac = config.base_noise_frac;
  sensor_config.fault_domains = static_cast<std::uint32_t>(services) + 1;
  SensorPlane sensors(sensor_config);
  injector.subscribe([&sensors](const faults::FaultEvent& event, bool onset,
                                double now_s) {
    return sensors.on_fault(event, onset, now_s);
  });

  ActuatorPlaneConfig actuator_config;
  actuator_config.seed = config.seed ^ 0xac70ULL;
  if (config.hardened) {
    actuator_config.max_attempts = 6;
    actuator_config.retry_backoff_s = 60.0;
    actuator_config.backoff_multiplier = 2.0;
    actuator_config.max_backoff_s = 480.0;
    actuator_config.command_timeout_s = 1500.0;
  } else {
    actuator_config.max_attempts = 1;  // fire-and-forget
  }
  ActuatorPlane actuators(actuator_config);
  injector.subscribe([&actuators](const faults::FaultEvent& event, bool onset,
                                  double now_s) {
    return actuators.on_fault(event, onset, now_s);
  });
  injector.arm();

  macro::MacroManagerConfig manager_config;
  if (config.hardened) {
    manager_config.estimator.validate = true;
    manager_config.estimator.use_median = true;
    manager_config.estimator.stuck_after = 3;
    // Doubles the safety margins after ten minutes of stale data, capped.
    manager_config.estimator.stale_margin_gain_per_s = 1.0 / 600.0;
    manager_config.estimator.max_margin_multiplier = 2.5;
  }
  macro::MacroResourceManager manager(facility, manager_config, &sensors,
                                      &actuators);

  InvariantMonitor monitor(config.invariants);
  facility.attach_invariant_monitor(&monitor);

  std::vector<double> capacity_rps(services, 0.0);
  for (std::size_t s = 0; s < services; ++s) {
    const auto& model = facility.service(s).power_model();
    const double per_server_rps =
        model.relative_capacity(0) /
        facility.request_model(s).config().mean_service_demand_s;
    capacity_rps[s] =
        static_cast<double>(facility.service(s).server_count()) * per_server_rps;
  }

  DegradedScenarioOutcome out;
  const double two_pi = 2.0 * 3.14159265358979323846;
  std::vector<double> demand(services, 0.0);
  const auto epochs =
      static_cast<std::size_t>(std::ceil(config.horizon_s / epoch_s));
  for (std::size_t e = 0; e < epochs; ++e) {
    const double t0 = static_cast<double>(e) * epoch_s;
    sim.run_until(t0);

    // Staggered sinusoidal demand per service: ramps stress the demand
    // predictors exactly where stuck/stale sensing hurts the most.
    for (std::size_t s = 0; s < services; ++s) {
      const double phase = static_cast<double>(s) * (two_pi / 6.0);
      demand[s] = capacity_rps[s] *
                  (config.base_demand_frac +
                   config.swing_frac * std::sin(two_pi * t0 / config.period_s +
                                                phase));
      demand[s] = std::max(0.0, demand[s]);
    }

    const auto step = manager.step(demand, config.outside_c);

    ++out.epochs;
    out.thermal_alarms += step.new_thermal_alarms;
    out.max_zone_temp_c = std::max(out.max_zone_temp_c, step.max_zone_temp_c);
    out.max_estimate_age_s =
        std::max(out.max_estimate_age_s, manager.max_estimate_age_s());
    for (std::size_t s = 0; s < services; ++s) {
      const double dropped = step.services[s].dropped_rate_per_s;
      out.offered_requests += demand[s] * epoch_s;
      out.dropped_requests += dropped * epoch_s;
      out.served_requests += std::max(0.0, demand[s] - dropped) * epoch_s;
      if (step.services[s].sla_violated) ++out.sla_violation_epochs;
    }
  }
  // Deliver clears scheduled past the horizon so conservation holds.
  sim.run_all();

  out.it_energy_kwh = facility.total_it_energy_j() / 3.6e6;
  out.mechanical_energy_kwh = facility.total_mechanical_energy_j() / 3.6e6;
  out.sensor_readings = sensors.readings();
  out.sensor_dropped = sensors.dropped_readings();
  out.sensor_stuck = sensors.stuck_readings();
  out.sensor_noisy = sensors.noisy_readings();
  out.estimator_fallbacks = manager.estimator().fallbacks();
  out.commands_issued = actuators.issued();
  out.commands_acked = actuators.acked();
  out.commands_failed = actuators.failed();
  out.command_retries = actuators.retries();
  out.faults_injected = injector.plan().size();
  out.faults_conserved = injector.conserved();
  out.invariant_violations = monitor.violation_count();
  out.invariants_ok = monitor.ok();
  out.invariant_report = monitor.report();
  return out;
}

faults::FaultPlan make_sensing_fault_plan(double intensity, double horizon_s,
                                          std::uint64_t seed,
                                          std::size_t service_count) {
  require(intensity >= 0.0, "SensingPlan: intensity must be >= 0");
  require(horizon_s > 0.0, "SensingPlan: horizon must be positive");
  require(service_count > 0, "SensingPlan: need at least one service");
  if (intensity <= 0.0) return {};

  // Scripted core, present at every positive intensity so the sweep always
  // exercises both failure planes (times assume the default 4 h horizon /
  // 2 h demand period of DegradedScenarioConfig):
  //  - a stuck-at window on domain 0's sensors over the first demand ramp:
  //    the controller keeps seeing mid-ramp demand while real demand climbs
  //    to the peak, and
  //  - a cooling-network actuation outage (kActuatorFail, domain 1) across
  //    the trough-to-peak heat climb: fleet-size commands keep landing, so
  //    the heat arrives, while CRAC supply commands silently fail — only
  //    retry/backoff restores cooling before the hot zone crosses its alarm.
  std::vector<faults::FaultEvent> events;
  events.push_back({faults::FaultType::kSensorStuck, 600.0,
                    std::min(1800.0, 0.2 * horizon_s), 0, 1.0});
  events.push_back({faults::FaultType::kActuatorFail,
                    std::min(5700.0, 0.5 * horizon_s),
                    std::min(3600.0, 0.25 * horizon_s), 1,
                    std::min(0.97, 0.9 + 0.05 * intensity)});

  // Intensity-scaled sampled faults across every sensing domain (service
  // domains plus the plant domain at index service_count).
  faults::FaultPlanConfig sampled;
  sampled.horizon_s = horizon_s;
  sampled.seed = seed;
  const std::size_t domains = service_count + 1;
  auto& drop = sampled.rate(faults::FaultType::kSensorDropout);
  drop.rate_per_day = 24.0 * intensity;
  drop.mean_duration_s = 240.0;
  drop.min_duration_s = 60.0;
  drop.target_count = domains;
  auto& stuck = sampled.rate(faults::FaultType::kSensorStuck);
  stuck.rate_per_day = 12.0 * intensity;
  stuck.mean_duration_s = 480.0;
  stuck.min_duration_s = 120.0;
  stuck.target_count = domains;
  auto& noise = sampled.rate(faults::FaultType::kSensorNoise);
  noise.rate_per_day = 18.0 * intensity;
  noise.mean_duration_s = 600.0;
  noise.min_duration_s = 120.0;
  noise.severity_lo = 0.05;
  noise.severity_hi = 0.10 + 0.15 * intensity;
  noise.target_count = domains;
  auto& act = sampled.rate(faults::FaultType::kActuatorFail);
  act.rate_per_day = 8.0 * intensity;
  act.mean_duration_s = 600.0;
  act.min_duration_s = 120.0;
  act.severity_lo = 0.3;
  act.severity_hi = std::min(0.9, 0.5 + 0.3 * intensity);
  act.target_count = kActuationDomains;

  return faults::FaultPlan::scripted(std::move(events))
      .merged_with(faults::FaultPlan::sampled(sampled));
}

}  // namespace epm::sensing
