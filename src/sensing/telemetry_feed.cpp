#include "sensing/telemetry_feed.h"

#include <algorithm>

namespace epm::sensing {

bool TelemetryFeed::publish(telemetry::CounterKey key,
                            const std::vector<SensorReading>& readings,
                            double now_s) {
  if (readings.empty() || !readings.front().valid) {
    store_->record_dropout(1);
    return false;
  }
  store_->append(key, now_s, readings.front().value, readings.front().degraded);
  return true;
}

double TelemetryFeed::recent_mean(telemetry::CounterKey key, double now_s,
                                  double window_s) const {
  if (!store_->contains(key)) return 0.0;
  const double t0 = std::max(0.0, now_s - window_s);
  const telemetry::Aggregate agg = store_->range(key, t0, now_s);
  return agg.mean();
}

}  // namespace epm::sensing
