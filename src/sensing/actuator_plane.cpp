#include "sensing/actuator_plane.h"

#include <algorithm>
#include <stdexcept>

#include "core/rng.h"

namespace epm::sensing {
namespace {

/// Uniform [0, 1) draw that is a pure function of (seed, id, attempt, salt):
/// attempt outcomes and jitter never depend on how many other commands ran.
double hashed_uniform(std::uint64_t seed, std::uint64_t id,
                      std::uint64_t attempt, std::uint64_t salt) {
  SplitMix64 mixer(seed ^ (id * 0x9e3779b97f4a7c15ULL) ^
                   (attempt * 0xbf58476d1ce4e5b9ULL) ^ salt);
  return static_cast<double>(mixer.next() >> 11) * 0x1.0p-53;
}

}  // namespace

std::string to_string(CommandKind kind) {
  switch (kind) {
    case CommandKind::kFleetSize:
      return "fleet-size";
    case CommandKind::kPstate:
      return "pstate";
    case CommandKind::kCracSupply:
      return "crac-supply";
    case CommandKind::kCracReturnSetpoint:
      return "crac-setpoint";
    case CommandKind::kPowerCap:
      return "power-cap";
    case CommandKind::kZoneShare:
      return "zone-share";
    case CommandKind::kConsolidation:
      return "consolidation";
  }
  return "unknown";
}

ActuatorPlane::ActuatorPlane(const ActuatorPlaneConfig& config)
    : config_(config) {
  if (config_.max_attempts == 0) {
    throw std::invalid_argument("ActuatorPlane: max_attempts must be >= 1");
  }
  if (!(config_.retry_backoff_s > 0.0) || !(config_.backoff_multiplier >= 1.0)) {
    throw std::invalid_argument("ActuatorPlane: invalid backoff parameters");
  }
}

std::size_t actuation_domain(CommandKind kind) {
  switch (kind) {
    case CommandKind::kFleetSize:
    case CommandKind::kPstate:
    case CommandKind::kPowerCap:
    case CommandKind::kConsolidation:
      return 0;  // compute-management network
    case CommandKind::kCracSupply:
    case CommandKind::kCracReturnSetpoint:
    case CommandKind::kZoneShare:
      return 1;  // cooling/BMS network
  }
  return 0;
}

double ActuatorPlane::failure_probability(CommandKind kind) const {
  double total = 0.0;
  for (double severity : fail_severity_[actuation_domain(kind)]) {
    total += severity;
  }
  return std::clamp(total, 0.0, 1.0);
}

void ActuatorPlane::log(double now_s, const std::string& text) {
  if (logger_) {
    logger_(now_s, text);
  }
}

void ActuatorPlane::schedule_retry(PendingCommand& pending, double now_s) {
  double backoff = config_.retry_backoff_s;
  for (std::size_t a = 1; a < pending.attempts; ++a) {
    backoff *= config_.backoff_multiplier;
  }
  backoff = std::min(backoff, config_.max_backoff_s);
  // Deterministic jitter in [0.75, 1.25) de-synchronizes retries without
  // breaking bit-reproducibility.
  const double jitter =
      0.75 + 0.5 * hashed_uniform(config_.seed, pending.id, pending.attempts,
                                  0x6a77ULL);
  pending.next_attempt_s = now_s + backoff * jitter;
  ++retries_;
  log(now_s, "retry " + to_string(pending.command.kind) + ":" +
                 std::to_string(pending.command.target) + " attempt " +
                 std::to_string(pending.attempts) + " backoff " +
                 std::to_string(backoff * jitter) + "s");
}

bool ActuatorPlane::attempt(PendingCommand& pending, double now_s) {
  ++pending.attempts;
  const double p = failure_probability(pending.command.kind);
  const bool fault_failed =
      p > 0.0 &&
      hashed_uniform(config_.seed, pending.id, pending.attempts, 0xfa11ULL) < p;
  bool applied = false;
  if (!fault_failed) {
    applied = applier_ ? applier_(pending.command) : true;
  }
  if (applied) {
    ++acked_;
    return true;
  }
  if (pending.attempts >= config_.max_attempts) {
    ++failed_;
    log(now_s, "failed " + to_string(pending.command.kind) + ":" +
                   std::to_string(pending.command.target) + " after " +
                   std::to_string(pending.attempts) + " attempts");
    return true;  // leaves the queue, as failed
  }
  schedule_retry(pending, now_s);
  return false;
}

std::uint64_t ActuatorPlane::issue(const ActuatorCommand& command,
                                   double now_s) {
  // A fresh command for the same actuator supersedes any pending retry so a
  // stale value can never be applied over a newer one.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->command.kind == command.kind &&
        it->command.target == command.target) {
      ++superseded_;
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }

  PendingCommand pending;
  pending.command = command;
  pending.id = next_id_++;
  pending.issued_s = now_s;
  ++issued_;
  if (!attempt(pending, now_s)) {
    pending_.push_back(pending);
  }
  return pending.id;
}

std::uint64_t ActuatorPlane::issue_fenced(const ActuatorCommand& command,
                                          double now_s, std::uint64_t token,
                                          std::uint64_t uid) {
  if (fencing_ != nullptr) {
    const FencingVerdict verdict = fencing_->admit(token, uid);
    if (verdict != FencingVerdict::kApplied) {
      ++fencing_rejections_;
      log(now_s,
          std::string(verdict == FencingVerdict::kStaleToken
                          ? "fenced stale "
                          : "fenced duplicate ") +
              to_string(command.kind) + ":" + std::to_string(command.target) +
              " token " + std::to_string(token) + " uid " +
              std::to_string(uid));
      return 0;
    }
  }
  return issue(command, now_s);
}

void ActuatorPlane::tick(double now_s) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (now_s - it->issued_s >= config_.command_timeout_s) {
      ++failed_;
      log(now_s, "timeout " + to_string(it->command.kind) + ":" +
                     std::to_string(it->command.target) + " after " +
                     std::to_string(it->attempts) + " attempts");
      it = pending_.erase(it);
      continue;
    }
    if (now_s >= it->next_attempt_s && attempt(*it, now_s)) {
      it = pending_.erase(it);
      continue;
    }
    ++it;
  }
}

bool ActuatorPlane::on_fault(const faults::FaultEvent& event, bool onset,
                             double /*now_s*/) {
  if (event.type != faults::FaultType::kActuatorFail) {
    return false;
  }
  auto& domain = fail_severity_[event.target % kActuationDomains];
  if (onset) {
    domain.push_back(event.severity);
  } else {
    for (auto it = domain.begin(); it != domain.end(); ++it) {
      if (*it == event.severity) {
        domain.erase(it);
        break;
      }
    }
  }
  return true;
}

namespace {
constexpr std::uint32_t kActuatorMagic = 0x74756361;  // "acut"
constexpr std::uint32_t kActuatorVersion = 1;

void write_f64_vec(sim::SnapshotWriter& w, const std::vector<double>& v) {
  w.write_u64(v.size());
  for (double x : v) w.write_f64(x);
}

std::vector<double> read_f64_vec(sim::SnapshotReader& r) {
  std::vector<double> v(r.read_u64());
  for (double& x : v) x = r.read_f64();
  return v;
}
}  // namespace

void ActuatorPlane::save(sim::SnapshotWriter& w) const {
  w.begin_section(kActuatorMagic, kActuatorVersion);
  w.write_u64(next_id_);
  w.write_u64(issued_);
  w.write_u64(acked_);
  w.write_u64(failed_);
  w.write_u64(retries_);
  w.write_u64(superseded_);
  w.write_u64(fencing_rejections_);
  for (const auto& domain : fail_severity_) write_f64_vec(w, domain);
  w.write_u64(pending_.size());
  for (const PendingCommand& p : pending_) {
    w.write_u32(static_cast<std::uint32_t>(p.command.kind));
    w.write_u64(p.command.target);
    w.write_f64(p.command.value);
    write_f64_vec(w, p.command.values);
    w.write_u64(p.id);
    w.write_f64(p.issued_s);
    w.write_f64(p.next_attempt_s);
    w.write_u64(p.attempts);
  }
}

void ActuatorPlane::restore(sim::SnapshotReader& r) {
  r.expect_section(kActuatorMagic, kActuatorVersion);
  next_id_ = r.read_u64();
  issued_ = r.read_u64();
  acked_ = r.read_u64();
  failed_ = r.read_u64();
  retries_ = r.read_u64();
  superseded_ = r.read_u64();
  fencing_rejections_ = r.read_u64();
  for (auto& domain : fail_severity_) domain = read_f64_vec(r);
  pending_.assign(r.read_u64(), PendingCommand{});
  for (PendingCommand& p : pending_) {
    p.command.kind = static_cast<CommandKind>(r.read_u32());
    p.command.target = static_cast<std::size_t>(r.read_u64());
    p.command.value = r.read_f64();
    p.command.values = read_f64_vec(r);
    p.id = r.read_u64();
    p.issued_s = r.read_f64();
    p.next_attempt_s = r.read_f64();
    p.attempts = static_cast<std::size_t>(r.read_u64());
  }
}

}  // namespace epm::sensing
