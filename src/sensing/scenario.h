// Degraded-observability comparison harness.
//
// Drives the macro-resource manager through a sinusoidal demand wave while
// a FaultPlan degrades its sensing (dropout / stuck-at / noise) and its
// actuation (failed commands). Two controller builds share identical
// hardware, demand, and faults:
//
//   naive    — raw first-sensor readings, no validation, fire-and-forget
//              actuation (one attempt per command);
//   hardened — median voting over redundant sensors, range/rate/stuck-at
//              gates with last-known-good fallback and staleness-widened
//              margins, and actuation retried under bounded exponential
//              backoff.
//
// bench/exp_degraded_sensing sweeps fault intensity over both arms and
// gates on the hardened controller weakly dominating the naive one on SLA
// violations and thermal alarms; `epmctl sensing` prints the same
// comparison. Everything is seeded and serial, so one config + plan maps to
// exactly one outcome at any sweep thread count.
#pragma once

#include <cstdint>
#include <string>

#include "faults/fault_plan.h"
#include "sensing/invariants.h"

namespace epm::sensing {

struct DegradedScenarioConfig {
  std::size_t servers_per_service = 64;
  double horizon_s = 4.0 * 3600.0;
  double outside_c = 26.0;
  std::uint64_t seed = 2009;
  /// false = naive arm (raw readings, single-attempt actuation).
  bool hardened = true;
  /// Demand wave per service, as fractions of fleet capacity.
  double base_demand_frac = 0.55;
  double swing_frac = 0.35;
  double period_s = 2.0 * 3600.0;
  /// Sensor hardware shared by both arms. Base noise defaults to zero so
  /// the arms stay bit-identical until a fault actually bites; kSensorNoise
  /// faults still inject noise windows where median voting earns its keep.
  std::uint32_t redundancy = 3;
  double base_noise_frac = 0.0;
  InvariantMonitorConfig invariants;
};

struct DegradedScenarioOutcome {
  std::size_t epochs = 0;
  std::size_t sla_violation_epochs = 0;
  std::size_t thermal_alarms = 0;
  double max_zone_temp_c = 0.0;
  double offered_requests = 0.0;
  double served_requests = 0.0;
  double dropped_requests = 0.0;
  double it_energy_kwh = 0.0;
  double mechanical_energy_kwh = 0.0;
  double max_estimate_age_s = 0.0;
  std::uint64_t sensor_readings = 0;
  std::uint64_t sensor_dropped = 0;
  std::uint64_t sensor_stuck = 0;
  std::uint64_t sensor_noisy = 0;
  std::uint64_t estimator_fallbacks = 0;
  std::uint64_t commands_issued = 0;
  std::uint64_t commands_acked = 0;
  std::uint64_t commands_failed = 0;
  std::uint64_t command_retries = 0;
  std::size_t faults_injected = 0;
  bool faults_conserved = false;
  std::size_t invariant_violations = 0;
  bool invariants_ok = true;
  std::string invariant_report;

  double served_fraction() const {
    return offered_requests > 0.0 ? served_requests / offered_requests : 1.0;
  }
};

DegradedScenarioOutcome run_degraded_scenario(
    const DegradedScenarioConfig& config, const faults::FaultPlan& plan);

/// Sensing/actuation fault profile for the degraded-observability sweep: a
/// scripted stuck-at window over the first demand ramp and a high-severity
/// actuator-failure window over the second, plus intensity-scaled sampled
/// dropout / stuck / noise / actuator faults across every sensing domain
/// (service domains plus the plant domain at index `service_count`).
/// Intensity 0 yields an empty plan.
faults::FaultPlan make_sensing_fault_plan(double intensity, double horizon_s,
                                          std::uint64_t seed,
                                          std::size_t service_count);

}  // namespace epm::sensing
