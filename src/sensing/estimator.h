// ValidatedEstimator: from fallible readings to a defensible estimate.
//
// Sits between the SensorPlane and any controller. In raw mode (the
// default) it passes the first reading through untouched — bit-exact, so
// wiring it under an existing controller changes nothing until validation
// is enabled. In validated mode it median-votes across redundant sensors,
// rejects readings outside the channel's plausibility envelope (range and
// rate-of-change), detects stuck-at sensors (bit-identical medians repeated
// `stuck_after` times), smooths accepted values with an EWMA, and falls back
// to the last known-good estimate when nothing passes — tracking the age of
// that estimate so the controller can widen its safety margins
// proportionally (margin_multiplier()).
//
// Exactness contract relied on by the golden figure tests: with the default
// config (validate=false, ewma_alpha=1, stale_margin_gain_per_s=0) and an
// exact SensorPlane, update() returns the truth bitwise and
// margin_multiplier() returns exactly 1.0.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sensing/channels.h"
#include "sensing/sensor_plane.h"

namespace epm::sensing {

struct EstimatorConfig {
  /// false = raw passthrough of the first reading (hold-last on dropout).
  bool validate = false;
  /// Median-vote across redundant readings (validated mode only).
  bool use_median = true;
  /// EWMA smoothing of accepted values; >= 1 disables (exact passthrough).
  double ewma_alpha = 1.0;
  /// Consecutive bit-identical medians before the channel is declared
  /// stuck; 0 disables. Needs base sensor noise > 0 to avoid false
  /// positives on legitimately constant truth.
  std::size_t stuck_after = 0;
  /// Consecutive rate-gate rejections before the estimator re-locks onto
  /// the new level (a genuine step change looks like a rate violation).
  std::size_t rate_relock_after = 3;
  /// Margin multiplier growth per second of estimate age; 0 disables.
  double stale_margin_gain_per_s = 0.0;
  double max_margin_multiplier = 3.0;
};

struct Estimate {
  double value = 0.0;
  /// Seconds since the last accepted reading (0 when this update accepted).
  double age_s = 0.0;
  /// True when this update fell back on the last known-good value.
  bool degraded = false;
  /// False until the channel has ever produced an accepted value.
  bool has_value = false;
};

class ValidatedEstimator {
 public:
  explicit ValidatedEstimator(const EstimatorConfig& config = {});

  /// Folds one sampling round on `channel` into the channel's estimate.
  Estimate update(ChannelKey channel, const std::vector<SensorReading>& readings,
                  double now_s);

  /// Safety-margin widening for an estimate of the given age: exactly 1.0
  /// at age 0, growing by stale_margin_gain_per_s per second, capped.
  double margin_multiplier(double age_s) const;

  std::uint64_t accepted() const { return accepted_; }
  std::uint64_t fallbacks() const { return fallbacks_; }
  std::uint64_t rejected_range() const { return rejected_range_; }
  std::uint64_t rejected_rate() const { return rejected_rate_; }
  std::uint64_t rejected_stuck() const { return rejected_stuck_; }
  const EstimatorConfig& config() const { return config_; }

 private:
  struct ChannelEstimate {
    bool has_value = false;
    double value = 0.0;        ///< current (possibly smoothed) estimate
    double last_raw = 0.0;     ///< last accepted pre-EWMA candidate
    double last_good_time = 0.0;
    double last_candidate = 0.0;
    std::size_t repeat_count = 0;
    std::size_t rate_rejects = 0;
  };

  Estimate fallback(ChannelEstimate& ch, double now_s);

  EstimatorConfig config_;
  std::map<ChannelKey, ChannelEstimate> channels_;
  std::uint64_t accepted_ = 0;
  std::uint64_t fallbacks_ = 0;
  std::uint64_t rejected_range_ = 0;
  std::uint64_t rejected_rate_ = 0;
  std::uint64_t rejected_stuck_ = 0;
};

}  // namespace epm::sensing
