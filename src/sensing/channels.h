// Typed sensing channels shared by the SensorPlane and the estimator.
//
// Every ground-truth quantity a controller may observe is addressed by a
// (kind, index) channel key: per-service arrival rate and service demand,
// per-zone temperature, and facility IT power. Channels map onto fault
// domains so that one sensor fault (dropout, stuck-at, noise) degrades a
// coherent slice of the sensing plane: service channels share the service's
// domain, while plant-side channels (zone temperature, IT power) share a
// dedicated final domain. The paper (§5.3) stresses that this plane is huge
// and unreliable; the estimator's plausibility bounds below are what stands
// between a wild reading and a wild actuation.
#pragma once

#include <cstdint>

namespace epm::sensing {

enum class ChannelKind : std::uint32_t {
  kServiceArrival = 0,  ///< per-service offered arrival rate (req/s)
  kServiceDemand,       ///< per-service mean service demand (s/req)
  kZoneTemp,            ///< per-zone inlet temperature (degC)
  kItPower,             ///< facility IT power draw (W)
  kShedRate,            ///< per-service admission-stack shed rate (req/s)
  kRetryRate,           ///< per-service re-offered (retry) rate (req/s)
};

/// Packed (kind, index) channel address.
using ChannelKey = std::uint64_t;

constexpr ChannelKey make_channel(ChannelKind kind, std::uint32_t index) {
  return (static_cast<std::uint64_t>(kind) << 32) | index;
}

constexpr ChannelKind kind_of(ChannelKey key) {
  return static_cast<ChannelKind>(key >> 32);
}

constexpr std::uint32_t index_of(ChannelKey key) {
  return static_cast<std::uint32_t>(key & 0xffffffffULL);
}

/// Fault-domain mapping: service channels live in the domain of their
/// service index; plant channels (zone temperature, IT power) share the
/// last domain. Fault targets are reduced modulo `fault_domains`.
constexpr std::uint32_t domain_of(ChannelKey key, std::uint32_t fault_domains) {
  if (fault_domains == 0) {
    return 0;
  }
  const ChannelKind kind = kind_of(key);
  if (kind == ChannelKind::kZoneTemp || kind == ChannelKind::kItPower) {
    return fault_domains - 1;
  }
  return index_of(key) % fault_domains;
}

/// Static plausibility envelope for a channel kind, used by the validated
/// estimator's range and rate-of-change gates. Deliberately generous: the
/// gates exist to reject physically impossible readings, not to second-guess
/// legitimate dynamics like flash crowds.
struct ChannelBounds {
  double lo = 0.0;
  double hi = 1e30;
  double max_rate_per_s = 1e30;  ///< |dv/dt| ceiling between accepted samples
  /// Whether bit-identical repeated readings indicate a stuck sensor. Only
  /// meaningful for channels whose truth genuinely varies; a quasi-constant
  /// truth (per-request service demand) legitimately repeats bit-for-bit on
  /// a noiseless sensor and must not be declared stuck.
  bool stuck_detect = true;
};

constexpr ChannelBounds default_bounds(ChannelKind kind) {
  switch (kind) {
    case ChannelKind::kServiceArrival:
      return {0.0, 1e7, 1e4, true};  // req/s; surges ramp fast but not infinitely
    case ChannelKind::kServiceDemand:
      return {0.0, 100.0, 10.0, false};  // s/req; legitimately constant
    case ChannelKind::kZoneTemp:
      return {-20.0, 90.0, 2.0, true};  // degC; thermal mass limits slew
    case ChannelKind::kItPower:
      return {0.0, 1e9, 1e7, true};  // W
    case ChannelKind::kShedRate:
      // req/s; legitimately pinned at 0 (or a plateau) outside overload.
      return {0.0, 1e7, 1e4, false};
    case ChannelKind::kRetryRate:
      return {0.0, 1e7, 1e4, false};  // req/s; zero whenever clients are happy
  }
  return {};
}

}  // namespace epm::sensing
