// TelemetryFeed: the bridge between the sensing plane and the telemetry
// store. Fault engines used to hand-roll the same four lines at every
// publication point (invalid reading -> dropout accounting, valid reading ->
// append with the degraded flag); the feed owns that idiom, and exposes the
// store's band-query API as read-backs so controllers can consume their own
// counters (e.g. a trailing served-rate mean) through the same plane they
// publish on.
#pragma once

#include <vector>

#include "sensing/sensor_plane.h"
#include "telemetry/store.h"

namespace epm::sensing {

class TelemetryFeed {
 public:
  explicit TelemetryFeed(telemetry::TelemetryStore& store) : store_(&store) {}

  /// Publishes the primary (first) reading under `key`. An invalid primary
  /// — the channel's dropout fault is active — is accounted as a dropout
  /// and nothing is stored; a degraded primary is stored and flagged.
  /// Returns true when a sample was stored.
  bool publish(telemetry::CounterKey key, const std::vector<SensorReading>& readings,
               double now_s);

  /// Trailing-window mean of a published counter over [now - window, now),
  /// answered from the store's banding pyramid (finest level covering the
  /// window). Returns 0.0 while the counter has no samples in the window.
  double recent_mean(telemetry::CounterKey key, double now_s, double window_s) const;

  telemetry::TelemetryStore& store() { return *store_; }
  const telemetry::TelemetryStore& store() const { return *store_; }

 private:
  telemetry::TelemetryStore* store_;
};

}  // namespace epm::sensing
