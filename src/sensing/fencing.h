// Actuator-side fencing and the dead-man's switch.
//
// The control plane's safety argument has two independent halves, and this
// file is the actuator half — the one that must hold even when every
// controller is wrong:
//
//   * FencingLedger — every actuation carries the issuing leader's lease
//     token and the command's immutable uid. The ledger accepts a command
//     only if its token is >= the highest token it has ever witnessed
//     (tokens only ratchet up — monotone fencing), and only if the uid has
//     never been applied before (idempotent replay). A deposed leader's
//     token is by construction below the new leader's, so a split-brain
//     survivor can be ignored forever without knowing *why* it is stale.
//     With enforcement disabled (the naive arm) the ledger still watches and
//     counts the double-actuations that would have happened.
//
//   * DeadMansSwitch — liveness watchdog for the control plane itself. The
//     leader's heartbeats feed it; if no (non-stale) heartbeat lands within
//     the TTL the switch trips, and the actuator endpoint autonomously
//     reverts to safe defaults: power caps released, CRAC to the safe
//     setpoint, all servers on, consolidation paused. A fleet whose
//     controllers are all dead degrades to an uncontrolled-but-safe plant
//     instead of freezing in whatever dangerous half-transition the last
//     leader left it in.
//
// Both are plain data with explicit time arguments and serialize through
// sim/snapshot.h.
#pragma once

#include <cstdint>
#include <set>

#include "sim/snapshot.h"

namespace epm::sensing {

enum class FencingVerdict : std::uint8_t {
  kApplied = 0,   ///< fresh token, fresh uid — execute the command
  kStaleToken,    ///< deposed leader (token below the watermark) — rejected
  kDuplicate,     ///< uid already applied (journal replay) — suppressed
};

class FencingLedger {
 public:
  /// `enforce` = false audits without rejecting (the naive arm): every
  /// command is applied, and what *would* have been stopped is counted as
  /// double_actuations / stale_applied.
  explicit FencingLedger(bool enforce = true) : enforce_(enforce) {}

  /// Admits or rejects one actuation. Monotone: the token watermark only
  /// ever rises.
  FencingVerdict admit(std::uint64_t token, std::uint64_t uid);

  bool enforced() const { return enforce_; }
  std::uint64_t max_token() const { return max_token_; }
  std::uint64_t applied() const { return applied_; }
  std::uint64_t rejected_stale() const { return rejected_stale_; }
  std::uint64_t suppressed_duplicates() const { return suppressed_duplicates_; }
  /// Commands executed twice for the same uid — MUST stay 0 when enforcing;
  /// nonzero only when an unenforced ledger let a replay through.
  std::uint64_t double_actuations() const { return double_actuations_; }
  /// Stale-token commands executed because enforcement was off.
  std::uint64_t stale_applied() const { return stale_applied_; }

  void save(sim::SnapshotWriter& w) const;
  void restore(sim::SnapshotReader& r);

 private:
  bool enforce_;
  std::uint64_t max_token_ = 0;
  /// Ordered so serialization is canonical.
  std::set<std::uint64_t> applied_uids_;
  std::uint64_t applied_ = 0;
  std::uint64_t rejected_stale_ = 0;
  std::uint64_t suppressed_duplicates_ = 0;
  std::uint64_t double_actuations_ = 0;
  std::uint64_t stale_applied_ = 0;
};

class DeadMansSwitch {
 public:
  /// `ttl_s` <= 0 disables the switch (the naive arm).
  explicit DeadMansSwitch(double ttl_s) : ttl_s_(ttl_s) {}

  /// A live (non-stale) leader heartbeat landed; re-arms the switch.
  void feed(double now_s) {
    last_feed_s_ = now_s;
    tripped_ = false;
  }

  /// Polls the watchdog. Returns true exactly once per starvation episode —
  /// the edge on which the endpoint applies its safe state; re-feeding
  /// re-arms it.
  bool expired(double now_s);

  bool enabled() const { return ttl_s_ > 0.0; }
  bool tripped() const { return tripped_; }
  double last_feed_s() const { return last_feed_s_; }
  std::uint64_t trips() const { return trips_; }

  void save(sim::SnapshotWriter& w) const;
  void restore(sim::SnapshotReader& r);

 private:
  double ttl_s_;
  double last_feed_s_ = 0.0;
  bool tripped_ = false;
  std::uint64_t trips_ = 0;
};

}  // namespace epm::sensing
