// ActuatorPlane: every control command is a fallible, retryable operation.
//
// Real actuators — server on/off, P-state changes, CRAC setpoints, power
// caps — do not apply instantly or reliably (§5.3). The ActuatorPlane sits
// between a controller and the facility: commands are issued with a
// lifecycle (pending -> acked | failed), fail with the probability given by
// active kActuatorFail fault severities, and retry with bounded exponential
// backoff under deterministic SplitMix64 jitter. A newer command for the
// same (kind, target) supersedes any pending older one, so retries never
// apply stale values over fresh ones.
//
// Determinism: the failure draw and the backoff jitter for (command id,
// attempt) are pure functions of the plane seed, so outcomes are
// bit-identical regardless of sweep threading. With no active kActuatorFail
// fault and an infallible applier, issue() applies synchronously and the
// plane is exact — the default path costs nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "faults/types.h"
#include "sensing/fencing.h"
#include "sim/snapshot.h"

namespace epm::sensing {

enum class CommandKind : std::uint32_t {
  kFleetSize = 0,       ///< value = committed server count for service target
  kPstate,              ///< value = uniform P-state for service target
  kCracSupply,          ///< value = supply temperature for CRAC target
  kCracReturnSetpoint,  ///< value = return setpoint for CRAC target
  kPowerCap,            ///< value = capping P-state for service target
  kZoneShare,           ///< values = zone share vector for service target
  kConsolidation,       ///< value = 1 pause / 0 resume consolidation moves
};

std::string to_string(CommandKind kind);

/// Actuation fault domains: commands travel one of two control networks, and
/// a kActuatorFail event's target picks which one it takes down (target % 2).
/// Domain 0 is the compute-management plane (fleet size, P-states, power
/// caps); domain 1 is the cooling/BMS plane (CRAC supply and setpoints, zone
/// shares). A cooling-network fault therefore leaves fleet growth intact
/// while CRAC commands silently fail — the dangerous combination.
inline constexpr std::size_t kActuationDomains = 2;
std::size_t actuation_domain(CommandKind kind);

struct ActuatorCommand {
  CommandKind kind = CommandKind::kFleetSize;
  std::size_t target = 0;
  double value = 0.0;
  std::vector<double> values;  ///< used by kZoneShare
};

struct ActuatorPlaneConfig {
  std::uint64_t seed = 0xac7;
  /// Attempts per command (1 = naive fire-and-forget, no retry).
  std::size_t max_attempts = 1;
  double retry_backoff_s = 60.0;   ///< first retry delay
  double backoff_multiplier = 2.0;
  double max_backoff_s = 600.0;
  /// A command still pending this long after issue is abandoned as failed.
  double command_timeout_s = 1800.0;
};

class ActuatorPlane {
 public:
  /// Applier executes a command against the plant; returns false when the
  /// plant itself rejects it. Logger receives one line per retry/failure.
  using Applier = std::function<bool(const ActuatorCommand& command)>;
  using Logger = std::function<void(double now_s, const std::string& text)>;

  explicit ActuatorPlane(const ActuatorPlaneConfig& config);

  void set_applier(Applier applier) { applier_ = std::move(applier); }
  void set_logger(Logger logger) { logger_ = std::move(logger); }

  /// Issues a command, attempting it immediately; supersedes any pending
  /// command with the same (kind, target). Returns the command id.
  std::uint64_t issue(const ActuatorCommand& command, double now_s);

  /// Attaches a fencing ledger (non-owning; must outlive the plane). Only
  /// the fenced issue path consults it — the default issue() and therefore
  /// every pre-control-plane caller is untouched.
  void set_fencing(FencingLedger* ledger) { fencing_ = ledger; }

  /// Control-plane issue path: admits (token, uid) through the attached
  /// ledger first. A command from a deposed leader (stale token) or a
  /// journal replay already applied (duplicate uid) never reaches the
  /// actuator; returns 0 in that case, else behaves exactly like issue().
  /// Without an attached ledger this is plain issue().
  std::uint64_t issue_fenced(const ActuatorCommand& command, double now_s,
                             std::uint64_t token, std::uint64_t uid);

  /// Commands the fencing ledger refused (stale token + duplicate uid).
  std::uint64_t fencing_rejections() const { return fencing_rejections_; }

  /// Retries pending commands whose backoff has elapsed; abandons commands
  /// past their timeout. Call once per control epoch.
  void tick(double now_s);

  /// FaultInjector subscriber: tracks kActuatorFail onset/clear edges; the
  /// event's target % kActuationDomains picks the affected control network.
  bool on_fault(const faults::FaultEvent& event, bool onset, double now_s);

  /// Probability an attempt on `kind`'s control network fails right now
  /// (sum of the domain's active severities, clamped to [0, 1]).
  double failure_probability(CommandKind kind) const;

  std::size_t pending_count() const { return pending_.size(); }
  std::uint64_t issued() const { return issued_; }
  std::uint64_t acked() const { return acked_; }
  std::uint64_t failed() const { return failed_; }
  std::uint64_t retries() const { return retries_; }
  std::uint64_t superseded() const { return superseded_; }
  const ActuatorPlaneConfig& config() const { return config_; }

  /// Serializes pending commands, active fault severities, and counters (the
  /// attached fencing ledger serializes itself separately — it is shared
  /// state, not plane state).
  void save(sim::SnapshotWriter& w) const;
  void restore(sim::SnapshotReader& r);

 private:
  struct PendingCommand {
    ActuatorCommand command;
    std::uint64_t id = 0;
    double issued_s = 0.0;
    double next_attempt_s = 0.0;
    std::size_t attempts = 0;
  };

  /// One attempt; returns true when acked (command leaves the queue).
  bool attempt(PendingCommand& pending, double now_s);
  void schedule_retry(PendingCommand& pending, double now_s);
  void log(double now_s, const std::string& text);

  ActuatorPlaneConfig config_;
  Applier applier_;
  Logger logger_;
  FencingLedger* fencing_ = nullptr;  ///< non-owning; nullptr = unfenced
  std::vector<PendingCommand> pending_;
  /// Active kActuatorFail severities per actuation domain (kept individually
  /// so overlapping faults clear without floating-point residue).
  std::vector<double> fail_severity_[kActuationDomains];
  std::uint64_t next_id_ = 1;
  std::uint64_t issued_ = 0;
  std::uint64_t acked_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t superseded_ = 0;
  std::uint64_t fencing_rejections_ = 0;
};

}  // namespace epm::sensing
