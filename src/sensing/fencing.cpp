#include "sensing/fencing.h"

#include "core/require.h"

namespace epm::sensing {
namespace {

constexpr std::uint32_t kFencingMagic = 0x636e6566;  // "fenc"
constexpr std::uint32_t kFencingVersion = 1;
constexpr std::uint32_t kDeadmanMagic = 0x6e616d64;  // "dman"
constexpr std::uint32_t kDeadmanVersion = 1;

}  // namespace

FencingVerdict FencingLedger::admit(std::uint64_t token, std::uint64_t uid) {
  const bool stale = token < max_token_;
  const bool duplicate = applied_uids_.count(uid) != 0;
  if (enforce_) {
    if (stale) {
      ++rejected_stale_;
      return FencingVerdict::kStaleToken;
    }
    if (duplicate) {
      ++suppressed_duplicates_;
      return FencingVerdict::kDuplicate;
    }
  } else {
    // Audit-only: count the harm, then apply anyway.
    if (stale) ++stale_applied_;
    if (duplicate) ++double_actuations_;
  }
  if (token > max_token_) max_token_ = token;
  applied_uids_.insert(uid);
  ++applied_;
  return FencingVerdict::kApplied;
}

void FencingLedger::save(sim::SnapshotWriter& w) const {
  w.begin_section(kFencingMagic, kFencingVersion);
  w.write_u8(enforce_ ? 1 : 0);
  w.write_u64(max_token_);
  w.write_u64(applied_);
  w.write_u64(rejected_stale_);
  w.write_u64(suppressed_duplicates_);
  w.write_u64(double_actuations_);
  w.write_u64(stale_applied_);
  sim::TagPayload uids(applied_uids_.begin(), applied_uids_.end());
  w.write_payload(uids);
}

void FencingLedger::restore(sim::SnapshotReader& r) {
  r.expect_section(kFencingMagic, kFencingVersion);
  require((r.read_u8() != 0) == enforce_,
          "fencing snapshot enforcement mode does not match the config");
  max_token_ = r.read_u64();
  applied_ = r.read_u64();
  rejected_stale_ = r.read_u64();
  suppressed_duplicates_ = r.read_u64();
  double_actuations_ = r.read_u64();
  stale_applied_ = r.read_u64();
  const sim::TagPayload uids = r.read_payload();
  applied_uids_ = std::set<std::uint64_t>(uids.begin(), uids.end());
}

bool DeadMansSwitch::expired(double now_s) {
  if (!enabled() || tripped_) return false;
  if (now_s - last_feed_s_ < ttl_s_) return false;
  tripped_ = true;
  ++trips_;
  return true;
}

void DeadMansSwitch::save(sim::SnapshotWriter& w) const {
  w.begin_section(kDeadmanMagic, kDeadmanVersion);
  w.write_f64(ttl_s_);
  w.write_f64(last_feed_s_);
  w.write_u8(tripped_ ? 1 : 0);
  w.write_u64(trips_);
}

void DeadMansSwitch::restore(sim::SnapshotReader& r) {
  r.expect_section(kDeadmanMagic, kDeadmanVersion);
  require(r.read_f64() == ttl_s_,
          "dead-man snapshot TTL does not match the config");
  last_feed_s_ = r.read_f64();
  tripped_ = r.read_u8() != 0;
  trips_ = r.read_u64();
}

}  // namespace epm::sensing
