#include "sensing/estimator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace epm::sensing {
namespace {

/// Lower median of the valid readings: deterministic, bit-stable (never
/// averages two floats), and robust to a minority of wild sensors.
double median_of(std::vector<double>& values) {
  std::sort(values.begin(), values.end());
  return values[(values.size() - 1) / 2];
}

}  // namespace

ValidatedEstimator::ValidatedEstimator(const EstimatorConfig& config)
    : config_(config) {
  if (config_.ewma_alpha <= 0.0) {
    throw std::invalid_argument("ValidatedEstimator: ewma_alpha must be > 0");
  }
  if (config_.max_margin_multiplier < 1.0) {
    throw std::invalid_argument(
        "ValidatedEstimator: max_margin_multiplier must be >= 1");
  }
}

Estimate ValidatedEstimator::fallback(ChannelEstimate& ch, double now_s) {
  ++fallbacks_;
  Estimate est;
  est.value = ch.value;
  est.age_s = ch.has_value ? std::max(0.0, now_s - ch.last_good_time) : 0.0;
  est.degraded = true;
  est.has_value = ch.has_value;
  return est;
}

Estimate ValidatedEstimator::update(ChannelKey channel,
                                    const std::vector<SensorReading>& readings,
                                    double now_s) {
  ChannelEstimate& ch = channels_[channel];

  std::vector<double> valid;
  valid.reserve(readings.size());
  for (const auto& reading : readings) {
    if (reading.valid) {
      valid.push_back(reading.value);
    }
  }
  if (valid.empty()) {
    return fallback(ch, now_s);
  }

  double candidate;
  if (config_.validate && config_.use_median) {
    candidate = median_of(valid);
  } else {
    candidate = valid.front();
  }

  if (config_.validate) {
    const ChannelBounds bounds = default_bounds(kind_of(channel));
    if (!std::isfinite(candidate) || candidate < bounds.lo ||
        candidate > bounds.hi) {
      ++rejected_range_;
      return fallback(ch, now_s);
    }
    // Stuck-at: a varying truth never repeats bit-identically on a healthy
    // sensor; channels with legitimately constant truth opt out via bounds.
    if (config_.stuck_after > 0 && bounds.stuck_detect) {
      if (ch.repeat_count > 0 && candidate == ch.last_candidate) {
        ++ch.repeat_count;
      } else {
        ch.repeat_count = 1;
        ch.last_candidate = candidate;
      }
      if (ch.repeat_count >= config_.stuck_after) {
        ++rejected_stuck_;
        return fallback(ch, now_s);
      }
    }
    // Rate-of-change gate with re-lock: a persistent level shift is real
    // after rate_relock_after consecutive violations.
    if (ch.has_value) {
      const double dt = now_s - ch.last_good_time;
      const ChannelBounds kind_bounds = default_bounds(kind_of(channel));
      if (dt > 0.0 &&
          std::abs(candidate - ch.last_raw) > kind_bounds.max_rate_per_s * dt) {
        ++ch.rate_rejects;
        if (ch.rate_rejects < config_.rate_relock_after) {
          ++rejected_rate_;
          return fallback(ch, now_s);
        }
      }
    }
    ch.rate_rejects = 0;
  }

  // Accepted: smooth and commit.
  if (config_.ewma_alpha >= 1.0 || !ch.has_value) {
    ch.value = candidate;
  } else {
    ch.value += config_.ewma_alpha * (candidate - ch.value);
  }
  ch.last_raw = candidate;
  ch.last_good_time = now_s;
  ch.has_value = true;
  ++accepted_;

  Estimate est;
  est.value = ch.value;
  est.age_s = 0.0;
  est.degraded = false;
  est.has_value = true;
  return est;
}

double ValidatedEstimator::margin_multiplier(double age_s) const {
  return std::min(config_.max_margin_multiplier,
                  1.0 + config_.stale_margin_gain_per_s * age_s);
}

}  // namespace epm::sensing
