// SensorPlane: turns ground truth into fallible readings.
//
// The macro-management layer (§3.2, Fig. 4) never sees the facility
// directly — it sees a sensing plane the paper calls huge, noisy, and
// unreliable (§5.3). The SensorPlane models that plane deterministically:
// each channel is observed by `redundancy` independent sensors, each reading
// carries Gaussian noise (a base fraction plus any active kSensorNoise
// fault severity), optional quantization, and a sample timestamp; active
// kSensorDropout faults invalidate a domain's readings and kSensorStuck
// faults freeze each sensor at the value it last emitted.
//
// Determinism: each channel owns an Rng seeded from (plane seed, channel
// key), so the readings on one channel never depend on how many other
// channels are sampled or in what order — bit-identical across 1/2/8-thread
// sweeps. With redundancy 1, zero base noise, and zero quantization the
// plane is exact: readings bit-equal the truth and consume no random draws.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/rng.h"
#include "faults/types.h"
#include "sensing/channels.h"

namespace epm::sensing {

struct SensorPlaneConfig {
  std::uint64_t seed = 0x5eed;
  /// Independent sensors per channel; the estimator can median-vote across
  /// them to reject a noisy minority.
  std::uint32_t redundancy = 1;
  /// Always-on Gaussian sigma as a fraction of |truth| (0 = exact plane).
  double base_noise_frac = 0.0;
  /// Readings rounded to multiples of this (0 = continuous).
  double quantization = 0.0;
  /// Sensor-fault domains; see channels.h domain_of().
  std::uint32_t fault_domains = 1;
};

struct SensorReading {
  double value = 0.0;
  double time_s = 0.0;
  bool valid = true;      ///< false while the domain's dropout fault is active
  bool degraded = false;  ///< stuck-at or extra-noise fault active
};

class SensorPlane {
 public:
  explicit SensorPlane(const SensorPlaneConfig& config);

  /// Samples every redundant sensor on `channel` against `truth` at `now_s`.
  std::vector<SensorReading> sample(ChannelKey channel, double truth,
                                    double now_s);

  /// FaultInjector subscriber: reacts to kSensorDropout / kSensorStuck /
  /// kSensorNoise onset and clear edges; ignores every other type.
  bool on_fault(const faults::FaultEvent& event, bool onset, double now_s);

  bool dropout_active(ChannelKey channel) const;
  bool stuck_active(ChannelKey channel) const;
  /// Extra Gaussian sigma fraction from active kSensorNoise faults.
  double fault_noise_frac(ChannelKey channel) const;

  std::uint64_t readings() const { return readings_; }
  std::uint64_t dropped_readings() const { return dropped_; }
  std::uint64_t stuck_readings() const { return stuck_; }
  std::uint64_t noisy_readings() const { return noisy_; }
  const SensorPlaneConfig& config() const { return config_; }

 private:
  struct DomainFaults {
    int dropout = 0;
    int stuck = 0;
    /// Active kSensorNoise severities (kept individually so overlapping
    /// faults clear without floating-point residue).
    std::vector<double> noise;
  };

  struct ChannelState {
    Rng rng;
    std::vector<double> last;  ///< per-sensor last emitted value
    explicit ChannelState(std::uint64_t seed, std::uint32_t redundancy)
        : rng(seed), last(redundancy, 0.0) {}
  };

  ChannelState& state(ChannelKey channel);
  const DomainFaults& domain(ChannelKey channel) const;

  SensorPlaneConfig config_;
  std::map<ChannelKey, ChannelState> channels_;
  std::vector<DomainFaults> domains_;
  std::uint64_t readings_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t stuck_ = 0;
  std::uint64_t noisy_ = 0;
};

}  // namespace epm::sensing
