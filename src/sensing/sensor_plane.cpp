#include "sensing/sensor_plane.h"

#include <cmath>
#include <stdexcept>

namespace epm::sensing {

SensorPlane::SensorPlane(const SensorPlaneConfig& config) : config_(config) {
  if (config_.redundancy == 0) {
    throw std::invalid_argument("SensorPlane: redundancy must be >= 1");
  }
  if (config_.fault_domains == 0) {
    throw std::invalid_argument("SensorPlane: fault_domains must be >= 1");
  }
  if (config_.base_noise_frac < 0.0 || config_.quantization < 0.0) {
    throw std::invalid_argument("SensorPlane: noise/quantization must be >= 0");
  }
  domains_.resize(config_.fault_domains);
}

SensorPlane::ChannelState& SensorPlane::state(ChannelKey channel) {
  auto it = channels_.find(channel);
  if (it == channels_.end()) {
    // Seed from (plane seed, channel key) so a channel's stream does not
    // depend on which other channels exist or when they were first sampled.
    SplitMix64 expander(config_.seed ^ (channel * 0x9e3779b97f4a7c15ULL));
    it = channels_
             .emplace(channel,
                      ChannelState(expander.next(), config_.redundancy))
             .first;
  }
  return it->second;
}

const SensorPlane::DomainFaults& SensorPlane::domain(ChannelKey channel) const {
  return domains_[domain_of(channel, config_.fault_domains)];
}

std::vector<SensorReading> SensorPlane::sample(ChannelKey channel, double truth,
                                               double now_s) {
  ChannelState& st = state(channel);
  const DomainFaults& faults = domain(channel);
  const double extra_noise = fault_noise_frac(channel);
  const double sigma = (config_.base_noise_frac + extra_noise) * std::abs(truth);

  std::vector<SensorReading> out(config_.redundancy);
  for (std::uint32_t r = 0; r < config_.redundancy; ++r) {
    SensorReading& reading = out[r];
    reading.time_s = now_s;
    ++readings_;
    if (faults.dropout > 0) {
      reading.valid = false;
      reading.degraded = true;
      ++dropped_;
      continue;
    }
    if (faults.stuck > 0) {
      // Each sensor repeats the value it last emitted (0 if never sampled).
      reading.value = st.last[r];
      reading.degraded = true;
      ++stuck_;
      continue;
    }
    double value = truth;
    if (sigma > 0.0) {
      value += st.rng.normal(0.0, sigma);
    }
    if (config_.quantization > 0.0) {
      value = std::round(value / config_.quantization) * config_.quantization;
    }
    reading.value = value;
    reading.degraded = extra_noise > 0.0;
    if (reading.degraded) {
      ++noisy_;
    }
    st.last[r] = value;
  }
  return out;
}

bool SensorPlane::on_fault(const faults::FaultEvent& event, bool onset,
                           double /*now_s*/) {
  using faults::FaultType;
  DomainFaults& dom =
      domains_[event.target % static_cast<std::size_t>(config_.fault_domains)];
  switch (event.type) {
    case FaultType::kSensorDropout:
      dom.dropout += onset ? 1 : -1;
      return true;
    case FaultType::kSensorStuck:
      dom.stuck += onset ? 1 : -1;
      return true;
    case FaultType::kSensorNoise:
      if (onset) {
        dom.noise.push_back(event.severity);
      } else {
        for (auto it = dom.noise.begin(); it != dom.noise.end(); ++it) {
          if (*it == event.severity) {
            dom.noise.erase(it);
            break;
          }
        }
      }
      return true;
    default:
      return false;
  }
}

bool SensorPlane::dropout_active(ChannelKey channel) const {
  return domain(channel).dropout > 0;
}

bool SensorPlane::stuck_active(ChannelKey channel) const {
  return domain(channel).stuck > 0;
}

double SensorPlane::fault_noise_frac(ChannelKey channel) const {
  double total = 0.0;
  for (double severity : domain(channel).noise) {
    total += severity;
  }
  return total;
}

}  // namespace epm::sensing
