// InvariantMonitor: the simulation must never silently produce nonsense.
//
// A runtime checker over per-epoch facility state: energy conservation
// across the power tree (utility draw covers IT + mechanical load), PUE >= 1,
// served <= offered, non-negative power, bounded temperatures, bounded
// state of charge, and finiteness of every field. macro::Facility feeds it
// every step via attach_invariant_monitor(); benches construct it with
// throw_on_violation so a broken model aborts the run with a named report
// instead of emitting plausible-looking garbage. In Debug builds throwing is
// the default; Release defaults to recording only.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace epm::sensing {

/// One epoch of facility state, flattened so the monitor depends on no
/// other subsystem.
struct InvariantInputs {
  double time_s = 0.0;
  double it_power_w = 0.0;
  double mechanical_power_w = 0.0;
  double utility_draw_w = 0.0;
  double pue = 0.0;
  double max_zone_temp_c = 0.0;
  std::vector<double> zone_temps_c;
  std::vector<double> arrival_rate_per_s;  ///< per service, offered locally
  std::vector<double> dropped_rate_per_s;  ///< per service
  double state_of_charge = -1.0;  ///< UPS SoC; negative = not provided
};

struct InvariantViolation {
  std::string name;    ///< stable identifier, e.g. "energy-conservation"
  double time_s = 0.0;
  std::string detail;
};

struct InvariantMonitorConfig {
  /// Throw std::logic_error with the report on the first violation.
#ifndef NDEBUG
  bool throw_on_violation = true;
#else
  bool throw_on_violation = false;
#endif
  /// Slack for power-tree conservation (absolute watts).
  double power_epsilon_w = 1.0;
  double temp_lo_c = -40.0;
  double temp_hi_c = 120.0;
  /// Violations kept verbatim; later ones only counted.
  std::size_t max_recorded = 64;
};

class InvariantMonitor {
 public:
  explicit InvariantMonitor(const InvariantMonitorConfig& config = {});

  /// Checks one epoch; records (and optionally throws on) violations.
  void check(const InvariantInputs& inputs);

  /// Checks a single bounded quantity (e.g. UPS state of charge in [0, 1])
  /// under the violation name `name`; also rejects non-finite values.
  void check_scalar(const std::string& name, double value, double lo, double hi,
                    double time_s);

  /// Closed-loop request-flow invariants: all counts finite and
  /// non-negative, goodput <= served <= offered, and retries amplify
  /// offered load consistently (offered == intents + retries, so
  /// offered >= intents). Counts are cumulative request totals since the
  /// start of the run — per-epoch served can legitimately exceed per-epoch
  /// offered while a backlog drains.
  struct RequestFlow {
    double time_s = 0.0;
    double offered = 0.0;   ///< attempts presented to the admission stack
    double served = 0.0;    ///< completions (fresh + stale)
    double goodput = 0.0;   ///< fresh completions (client still waiting)
    double intents = 0.0;   ///< first attempts
    double retries = 0.0;   ///< re-offered attempts
  };
  void check_request_flow(const RequestFlow& flow);

  /// Records a violation under `name` unless `ok` — the escape hatch for
  /// model-specific conservation checks (e.g. the retry-budget ledger).
  void check_condition(const std::string& name, bool ok,
                       const std::string& detail, double time_s);

  bool ok() const { return violation_count_ == 0; }
  std::size_t checks() const { return checks_; }
  std::size_t violation_count() const { return violation_count_; }
  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  /// Human-readable multi-line report ("all invariants held" when ok).
  std::string report() const;

 private:
  void record(const std::string& name, double time_s, const std::string& detail);

  InvariantMonitorConfig config_;
  std::vector<InvariantViolation> violations_;
  std::size_t violation_count_ = 0;
  std::size_t checks_ = 0;
};

}  // namespace epm::sensing
