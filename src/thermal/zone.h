// Lumped-parameter thermal zone (paper §2.2, Fig. 2).
//
// A zone models one cold-aisle region on the raised floor: servers inject
// heat, cold air arrives from CRAC units through the subfloor with a
// propagation lag, and some neighbour heat recirculates over the racks. The
// zone temperature stands for the server *inlet* temperature there, which is
// what ASHRAE's 20-25 C recommendation and the servers' protective sensors
// watch.
//
//   C dT/dt = Q_it + Q_recirculated - G (T - T_air_effective)
#pragma once

#include <string>

namespace epm::thermal {

struct ZoneConfig {
  std::string name;
  /// Thermal capacitance of the zone's air + nearby mass (J/C). Large values
  /// give the "slow dynamics" the paper attributes to air cooling.
  double heat_capacity_j_per_c = 2.0e6;
  /// Thermal conductance between the zone and the cooling airflow (W/C).
  double conductance_w_per_c = 3.0e3;
  /// First-order lag standing in for cold-air propagation delay from the
  /// subfloor plenum to the racks (s). Paper: CRAC "actions take long
  /// propagation delays to reach the servers".
  double supply_lag_s = 300.0;
  double initial_temp_c = 22.0;
  /// Server protective-shutdown threshold (paper §2.2): inlet temperatures
  /// above this raise thermal alarms.
  double alarm_temp_c = 32.0;
};

/// Integrates one zone's temperature. The effective supply temperature seen
/// by the zone lags the commanded CRAC supply temperature.
class ThermalZone {
 public:
  explicit ThermalZone(ZoneConfig config);

  const ZoneConfig& config() const { return config_; }
  double temperature_c() const { return temp_c_; }
  double lagged_supply_c() const { return lagged_supply_c_; }
  bool in_alarm() const { return temp_c_ > config_.alarm_temp_c; }

  /// Advances the zone by dt_s with `heat_w` of injected IT (+ recirculated)
  /// heat and `supply_c` commanded cooling-air temperature.
  void step(double dt_s, double heat_w, double supply_c);

  /// Steady-state temperature for constant inputs (used by tests and by the
  /// macro layer's risk model).
  double steady_state_c(double heat_w, double supply_c) const;

  /// Resets to a given temperature (and re-seeds the supply lag).
  void reset(double temp_c, double supply_c);

 private:
  ZoneConfig config_;
  double temp_c_;
  double lagged_supply_c_;
};

}  // namespace epm::thermal
