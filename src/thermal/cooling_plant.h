// Cooling plant: chilled-water plant + CRAC fans + optional air-side
// economizer (paper §2.2).
//
// Converts "heat to remove" into mechanical electrical power. With the
// chiller, efficiency follows a COP model that improves as the supply
// temperature rises (one reason over-cooling is expensive). With the
// economizer, outside air below the usable threshold carries the heat for
// fan power alone.
#pragma once

namespace epm::thermal {

struct CoolingPlantConfig {
  /// Chiller coefficient of performance at the reference supply temp.
  double cop_at_reference = 3.5;
  double reference_supply_c = 18.0;
  /// COP gain per degree of warmer supply air (warmer water -> better COP).
  double cop_per_degree = 0.12;
  double min_cop = 1.2;
  /// CRAC / air-handler fan power as a fraction of removed heat.
  double fan_fraction = 0.06;
  /// Economizer: usable when outside temp <= supply setpoint - approach.
  bool has_economizer = false;
  double economizer_approach_c = 4.0;
  /// Fan overhead in economizer mode (more air moved than with chilled coils).
  double economizer_fan_fraction = 0.10;
  /// ASHRAE-style humidity envelope: outside air beyond these bounds cannot
  /// be used directly even if cold (dampers close, chiller takes over).
  double min_outside_c = -15.0;
  /// Relative-humidity envelope for direct outside air (paper §2.2 /
  /// ASHRAE: 30-45% recommended; we allow a wider but bounded intake range
  /// since mixing dampers can condition moderately dry/damp air).
  double min_intake_rh = 0.15;
  double max_intake_rh = 0.80;
};

struct CoolingDraw {
  double chiller_power_w = 0.0;
  double fan_power_w = 0.0;
  bool economizer_active = false;
  double total_w() const { return chiller_power_w + fan_power_w; }
};

class CoolingPlant {
 public:
  explicit CoolingPlant(CoolingPlantConfig config);

  const CoolingPlantConfig& config() const { return config_; }

  /// Chiller COP when producing air at `supply_c`.
  double cop_at(double supply_c) const;

  /// True when the economizer can carry the load at this outside temp.
  /// `outside_rh` (fraction) additionally enforces the humidity envelope;
  /// the two-argument form assumes in-envelope air.
  bool economizer_usable(double outside_c, double supply_c) const;
  bool economizer_usable(double outside_c, double supply_c, double outside_rh) const;

  /// Electrical power to remove `heat_w` while producing supply air at
  /// `supply_c`, given the outside temperature (and optionally humidity).
  CoolingDraw power_draw(double heat_w, double supply_c, double outside_c) const;
  CoolingDraw power_draw(double heat_w, double supply_c, double outside_c,
                         double outside_rh) const;

 private:
  CoolingPlantConfig config_;
};

}  // namespace epm::thermal
