#include "thermal/cooling_plant.h"

#include <algorithm>

#include "core/require.h"

namespace epm::thermal {

CoolingPlant::CoolingPlant(CoolingPlantConfig config) : config_(config) {
  require(config_.cop_at_reference > 0.0, "CoolingPlant: COP must be positive");
  require(config_.min_cop > 0.0, "CoolingPlant: min COP must be positive");
  require(config_.fan_fraction >= 0.0 && config_.economizer_fan_fraction >= 0.0,
          "CoolingPlant: negative fan fraction");
  require(config_.economizer_approach_c >= 0.0, "CoolingPlant: negative approach");
  require(config_.min_intake_rh >= 0.0 && config_.min_intake_rh < config_.max_intake_rh &&
              config_.max_intake_rh <= 1.0,
          "CoolingPlant: invalid intake humidity envelope");
}

double CoolingPlant::cop_at(double supply_c) const {
  const double cop = config_.cop_at_reference +
                     config_.cop_per_degree * (supply_c - config_.reference_supply_c);
  return std::max(cop, config_.min_cop);
}

bool CoolingPlant::economizer_usable(double outside_c, double supply_c) const {
  if (!config_.has_economizer) return false;
  if (outside_c < config_.min_outside_c) return false;  // frost limit
  return outside_c <= supply_c - config_.economizer_approach_c;
}

bool CoolingPlant::economizer_usable(double outside_c, double supply_c,
                                     double outside_rh) const {
  require(outside_rh >= 0.0 && outside_rh <= 1.0,
          "CoolingPlant: relative humidity outside [0,1]");
  if (outside_rh < config_.min_intake_rh || outside_rh > config_.max_intake_rh) {
    // Outside the intake envelope: humidifying/dehumidifying would cost more
    // than the chiller saves (paper §2.2's humidity challenge).
    return false;
  }
  return economizer_usable(outside_c, supply_c);
}

CoolingDraw CoolingPlant::power_draw(double heat_w, double supply_c, double outside_c,
                                     double outside_rh) const {
  require(heat_w >= 0.0, "CoolingPlant: negative heat");
  if (!economizer_usable(outside_c, supply_c, outside_rh)) {
    CoolingDraw draw;
    draw.fan_power_w = heat_w * config_.fan_fraction;
    draw.chiller_power_w = heat_w / cop_at(supply_c);
    return draw;
  }
  CoolingDraw draw;
  draw.economizer_active = true;
  draw.fan_power_w = heat_w * config_.economizer_fan_fraction;
  return draw;
}

CoolingDraw CoolingPlant::power_draw(double heat_w, double supply_c,
                                     double outside_c) const {
  require(heat_w >= 0.0, "CoolingPlant: negative heat");
  CoolingDraw draw;
  if (economizer_usable(outside_c, supply_c)) {
    draw.economizer_active = true;
    draw.fan_power_w = heat_w * config_.economizer_fan_fraction;
    return draw;
  }
  draw.fan_power_w = heat_w * config_.fan_fraction;
  draw.chiller_power_w = heat_w / cop_at(supply_c);
  return draw;
}

}  // namespace epm::thermal
