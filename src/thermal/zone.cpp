#include "thermal/zone.h"

#include <algorithm>
#include <cmath>

#include "core/require.h"

namespace epm::thermal {

ThermalZone::ThermalZone(ZoneConfig config)
    : config_(config),
      temp_c_(config.initial_temp_c),
      lagged_supply_c_(config.initial_temp_c) {
  require(config_.heat_capacity_j_per_c > 0.0, "ThermalZone: capacity must be positive");
  require(config_.conductance_w_per_c > 0.0, "ThermalZone: conductance must be positive");
  require(config_.supply_lag_s >= 0.0, "ThermalZone: negative supply lag");
}

void ThermalZone::step(double dt_s, double heat_w, double supply_c) {
  require(dt_s > 0.0, "ThermalZone: dt must be positive");
  require(heat_w >= 0.0, "ThermalZone: negative heat");
  // Propagation lag: first-order tracking of the commanded supply temp.
  if (config_.supply_lag_s <= 0.0) {
    lagged_supply_c_ = supply_c;
  } else {
    const double a = 1.0 - std::exp(-dt_s / config_.supply_lag_s);
    lagged_supply_c_ += a * (supply_c - lagged_supply_c_);
  }
  // Exact exponential update of the linear ODE over dt (stable for any dt).
  const double t_inf = steady_state_c(heat_w, lagged_supply_c_);
  const double tau = config_.heat_capacity_j_per_c / config_.conductance_w_per_c;
  const double b = std::exp(-dt_s / tau);
  temp_c_ = t_inf + (temp_c_ - t_inf) * b;
}

double ThermalZone::steady_state_c(double heat_w, double supply_c) const {
  return supply_c + heat_w / config_.conductance_w_per_c;
}

void ThermalZone::reset(double temp_c, double supply_c) {
  temp_c_ = temp_c;
  lagged_supply_c_ = supply_c;
}

}  // namespace epm::thermal
