// A machine room: thermal zones coupled to CRAC units through an airflow
// share matrix, plus inter-zone heat recirculation (paper §2.2 / Fig. 2).
//
// The room advances in fixed integration steps; each CRAC runs its discrete
// control law on its own 15-minute schedule, and thermal alarms are recorded
// whenever a zone crosses its protective threshold.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "thermal/crac.h"
#include "thermal/zone.h"

namespace epm::thermal {

struct AlarmEvent {
  double time_s;
  std::size_t zone;
  double temperature_c;
};

struct MachineRoomConfig {
  std::vector<ZoneConfig> zones;
  std::vector<CracConfig> cracs;
  /// airflow_share[zone][crac]: fraction of the zone's cooling air supplied
  /// by each CRAC. Rows are normalized internally and must not be all-zero.
  std::vector<std::vector<double>> airflow_share;
  /// recirculation[dst][src]: fraction of src zone's IT heat that spills
  /// into dst's aisle on top of dst's own heat. Diagonal is ignored (a
  /// zone's own heat is counted once). May be empty for no recirculation.
  std::vector<std::vector<double>> recirculation;
  double integration_step_s = 30.0;
};

class MachineRoom {
 public:
  explicit MachineRoom(MachineRoomConfig config);

  std::size_t zone_count() const { return zones_.size(); }
  std::size_t crac_count() const { return cracs_.size(); }
  double now_s() const { return now_s_; }

  const ThermalZone& zone(std::size_t i) const;
  const Crac& crac(std::size_t k) const;
  Crac& crac(std::size_t k);
  std::vector<double> zone_temperatures_c() const;
  /// Commanded supply temperature a zone receives (its airflow-share mix of
  /// CRAC supplies, before the propagation lag).
  double zone_supply_c(std::size_t i) const;

  /// Advances the room to `until_s` with constant per-zone IT heat. CRAC
  /// controllers fire on their own schedules inside the interval. New alarm
  /// events are appended to `alarms()`.
  void run_until(double until_s, const std::vector<double>& it_heat_w);

  /// Total heat currently being removed through all zones' conductances
  /// (equals total injected heat in steady state).
  double heat_removal_w() const;

  const std::vector<AlarmEvent>& alarms() const { return alarms_; }
  /// Zones currently above their alarm threshold.
  std::vector<std::size_t> zones_in_alarm() const;

  /// Disables a CRAC's automatic control (macro-layer override).
  void set_crac_auto(std::size_t k, bool enabled);

 private:
  void integrate_step(double dt_s, const std::vector<double>& it_heat_w);
  double effective_supply_c(std::size_t zone) const;
  double injected_heat_w(std::size_t zone, const std::vector<double>& it_heat_w) const;

  MachineRoomConfig config_;
  std::vector<ThermalZone> zones_;
  std::vector<Crac> cracs_;
  std::vector<double> next_control_s_;
  std::vector<bool> crac_auto_;
  std::vector<bool> zone_alarmed_;  // edge-triggered alarm latch
  std::vector<AlarmEvent> alarms_;
  double now_s_ = 0.0;
};

/// Builds the two-zone/one-CRAC room of §5.1: the CRAC is highly sensitive
/// to zone A and almost blind to zone B.
MachineRoomConfig make_sensitivity_scenario_room(double sensitivity_a = 0.95,
                                                 double sensitivity_b = 0.05);

}  // namespace epm::thermal
