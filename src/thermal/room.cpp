#include "thermal/room.h"

#include <algorithm>
#include <cmath>

#include "core/require.h"

namespace epm::thermal {

MachineRoom::MachineRoom(MachineRoomConfig config) : config_(std::move(config)) {
  require(!config_.zones.empty(), "MachineRoom: no zones");
  require(!config_.cracs.empty(), "MachineRoom: no CRACs");
  require(config_.integration_step_s > 0.0, "MachineRoom: step must be positive");
  require(config_.airflow_share.size() == config_.zones.size(),
          "MachineRoom: airflow_share must have one row per zone");
  for (auto& row : config_.airflow_share) {
    require(row.size() == config_.cracs.size(),
            "MachineRoom: airflow_share row must have one entry per CRAC");
    double total = 0.0;
    for (double v : row) {
      require(v >= 0.0, "MachineRoom: negative airflow share");
      total += v;
    }
    require(total > 0.0, "MachineRoom: zone receives no airflow");
    for (double& v : row) v /= total;
  }
  if (!config_.recirculation.empty()) {
    require(config_.recirculation.size() == config_.zones.size(),
            "MachineRoom: recirculation must be zones x zones");
    for (const auto& row : config_.recirculation) {
      require(row.size() == config_.zones.size(),
              "MachineRoom: recirculation must be zones x zones");
      for (double v : row) {
        require(v >= 0.0 && v <= 1.0, "MachineRoom: recirculation outside [0,1]");
      }
    }
  }

  zones_.reserve(config_.zones.size());
  for (const auto& z : config_.zones) zones_.emplace_back(z);
  cracs_.reserve(config_.cracs.size());
  for (const auto& c : config_.cracs) {
    require(c.zone_sensitivity.size() == config_.zones.size(),
            "MachineRoom: CRAC sensitivity must cover every zone");
    cracs_.emplace_back(c);
    next_control_s_.push_back(c.control_period_s);
    crac_auto_.push_back(true);
  }
  zone_alarmed_.assign(zones_.size(), false);
}

const ThermalZone& MachineRoom::zone(std::size_t i) const {
  require(i < zones_.size(), "MachineRoom: zone index out of range");
  return zones_[i];
}

const Crac& MachineRoom::crac(std::size_t k) const {
  require(k < cracs_.size(), "MachineRoom: CRAC index out of range");
  return cracs_[k];
}

Crac& MachineRoom::crac(std::size_t k) {
  require(k < cracs_.size(), "MachineRoom: CRAC index out of range");
  return cracs_[k];
}

std::vector<double> MachineRoom::zone_temperatures_c() const {
  std::vector<double> out;
  out.reserve(zones_.size());
  for (const auto& z : zones_) out.push_back(z.temperature_c());
  return out;
}

double MachineRoom::zone_supply_c(std::size_t i) const {
  require(i < zones_.size(), "MachineRoom: zone index out of range");
  return effective_supply_c(i);
}

double MachineRoom::effective_supply_c(std::size_t zone) const {
  double mix = 0.0;
  for (std::size_t k = 0; k < cracs_.size(); ++k) {
    mix += config_.airflow_share[zone][k] * cracs_[k].supply_temp_c();
  }
  return mix;
}

double MachineRoom::injected_heat_w(std::size_t zone,
                                    const std::vector<double>& it_heat_w) const {
  double heat = it_heat_w[zone];
  if (!config_.recirculation.empty()) {
    for (std::size_t src = 0; src < zones_.size(); ++src) {
      if (src == zone) continue;
      heat += config_.recirculation[zone][src] * it_heat_w[src];
    }
  }
  return heat;
}

void MachineRoom::integrate_step(double dt_s, const std::vector<double>& it_heat_w) {
  for (std::size_t i = 0; i < zones_.size(); ++i) {
    zones_[i].step(dt_s, injected_heat_w(i, it_heat_w), effective_supply_c(i));
  }
  now_s_ += dt_s;
  // CRAC discrete control on each unit's own schedule.
  const auto temps = zone_temperatures_c();
  for (std::size_t k = 0; k < cracs_.size(); ++k) {
    if (now_s_ + 1e-9 >= next_control_s_[k]) {
      if (crac_auto_[k]) cracs_[k].control_step(temps);
      next_control_s_[k] += cracs_[k].config().control_period_s;
    }
  }
  // Edge-triggered alarm recording.
  for (std::size_t i = 0; i < zones_.size(); ++i) {
    const bool hot = zones_[i].in_alarm();
    if (hot && !zone_alarmed_[i]) {
      alarms_.push_back(AlarmEvent{now_s_, i, zones_[i].temperature_c()});
    }
    zone_alarmed_[i] = hot;
  }
}

void MachineRoom::run_until(double until_s, const std::vector<double>& it_heat_w) {
  require(it_heat_w.size() == zones_.size(),
          "MachineRoom: it_heat_w must have one entry per zone");
  for (double h : it_heat_w) require(h >= 0.0, "MachineRoom: negative heat");
  while (now_s_ + 1e-9 < until_s) {
    const double dt = std::min(config_.integration_step_s, until_s - now_s_);
    integrate_step(dt, it_heat_w);
  }
}

double MachineRoom::heat_removal_w() const {
  double total = 0.0;
  for (const auto& z : zones_) {
    total += z.config().conductance_w_per_c *
             std::max(0.0, z.temperature_c() - z.lagged_supply_c());
  }
  return total;
}

std::vector<std::size_t> MachineRoom::zones_in_alarm() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < zones_.size(); ++i) {
    if (zones_[i].in_alarm()) out.push_back(i);
  }
  return out;
}

void MachineRoom::set_crac_auto(std::size_t k, bool enabled) {
  require(k < crac_auto_.size(), "MachineRoom: CRAC index out of range");
  crac_auto_[k] = enabled;
}

MachineRoomConfig make_sensitivity_scenario_room(double sensitivity_a,
                                                 double sensitivity_b) {
  require(sensitivity_a >= 0.0 && sensitivity_b >= 0.0 &&
              sensitivity_a + sensitivity_b > 0.0,
          "make_sensitivity_scenario_room: invalid sensitivities");
  MachineRoomConfig room;
  ZoneConfig a;
  a.name = "zoneA";
  ZoneConfig b;
  b.name = "zoneB";
  room.zones = {a, b};
  CracConfig crac;
  crac.name = "crac0";
  crac.zone_sensitivity = {sensitivity_a, sensitivity_b};
  room.cracs = {crac};
  room.airflow_share = {{1.0}, {1.0}};
  room.recirculation = {{0.0, 0.05}, {0.05, 0.0}};
  return room;
}

}  // namespace epm::thermal
