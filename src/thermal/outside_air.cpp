#include "thermal/outside_air.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "core/require.h"
#include "core/units.h"

namespace epm::thermal {

OutsideAirModel::OutsideAirModel(OutsideAirConfig config)
    : config_(config), rng_(config.seed) {
  require(config_.seasonal_amplitude_c >= 0.0 && config_.diurnal_amplitude_c >= 0.0,
          "OutsideAirModel: negative amplitude");
  require(config_.weather_noise_c >= 0.0, "OutsideAirModel: negative noise");
  require(config_.noise_correlation_time_s > 0.0,
          "OutsideAirModel: correlation time must be positive");
  require(config_.mean_rh >= 0.0 && config_.mean_rh <= 1.0,
          "OutsideAirModel: mean RH outside [0,1]");
  require(config_.diurnal_rh_amplitude >= 0.0 && config_.rh_noise >= 0.0,
          "OutsideAirModel: negative humidity parameters");
}

double OutsideAirModel::mean_temperature_c(double t_s) const {
  const double day_of_year = t_s / kSecondsPerDay;
  const double seasonal =
      std::cos(2.0 * std::numbers::pi * (day_of_year - config_.hottest_day) / 365.0);
  const double hour = std::fmod(t_s, kSecondsPerDay) / kSecondsPerHour;
  const double diurnal =
      std::cos(2.0 * std::numbers::pi * (hour - config_.hottest_hour) / 24.0);
  return config_.annual_mean_c + config_.seasonal_amplitude_c * seasonal +
         config_.diurnal_amplitude_c * diurnal;
}

double OutsideAirModel::mean_relative_humidity(double t_s) const {
  const double hour = std::fmod(t_s, kSecondsPerDay) / kSecondsPerHour;
  // RH bottoms out at the warmest hour of the day.
  const double diurnal =
      -std::cos(2.0 * std::numbers::pi * (hour - config_.hottest_hour) / 24.0);
  const double rh = config_.mean_rh + config_.diurnal_rh_amplitude * diurnal;
  return std::clamp(rh, 0.05, 1.0);
}

OutsideAirModel::Weather OutsideAirModel::sample_weather(double horizon_s,
                                                         double step_s) {
  require(horizon_s > 0.0 && step_s > 0.0, "OutsideAirModel: invalid horizon/step");
  Weather out{TimeSeries(0.0, step_s), TimeSeries(0.0, step_s)};
  const auto n = static_cast<std::size_t>(horizon_s / step_s);
  out.temperature_c.reserve(n);
  out.relative_humidity.reserve(n);
  const double phi = std::exp(-step_s / config_.noise_correlation_time_s);
  const double temp_innov = config_.weather_noise_c * std::sqrt(1.0 - phi * phi);
  double dev = config_.weather_noise_c > 0.0 ? rng_.normal(0.0, config_.weather_noise_c)
                                             : 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * step_s;
    out.temperature_c.push_back(mean_temperature_c(t) + dev);
    // Humid fronts are cool fronts: the shared deviation enters RH with the
    // opposite sign, scaled into humidity units.
    const double rh_dev = config_.weather_noise_c > 0.0
                              ? -dev / config_.weather_noise_c * config_.rh_noise
                              : 0.0;
    out.relative_humidity.push_back(
        std::clamp(mean_relative_humidity(t) + rh_dev, 0.05, 1.0));
    if (config_.weather_noise_c > 0.0) {
      dev = phi * dev + rng_.normal(0.0, temp_innov);
    }
  }
  return out;
}

TimeSeries OutsideAirModel::sample(double horizon_s, double step_s) {
  require(horizon_s > 0.0 && step_s > 0.0, "OutsideAirModel: invalid horizon/step");
  TimeSeries out(0.0, step_s);
  const auto n = static_cast<std::size_t>(horizon_s / step_s);
  out.reserve(n);
  // AR(1) weather deviation with stationary stddev = weather_noise_c.
  const double phi = std::exp(-step_s / config_.noise_correlation_time_s);
  const double innovation_sd = config_.weather_noise_c * std::sqrt(1.0 - phi * phi);
  double dev = config_.weather_noise_c > 0.0 ? rng_.normal(0.0, config_.weather_noise_c)
                                             : 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(mean_temperature_c(static_cast<double>(i) * step_s) + dev);
    if (config_.weather_noise_c > 0.0) {
      dev = phi * dev + rng_.normal(0.0, innovation_sd);
    }
  }
  return out;
}

}  // namespace epm::thermal
