// Outside-air temperature model for air-side-economizer studies (paper
// §2.2: "the industry has moved to extensive use of air-side economizers...
// However, the temperature and humidity of outside air change continuously").
//
// Seasonal sinusoid + diurnal sinusoid + weather noise, deterministic per
// seed. Good enough to study economizer-hours and their control challenges;
// swap in a measured trace via workload::read_csv_file for site studies.
#pragma once

#include <cstdint>

#include "core/rng.h"
#include "core/time_series.h"

namespace epm::thermal {

struct OutsideAirConfig {
  double annual_mean_c = 12.0;       ///< temperate site
  double seasonal_amplitude_c = 11.0;  ///< winter/summer swing around mean
  double diurnal_amplitude_c = 5.0;  ///< day/night swing
  /// Day of year (0-based) of the warmest day; mid-July by default.
  double hottest_day = 196.0;
  double hottest_hour = 15.0;        ///< warmest time of day
  double weather_noise_c = 2.0;      ///< slow AR(1) weather deviations
  double noise_correlation_time_s = 6.0 * 3600.0;
  /// Relative humidity model: mean fraction, diurnal swing (RH is lowest at
  /// the warmest hour), and AR(1) weather noise. "The temperature and
  /// humidity of outside air change continuously" (paper §2.2).
  double mean_rh = 0.60;
  double diurnal_rh_amplitude = 0.15;
  double rh_noise = 0.10;
  std::uint64_t seed = 1234;
};

class OutsideAirModel {
 public:
  explicit OutsideAirModel(OutsideAirConfig config);

  /// Deterministic seasonal+diurnal component at time t (seconds from
  /// Jan 1, 00:00).
  double mean_temperature_c(double t_s) const;

  /// Samples the full model (mean + AR(1) weather noise) on a uniform grid.
  TimeSeries sample(double horizon_s, double step_s);

  /// Deterministic relative-humidity component at time t, in [0.05, 1]:
  /// lowest at the warmest hour (RH anti-correlates with temperature).
  double mean_relative_humidity(double t_s) const;

  /// Samples temperature and humidity on a shared grid (weather noise on
  /// both, anti-correlated as real fronts are).
  struct Weather {
    TimeSeries temperature_c;
    TimeSeries relative_humidity;  ///< fraction in [0.05, 1]
  };
  Weather sample_weather(double horizon_s, double step_s);

  const OutsideAirConfig& config() const { return config_; }

 private:
  OutsideAirConfig config_;
  Rng rng_;
};

}  // namespace epm::thermal
