// Computer-room air conditioning unit (paper §2.2, §5.1).
//
// "CRAC units usually react every 15 minutes" — the unit runs a discrete
// proportional controller on the *return-air temperature it observes*,
// which is a sensitivity-weighted mix of zone temperatures (ref [30],
// Project Genome: "the CRAC can be extremely sensitive to servers at
// location A, while not sensitive to servers at locations B"). That
// asymmetric observation is exactly what makes the §5.1 migration hazard
// reproducible.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace epm::thermal {

struct CracConfig {
  std::string name;
  double control_period_s = 900.0;  ///< paper: reacts every 15 minutes
  double return_setpoint_c = 24.0;  ///< target observed return temperature
  double deadband_c = 0.5;          ///< no action within setpoint +- deadband
  double gain = 0.8;                ///< supply-temp change per degree of error
  double min_supply_c = 12.0;
  double max_supply_c = 27.0;
  double initial_supply_c = 18.0;
  double cooling_capacity_w = 400.0e3;  ///< max heat the coil can remove
  /// Per-zone sensitivity of this CRAC's return-air sensor. Normalized
  /// internally; zones absent from the vector contribute nothing.
  std::vector<double> zone_sensitivity;
};

class Crac {
 public:
  explicit Crac(CracConfig config);

  const CracConfig& config() const { return config_; }
  /// Supply temperature the room actually receives: the controlled value
  /// pushed toward max_supply_c in proportion to the active derate (a fully
  /// derated unit blows room-temperature air — it has failed).
  double supply_temp_c() const;
  /// Controller state before derate is applied.
  double commanded_supply_c() const { return supply_c_; }
  std::size_t control_actions() const { return control_actions_; }

  /// Fault hook: derates cooling capacity by `fraction` in [0,1]. 0 restores
  /// the healthy unit, 1 models outright failure.
  void set_derate(double fraction);
  double derate() const { return derate_; }
  /// Heat the coil can still remove under the active derate.
  double effective_capacity_w() const {
    return config_.cooling_capacity_w * (1.0 - derate_);
  }

  /// Degradation hook: moves the return-air setpoint (macro layer raises it
  /// to shed cooling load during power emergencies).
  void set_return_setpoint_c(double setpoint_c);

  /// The return temperature this CRAC *observes* for the given zone
  /// temperatures (sensitivity-weighted mean).
  double observed_return_c(const std::vector<double>& zone_temps_c) const;

  /// Runs one control decision against the observed zone temperatures;
  /// call every control_period_s. Returns the new supply temperature.
  double control_step(const std::vector<double>& zone_temps_c);

  /// Overrides the supply temperature (used by coordinated cooling control
  /// in the macro layer, and by tests).
  void set_supply_temp_c(double temp_c);

 private:
  CracConfig config_;
  double supply_c_;
  double derate_ = 0.0;
  std::size_t control_actions_ = 0;
};

}  // namespace epm::thermal
