#include "thermal/crac.h"

#include <algorithm>
#include <numeric>

#include "core/require.h"

namespace epm::thermal {

Crac::Crac(CracConfig config) : config_(config), supply_c_(config.initial_supply_c) {
  require(config_.control_period_s > 0.0, "Crac: control period must be positive");
  require(config_.deadband_c >= 0.0, "Crac: negative deadband");
  require(config_.gain > 0.0, "Crac: gain must be positive");
  require(config_.min_supply_c < config_.max_supply_c, "Crac: invalid supply range");
  require(config_.initial_supply_c >= config_.min_supply_c &&
              config_.initial_supply_c <= config_.max_supply_c,
          "Crac: initial supply outside range");
  require(config_.cooling_capacity_w > 0.0, "Crac: capacity must be positive");
  require(!config_.zone_sensitivity.empty(), "Crac: no zone sensitivities");
  double total = 0.0;
  for (double s : config_.zone_sensitivity) {
    require(s >= 0.0, "Crac: negative sensitivity");
    total += s;
  }
  require(total > 0.0, "Crac: all sensitivities zero");
}

double Crac::supply_temp_c() const {
  // A derated coil removes less heat; model it as the supply air warming
  // linearly toward the top of the unit's range (a fully failed CRAC just
  // recirculates warm air).
  return supply_c_ + derate_ * (config_.max_supply_c - supply_c_);
}

void Crac::set_derate(double fraction) {
  require(fraction >= 0.0 && fraction <= 1.0, "Crac: derate outside [0,1]");
  derate_ = fraction;
}

void Crac::set_return_setpoint_c(double setpoint_c) {
  require(setpoint_c > 0.0, "Crac: setpoint must be positive");
  config_.return_setpoint_c = setpoint_c;
}

double Crac::observed_return_c(const std::vector<double>& zone_temps_c) const {
  require(zone_temps_c.size() >= config_.zone_sensitivity.size(),
          "Crac: fewer zone temperatures than sensitivities");
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < config_.zone_sensitivity.size(); ++i) {
    weighted += config_.zone_sensitivity[i] * zone_temps_c[i];
    total += config_.zone_sensitivity[i];
  }
  return weighted / total;
}

double Crac::control_step(const std::vector<double>& zone_temps_c) {
  ++control_actions_;
  const double observed = observed_return_c(zone_temps_c);
  const double error = observed - config_.return_setpoint_c;
  if (error > config_.deadband_c) {
    // Too warm where we can see: blow colder.
    supply_c_ -= config_.gain * (error - config_.deadband_c);
  } else if (error < -config_.deadband_c) {
    // "The CRAC then believes that there is not much heat generated in its
    //  effective zone and thus increases the temperature of the cooling
    //  air." (§5.1)
    supply_c_ += config_.gain * (-config_.deadband_c - error);
  }
  supply_c_ = std::clamp(supply_c_, config_.min_supply_c, config_.max_supply_c);
  return supply_c_;
}

void Crac::set_supply_temp_c(double temp_c) {
  require(temp_c >= config_.min_supply_c && temp_c <= config_.max_supply_c,
          "Crac: supply override outside range");
  supply_c_ = temp_c;
}

}  // namespace epm::thermal
