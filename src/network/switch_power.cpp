#include "network/switch_power.h"

#include "core/require.h"

namespace epm::network {

SwitchPowerModel::SwitchPowerModel(SwitchPowerConfig config)
    : config_(std::move(config)) {
  require(config_.ports >= 1, "SwitchPowerModel: need at least one port");
  require(config_.chassis_power_w >= 0.0, "SwitchPowerModel: negative chassis power");
  require(!config_.rates.empty(), "SwitchPowerModel: no operating rates");
  double prev_cap = 0.0;
  double prev_power = 0.0;
  for (const auto& r : config_.rates) {
    require(r.capacity_gbps > prev_cap,
            "SwitchPowerModel: rates must have ascending capacity");
    require(r.active_power_w >= prev_power,
            "SwitchPowerModel: faster rates cannot use less power");
    prev_cap = r.capacity_gbps;
    prev_power = r.active_power_w;
  }
  require(config_.sleep_power_w >= 0.0 &&
              config_.sleep_power_w <= config_.rates.front().active_power_w,
          "SwitchPowerModel: sleep power must be in [0, slowest rate]");
  require(config_.wake_latency_s >= 0.0, "SwitchPowerModel: negative wake latency");
}

double SwitchPowerModel::port_power_w(std::size_t rate) const {
  require(rate < config_.rates.size(), "SwitchPowerModel: rate index out of range");
  return config_.rates[rate].active_power_w;
}

std::size_t SwitchPowerModel::rate_for_load(double load_gbps) const {
  require(load_gbps >= 0.0, "SwitchPowerModel: negative load");
  for (std::size_t i = 0; i < config_.rates.size(); ++i) {
    if (config_.rates[i].capacity_gbps >= load_gbps) return i;
  }
  return config_.rates.size() - 1;
}

double SwitchPowerModel::switch_power_w(const std::vector<std::size_t>& port_rates,
                                        std::size_t sleeping_ports) const {
  require(port_rates.size() + sleeping_ports <= config_.ports,
          "SwitchPowerModel: more ports than the switch has");
  double power = config_.chassis_power_w;
  for (std::size_t rate : port_rates) power += port_power_w(rate);
  power += static_cast<double>(sleeping_ports) * config_.sleep_power_w;
  return power;
}

}  // namespace epm::network
