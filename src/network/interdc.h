// Inter-datacenter network latency floors -> conservative lookahead.
//
// The paper's geo-coordination challenge (§3.2) moves load between sites
// over wide-area links, and physics gives those links a hard property the
// federation kernel exploits: a minimum one-way propagation delay. No
// cross-datacenter interaction — re-routed requests, replication traffic,
// grid-event notifications — can take effect at a remote site sooner than
// the speed-of-light floor of the path. That floor IS the conservative
// lookahead of sim::ShardedSimulator: a shard executing events at time t
// is guaranteed no inbound message for any time before t + floor.
//
// The model here is deliberately minimal: a validated per-pair matrix of
// latency floors (seconds), with a great-circle helper to derive defaults
// from site coordinates. Floors are *lower bounds*, so deriving them from
// geometry (propagation at ~2/3 c in fiber, with a routing-detour factor)
// is sound even when actual RTTs are far larger.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace epm::network {

struct InterDcSite {
  std::string name;
  double latitude_deg = 0.0;
  double longitude_deg = 0.0;
};

/// Great-circle distance in meters (spherical earth, R = 6371 km).
double great_circle_m(double lat1_deg, double lon1_deg, double lat2_deg,
                      double lon2_deg);

/// Lower bound on one-way latency over `distance_m` of fiber:
/// distance * detour_factor / (c * 2/3). detour_factor >= 1 accounts for
/// routes not following the geodesic; it scales the floor up, which keeps
/// the bound conservative for the *simulation* (a larger floor is a weaker
/// claim about the network but the lookahead must still be a true minimum
/// of the modeled message delays, which the federation enforces per send).
double fiber_latency_floor_s(double distance_m, double detour_factor = 1.0);

/// Validated matrix of inter-site one-way latency floors.
class InterDcNetwork {
 public:
  /// Floors derived from site coordinates via great-circle fiber delay,
  /// clamped below by `min_floor_s` (default 1 ms — even co-located DCs
  /// cross at least a metro hop).
  InterDcNetwork(std::vector<InterDcSite> sites, double detour_factor = 1.0,
                 double min_floor_s = 1e-3);
  /// Floors given explicitly, row-major `sites x sites`; off-diagonal
  /// entries must be positive and finite.
  InterDcNetwork(std::vector<InterDcSite> sites,
                 std::vector<double> latency_floor_s);

  std::size_t site_count() const { return sites_.size(); }
  const InterDcSite& site(std::size_t i) const;

  /// One-way latency floor from site src to site dst (seconds);
  /// 0 for src == dst.
  double latency_floor_s(std::size_t src, std::size_t dst) const;
  /// Smallest off-diagonal floor: the federation's window width.
  double min_latency_floor_s() const { return min_floor_s_; }

  /// The matrix in the row-major layout ShardedConfig::lookahead_s takes.
  const std::vector<double>& lookahead_matrix() const { return floors_; }

 private:
  void validate();

  std::vector<InterDcSite> sites_;
  std::vector<double> floors_;  ///< row-major sites x sites, diagonal 0
  double min_floor_s_ = 0.0;
};

}  // namespace epm::network
