// Degraded inter-datacenter links: slowdown, loss, and partition windows
// per (src, dst) direction, with deterministic redelivery.
//
// The federation's conservative lookahead (network/interdc.h) is a *lower*
// bound on message latency; this module models the upper tail — fiber cuts,
// congested or lossy WAN paths — as scripted per-link windows. Every
// adjustment is a PURE function of (send time, the link's window timeline,
// the message's per-pair index, the policy): it never looks at barrier or
// window structure, wall clock, or thread identity. That purity is what
// keeps a federated run bit-identical at any shard/thread count even while
// links are degraded — the differential conformance suite pins it.
//
// Semantics per window mode (the window covering the SEND time governs the
// whole delivery; windows on one direction must not overlap):
//   * kSlow  — propagation stretched: delivery at
//              send + (nominal - send) * slow_factor.
//   * kLossy — attempt 0 arrives at the nominal time; an attempt landing
//              inside the window is lost with probability loss_prob (a
//              deterministic per-(pair, message, attempt) draw) and
//              retransmitted after a jittered-exponential backoff. An
//              attempt landing at/after the window's end always succeeds,
//              so a (finite) lossy window delays but never loses messages.
//   * kDown  — closed window [start, end): the sender retries on the same
//              jittered-exponential schedule until the first attempt at or
//              after the heal time; delivery then happens at
//              max(nominal, that attempt). Open window [start, inf): the
//              message is NOT deliverable — the federation mailbox parks it
//              (bounded by LinkPolicy::parked_capacity) and drains the
//              queue in FIFO order once heal() closes the window.
//
// Redelivery backoff: attempt k (k >= 1) happens
//     timeout * 2^(k-1) * (1 + jitter_frac * u_k)
// after the previous one, capped at backoff_cap_s before jitter; u_k is a
// SplitMix64 counter draw keyed by (seed, src, dst, message index, k).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace epm::network {

enum class LinkMode : std::uint8_t {
  kUp = 0,
  kSlow = 1,
  kLossy = 2,
  kDown = 3,
};

struct LinkWindow {
  double start_s = 0.0;
  /// End of the window; +infinity = open-ended (kDown only), closed later
  /// via InterDcLinkPlan::heal().
  double end_s = std::numeric_limits<double>::infinity();
  LinkMode mode = LinkMode::kUp;
  double slow_factor = 1.0;  ///< kSlow: propagation multiplier, >= 1
  double loss_prob = 0.0;    ///< kLossy: per-attempt loss probability in [0,1]
};

struct LinkPolicy {
  /// Mailbox parking bound per (src, dst) pair during an open partition;
  /// exceeding it throws (bounded buffering, not silent drop).
  std::size_t parked_capacity = 65536;
  /// Sender-side delivery timeout: the base redelivery interval.
  double redelivery_timeout_s = 0.25;
  /// Exponential backoff cap (pre-jitter).
  double backoff_cap_s = 8.0;
  /// Jitter fraction in [0, 1): each backoff stretches by up to this much.
  double jitter_frac = 0.1;
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
};

struct LinkDelivery {
  /// False only for sends inside an open-ended partition window: the
  /// message must be parked until the link heals.
  bool deliverable = true;
  double when_s = 0.0;
  /// Number of redelivery attempts a down window forced (0 when the link
  /// was up/slow/lossy-but-lucky at the send time).
  std::uint32_t redeliveries = 0;
};

/// Scripted degradation timeline for every directed link of a fleet.
class InterDcLinkPlan {
 public:
  explicit InterDcLinkPlan(std::size_t sites, LinkPolicy policy = {});

  std::size_t site_count() const { return sites_; }
  const LinkPolicy& policy() const { return policy_; }
  /// True when no window was ever scripted (the fast path: no per-message
  /// adjustment at all).
  bool pristine() const { return windows_.empty(); }

  /// Scripts a slowdown/lossy/partition window on the src->dst direction.
  /// Windows on one direction must not overlap; lossy windows must be
  /// finite (an eternal lossy link could defer a message forever).
  void slow(std::size_t src, std::size_t dst, double start_s, double end_s,
            double factor);
  void lose(std::size_t src, std::size_t dst, double start_s, double end_s,
            double loss_prob);
  /// Partition src->dst from `start_s`; omit `end_s` (infinity) for an
  /// open-ended cut to be healed at runtime.
  void partition(std::size_t src, std::size_t dst, double start_s,
                 double end_s = std::numeric_limits<double>::infinity());
  /// Closes the open partition window on src->dst at `end_s`. Call only
  /// between federation runs, with `end_s` at or beyond the committed
  /// horizon — redelivery then lands strictly after everything already
  /// executed.
  void heal(std::size_t src, std::size_t dst, double end_s);

  /// True when an open-ended partition window covers time `t`.
  bool partitioned_at(std::size_t src, std::size_t dst, double t) const;

  /// The delivery adjustment for the `msg_index`-th message ever sent on
  /// src->dst: sent at `send_s`, nominally arriving at `nominal_when_s`.
  /// Pure; the result never precedes `nominal_when_s`.
  LinkDelivery adjust(std::size_t src, std::size_t dst, double send_s,
                      double nominal_when_s, std::uint64_t msg_index) const;

 private:
  struct PairWindows {
    std::size_t src;
    std::size_t dst;
    std::vector<LinkWindow> windows;  ///< sorted by start, non-overlapping
  };

  std::vector<LinkWindow>& pair(std::size_t src, std::size_t dst);
  const std::vector<LinkWindow>* find_pair(std::size_t src,
                                           std::size_t dst) const;
  void insert_window(std::size_t src, std::size_t dst, LinkWindow w);
  void check_pair(std::size_t src, std::size_t dst) const;
  /// Jitter draw u_k in [0, 1) for attempt k of a message.
  double jitter_u(std::size_t src, std::size_t dst, std::uint64_t msg_index,
                  std::uint32_t attempt) const;

  std::size_t sites_;
  LinkPolicy policy_;
  std::vector<PairWindows> windows_;
};

}  // namespace epm::network
