#include "network/interdc.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/require.h"

namespace epm::network {

namespace {
constexpr double kEarthRadiusM = 6.371e6;
constexpr double kLightSpeedMps = 2.99792458e8;
constexpr double kPi = 3.14159265358979323846;
}  // namespace

double great_circle_m(double lat1_deg, double lon1_deg, double lat2_deg,
                      double lon2_deg) {
  const double lat1 = lat1_deg * kPi / 180.0;
  const double lat2 = lat2_deg * kPi / 180.0;
  const double dlat = (lat2_deg - lat1_deg) * kPi / 180.0;
  const double dlon = (lon2_deg - lon1_deg) * kPi / 180.0;
  // Haversine: numerically stable for the short hops metro pairs produce.
  const double a = std::sin(dlat / 2.0) * std::sin(dlat / 2.0) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2.0) *
                       std::sin(dlon / 2.0);
  const double c = 2.0 * std::atan2(std::sqrt(a), std::sqrt(1.0 - a));
  return kEarthRadiusM * c;
}

double fiber_latency_floor_s(double distance_m, double detour_factor) {
  require(distance_m >= 0.0, "fiber_latency_floor_s: negative distance");
  require(detour_factor >= 1.0,
          "fiber_latency_floor_s: detour factor must be >= 1");
  // Light in fiber propagates at roughly 2/3 of c.
  return distance_m * detour_factor / (kLightSpeedMps * 2.0 / 3.0);
}

InterDcNetwork::InterDcNetwork(std::vector<InterDcSite> sites,
                               double detour_factor, double min_floor_s)
    : sites_(std::move(sites)) {
  require(!sites_.empty(), "InterDcNetwork: need at least one site");
  require(min_floor_s > 0.0, "InterDcNetwork: min floor must be positive");
  const std::size_t n = sites_.size();
  floors_.assign(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double d =
          great_circle_m(sites_[i].latitude_deg, sites_[i].longitude_deg,
                         sites_[j].latitude_deg, sites_[j].longitude_deg);
      floors_[i * n + j] =
          std::max(fiber_latency_floor_s(d, detour_factor), min_floor_s);
    }
  }
  validate();
}

InterDcNetwork::InterDcNetwork(std::vector<InterDcSite> sites,
                               std::vector<double> latency_floor_s)
    : sites_(std::move(sites)), floors_(std::move(latency_floor_s)) {
  require(!sites_.empty(), "InterDcNetwork: need at least one site");
  require(floors_.size() == sites_.size() * sites_.size(),
          "InterDcNetwork: floor matrix must be sites x sites");
  validate();
}

void InterDcNetwork::validate() {
  const std::size_t n = sites_.size();
  min_floor_s_ = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    require(!sites_[i].name.empty(), "InterDcNetwork: site needs a name");
    for (std::size_t j = 0; j < n; ++j) {
      const double f = floors_[i * n + j];
      if (i == j) {
        require(f == 0.0, "InterDcNetwork: diagonal floors must be zero");
        continue;
      }
      require(f > 0.0 && std::isfinite(f),
              "InterDcNetwork: floor " + sites_[i].name + " -> " +
                  sites_[j].name + " must be positive and finite");
      min_floor_s_ = std::min(min_floor_s_, f);
    }
  }
}

const InterDcSite& InterDcNetwork::site(std::size_t i) const {
  require(i < sites_.size(), "InterDcNetwork: site index out of range");
  return sites_[i];
}

double InterDcNetwork::latency_floor_s(std::size_t src,
                                       std::size_t dst) const {
  require(src < sites_.size() && dst < sites_.size(),
          "InterDcNetwork: site index out of range");
  return floors_[src * sites_.size() + dst];
}

}  // namespace epm::network
