#include "network/interdc_link.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/require.h"
#include "core/rng.h"

namespace epm::network {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

const char* mode_name(LinkMode mode) {
  switch (mode) {
    case LinkMode::kUp:
      return "up";
    case LinkMode::kSlow:
      return "slow";
    case LinkMode::kLossy:
      return "lossy";
    case LinkMode::kDown:
      return "down";
  }
  return "?";
}

/// The window covering time `t`, or nullptr. Windows are sorted and
/// non-overlapping, so the last window starting at or before `t` decides.
const LinkWindow* covering(const std::vector<LinkWindow>& windows, double t) {
  const LinkWindow* hit = nullptr;
  for (const LinkWindow& w : windows) {
    if (w.start_s > t) break;
    if (t < w.end_s) hit = &w;
  }
  return hit;
}

}  // namespace

InterDcLinkPlan::InterDcLinkPlan(std::size_t sites, LinkPolicy policy)
    : sites_(sites), policy_(policy) {
  require(sites >= 1, "InterDcLinkPlan: need at least one site");
  require(policy.parked_capacity >= 1,
          "InterDcLinkPlan: parked capacity must be at least 1");
  require(policy.redelivery_timeout_s > 0.0 &&
              std::isfinite(policy.redelivery_timeout_s),
          "InterDcLinkPlan: redelivery timeout must be positive and finite");
  require(policy.backoff_cap_s >= policy.redelivery_timeout_s,
          "InterDcLinkPlan: backoff cap below the redelivery timeout");
  require(policy.jitter_frac >= 0.0 && policy.jitter_frac < 1.0,
          "InterDcLinkPlan: jitter fraction outside [0, 1)");
}

void InterDcLinkPlan::check_pair(std::size_t src, std::size_t dst) const {
  require(src < sites_ && dst < sites_,
          "InterDcLinkPlan: site index out of range (sites = " +
              std::to_string(sites_) + ")");
  require(src != dst, "InterDcLinkPlan: a site has no link to itself");
}

std::vector<LinkWindow>& InterDcLinkPlan::pair(std::size_t src,
                                               std::size_t dst) {
  for (PairWindows& p : windows_) {
    if (p.src == src && p.dst == dst) return p.windows;
  }
  windows_.push_back(PairWindows{src, dst, {}});
  return windows_.back().windows;
}

const std::vector<LinkWindow>* InterDcLinkPlan::find_pair(
    std::size_t src, std::size_t dst) const {
  for (const PairWindows& p : windows_) {
    if (p.src == src && p.dst == dst) return &p.windows;
  }
  return nullptr;
}

void InterDcLinkPlan::insert_window(std::size_t src, std::size_t dst,
                                    LinkWindow w) {
  check_pair(src, dst);
  require(w.start_s >= 0.0 && std::isfinite(w.start_s),
          "InterDcLinkPlan: window start must be finite and >= 0");
  require(w.end_s > w.start_s, "InterDcLinkPlan: window end must follow start");
  auto& windows = pair(src, dst);
  for (const LinkWindow& have : windows) {
    const bool disjoint = w.end_s <= have.start_s || have.end_s <= w.start_s;
    if (!disjoint) {
      throw std::invalid_argument(
          "InterDcLinkPlan: " + std::string(mode_name(w.mode)) + " window [" +
          std::to_string(w.start_s) + ", " + std::to_string(w.end_s) +
          ") on link " + std::to_string(src) + "->" + std::to_string(dst) +
          " overlaps the existing " + mode_name(have.mode) + " window [" +
          std::to_string(have.start_s) + ", " + std::to_string(have.end_s) +
          ")");
    }
  }
  windows.push_back(w);
  std::sort(windows.begin(), windows.end(),
            [](const LinkWindow& a, const LinkWindow& b) {
              return a.start_s < b.start_s;
            });
}

void InterDcLinkPlan::slow(std::size_t src, std::size_t dst, double start_s,
                           double end_s, double factor) {
  require(factor >= 1.0 && std::isfinite(factor),
          "InterDcLinkPlan: slow factor must be finite and >= 1");
  require(std::isfinite(end_s),
          "InterDcLinkPlan: slow windows must be finite");
  LinkWindow w;
  w.start_s = start_s;
  w.end_s = end_s;
  w.mode = LinkMode::kSlow;
  w.slow_factor = factor;
  insert_window(src, dst, w);
}

void InterDcLinkPlan::lose(std::size_t src, std::size_t dst, double start_s,
                           double end_s, double loss_prob) {
  require(loss_prob >= 0.0 && loss_prob <= 1.0,
          "InterDcLinkPlan: loss probability outside [0, 1]");
  require(std::isfinite(end_s),
          "InterDcLinkPlan: lossy windows must be finite (an eternal lossy "
          "link could defer a message forever)");
  LinkWindow w;
  w.start_s = start_s;
  w.end_s = end_s;
  w.mode = LinkMode::kLossy;
  w.loss_prob = loss_prob;
  insert_window(src, dst, w);
}

void InterDcLinkPlan::partition(std::size_t src, std::size_t dst,
                                double start_s, double end_s) {
  LinkWindow w;
  w.start_s = start_s;
  w.end_s = end_s;
  w.mode = LinkMode::kDown;
  insert_window(src, dst, w);
}

void InterDcLinkPlan::heal(std::size_t src, std::size_t dst, double end_s) {
  check_pair(src, dst);
  require(std::isfinite(end_s), "InterDcLinkPlan: heal time must be finite");
  auto& windows = pair(src, dst);
  for (LinkWindow& w : windows) {
    if (w.mode == LinkMode::kDown && w.end_s == kInf) {
      require(end_s > w.start_s,
              "InterDcLinkPlan: heal time precedes the partition start");
      w.end_s = end_s;
      return;
    }
  }
  throw std::invalid_argument("InterDcLinkPlan: no open partition on link " +
                              std::to_string(src) + "->" +
                              std::to_string(dst) + " to heal");
}

bool InterDcLinkPlan::partitioned_at(std::size_t src, std::size_t dst,
                                     double t) const {
  check_pair(src, dst);
  const auto* windows = find_pair(src, dst);
  if (windows == nullptr) return false;
  const LinkWindow* w = covering(*windows, t);
  return w != nullptr && w->mode == LinkMode::kDown && w->end_s == kInf;
}

double InterDcLinkPlan::jitter_u(std::size_t src, std::size_t dst,
                                 std::uint64_t msg_index,
                                 std::uint32_t attempt) const {
  // FNV-1a over the coordinates keeps streams independent per (pair,
  // message, attempt) without any mutable state.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto fold = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xffU;
      h *= 0x100000001b3ULL;
    }
  };
  fold(policy_.seed);
  fold(static_cast<std::uint64_t>(src));
  fold(static_cast<std::uint64_t>(dst));
  fold(msg_index);
  fold(static_cast<std::uint64_t>(attempt));
  return static_cast<double>(SplitMix64::mix(h) >> 11) * 0x1.0p-53;
}

LinkDelivery InterDcLinkPlan::adjust(std::size_t src, std::size_t dst,
                                     double send_s, double nominal_when_s,
                                     std::uint64_t msg_index) const {
  check_pair(src, dst);
  require(nominal_when_s >= send_s,
          "InterDcLinkPlan: nominal delivery precedes the send");
  LinkDelivery out;
  out.when_s = nominal_when_s;
  const auto* windows = find_pair(src, dst);
  if (windows == nullptr) return out;
  const LinkWindow* w = covering(*windows, send_s);
  if (w == nullptr || w->mode == LinkMode::kUp) return out;

  const double timeout = policy_.redelivery_timeout_s;
  const double cap = policy_.backoff_cap_s;
  const auto backoff = [&](std::uint32_t attempt) {
    // attempt k >= 1: timeout * 2^(k-1), capped, stretched by jitter.
    double base = timeout;
    for (std::uint32_t i = 1; i < attempt && base < cap; ++i) base *= 2.0;
    base = std::min(base, cap);
    return base * (1.0 + policy_.jitter_frac *
                             jitter_u(src, dst, msg_index, attempt));
  };

  switch (w->mode) {
    case LinkMode::kSlow:
      out.when_s = send_s + (nominal_when_s - send_s) * w->slow_factor;
      return out;
    case LinkMode::kLossy: {
      // Attempt 0 arrives at the nominal time; each lost attempt triggers a
      // retransmission one backoff later. An attempt at/after the window end
      // always lands, so the loop terminates at the (finite) window edge.
      double t = nominal_when_s;
      std::uint32_t attempt = 0;
      while (t < w->end_s &&
             jitter_u(src, dst, msg_index, 1000000U + attempt) <
                 w->loss_prob) {
        ++attempt;
        t += backoff(attempt);
      }
      out.when_s = t;
      out.redeliveries = attempt;
      return out;
    }
    case LinkMode::kDown: {
      if (w->end_s == kInf) {
        out.deliverable = false;
        out.when_s = 0.0;
        return out;
      }
      // Retry until the first attempt at/after the heal; the payload then
      // also needs its propagation time, so delivery never precedes the
      // nominal arrival.
      double t = send_s;
      std::uint32_t attempt = 0;
      do {
        ++attempt;
        t += backoff(attempt);
      } while (t < w->end_s);
      out.when_s = std::max(nominal_when_s, t);
      out.redeliveries = attempt;
      return out;
    }
    case LinkMode::kUp:
      break;
  }
  return out;
}

}  // namespace epm::network
