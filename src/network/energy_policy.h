// Link energy-management policies from ref [23] (Nedevschi et al.,
// NSDI'08), as the paper's §4.3 survey cites them:
//
//   * always-on            — port at full rate regardless of load
//   * sleeping             — buffer-and-burst: the port sleeps between
//                            bursts, paying a wake latency and the buffering
//                            delay of the aggregation interval
//   * rate adaptation      — the port runs continuously at the slowest rate
//                            that carries the offered load, paying increased
//                            serialization delay
//
// Each policy evaluates to (power, added mean delay) for one port at a
// given offered load — the exact energy/latency trade-off the reference
// studies, reproduced per-link and summed by the bench over a diurnal day.
#pragma once

#include <cstddef>

#include "network/switch_power.h"

namespace epm::network {

enum class LinkPolicy { kAlwaysOn, kSleeping, kRateAdaptation };

struct LinkEvaluation {
  double power_w = 0.0;
  /// Mean extra delay per packet vs an always-on full-rate port.
  double added_delay_s = 0.0;
  /// Fraction of time the port is awake (1.0 unless sleeping).
  double awake_fraction = 1.0;
  /// Selected rate index (rate adaptation) or the top rate otherwise.
  std::size_t rate = 0;
};

struct SleepingConfig {
  /// Packets are buffered and released in bursts every this many seconds;
  /// the port sleeps between bursts when the load allows.
  double burst_interval_s = 0.01;
  /// Mean packet size for serialization-delay accounting.
  double packet_bits = 12000.0;  ///< 1500 B
};

/// Evaluates one port under `policy` at `load_gbps` offered load.
LinkEvaluation evaluate_link(const SwitchPowerModel& model, LinkPolicy policy,
                             double load_gbps, const SleepingConfig& config = {});

}  // namespace epm::network
