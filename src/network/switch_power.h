// Network switch power model (paper §4.3, ref [23] Nedevschi et al.,
// "Reducing network energy consumption via sleeping and rate-adaptation").
//
//   "Many components and devices, such as CPU, disk, memory, servers and
//    routers, consume substantial power when it is turned on, even with no
//    active workload... Similar concepts have been explored to putting
//    networking devices to sleep for energy conservation."
//
// A switch has a chassis floor plus per-port power. Ports support multiple
// operating rates (power grows sub-linearly with rate) and a low-power
// sleep state with a wake latency — exactly the two knobs ref [23] studies.
#pragma once

#include <cstddef>
#include <vector>

namespace epm::network {

struct PortRate {
  double capacity_gbps;
  double active_power_w;  ///< port powered at this rate (load-independent)
};

struct SwitchPowerConfig {
  std::size_t ports = 48;
  double chassis_power_w = 90.0;  ///< fans, fabric, control plane
  /// Supported operating rates, ascending capacity. Power is dominated by
  /// the PHY/SerDes rate, not by utilization (ref [23]'s key observation).
  std::vector<PortRate> rates{{0.1, 0.7}, {1.0, 1.8}, {10.0, 5.0}};
  double sleep_power_w = 0.1;  ///< per sleeping port
  double wake_latency_s = 0.001;
};

class SwitchPowerModel {
 public:
  explicit SwitchPowerModel(SwitchPowerConfig config);

  const SwitchPowerConfig& config() const { return config_; }
  std::size_t rate_count() const { return config_.rates.size(); }
  double max_rate_gbps() const { return config_.rates.back().capacity_gbps; }

  /// Power of one port running continuously at rate index `rate`.
  double port_power_w(std::size_t rate) const;
  /// Slowest rate whose capacity covers `load_gbps`; highest rate if none.
  std::size_t rate_for_load(double load_gbps) const;

  /// Whole-switch power: `port_rates[i]` gives each active port's rate
  /// index, absent ports (beyond the vector) count as sleeping.
  double switch_power_w(const std::vector<std::size_t>& port_rates,
                        std::size_t sleeping_ports) const;

 private:
  SwitchPowerConfig config_;
};

}  // namespace epm::network
