#include "network/energy_policy.h"

#include <algorithm>

#include "core/require.h"

namespace epm::network {
namespace {

double serialization_delay_s(double packet_bits, double rate_gbps) {
  return packet_bits / (rate_gbps * 1e9);
}

}  // namespace

LinkEvaluation evaluate_link(const SwitchPowerModel& model, LinkPolicy policy,
                             double load_gbps, const SleepingConfig& config) {
  require(load_gbps >= 0.0, "evaluate_link: negative load");
  require(load_gbps <= model.max_rate_gbps() + 1e-12,
          "evaluate_link: load exceeds the port's top rate");
  require(config.burst_interval_s > 0.0 && config.packet_bits > 0.0,
          "evaluate_link: invalid sleeping configuration");

  const std::size_t top = model.rate_count() - 1;
  const double base_delay =
      serialization_delay_s(config.packet_bits, model.max_rate_gbps());

  LinkEvaluation eval;
  switch (policy) {
    case LinkPolicy::kAlwaysOn: {
      eval.rate = top;
      eval.power_w = model.port_power_w(top);
      eval.added_delay_s = 0.0;
      eval.awake_fraction = 1.0;
      break;
    }
    case LinkPolicy::kSleeping: {
      // Buffer-and-burst at full rate: awake long enough per interval to
      // drain the buffered bits plus one wake transition.
      eval.rate = top;
      const double utilization = load_gbps / model.max_rate_gbps();
      const double awake_per_interval =
          utilization * config.burst_interval_s +
          (load_gbps > 0.0 ? model.config().wake_latency_s : 0.0);
      eval.awake_fraction = std::min(awake_per_interval / config.burst_interval_s, 1.0);
      eval.power_w = eval.awake_fraction * model.port_power_w(top) +
                     (1.0 - eval.awake_fraction) * model.config().sleep_power_w;
      // A packet waits on average half the burst interval, plus the wake.
      eval.added_delay_s =
          load_gbps > 0.0
              ? 0.5 * config.burst_interval_s + model.config().wake_latency_s
              : 0.0;
      break;
    }
    case LinkPolicy::kRateAdaptation: {
      eval.rate = model.rate_for_load(load_gbps);
      eval.power_w = model.port_power_w(eval.rate);
      eval.awake_fraction = 1.0;
      // Extra serialization delay of the slower PHY, queue-amplified by the
      // port's utilization at the chosen rate (M/M/1-style inflation).
      const double cap = model.config().rates[eval.rate].capacity_gbps;
      const double rho = std::min(load_gbps / cap, 0.95);
      const double service = serialization_delay_s(config.packet_bits, cap);
      eval.added_delay_s = service / (1.0 - rho) - base_delay;
      eval.added_delay_s = std::max(eval.added_delay_s, 0.0);
      break;
    }
  }
  return eval;
}

}  // namespace epm::network
