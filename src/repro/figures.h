// Numeric figure reproduction, factored out of the bench mains.
//
// Each fig*() function computes the quantitative content of one paper-figure
// reproduction as a pure FigureTable (fixed seeds, no I/O). The bench
// binaries render these tables for humans; tests/golden diffs them against
// checked-in CSVs so figure-producing code cannot silently drift.
#pragma once

#include <string>
#include <vector>

namespace epm::repro {

struct FigureTable {
  std::string name;
  std::vector<std::string> columns;
  std::vector<std::vector<double>> rows;

  double at(std::size_t row, std::size_t col) const { return rows[row][col]; }
  /// Header line of column names, then one comma-separated row per line,
  /// doubles at round-trip precision.
  std::string to_csv() const;
  static FigureTable from_csv(const std::string& name, const std::string& csv);
};

/// Fig. 1: power flow through the tier-2 distribution tree over IT load.
/// Columns: load_frac, servers, rack_kw, critical_kw, ups_in_kw, mech_kw,
/// transformer_in_kw, utility_kw, loss_kw, pue.
FigureTable fig1_power_flow();

/// Fig. 1 inset: per-stage share of utility draw at 50% IT load.
/// Columns: stage (0=critical IT, 1=cooling, 2=UPS loss, 3=PDU loss,
/// 4=transformer loss), kw, share_of_utility.
FigureTable fig1_stage_shares();

/// Fig. 2: machine-room dynamics across a load step at t=2h, sampled every
/// 15 minutes for 6 hours.
/// Columns: t_h, it_heat_kw, zone0_c, zone1_c, supply_c, crac_actions,
/// alarms.
FigureTable fig2_cooling_dynamics();

/// Fig. 3: Messenger week (seed 2009), per-day stats.
/// Columns: day, mean_conn_norm, peak_conn_norm, mean_login_rps,
/// peak_login_rps.
FigureTable fig3_daily_stats();

/// Fig. 3 callouts, single row.
/// Columns: afternoon_to_midnight_ratio, weekday_to_weekend_ratio,
/// peak_login_rps, flash_crowd_count.
FigureTable fig3_callouts();

/// Fig. 4: three management stacks over a Messenger week (seed 4), one row
/// per stack (0=static, 1=uncoordinated, 2=macro).
/// Columns: stack, it_kwh, mech_kwh, mean_pue, mean_servers_per_svc,
/// sla_violations, thermal_alarms, power_overloads.
FigureTable fig4_stack_outcomes();

/// Fig. 4 decision mix of the macro stack over the same week.
/// Columns: kind (DecisionKind index), count.
FigureTable fig4_decision_counts();

/// All of the above, for iteration in the golden test and regeneration.
std::vector<FigureTable> all_figure_tables();

}  // namespace epm::repro
