#include "repro/figures.h"

#include <cstddef>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "core/require.h"
#include "core/units.h"
#include "macro/coordinator.h"
#include "macro/uncoordinated.h"
#include "sensing/invariants.h"
#include "power/distribution.h"
#include "power/psu.h"
#include "thermal/cooling_plant.h"
#include "thermal/room.h"
#include "workload/messenger.h"

namespace epm::repro {

std::string FigureTable::to_csv() const {
  std::ostringstream out;
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (c) out << ',';
    out << columns[c];
  }
  out << '\n';
  out << std::setprecision(17);
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  }
  return out.str();
}

FigureTable FigureTable::from_csv(const std::string& name,
                                  const std::string& csv) {
  FigureTable table;
  table.name = name;
  std::istringstream stream(csv);
  std::string line;
  if (!std::getline(stream, line)) {
    throw std::invalid_argument("FigureTable: empty CSV for " + name);
  }
  std::istringstream header(line);
  std::string cell;
  while (std::getline(header, cell, ',')) table.columns.push_back(cell);
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    std::istringstream values(line);
    std::vector<double> row;
    while (std::getline(values, cell, ',')) row.push_back(std::stod(cell));
    if (row.size() != table.columns.size()) {
      throw std::invalid_argument("FigureTable: ragged CSV row in " + name);
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

namespace {

// The conservative 2009-era cooling plant both fig1 tables assume: no
// economizer, over-cold supply air, low COP. Keeps PUE near the paper's
// "close to 2".
thermal::CoolingPlantConfig fig1_plant_config() {
  thermal::CoolingPlantConfig config;
  config.has_economizer = false;
  config.cop_at_reference = 2.2;
  config.fan_fraction = 0.22;
  return config;
}

}  // namespace

FigureTable fig1_power_flow() {
  FigureTable table;
  table.name = "fig1_power_flow";
  table.columns = {"load_frac", "servers",    "rack_kw", "critical_kw",
                   "ups_in_kw", "mech_kw",    "transformer_in_kw",
                   "utility_kw", "loss_kw",   "pue"};

  power::Tier2TopologyConfig topo_config;
  const thermal::CoolingPlant plant(fig1_plant_config());
  const power::Psu psu{power::PsuConfig{}};

  for (double load_frac : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    auto topo = power::build_tier2_topology(topo_config);
    const double it_dc_w = topo_config.critical_capacity_w * load_frac * 0.85;
    const double per_server_dc = 450.0 * 0.6;
    const auto servers = static_cast<std::size_t>(it_dc_w / per_server_dc);
    const double psu_in_per_server = psu.input_power_w(per_server_dc);
    const double rack_total = psu_in_per_server * static_cast<double>(servers);
    const double per_rack =
        rack_total / static_cast<double>(topo.rack_ids.size());
    for (auto rack : topo.rack_ids) topo.tree.set_direct_load(rack, per_rack);
    const auto cooling = plant.power_draw(rack_total, 14.0, 25.0);
    topo.tree.set_direct_load(topo.mechanical_id, cooling.total_w());

    const auto report = topo.tree.evaluate();
    const auto& ups_flow = report.flows[topo.ups_id];
    table.rows.push_back({load_frac, static_cast<double>(servers),
                          to_kilowatts(rack_total),
                          to_kilowatts(report.critical_power_w),
                          to_kilowatts(ups_flow.input_w),
                          to_kilowatts(report.mechanical_power_w),
                          to_kilowatts(report.flows[1].input_w),
                          to_kilowatts(report.utility_draw_w),
                          to_kilowatts(report.total_loss_w), report.pue});
  }
  return table;
}

FigureTable fig1_stage_shares() {
  FigureTable table;
  table.name = "fig1_stage_shares";
  table.columns = {"stage", "kw", "share_of_utility"};

  power::Tier2TopologyConfig topo_config;
  const thermal::CoolingPlant plant(fig1_plant_config());
  auto topo = power::build_tier2_topology(topo_config);
  const double rack_total = 500.0e3;
  for (auto rack : topo.rack_ids) {
    topo.tree.set_direct_load(
        rack, rack_total / static_cast<double>(topo.rack_ids.size()));
  }
  const auto cooling = plant.power_draw(rack_total, 14.0, 25.0);
  topo.tree.set_direct_load(topo.mechanical_id, cooling.total_w());
  const auto report = topo.tree.evaluate();
  const double utility = report.utility_draw_w;

  double pdu_loss = 0.0;
  for (auto id : topo.tree.nodes_of_kind(power::NodeKind::kPdu)) {
    pdu_loss += report.flows[id].loss_w;
  }
  const double stages[5] = {report.critical_power_w, report.mechanical_power_w,
                            report.flows[topo.ups_id].loss_w, pdu_loss,
                            report.flows[1].loss_w};
  for (std::size_t i = 0; i < 5; ++i) {
    table.rows.push_back({static_cast<double>(i), to_kilowatts(stages[i]),
                          stages[i] / utility});
  }
  return table;
}

FigureTable fig2_cooling_dynamics() {
  FigureTable table;
  table.name = "fig2_cooling_dynamics";
  table.columns = {"t_h",      "it_heat_kw",   "zone0_c", "zone1_c",
                   "supply_c", "crac_actions", "alarms"};

  thermal::MachineRoomConfig config;
  thermal::ZoneConfig cold_aisle;
  cold_aisle.name = "cold-aisle";
  thermal::ZoneConfig hot_spot = cold_aisle;
  hot_spot.name = "dense-racks";
  hot_spot.conductance_w_per_c = 2.0e3;
  config.zones = {cold_aisle, hot_spot};
  thermal::CracConfig crac;
  crac.name = "crac0";
  crac.zone_sensitivity = {0.5, 0.5};
  config.cracs = {crac};
  config.airflow_share = {{1.0}, {1.0}};
  config.recirculation = {{0.0, 0.08}, {0.08, 0.0}};
  thermal::MachineRoom room(config);

  const std::vector<double> light{8.0e3, 6.0e3};
  const std::vector<double> heavy{24.0e3, 18.0e3};
  double t = 0.0;
  const double sample_s = minutes(15.0);
  for (int i = 0; i <= 24; ++i) {
    const auto& heat = t < hours(2.0) ? light : heavy;
    if (i > 0) room.run_until(t, heat);
    table.rows.push_back({to_hours(t), (heat[0] + heat[1]) / 1e3,
                          room.zone(0).temperature_c(),
                          room.zone(1).temperature_c(),
                          room.crac(0).supply_temp_c(),
                          static_cast<double>(room.crac(0).control_actions()),
                          static_cast<double>(room.alarms().size())});
    t += sample_s;
  }
  return table;
}

namespace {

workload::MessengerTrace fig3_trace() {
  workload::MessengerConfig config;
  config.step_s = 15.0;
  config.seed = 2009;
  return workload::generate_messenger_trace(config, weeks(1.0));
}

}  // namespace

FigureTable fig3_daily_stats() {
  FigureTable table;
  table.name = "fig3_daily_stats";
  table.columns = {"day", "mean_conn_norm", "peak_conn_norm", "mean_login_rps",
                   "peak_login_rps"};
  const auto trace = fig3_trace();
  const double peak_conn = trace.connections.stats().max();
  for (int d = 0; d < 7; ++d) {
    const auto conn = trace.connections.stats_between(days(d), days(d + 1));
    const auto login =
        trace.login_rate_per_s.stats_between(days(d), days(d + 1));
    table.rows.push_back({static_cast<double>(d), conn.mean() / peak_conn,
                          conn.max() / peak_conn, login.mean(), login.max()});
  }
  return table;
}

FigureTable fig3_callouts() {
  FigureTable table;
  table.name = "fig3_callouts";
  table.columns = {"afternoon_to_midnight_ratio", "weekday_to_weekend_ratio",
                   "peak_login_rps", "flash_crowd_count"};
  workload::MessengerConfig config;
  config.step_s = 15.0;
  config.seed = 2009;
  const auto trace = workload::generate_messenger_trace(config, weeks(1.0));
  const workload::DiurnalModel diurnal(config.diurnal);
  const auto shape = summarize_messenger_trace(trace, diurnal);
  table.rows.push_back({shape.afternoon_to_midnight_ratio,
                        shape.weekday_to_weekend_ratio, shape.peak_login_rate,
                        static_cast<double>(shape.flash_crowd_count)});
  return table;
}

namespace {

struct Fig4Outcome {
  double it_kwh = 0.0;
  double mech_kwh = 0.0;
  double mean_pue = 0.0;
  double mean_servers = 0.0;
  std::size_t sla_violations = 0;
  std::size_t alarms = 0;
  std::size_t overloads = 0;
};

template <typename Stack>
Fig4Outcome fig4_run_week(macro::Facility& facility, Stack& stack,
                          const TimeSeries& demand_level) {
  // Every fig4 epoch is checked against the runtime physical invariants
  // (energy conservation, served <= offered, temperature bounds, PUE floor).
  // The monitor is scoped to this run; no caller steps the facility again.
  sensing::InvariantMonitor monitor;
  facility.attach_invariant_monitor(&monitor);
  Fig4Outcome out;
  double pue_sum = 0.0;
  double servers_sum = 0.0;
  for (std::size_t i = 0; i < demand_level.size(); ++i) {
    const double level = demand_level[i];
    const auto step = stack.step({level * 4000.0, level * 2500.0}, 18.0);
    pue_sum += step.pue;
    for (const auto& svc : step.services) {
      servers_sum += static_cast<double>(svc.serving);
      if (svc.sla_violated) ++out.sla_violations;
    }
    out.overloads += step.power_overloaded ? 1 : 0;
  }
  const auto epochs = static_cast<double>(demand_level.size());
  out.it_kwh = to_kwh(facility.total_it_energy_j());
  out.mech_kwh = to_kwh(facility.total_mechanical_energy_j());
  out.mean_pue = pue_sum / epochs;
  out.alarms = facility.total_thermal_alarms();
  out.mean_servers = servers_sum / epochs / 2.0;
  require(monitor.ok(),
          "fig4: runtime invariant violated:\n" + monitor.report());
  return out;
}

TimeSeries fig4_demand_level() {
  workload::MessengerConfig wl;
  wl.step_s = 60.0;
  wl.seed = 4;
  const auto trace = workload::generate_messenger_trace(wl, weeks(1.0));
  const double peak = trace.connections.stats().max();
  return trace.connections.scaled(1.0 / peak);
}

}  // namespace

FigureTable fig4_stack_outcomes() {
  FigureTable table;
  table.name = "fig4_stack_outcomes";
  table.columns = {"stack",           "it_kwh",         "mech_kwh",
                   "mean_pue",        "mean_servers_per_svc",
                   "sla_violations",  "thermal_alarms", "power_overloads"};
  const auto level = fig4_demand_level();
  const auto config = macro::make_reference_facility(60);

  macro::Facility static_facility(config);
  struct StaticStack {
    macro::Facility& facility;
    macro::FacilityStep step(const std::vector<double>& demand,
                             double outside_c) {
      return facility.step(demand, outside_c);
    }
  } static_stack{static_facility};
  const auto static_out = fig4_run_week(static_facility, static_stack, level);

  macro::Facility baseline_facility(config);
  macro::UncoordinatedStack baseline(baseline_facility);
  const auto micro_out = fig4_run_week(baseline_facility, baseline, level);

  macro::Facility coordinated(config);
  macro::MacroResourceManager manager(coordinated);
  const auto macro_out = fig4_run_week(coordinated, manager, level);

  const Fig4Outcome* outs[3] = {&static_out, &micro_out, &macro_out};
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& o = *outs[i];
    table.rows.push_back({static_cast<double>(i), o.it_kwh, o.mech_kwh,
                          o.mean_pue, o.mean_servers,
                          static_cast<double>(o.sla_violations),
                          static_cast<double>(o.alarms),
                          static_cast<double>(o.overloads)});
  }
  return table;
}

FigureTable fig4_decision_counts() {
  FigureTable table;
  table.name = "fig4_decision_counts";
  table.columns = {"kind", "count"};
  const auto level = fig4_demand_level();
  const auto config = macro::make_reference_facility(60);
  macro::Facility coordinated(config);
  macro::MacroResourceManager manager(coordinated);
  (void)fig4_run_week(coordinated, manager, level);
  constexpr std::size_t kKinds =
      static_cast<std::size_t>(macro::DecisionKind::kLoadShedding) + 1;
  for (std::size_t k = 0; k < kKinds; ++k) {
    table.rows.push_back(
        {static_cast<double>(k),
         static_cast<double>(
             manager.log().count(static_cast<macro::DecisionKind>(k)))});
  }
  return table;
}

std::vector<FigureTable> all_figure_tables() {
  return {fig1_power_flow(),   fig1_stage_shares(), fig2_cooling_dynamics(),
          fig3_daily_stats(),  fig3_callouts(),     fig4_stack_outcomes(),
          fig4_decision_counts()};
}

}  // namespace epm::repro
