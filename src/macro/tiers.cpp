#include "macro/tiers.h"

#include <limits>

#include "core/require.h"

namespace epm::macro {
namespace {

void validate(const TieredServiceSpec& spec, double external_rate,
              const TierSizingConfig& config) {
  require(!spec.tiers.empty(), "size_tiers: no tiers");
  require(spec.end_to_end_sla_s > 0.0, "size_tiers: SLA must be positive");
  require(external_rate >= 0.0, "size_tiers: negative demand");
  require(config.budget_steps >= spec.tiers.size(),
          "size_tiers: need at least one budget step per tier");
  for (const auto& t : spec.tiers) {
    require(t.fanout >= 1.0, "size_tiers: fanout must be >= 1");
    require(t.service_demand_s > 0.0, "size_tiers: demand must be positive");
    require(t.max_servers >= 1, "size_tiers: tier with no servers");
  }
}

/// Solves one tier for a given latency budget; returns feasibility.
bool solve_tier(const TierSpec& tier, const power::ServerPowerModel& model,
                double external_rate, double budget_s,
                const JointPolicyConfig& joint, TierAllocation& out) {
  const double rate = external_rate * tier.fanout;
  const auto decision = decide_joint(model, tier.max_servers, /*current=*/0, rate,
                                     tier.service_demand_s, budget_s, joint);
  if (!decision.feasible) return false;
  out.servers = decision.servers;
  out.pstate = decision.pstate;
  out.latency_budget_s = budget_s;
  out.predicted_response_s = decision.predicted_response_s;
  out.predicted_utilization = decision.predicted_utilization;
  out.predicted_power_w = decision.predicted_power_w;
  return true;
}

}  // namespace

TieredDecision size_tiers_equal_split(const TieredServiceSpec& spec,
                                      double external_rate,
                                      const TierSizingConfig& config) {
  validate(spec, external_rate, config);
  JointPolicyConfig joint = config.joint;
  joint.switching_penalty_w = 0.0;  // pure sizing; no incumbent fleet

  TieredDecision decision;
  decision.feasible = true;
  const double budget = spec.end_to_end_sla_s / static_cast<double>(spec.tiers.size());
  for (const auto& tier : spec.tiers) {
    const power::ServerPowerModel model(tier.server);
    TierAllocation alloc;
    if (!solve_tier(tier, model, external_rate, budget, joint, alloc)) {
      decision.feasible = false;
    }
    decision.total_power_w += alloc.predicted_power_w;
    decision.end_to_end_response_s += alloc.predicted_response_s;
    decision.tiers.push_back(alloc);
  }
  return decision;
}

TieredDecision size_tiers(const TieredServiceSpec& spec, double external_rate,
                          const TierSizingConfig& config) {
  validate(spec, external_rate, config);
  JointPolicyConfig joint = config.joint;
  joint.switching_penalty_w = 0.0;

  const std::size_t tiers = spec.tiers.size();
  std::vector<power::ServerPowerModel> models;
  models.reserve(tiers);
  for (const auto& t : spec.tiers) models.emplace_back(t.server);

  const double step_s =
      spec.end_to_end_sla_s / static_cast<double>(config.budget_steps);

  TieredDecision best;
  double best_power = std::numeric_limits<double>::infinity();
  const auto total_steps = config.budget_steps;
  // Recursive enumeration via explicit stack over the first (tiers-1) parts.
  std::vector<TierAllocation> allocs(tiers);
  auto evaluate = [&](const std::vector<std::size_t>& split) {
    TieredDecision candidate;
    candidate.feasible = true;
    for (std::size_t i = 0; i < tiers; ++i) {
      const double budget = static_cast<double>(split[i]) * step_s;
      if (!solve_tier(spec.tiers[i], models[i], external_rate, budget, joint,
                      allocs[i])) {
        candidate.feasible = false;
        break;
      }
      candidate.total_power_w += allocs[i].predicted_power_w;
      candidate.end_to_end_response_s += allocs[i].predicted_response_s;
    }
    if (!candidate.feasible) return;
    if (candidate.total_power_w < best_power) {
      best_power = candidate.total_power_w;
      candidate.tiers = allocs;
      best = std::move(candidate);
    }
  };

  // Enumerate compositions of budget_steps into `tiers` positive parts: the
  // first (tiers-1) parts odometer over [0, free_steps] extra steps each,
  // the last part absorbs the remainder.
  std::vector<std::size_t> split(tiers, 1);
  const std::size_t free_steps = total_steps - tiers;  // beyond the 1 each
  std::vector<std::size_t> extra(tiers, 0);
  while (true) {
    std::size_t used = 0;
    for (std::size_t i = 0; i + 1 < tiers; ++i) used += extra[i];
    if (used <= free_steps) {
      extra[tiers - 1] = free_steps - used;
      for (std::size_t i = 0; i < tiers; ++i) split[i] = 1 + extra[i];
      evaluate(split);
    }
    std::size_t pos = 0;
    while (pos + 1 < tiers) {
      if (extra[pos] < free_steps) {
        ++extra[pos];
        break;
      }
      extra[pos] = 0;
      ++pos;
    }
    if (pos + 1 >= tiers) break;  // odometer exhausted (or single tier)
  }
  return best;
}

}  // namespace epm::macro
