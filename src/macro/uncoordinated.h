// The uncoordinated baseline stack: every knob managed by its own local
// policy with no shared information — exactly the "micro-level resource
// management... restrained to local optimality" the paper argues against.
//
//   * per-service ondemand DVFS (utilization-driven),
//   * per-service delay-threshold On/Off provisioning (DVS-oblivious),
//   * CRACs chasing their own return-air sensors,
//   * no facility power budgeting (the breaker is the backstop).
#pragma once

#include <memory>
#include <vector>

#include "dvfs/governors.h"
#include "macro/facility.h"
#include "onoff/provisioners.h"

namespace epm::macro {

struct UncoordinatedConfig {
  dvfs::OndemandConfig dvfs;
  onoff::DelayThresholdConfig onoff;
  bool use_sleep_states = true;
};

class UncoordinatedStack {
 public:
  UncoordinatedStack(Facility& facility, UncoordinatedConfig config = {});

  /// One epoch: each local policy reacts to the last epoch it saw, then the
  /// facility advances. CRACs stay in automatic mode.
  FacilityStep step(const std::vector<double>& demand_per_service, double outside_c);

 private:
  Facility& facility_;
  UncoordinatedConfig config_;
  std::vector<dvfs::OndemandGovernor> governors_;
  std::vector<onoff::DelayThresholdProvisioner> provisioners_;
  std::vector<cluster::EpochResult> last_results_;
  bool have_results_ = false;
};

}  // namespace epm::macro
