#include "macro/degradation.h"

#include <algorithm>

#include "core/require.h"

namespace epm::macro {

DegradationPolicy::DegradationPolicy(DegradationPolicyConfig config,
                                     std::size_t service_count,
                                     DecisionLog* log)
    : config_(config), service_count_(service_count), log_(log) {
  require(service_count_ > 0, "DegradationPolicy: no services");
  require(config_.low_tier_service < service_count_,
          "DegradationPolicy: low_tier_service out of range");
  require(config_.low_tier_shed_fraction >= 0.0 &&
              config_.low_tier_shed_fraction <= 1.0,
          "DegradationPolicy: shed fraction outside [0,1]");
  require(config_.reroute_fraction >= 0.0 && config_.reroute_fraction <= 1.0,
          "DegradationPolicy: reroute fraction outside [0,1]");
  require(config_.cooling_shed_fraction >= 0.0 &&
              config_.cooling_shed_fraction <= 1.0,
          "DegradationPolicy: cooling shed fraction outside [0,1]");
  require(config_.overload_shed_fraction >= 0.0 &&
              config_.overload_shed_fraction <= 1.0,
          "DegradationPolicy: overload shed fraction outside [0,1]");
  require(config_.overload_min_shed_rate_per_s >= 0.0,
          "DegradationPolicy: overload shed-rate threshold must be >= 0");
  require(config_.region_loss_reroute_fraction >= 0.0 &&
              config_.region_loss_reroute_fraction <= 1.0,
          "DegradationPolicy: region-loss reroute fraction outside [0,1]");
}

void DegradationPolicy::observe_overload(const OverloadSignal& signal,
                                         double now_s) {
  last_overload_ = signal;
  overload_active_ =
      signal.breaker_open ||
      signal.shed_rate_per_s > config_.overload_min_shed_rate_per_s;
  if (log_) {
    if (overload_active_ && !was_overload_) {
      log_->record({now_s, DecisionKind::kLoadShedding, "",
                    "overload defense engaged: shed batch tier for "
                    "interactive headroom"});
    } else if (!overload_active_ && was_overload_) {
      log_->record({now_s, DecisionKind::kLoadShedding, "",
                    "overload cleared: restore batch tier"});
    }
  }
  was_overload_ = overload_active_;
}

bool DegradationPolicy::on_fault(const faults::FaultEvent& event, bool onset,
                                 double now_s) {
  auto& count = active_[static_cast<std::size_t>(event.type)];
  if (onset) {
    ++count;
  } else if (count > 0) {
    --count;
  }

  const bool cooling = event.type == faults::FaultType::kCracFailure ||
                       event.type == faults::FaultType::kCoolingDerate;
  if (cooling) {
    const double loss = event.type == faults::FaultType::kCracFailure
                            ? 1.0
                            : std::clamp(event.severity, 0.0, 1.0);
    cooling_loss_ = std::max(0.0, cooling_loss_ + (onset ? loss : -loss));
  }

  if (log_ && onset) {
    log_->record({now_s, DecisionKind::kRiskAlert, "",
                  "fault onset: " + faults::to_string(event.type)});
  }

  switch (event.type) {
    case faults::FaultType::kUtilityOutage:
    case faults::FaultType::kCracFailure:
    case faults::FaultType::kCoolingDerate:
    case faults::FaultType::kServerCrash:
    case faults::FaultType::kPsuTrip:
    case faults::FaultType::kFlashCrowd:
    case faults::FaultType::kRegionLoss:
      return true;
    case faults::FaultType::kSensorDropout:
    case faults::FaultType::kSensorStuck:
    case faults::FaultType::kSensorNoise:
      return false;  // the sensing plane's problem, not the coordinator's
    case faults::FaultType::kActuatorFail:
      return false;  // the actuator plane retries; nothing to shed for
    case faults::FaultType::kControllerCrash:
    case faults::FaultType::kControllerHang:
    case faults::FaultType::kControllerRestart:
      return false;  // the control plane's replicas handle their own deaths
  }
  return false;
}

bool DegradationPolicy::any_fault_active() const {
  for (const std::size_t n : active_) {
    if (n > 0) return true;
  }
  return false;
}

DegradationAction DegradationPolicy::react(double now_s,
                                           double battery_ride_through_s) {
  DegradationAction action;
  action.serve_scale.assign(service_count_, 1.0);
  action.shed_scale.assign(service_count_, 0.0);
  action.reroute_scale.assign(service_count_, 0.0);

  action.power_emergency =
      active_[static_cast<std::size_t>(faults::FaultType::kUtilityOutage)] > 0;
  action.cooling_emergency = cooling_loss_ > 0.0;
  action.consolidation_paused =
      config_.pause_consolidation && any_fault_active();

  // Power emergency with an insufficient UPS window: shed the latency-
  // tolerant tier, push interactive traffic to a peer site, throttle, and
  // back off the cooling effort — every watt extends the window.
  const bool shedding = action.power_emergency &&
                        battery_ride_through_s < config_.required_ride_through_s;
  if (shedding) {
    action.shed_scale[config_.low_tier_service] = config_.low_tier_shed_fraction;
    for (std::size_t s = 0; s < service_count_; ++s) {
      if (s != config_.low_tier_service) {
        action.reroute_scale[s] = config_.reroute_fraction;
      }
    }
    action.throttle = config_.throttle_on_power_emergency;
    action.setpoint_delta_c = config_.setpoint_raise_c;
  }

  // Cooling emergency: shed low-tier heat in proportion to the lost cooling
  // capacity and make the surviving CRACs cool harder.
  if (action.cooling_emergency) {
    const double loss = std::min(1.0, cooling_loss_);
    const double shed = config_.cooling_shed_fraction * loss;
    auto& low = action.shed_scale[config_.low_tier_service];
    // Combine with any power-emergency shed multiplicatively so the result
    // stays a fraction and grows monotonically with either emergency.
    low = 1.0 - (1.0 - low) * (1.0 - shed);
    action.healthy_setpoint_delta_c = -config_.setpoint_drop_c * loss;
  }

  // Region emergency: every nearby site shares the lost grid feed, so the
  // posture is the severest tier — evacuate interactive traffic to remote
  // regions, shed the batch tier outright, throttle, and raise setpoints to
  // stretch whatever ride-through the UPS has left. Composes on top of the
  // power/cooling tiers (max, not sum — fractions stay fractions).
  action.region_emergency =
      active_[static_cast<std::size_t>(faults::FaultType::kRegionLoss)] > 0;
  if (action.region_emergency) {
    action.shed_scale[config_.low_tier_service] = 1.0;
    for (std::size_t s = 0; s < service_count_; ++s) {
      if (s != config_.low_tier_service) {
        action.reroute_scale[s] = std::max(
            action.reroute_scale[s], config_.region_loss_reroute_fraction);
      }
    }
    action.throttle = config_.throttle_on_power_emergency;
    action.setpoint_delta_c =
        std::max(action.setpoint_delta_c, config_.setpoint_raise_c);
  }

  // Overload defense engaged (admission stack shedding / breaker open):
  // hand batch capacity to the interactive tier so the reconnect/retry
  // backlog drains within the client timeout. Composes multiplicatively
  // with the power/cooling sheds, like those compose with each other.
  if (overload_active_) {
    auto& low = action.shed_scale[config_.low_tier_service];
    low = 1.0 - (1.0 - low) * (1.0 - config_.overload_shed_fraction);
  }

  for (std::size_t s = 0; s < service_count_; ++s) {
    action.serve_scale[s] =
        (1.0 - action.shed_scale[s]) * (1.0 - action.reroute_scale[s]);
  }

  if (log_) {
    if (shedding && !was_shedding_) {
      log_->record({now_s, DecisionKind::kLoadShedding, "",
                    "power emergency: shed low tier, reroute interactive"});
      log_->record({now_s, DecisionKind::kLoadBalancing, "",
                    "reroute interactive traffic to peer site"});
      if (action.throttle) {
        log_->record({now_s, DecisionKind::kPowerCapping, "",
                      "throttle fleet to deepest P-state"});
      }
    }
    if (action.power_emergency && !was_power_emergency_) {
      log_->record({now_s, DecisionKind::kCoolingControl, "",
                    "raise CRAC setpoints for ride-through"});
    }
    if (action.region_emergency && !was_region_emergency_) {
      log_->record({now_s, DecisionKind::kLoadBalancing, "",
                    "region emergency: evacuate interactive to remote "
                    "regions"});
      log_->record({now_s, DecisionKind::kLoadShedding, "",
                    "region emergency: shed batch tier outright"});
    }
    if (action.cooling_emergency && !was_cooling_emergency_) {
      log_->record({now_s, DecisionKind::kLoadShedding, "",
                    "cooling emergency: shed low tier heat"});
      log_->record({now_s, DecisionKind::kCoolingControl, "",
                    "healthy CRACs cool harder"});
    }
    if (action.consolidation_paused &&
        !(was_power_emergency_ || was_cooling_emergency_ || was_shedding_) &&
        (action.power_emergency || action.cooling_emergency)) {
      log_->record({now_s, DecisionKind::kServerAllocation, "",
                    "pause consolidation during fault"});
    }
  }
  was_shedding_ = shedding;
  was_power_emergency_ = action.power_emergency;
  was_cooling_emergency_ = action.cooling_emergency;
  was_region_emergency_ = action.region_emergency;
  return action;
}

}  // namespace epm::macro
