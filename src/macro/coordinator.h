// The macro-resource management layer (paper §3.2, Fig. 4).
//
// "It takes information such as service-level agreement (SLA), application
//  structures, and environmental conditions... monitors the operation status
//  from application, system, and physical data... and makes decisions that
//  affect power provisioning, cooling control, server allocation, service
//  placement, load balancing, and job priorities."
//
// Concretely, every coordination period the manager:
//   1. updates per-service seasonal demand predictors,
//   2. jointly sizes each cluster's fleet and P-state (decide_joint),
//   3. checks the UPS power budget against the predicted draw and plans
//      caps when oversubscription would overflow (power provisioning),
//   4. steers CRAC supply temperatures from *server-side* knowledge of
//      per-zone heat, instead of letting the CRACs chase their own biased
//      return-air sensors (cooling control), and
//   5. shifts service zone shares away from zones at thermal risk
//      (service placement).
// Every decision lands in the DecisionLog.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "macro/decision_log.h"
#include "macro/degradation.h"
#include "macro/facility.h"
#include "macro/joint_policy.h"
#include "onoff/predictor.h"
#include "sensing/actuator_plane.h"
#include "sensing/estimator.h"
#include "sensing/sensor_plane.h"

namespace epm::macro {

struct MacroManagerConfig {
  JointPolicyConfig joint;
  onoff::SeasonalPredictorConfig predictor;
  /// Coordination cadence in epochs (decisions are slower than epochs, as
  /// Fig. 4's "time scale of demand variations" suggests).
  std::size_t coordinate_every_epochs = 5;
  /// Safety margin in residual sigmas added to demand predictions.
  double demand_margin_sigmas = 1.5;
  /// Keep predicted zone steady-state this far below the alarm threshold.
  double zone_margin_c = 3.0;
  /// Shift load out of a zone only when it gets this close to its alarm
  /// threshold. Must be smaller than zone_margin_c, otherwise placement
  /// churns against the cooling controller's own (efficient) operating
  /// point at exactly alarm - zone_margin_c.
  double placement_trigger_margin_c = 1.0;
  /// Facility power budget; 0 = the UPS capacity from the topology.
  double power_budget_w = 0.0;
  /// Estimated mechanical fraction used when budgeting (before the plant
  /// reacts); the critical budget is what the UPS actually limits.
  bool use_sleep_states = true;
  /// Validation/estimation applied to every sensed channel. The default is
  /// an exact raw passthrough, so the manager's decisions are bit-identical
  /// to direct ground-truth reads until hardening is enabled.
  sensing::EstimatorConfig estimator;
};

/// The manager never touches ground truth directly: every observation goes
/// through a SensorPlane + ValidatedEstimator, and every command (fleet
/// size, P-state, CRAC setpoint, power cap, zone share) is issued through an
/// ActuatorPlane. Pass external planes to subject the manager to sensor and
/// actuator faults; by default it owns exact, infallible planes.
class MacroResourceManager {
 public:
  MacroResourceManager(Facility& facility, MacroManagerConfig config = {},
                       sensing::SensorPlane* sensors = nullptr,
                       sensing::ActuatorPlane* actuators = nullptr);

  /// One epoch: retry pending actuations, coordinate if due, then advance
  /// the facility.
  FacilityStep step(const std::vector<double>& demand_per_service, double outside_c);

  /// Admission-stack feedback (breaker state, shed/retry rates) from the
  /// cluster layer. Posture changes are recorded in the decision log;
  /// while congested, coordination holds fleets at their committed size
  /// (consolidating into a retry storm would amplify it). Never calling
  /// this leaves every decision bit-identical.
  void observe_overload(const OverloadSignal& signal, double now_s);

  const DecisionLog& log() const { return log_; }
  std::size_t capping_epochs() const { return capping_epochs_; }
  /// True while the last observed overload signal reported congestion.
  bool overload_active() const { return overload_active_; }
  const sensing::ValidatedEstimator& estimator() const { return estimator_; }
  const sensing::ActuatorPlane& actuators() const { return *actuators_; }
  /// Oldest accepted-data age across the service channels as of the last
  /// step; drives the staleness margin widening.
  double max_estimate_age_s() const { return max_estimate_age_s_; }

 private:
  void coordinate();
  sensing::Estimate estimate(sensing::ChannelKind kind, std::uint32_t index,
                             double truth, double now_s);
  bool apply_command(const sensing::ActuatorCommand& command);
  void issue(sensing::CommandKind kind, std::size_t target, double value,
             std::vector<double> values = {});

  Facility& facility_;
  MacroManagerConfig config_;
  DecisionLog log_;
  std::unique_ptr<sensing::SensorPlane> owned_sensors_;
  std::unique_ptr<sensing::ActuatorPlane> owned_actuators_;
  sensing::SensorPlane* sensors_ = nullptr;
  sensing::ActuatorPlane* actuators_ = nullptr;
  sensing::ValidatedEstimator estimator_;
  std::vector<onoff::SeasonalPredictor> predictors_;
  std::vector<double> last_arrival_rate_;
  std::vector<double> last_service_demand_s_;
  std::vector<std::size_t> chosen_pstate_;
  double max_estimate_age_s_ = 0.0;
  std::size_t epoch_count_ = 0;
  std::size_t capping_epochs_ = 0;
  OverloadSignal overload_signal_{};
  bool overload_active_ = false;
  bool was_overload_ = false;
};

}  // namespace epm::macro
