// Structured decision log of the macro-resource management layer (Fig. 4:
// the layer "makes decisions that affect power provisioning, cooling
// control, server allocation, service placement, load balancing, and job
// priorities"). Experiments print excerpts and tally categories.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace epm::macro {

enum class DecisionKind {
  kServerAllocation,  ///< On/Off fleet sizing
  kDvfs,              ///< P-state selection
  kCoolingControl,    ///< CRAC setpoint override
  kPlacement,         ///< zone/service load shares
  kPowerCapping,      ///< budget enforcement
  kLoadBalancing,
  kRiskAlert,
  kLoadShedding,      ///< graceful degradation under faults
  kActuation,         ///< actuator-plane retries / failures / timeouts
};

std::string to_string(DecisionKind kind);

struct Decision {
  double time_s = 0.0;
  DecisionKind kind = DecisionKind::kServerAllocation;
  std::string service;  ///< empty for facility-wide actions
  std::string detail;
};

class DecisionLog {
 public:
  void record(Decision decision) { decisions_.push_back(std::move(decision)); }
  const std::vector<Decision>& all() const { return decisions_; }
  std::size_t size() const { return decisions_.size(); }

  std::size_t count(DecisionKind kind) const {
    std::size_t n = 0;
    for (const auto& d : decisions_) {
      if (d.kind == kind) ++n;
    }
    return n;
  }

  std::map<std::string, std::size_t> counts_by_kind() const {
    std::map<std::string, std::size_t> out;
    for (const auto& d : decisions_) ++out[to_string(d.kind)];
    return out;
  }

 private:
  std::vector<Decision> decisions_;
};

inline std::string to_string(DecisionKind kind) {
  switch (kind) {
    case DecisionKind::kServerAllocation:
      return "server-allocation";
    case DecisionKind::kDvfs:
      return "dvfs";
    case DecisionKind::kCoolingControl:
      return "cooling-control";
    case DecisionKind::kPlacement:
      return "placement";
    case DecisionKind::kPowerCapping:
      return "power-capping";
    case DecisionKind::kLoadBalancing:
      return "load-balancing";
    case DecisionKind::kRiskAlert:
      return "risk-alert";
    case DecisionKind::kLoadShedding:
      return "load-shedding";
    case DecisionKind::kActuation:
      return "actuation";
  }
  return "?";
}

}  // namespace epm::macro
