#include "macro/control_plane/lease.h"

#include "core/require.h"

namespace epm::macro {
namespace {

constexpr std::uint32_t kLeaseMagic = 0x7361656c;  // "leas"
constexpr std::uint32_t kLeaseVersion = 1;

}  // namespace

LeaseState::LeaseState(const LeaseConfig& config) : config_(config) {
  require(config_.replicas >= 1, "lease: need at least one replica");
  require(config_.id < config_.replicas, "lease: replica id out of range");
  require(config_.ttl_s > 0.0, "lease: ttl_s must be positive");
  require(config_.ttl_stagger_s >= 0.0, "lease: ttl_stagger_s must be >= 0");
  if (config_.initial_leader != kNoReplica) {
    require(config_.initial_leader < config_.replicas,
            "lease: initial_leader out of range");
    // Seed every replica with the same view: initial_leader holds the
    // smallest positive token congruent to its id, as if it had claimed it
    // just before t = 0. Only the seeded leader records it as claimed.
    const std::uint64_t seed_token = next_eligible_token_seed();
    max_token_ = seed_token;
    leader_ = config_.initial_leader;
    last_heartbeat_s_ = 0.0;
    if (config_.id == config_.initial_leader) {
      role_ = LeaseRole::kLeader;
      token_ = seed_token;
      claimed_.push_back(seed_token);
    }
  }
}

std::uint64_t LeaseState::next_eligible_token_seed() const {
  // Smallest token > 0 with token % replicas == initial_leader.
  const std::uint64_t n = config_.replicas;
  const std::uint64_t r = config_.initial_leader;
  return r == 0 ? n : r;
}

double LeaseState::effective_ttl_s() const {
  return config_.ttl_s +
         static_cast<double>(config_.id) * config_.ttl_stagger_s;
}

std::uint64_t LeaseState::next_eligible_token(std::uint64_t above) const {
  // Smallest token > above with token % replicas == id: walk to the next
  // multiple-of-n boundary past `above`, then land on this replica's slot.
  const std::uint64_t n = config_.replicas;
  const std::uint64_t base = (above / n + 1) * n;
  std::uint64_t t = base + config_.id;
  if (t - n > above) t -= n;
  return t;
}

LeaseAction LeaseState::tick(double now_s) {
  if (role_ == LeaseRole::kCrashed || hung_) return LeaseAction::kNone;
  if (role_ == LeaseRole::kLeader) return LeaseAction::kHeartbeat;
  if (now_s - last_heartbeat_s_ < effective_ttl_s()) return LeaseAction::kNone;
  token_ = next_eligible_token(max_token_);
  max_token_ = token_;
  role_ = LeaseRole::kLeader;
  leader_ = config_.id;
  last_heartbeat_s_ = now_s;
  claimed_.push_back(token_);
  return LeaseAction::kClaimed;
}

void LeaseState::on_heartbeat(std::uint64_t token, std::uint64_t from,
                              double now_s) {
  if (role_ == LeaseRole::kCrashed || hung_) return;
  if (token > max_token_) {
    if (role_ == LeaseRole::kLeader && from != config_.id) {
      role_ = LeaseRole::kFollower;
      ++depositions_;
    }
    max_token_ = token;
    leader_ = from;
    last_heartbeat_s_ = now_s;
    return;
  }
  if (token == max_token_ && from == leader_) {
    last_heartbeat_s_ = now_s;
    return;
  }
  ++stale_heartbeats_;
}

void LeaseState::crash() {
  role_ = LeaseRole::kCrashed;
  hung_ = false;
  token_ = 0;
  max_token_ = 0;
  leader_ = kNoReplica;
  ++crashes_;
}

void LeaseState::restart(double now_s, std::uint64_t journal_token) {
  require(role_ == LeaseRole::kCrashed, "lease: restart without a crash");
  role_ = LeaseRole::kFollower;
  hung_ = false;
  token_ = 0;
  max_token_ = journal_token;
  leader_ = kNoReplica;
  last_heartbeat_s_ = now_s;
}

void LeaseState::save(sim::SnapshotWriter& w) const {
  w.begin_section(kLeaseMagic, kLeaseVersion);
  w.write_u64(config_.replicas);
  w.write_u64(config_.id);
  w.write_u8(static_cast<std::uint8_t>(role_));
  w.write_u8(hung_ ? 1 : 0);
  w.write_u64(token_);
  w.write_u64(max_token_);
  w.write_u64(leader_);
  w.write_f64(last_heartbeat_s_);
  w.write_payload(claimed_);
  w.write_u64(depositions_);
  w.write_u64(stale_heartbeats_);
  w.write_u64(crashes_);
}

void LeaseState::restore(sim::SnapshotReader& r) {
  r.expect_section(kLeaseMagic, kLeaseVersion);
  require(r.read_u64() == config_.replicas,
          "lease snapshot replica count does not match the config");
  require(r.read_u64() == config_.id,
          "lease snapshot replica id does not match the config");
  role_ = static_cast<LeaseRole>(r.read_u8());
  hung_ = r.read_u8() != 0;
  token_ = r.read_u64();
  max_token_ = r.read_u64();
  leader_ = r.read_u64();
  last_heartbeat_s_ = r.read_f64();
  claimed_ = r.read_payload();
  depositions_ = r.read_u64();
  stale_heartbeats_ = r.read_u64();
  crashes_ = r.read_u64();
}

}  // namespace epm::macro
