// Replicated command journal with idempotent replay.
//
// Every actuation the leader issues is journaled first and replicated to all
// replicas as a tagged message. A command's identity is its uid —
// (origin_token << 20) | origin_seq — minted once when the command is first
// created and carried unchanged through replication AND replay. When a new
// leader takes over it replays the whole journal under its own (higher)
// fencing token but with the original uids, so:
//
//   * actuators that already applied a command suppress the replay by uid
//     (idempotence — at-least-once delivery can never double-actuate);
//   * actuators that never saw it (message lost with the dead leader) apply
//     it now — in-flight transitions resume instead of being abandoned.
//
// Commands are absolute setpoints (a cap fraction, a CRAC setpoint, a server
// count), never deltas, so replaying them in seq order is last-writer-wins
// convergent regardless of how many leaders raced.
//
// The journal itself fences: a record whose token is below the highest token
// this replica has witnessed comes from a deposed leader and is rejected —
// the second of the two independent rejection layers the property suite
// pins (the actuator-side FencingLedger is the first).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sim/snapshot.h"

namespace epm::macro {

/// Fleet-level control operations (the macro layer's dangerous knobs).
enum class ControlOp : std::uint8_t {
  kPowerCap = 0,        ///< value = cap fraction in (0, 1]
  kCracSetpoint,        ///< value = CRAC supply setpoint, deg C
  kFleetActive,         ///< value = powered-on server count
  kPauseConsolidation,  ///< value = 1 pause / 0 resume
};

inline constexpr std::uint32_t kAdHocStep = 0xffffffffU;
/// seq values must fit below the uid's token shift.
inline constexpr std::uint64_t kJournalSeqBits = 20;

struct ControlCommand {
  std::uint64_t uid = 0;    ///< (origin_token << kJournalSeqBits) | origin seq
  std::uint64_t seq = 0;    ///< journal slot (replay order)
  std::uint64_t token = 0;  ///< fencing token it is currently sent under
  ControlOp op = ControlOp::kPowerCap;
  std::uint32_t dc = 0;     ///< target datacenter
  double value = 0.0;
  /// Transition-program step index this command realizes (kAdHocStep for
  /// one-off commands); lets a new leader see which steps are already done.
  std::uint32_t program_step = kAdHocStep;
};

/// Wire format: 7 u64s, for tagged federation messages.
sim::TagPayload encode_command(const ControlCommand& cmd);
ControlCommand decode_command(const sim::TagPayload& payload);

class CommandJournal {
 public:
  /// Mints and stores a brand-new command under `token`; the uid binds the
  /// origin token and this journal's next seq. Returns the stored record.
  ControlCommand append_new(std::uint64_t token, ControlOp op, std::uint32_t dc,
                            double value, std::uint32_t program_step);

  /// Merges a replicated record. Duplicate uids are ignored (idempotent);
  /// records whose token is below `fence_token` are rejected as deposed.
  /// Returns true only when the record was actually added.
  bool merge(const ControlCommand& cmd, std::uint64_t fence_token);

  bool contains(std::uint64_t uid) const { return by_uid_.count(uid) != 0; }
  bool has_program_step(std::uint32_t step) const;
  /// Highest token across all records — the durable fencing floor a crashed
  /// replica restarts from.
  std::uint64_t max_token() const { return max_token_; }
  std::size_t size() const { return entries_.size(); }
  std::uint64_t rejected_stale() const { return rejected_stale_; }
  std::uint64_t duplicates() const { return duplicates_; }

  /// Records in (seq, uid) order — the replay order.
  std::vector<ControlCommand> replay_order() const;

  void save(sim::SnapshotWriter& w) const;
  void restore(sim::SnapshotReader& r);

 private:
  /// Keyed by (seq, uid): replay order with a total tie-break, so two
  /// leaders racing the same slot replay deterministically.
  std::map<std::pair<std::uint64_t, std::uint64_t>, ControlCommand> entries_;
  std::map<std::uint64_t, std::uint64_t> by_uid_;  ///< uid -> seq
  std::uint64_t next_seq_ = 0;
  std::uint64_t max_token_ = 0;
  std::uint64_t rejected_stale_ = 0;
  std::uint64_t duplicates_ = 0;
};

}  // namespace epm::macro
