// Deterministic lease-based leader election for the macro control plane.
//
// Every datacenter hosts one controller replica; at most one of them may act
// on the fleet at a time. Instead of a quorum protocol (whose message
// complexity would swamp the bounded-lag federation), safety comes from
// *epoch partitioning*: lease tokens are plain integers, and replica r may
// only ever claim tokens t with t % replicas == r. Two replicas can therefore
// never hold the same token, and since actuators fence on the highest token
// they have seen (sensing/fencing.h), "at most one live lease per epoch"
// holds by construction — no coordination is needed for safety, only for
// liveness.
//
// Liveness: the leader heartbeats its token every control tick. A follower
// whose last heard heartbeat is older than its TTL claims the smallest
// eligible token above everything it has seen and starts leading. TTLs are
// staggered per replica id (ttl + id * stagger) so under a clean leader
// death exactly one follower usually fires first and the rest adopt its
// higher token before their own deadlines — but nothing breaks if several
// claim concurrently: tokens stay unique, the highest one wins, and the
// fencing ledger rejects the rest.
//
// Failure model, mirroring the faults/types.h controller faults:
//   * crash   — volatile lease state is lost; on restart the replica rejoins
//               as a follower seeded from its durable journal's max token and
//               waits a full TTL before claiming.
//   * hang    — the replica freezes: it neither sends nor receives. On
//               resume it still believes whatever it believed before — a
//               deposed leader will heartbeat and act with a stale token
//               until a higher-token heartbeat deposes it. Fencing makes
//               that window harmless.
//
// Everything here is plain data driven by explicit now_s arguments, so the
// state serializes exactly through sim/snapshot.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/snapshot.h"

namespace epm::macro {

inline constexpr std::uint64_t kNoReplica = ~0ULL;

struct LeaseConfig {
  std::uint64_t replicas = 1;   ///< fleet controller count (== datacenters)
  std::uint64_t id = 0;         ///< this replica's index in [0, replicas)
  /// Base heartbeat-loss TTL; replica id's effective deadline is
  /// ttl_s + id * ttl_stagger_s (staggered failure detection).
  double ttl_s = 2.0;
  double ttl_stagger_s = 0.5;
  /// Replica that starts as leader at t = 0 (kNoReplica: cold start, the
  /// first TTL expiry elects). Its seed token is the smallest positive token
  /// congruent to it mod `replicas`.
  std::uint64_t initial_leader = 0;
};

enum class LeaseRole : std::uint8_t {
  kFollower = 0,
  kLeader,
  kCrashed,
};

/// What a tick decided; the owner turns these into federation messages.
enum class LeaseAction : std::uint8_t {
  kNone = 0,      ///< nothing to send
  kHeartbeat,     ///< leading: broadcast heartbeat(token, id)
  kClaimed,       ///< just claimed a lease: broadcast + replay the journal
};

class LeaseState {
 public:
  explicit LeaseState(const LeaseConfig& config);

  /// Advances the failure detector. Leaders ask to heartbeat; followers past
  /// their staggered TTL claim the next eligible token. Crashed or hung
  /// replicas do nothing.
  LeaseAction tick(double now_s);

  /// Delivers a peer heartbeat. A higher token is adopted (deposing this
  /// replica if it was leading); the current leader's token refreshes the
  /// TTL clock; stale tokens are counted and ignored. Crashed and hung
  /// replicas never see the message.
  void on_heartbeat(std::uint64_t token, std::uint64_t from, double now_s);

  /// Crash: volatile state is lost; the replica goes dark.
  void crash();
  /// Restart after a crash: rejoin as a follower knowing only the durable
  /// `journal_token` (the max token in the on-disk journal), with a full
  /// TTL of grace from now_s.
  void restart(double now_s, std::uint64_t journal_token);
  /// Freeze / unfreeze. A hung replica keeps its (increasingly stale) state.
  void hang() { hung_ = true; }
  void resume() { hung_ = false; }

  LeaseRole role() const { return role_; }
  bool is_leader() const { return role_ == LeaseRole::kLeader && !hung_; }
  bool hung() const { return hung_; }
  std::uint64_t token() const { return token_; }
  std::uint64_t max_token_seen() const { return max_token_; }
  std::uint64_t believed_leader() const { return leader_; }
  double last_heartbeat_s() const { return last_heartbeat_s_; }
  double effective_ttl_s() const;

  /// Every token this replica ever claimed, in claim order — the audit trail
  /// the at-most-one-lease-per-epoch property checks across replicas.
  const std::vector<std::uint64_t>& claimed_tokens() const { return claimed_; }
  std::uint64_t depositions() const { return depositions_; }
  std::uint64_t stale_heartbeats() const { return stale_heartbeats_; }
  std::uint64_t crashes() const { return crashes_; }

  void save(sim::SnapshotWriter& w) const;
  void restore(sim::SnapshotReader& r);

 private:
  std::uint64_t next_eligible_token(std::uint64_t above) const;
  std::uint64_t next_eligible_token_seed() const;

  LeaseConfig config_;
  LeaseRole role_ = LeaseRole::kFollower;
  bool hung_ = false;
  std::uint64_t token_ = 0;      ///< this replica's token while leading
  std::uint64_t max_token_ = 0;  ///< highest token ever seen
  std::uint64_t leader_ = kNoReplica;
  double last_heartbeat_s_ = 0.0;
  std::vector<std::uint64_t> claimed_;
  std::uint64_t depositions_ = 0;
  std::uint64_t stale_heartbeats_ = 0;
  std::uint64_t crashes_ = 0;
};

}  // namespace epm::macro
