#include "macro/control_plane/journal.h"

#include <bit>

#include "core/require.h"

namespace epm::macro {
namespace {

constexpr std::uint32_t kJournalMagic = 0x6e72756a;  // "jurn"
constexpr std::uint32_t kJournalVersion = 1;

}  // namespace

sim::TagPayload encode_command(const ControlCommand& cmd) {
  return {cmd.uid,
          cmd.seq,
          cmd.token,
          static_cast<std::uint64_t>(cmd.op),
          static_cast<std::uint64_t>(cmd.dc),
          std::bit_cast<std::uint64_t>(cmd.value),
          static_cast<std::uint64_t>(cmd.program_step)};
}

ControlCommand decode_command(const sim::TagPayload& payload) {
  require(payload.size() == 7, "control command payload must be 7 words");
  ControlCommand cmd;
  cmd.uid = payload[0];
  cmd.seq = payload[1];
  cmd.token = payload[2];
  cmd.op = static_cast<ControlOp>(payload[3]);
  cmd.dc = static_cast<std::uint32_t>(payload[4]);
  cmd.value = std::bit_cast<double>(payload[5]);
  cmd.program_step = static_cast<std::uint32_t>(payload[6]);
  return cmd;
}

ControlCommand CommandJournal::append_new(std::uint64_t token, ControlOp op,
                                          std::uint32_t dc, double value,
                                          std::uint32_t program_step) {
  require(next_seq_ < (1ULL << kJournalSeqBits),
          "command journal seq overflow");
  ControlCommand cmd;
  cmd.seq = next_seq_++;
  cmd.uid = (token << kJournalSeqBits) | cmd.seq;
  cmd.token = token;
  cmd.op = op;
  cmd.dc = dc;
  cmd.value = value;
  cmd.program_step = program_step;
  entries_.emplace(std::make_pair(cmd.seq, cmd.uid), cmd);
  by_uid_.emplace(cmd.uid, cmd.seq);
  if (token > max_token_) max_token_ = token;
  return cmd;
}

bool CommandJournal::merge(const ControlCommand& cmd,
                           std::uint64_t fence_token) {
  if (cmd.token < fence_token) {
    ++rejected_stale_;
    return false;
  }
  if (by_uid_.count(cmd.uid) != 0) {
    ++duplicates_;
    return false;
  }
  entries_.emplace(std::make_pair(cmd.seq, cmd.uid), cmd);
  by_uid_.emplace(cmd.uid, cmd.seq);
  if (cmd.token > max_token_) max_token_ = cmd.token;
  if (cmd.seq >= next_seq_) next_seq_ = cmd.seq + 1;
  return true;
}

bool CommandJournal::has_program_step(std::uint32_t step) const {
  for (const auto& [key, cmd] : entries_) {
    if (cmd.program_step == step) return true;
  }
  return false;
}

std::vector<ControlCommand> CommandJournal::replay_order() const {
  std::vector<ControlCommand> out;
  out.reserve(entries_.size());
  for (const auto& [key, cmd] : entries_) out.push_back(cmd);
  return out;
}

void CommandJournal::save(sim::SnapshotWriter& w) const {
  w.begin_section(kJournalMagic, kJournalVersion);
  w.write_u64(next_seq_);
  w.write_u64(max_token_);
  w.write_u64(rejected_stale_);
  w.write_u64(duplicates_);
  w.write_u64(entries_.size());
  for (const auto& [key, cmd] : entries_) w.write_payload(encode_command(cmd));
}

void CommandJournal::restore(sim::SnapshotReader& r) {
  r.expect_section(kJournalMagic, kJournalVersion);
  next_seq_ = r.read_u64();
  max_token_ = r.read_u64();
  rejected_stale_ = r.read_u64();
  duplicates_ = r.read_u64();
  const std::uint64_t count = r.read_u64();
  entries_.clear();
  by_uid_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    const ControlCommand cmd = decode_command(r.read_payload());
    entries_.emplace(std::make_pair(cmd.seq, cmd.uid), cmd);
    by_uid_.emplace(cmd.uid, cmd.seq);
  }
}

}  // namespace epm::macro
