// One survivable macro-controller replica.
//
// A ControllerReplica combines the lease failure detector (lease.h), the
// replicated command journal (journal.h), and the fleet's transition
// program — the declarative list of (time, dc, op, value) steps the control
// plane must walk the fleet through (eco-mode entry, eco-mode exit, cap
// moves). The replica is a pure state machine: tick()/on_heartbeat()/
// on_journal_record() consume explicit times and messages and return the
// messages to send, so the same code runs identically under any federation
// sharding and serializes exactly through sim/snapshot.h.
//
// Only the current leader issues program steps, at most
// `max_steps_per_tick` per control epoch (real transitions are staged, and
// staging is what makes mid-transition leader death interesting). Every
// issued command is journaled locally, sent to the target datacenter's
// actuator, and replicated to every peer. On taking over a lease the new
// leader replays the entire journal under its own token with the original
// uids — completing whatever transition was in flight — and then resumes
// issuing the steps the dead leader never reached.
#pragma once

#include <cstdint>
#include <vector>

#include "macro/control_plane/journal.h"
#include "macro/control_plane/lease.h"

namespace epm::macro {

struct ProgramStep {
  double at_s = 0.0;  ///< earliest time the leader may issue this step
  std::uint32_t dc = 0;
  ControlOp op = ControlOp::kPowerCap;
  double value = 0.0;
};

enum class OutboundKind : std::uint8_t {
  kHeartbeat = 0,  ///< lease heartbeat, to every datacenter
  kCommand,        ///< actuation, to the target datacenter's actuator
  kJournalRecord,  ///< journal replication, to every peer replica
};

struct Outbound {
  OutboundKind kind = OutboundKind::kHeartbeat;
  std::uint64_t dst = 0;  ///< destination datacenter
  ControlCommand cmd;     ///< kCommand / kJournalRecord payload
  std::uint64_t token = 0;  ///< kHeartbeat: the lease token
  std::uint64_t from = 0;   ///< kHeartbeat: sender replica id
};

struct ControllerConfig {
  LeaseConfig lease;
  std::uint64_t datacenters = 1;
  /// Staging width: program steps the leader issues per control tick.
  std::uint64_t max_steps_per_tick = 2;
};

class ControllerReplica {
 public:
  ControllerReplica(const ControllerConfig& config,
                    std::vector<ProgramStep> program);

  /// One control epoch: runs the lease detector, then (when leading)
  /// heartbeats, replays the journal on a fresh claim, and issues due
  /// program steps. Crashed or hung replicas return nothing.
  std::vector<Outbound> tick(double now_s);

  void on_heartbeat(std::uint64_t token, std::uint64_t from, double now_s);
  /// Journal replication from a peer; fenced by the highest token this
  /// replica has witnessed, so a deposed leader's records are rejected.
  void on_journal_record(const ControlCommand& cmd);

  void crash() { lease_.crash(); }
  /// Restart after a crash: the journal is durable, the lease is rebuilt
  /// from its max token.
  void restart(double now_s) { lease_.restart(now_s, journal_.max_token()); }
  void hang() { lease_.hang(); }
  void resume() { lease_.resume(); }

  const LeaseState& lease() const { return lease_; }
  const CommandJournal& journal() const { return journal_; }
  std::uint64_t commands_issued() const { return commands_issued_; }
  std::uint64_t commands_replayed() const { return commands_replayed_; }
  std::uint64_t journal_drops() const { return journal_drops_; }

  void save(sim::SnapshotWriter& w) const;
  void restore(sim::SnapshotReader& r);

 private:
  void issue_due_steps(double now_s, std::vector<Outbound>& out);

  ControllerConfig config_;
  std::vector<ProgramStep> program_;
  LeaseState lease_;
  CommandJournal journal_;
  std::uint64_t commands_issued_ = 0;
  std::uint64_t commands_replayed_ = 0;
  std::uint64_t journal_drops_ = 0;  ///< records that arrived while dark
};

}  // namespace epm::macro
