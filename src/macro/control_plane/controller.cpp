#include "macro/control_plane/controller.h"

#include "core/require.h"

namespace epm::macro {
namespace {

constexpr std::uint32_t kControllerMagic = 0x6c727463;  // "ctrl"
constexpr std::uint32_t kControllerVersion = 1;

}  // namespace

ControllerReplica::ControllerReplica(const ControllerConfig& config,
                                     std::vector<ProgramStep> program)
    : config_(config), program_(std::move(program)), lease_(config.lease) {
  require(config_.datacenters >= 1, "controller: need at least one DC");
  require(config_.max_steps_per_tick >= 1,
          "controller: max_steps_per_tick must be >= 1");
  require(program_.size() < kAdHocStep,
          "controller: transition program too long");
}

std::vector<Outbound> ControllerReplica::tick(double now_s) {
  std::vector<Outbound> out;
  const LeaseAction action = lease_.tick(now_s);
  if (action == LeaseAction::kNone) return out;

  for (std::uint64_t d = 0; d < config_.datacenters; ++d) {
    Outbound hb;
    hb.kind = OutboundKind::kHeartbeat;
    hb.dst = d;
    hb.token = lease_.token();
    hb.from = config_.lease.id;
    out.push_back(hb);
  }

  if (action == LeaseAction::kClaimed) {
    // Failover: resume every in-flight transition under the new token. The
    // uid is the original one, so actuators that already applied a command
    // suppress the duplicate and the rest apply it now.
    for (const ControlCommand& rec : journal_.replay_order()) {
      Outbound msg;
      msg.kind = OutboundKind::kCommand;
      msg.dst = rec.dc;
      msg.cmd = rec;
      msg.cmd.token = lease_.token();
      out.push_back(msg);
      ++commands_replayed_;
    }
  }

  issue_due_steps(now_s, out);
  return out;
}

void ControllerReplica::issue_due_steps(double now_s,
                                        std::vector<Outbound>& out) {
  std::uint64_t issued_this_tick = 0;
  for (std::uint32_t step = 0;
       step < static_cast<std::uint32_t>(program_.size()); ++step) {
    if (issued_this_tick >= config_.max_steps_per_tick) break;
    const ProgramStep& p = program_[step];
    if (p.at_s > now_s || journal_.has_program_step(step)) continue;
    const ControlCommand cmd =
        journal_.append_new(lease_.token(), p.op, p.dc, p.value, step);
    Outbound msg;
    msg.kind = OutboundKind::kCommand;
    msg.dst = cmd.dc;
    msg.cmd = cmd;
    out.push_back(msg);
    for (std::uint64_t d = 0; d < config_.datacenters; ++d) {
      if (d == config_.lease.id) continue;
      Outbound rep;
      rep.kind = OutboundKind::kJournalRecord;
      rep.dst = d;
      rep.cmd = cmd;
      out.push_back(rep);
    }
    ++commands_issued_;
    ++issued_this_tick;
  }
}

void ControllerReplica::on_heartbeat(std::uint64_t token, std::uint64_t from,
                                     double now_s) {
  lease_.on_heartbeat(token, from, now_s);
}

void ControllerReplica::on_journal_record(const ControlCommand& cmd) {
  if (lease_.role() == LeaseRole::kCrashed || lease_.hung()) {
    ++journal_drops_;
    return;
  }
  journal_.merge(cmd, lease_.max_token_seen());
}

void ControllerReplica::save(sim::SnapshotWriter& w) const {
  w.begin_section(kControllerMagic, kControllerVersion);
  w.write_u64(commands_issued_);
  w.write_u64(commands_replayed_);
  w.write_u64(journal_drops_);
  lease_.save(w);
  journal_.save(w);
}

void ControllerReplica::restore(sim::SnapshotReader& r) {
  r.expect_section(kControllerMagic, kControllerVersion);
  commands_issued_ = r.read_u64();
  commands_replayed_ = r.read_u64();
  journal_drops_ = r.read_u64();
  lease_.restore(r);
  journal_.restore(r);
}

}  // namespace epm::macro
