// What-if risk assessment for macro-level plans (paper §3.2 / Fig. 4):
//
//   "An important role for macro-resource management is to build and refine
//    models to predict performance impacts and risks on resource allocation
//    decisions and to diagnose possible failures."
//
// A plan (per-service fleet/P-state against predicted demand, plus the
// cooling posture) is evaluated *before* actuation: predicted response
// times against SLAs, predicted aggregate power against the critical
// budget, and predicted steady-state zone temperatures against alarm
// thresholds. Each finding carries a human-readable diagnostic.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "power/server_power.h"

namespace epm::macro {

/// One service's piece of the plan.
struct ServicePlan {
  std::string name;
  const power::ServerPowerModel* model = nullptr;  ///< must outlive the call
  std::size_t servers = 1;
  std::size_t pstate = 0;
  double predicted_arrival_rate = 0.0;  ///< requests/s
  double service_demand_s = 0.01;
  double sla_target_s = 0.5;
  /// Fraction of this service's heat landing in each zone (normalized by
  /// the caller; see Facility::zone_share).
  std::vector<double> zone_share;
};

/// The physical envelope the plan must fit in.
struct FacilityEnvelope {
  double power_budget_w = 0.0;  ///< critical (UPS) budget; 0 = unbudgeted
  /// Per-zone thermal parameters.
  std::vector<double> zone_conductance_w_per_c;
  std::vector<double> zone_alarm_c;
  /// Effective supply temperature each zone will receive.
  std::vector<double> zone_supply_c;
  double zone_margin_c = 2.0;  ///< keep steady state this far below alarm
};

struct ServiceRisk {
  double predicted_utilization = 0.0;
  double predicted_response_s = 0.0;
  bool sla_at_risk = false;
  bool saturated = false;  ///< predicted utilization >= 1
};

struct RiskAssessment {
  std::vector<ServiceRisk> services;
  double predicted_it_power_w = 0.0;
  bool power_at_risk = false;
  std::vector<double> predicted_zone_temp_c;
  bool thermal_at_risk = false;
  /// Human-readable findings, one per risk (empty when clean).
  std::vector<std::string> diagnostics;

  bool any_risk() const { return power_at_risk || thermal_at_risk || sla_risk(); }
  bool sla_risk() const {
    for (const auto& s : services) {
      if (s.sla_at_risk || s.saturated) return true;
    }
    return false;
  }
};

/// Evaluates the plan against the envelope. Pure function of its inputs;
/// never actuates anything.
RiskAssessment assess_plan(const std::vector<ServicePlan>& plans,
                           const FacilityEnvelope& envelope);

}  // namespace epm::macro
