// Multi-tier service sizing (paper §3.2):
//
//   "How do services depend on each other? How do different tiers scale
//    when user demands increase or decrease?"
//
// An external request fans out through tiers (web -> app -> storage, each
// with its own fan-out and per-request CPU demand); the user-facing SLA
// bounds the *sum* of tier response times. The coordinator decides, per
// tier, a fleet size and P-state — jointly, by searching over how the
// end-to-end latency budget is split across tiers and solving each tier
// with the joint DVFS x On/Off optimizer. A naive equal split overpays:
// tiers with heavy fan-out or long service demands deserve more budget.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "macro/joint_policy.h"
#include "power/server_power.h"

namespace epm::macro {

struct TierSpec {
  std::string name;
  /// Internal requests at this tier per external request ("each user
  /// request may hit hundreds to thousands of servers", §3).
  double fanout = 1.0;
  /// Mean CPU demand per internal request at reference frequency.
  double service_demand_s = 0.01;
  std::size_t max_servers = 2000;
  power::ServerPowerConfig server;
};

struct TieredServiceSpec {
  std::vector<TierSpec> tiers;
  /// Bound on the sum of tier mean response times.
  double end_to_end_sla_s = 0.3;
};

struct TierAllocation {
  std::size_t servers = 0;
  std::size_t pstate = 0;
  double latency_budget_s = 0.0;
  double predicted_response_s = 0.0;
  double predicted_utilization = 0.0;
  double predicted_power_w = 0.0;
};

struct TieredDecision {
  std::vector<TierAllocation> tiers;
  double total_power_w = 0.0;
  double end_to_end_response_s = 0.0;
  bool feasible = false;
};

struct TierSizingConfig {
  /// Granularity of the latency-budget search (fractions of the SLA).
  std::size_t budget_steps = 24;
  JointPolicyConfig joint;  ///< headroom applies within each tier's budget
};

/// Sizes every tier for `external_rate` requests/s, minimizing total power
/// subject to the end-to-end SLA, by searching budget splits.
TieredDecision size_tiers(const TieredServiceSpec& spec, double external_rate,
                          const TierSizingConfig& config = {});

/// Baseline: the SLA split equally across tiers.
TieredDecision size_tiers_equal_split(const TieredServiceSpec& spec,
                                      double external_rate,
                                      const TierSizingConfig& config = {});

}  // namespace epm::macro
