#include "macro/geo.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "cluster/queueing.h"
#include "core/require.h"
#include "core/units.h"
#include "onoff/provisioners.h"

namespace epm::macro {

GeoCoordinator::GeoCoordinator(std::vector<SiteConfig> sites, GeoPolicyConfig policy)
    : sites_(std::move(sites)), policy_(policy) {
  require(!sites_.empty(), "GeoCoordinator: no sites");
  require(policy_.sla_latency_s > 0.0, "GeoCoordinator: SLA must be positive");
  require(policy_.target_utilization > 0.0 && policy_.target_utilization < 1.0,
          "GeoCoordinator: target utilization outside (0,1)");
  require(policy_.service_demand_s > 0.0,
          "GeoCoordinator: service demand must be positive");
  for (const auto& s : sites_) {
    require(s.servers >= 1, "GeoCoordinator: site with no servers");
    require(s.distribution_overhead >= 1.0,
            "GeoCoordinator: distribution overhead must be >= 1");
    require(s.electricity_price_per_kwh > 0.0,
            "GeoCoordinator: price must be positive");
    require(s.network_latency_s >= 0.0, "GeoCoordinator: negative latency");
    models_.emplace_back(s.server);
    plants_.emplace_back(s.plant);
  }
}

const SiteConfig& GeoCoordinator::site(std::size_t i) const {
  require(i < sites_.size(), "GeoCoordinator: site index out of range");
  return sites_[i];
}

double GeoCoordinator::site_capacity_rps(std::size_t i) const {
  return static_cast<double>(sites_[i].servers) / policy_.service_demand_s *
         policy_.target_utilization;
}

bool GeoCoordinator::latency_feasible(std::size_t i) const {
  require(i < sites_.size(), "GeoCoordinator: site index out of range");
  const double response = cluster::mg1ps_response_time_s(policy_.service_demand_s,
                                                         policy_.target_utilization);
  return 2.0 * sites_[i].network_latency_s + response <= policy_.sla_latency_s;
}

SiteAllocation GeoCoordinator::load_site(std::size_t i, double rate, double outside_c,
                                         double outside_rh) const {
  SiteAllocation alloc;
  alloc.site = i;
  alloc.arrival_rate_per_s = rate;
  if (rate <= 0.0) {
    alloc.end_to_end_latency_s = 0.0;
    return alloc;
  }
  const auto& model = models_[i];
  alloc.servers_on = std::min<std::size_t>(
      sites_[i].servers,
      onoff::servers_for_load(rate, policy_.service_demand_s, 1.0,
                              policy_.target_utilization));
  const double capacity =
      static_cast<double>(alloc.servers_on) / policy_.service_demand_s;
  const double rho = std::min(rate / capacity, policy_.target_utilization);
  alloc.it_power_w = static_cast<double>(alloc.servers_on) *
                     model.active_power_w(0, rho) * sites_[i].distribution_overhead;
  const auto cooling = plants_[i].power_draw(alloc.it_power_w, 18.0, outside_c,
                                             outside_rh);
  alloc.cooling_power_w = cooling.total_w();
  alloc.economizer_active = cooling.economizer_active;
  alloc.cost_per_hour = to_kwh((alloc.it_power_w + alloc.cooling_power_w) * 3600.0) *
                        sites_[i].electricity_price_per_kwh;
  alloc.end_to_end_latency_s =
      2.0 * sites_[i].network_latency_s +
      cluster::mg1ps_response_time_s(policy_.service_demand_s, rho);
  return alloc;
}

double GeoCoordinator::unit_cost_per_rps(std::size_t i, double outside_c,
                                         double outside_rh) const {
  require(i < sites_.size(), "GeoCoordinator: site index out of range");
  // Cost of one fully-utilized server's worth of requests at this site.
  const auto& model = models_[i];
  const double it_w = model.active_power_w(0, policy_.target_utilization) *
                      sites_[i].distribution_overhead;
  const auto cooling = plants_[i].power_draw(it_w, 18.0, outside_c, outside_rh);
  const double per_server_rps =
      policy_.target_utilization / policy_.service_demand_s;
  return to_kwh((it_w + cooling.total_w()) * 3600.0) *
         sites_[i].electricity_price_per_kwh / per_server_rps;
}

GeoDecision GeoCoordinator::route(double global_rate_per_s,
                                  const std::vector<double>& outside_c,
                                  const std::vector<double>& outside_rh) const {
  require(global_rate_per_s >= 0.0, "GeoCoordinator: negative demand");
  require(outside_c.size() == sites_.size() && outside_rh.size() == sites_.size(),
          "GeoCoordinator: weather vectors must cover every site");

  // Order latency-feasible sites by unit cost under current weather.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    if (latency_feasible(i)) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return unit_cost_per_rps(a, outside_c[a], outside_rh[a]) <
           unit_cost_per_rps(b, outside_c[b], outside_rh[b]);
  });

  GeoDecision decision;
  decision.allocations.reserve(sites_.size());
  double remaining = global_rate_per_s;
  std::vector<double> assigned(sites_.size(), 0.0);
  for (std::size_t i : order) {
    const double take = std::min(remaining, site_capacity_rps(i));
    assigned[i] = take;
    remaining -= take;
    if (remaining <= 0.0) break;
  }
  decision.dropped_rate_per_s = std::max(remaining, 0.0);

  double latency_weight = 0.0;
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    auto alloc = load_site(i, assigned[i], outside_c[i], outside_rh[i]);
    decision.total_cost_per_hour += alloc.cost_per_hour;
    decision.total_power_w += alloc.it_power_w + alloc.cooling_power_w;
    decision.served_rate_per_s += alloc.arrival_rate_per_s;
    latency_weight += alloc.arrival_rate_per_s * alloc.end_to_end_latency_s;
    decision.allocations.push_back(std::move(alloc));
  }
  if (decision.served_rate_per_s > 0.0) {
    decision.mean_latency_s = latency_weight / decision.served_rate_per_s;
  }
  return decision;
}

GeoDecision GeoCoordinator::route_single_home(double global_rate_per_s,
                                              std::size_t home,
                                              const std::vector<double>& outside_c,
                                              const std::vector<double>& outside_rh) const {
  require(home < sites_.size(), "GeoCoordinator: home site out of range");
  require(outside_c.size() == sites_.size() && outside_rh.size() == sites_.size(),
          "GeoCoordinator: weather vectors must cover every site");
  GeoDecision decision;
  double remaining = global_rate_per_s;
  std::vector<double> assigned(sites_.size(), 0.0);
  // Home first, then overflow in index order.
  std::vector<std::size_t> order{home};
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    if (i != home) order.push_back(i);
  }
  for (std::size_t i : order) {
    const double take = std::min(remaining, site_capacity_rps(i));
    assigned[i] = take;
    remaining -= take;
  }
  decision.dropped_rate_per_s = std::max(remaining, 0.0);
  double latency_weight = 0.0;
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    auto alloc = load_site(i, assigned[i], outside_c[i], outside_rh[i]);
    decision.total_cost_per_hour += alloc.cost_per_hour;
    decision.total_power_w += alloc.it_power_w + alloc.cooling_power_w;
    decision.served_rate_per_s += alloc.arrival_rate_per_s;
    latency_weight += alloc.arrival_rate_per_s * alloc.end_to_end_latency_s;
    decision.allocations.push_back(std::move(alloc));
  }
  if (decision.served_rate_per_s > 0.0) {
    decision.mean_latency_s = latency_weight / decision.served_rate_per_s;
  }
  return decision;
}

std::vector<SiteConfig> make_reference_fleet_sites(std::size_t count) {
  require(count >= 2 && count <= 6,
          "make_reference_fleet_sites: count must be in [2, 6]");
  struct Ref {
    const char* name;
    double lat, lon;     // degrees
    double price;        // $/kWh
    double user_lat_s;   // one-way user->site latency
    bool economizer;
  };
  // Ordered so any prefix stays geographically spread (the first four span
  // both US coasts plus Europe and Asia — the 4-DC reference fleet).
  static constexpr Ref kRefs[6] = {
      {"pnw", 45.60, -121.18, 0.07, 0.030, true},     // The Dalles, OR
      {"virginia", 39.04, -77.49, 0.09, 0.015, true}, // Ashburn, VA
      {"ireland", 53.33, -6.25, 0.11, 0.045, true},   // Dublin
      {"singapore", 1.35, 103.82, 0.13, 0.090, false},
      {"saopaulo", -23.55, -46.63, 0.12, 0.075, false},
      {"tokyo", 35.68, 139.69, 0.14, 0.080, false},
  };
  std::vector<SiteConfig> sites;
  sites.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    SiteConfig site;
    site.name = kRefs[i].name;
    site.servers = 1000;
    site.plant.has_economizer = kRefs[i].economizer;
    site.electricity_price_per_kwh = kRefs[i].price;
    site.network_latency_s = kRefs[i].user_lat_s;
    site.latitude_deg = kRefs[i].lat;
    site.longitude_deg = kRefs[i].lon;
    sites.push_back(std::move(site));
  }
  return sites;
}

}  // namespace epm::macro
