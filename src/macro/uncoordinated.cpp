#include "macro/uncoordinated.h"

namespace epm::macro {

UncoordinatedStack::UncoordinatedStack(Facility& facility, UncoordinatedConfig config)
    : facility_(facility), config_(config) {
  for (std::size_t i = 0; i < facility_.service_count(); ++i) {
    governors_.emplace_back(0, config_.dvfs);
    provisioners_.emplace_back(config_.onoff);
  }
}

FacilityStep UncoordinatedStack::step(const std::vector<double>& demand_per_service,
                                      double outside_c) {
  if (have_results_) {
    for (std::size_t i = 0; i < facility_.service_count(); ++i) {
      auto& svc = facility_.service(i);
      const auto& last = last_results_[i];
      // Each policy acts on its own view; neither knows the other exists.
      svc.set_uniform_pstate(governors_[i].decide(svc, last));
      svc.set_target_committed(provisioners_[i].decide(svc, last),
                               config_.use_sleep_states);
    }
  }
  FacilityStep result = facility_.step(demand_per_service, outside_c);
  last_results_ = result.services;
  have_results_ = true;
  return result;
}

}  // namespace epm::macro
