#include "macro/risk.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "cluster/queueing.h"
#include "core/require.h"
#include "core/table.h"

namespace epm::macro {

RiskAssessment assess_plan(const std::vector<ServicePlan>& plans,
                           const FacilityEnvelope& envelope) {
  require(!plans.empty(), "assess_plan: no services");
  const std::size_t zones = envelope.zone_conductance_w_per_c.size();
  require(envelope.zone_alarm_c.size() == zones && envelope.zone_supply_c.size() == zones,
          "assess_plan: inconsistent zone envelope");
  for (double g : envelope.zone_conductance_w_per_c) {
    require(g > 0.0, "assess_plan: conductance must be positive");
  }
  require(envelope.zone_margin_c >= 0.0, "assess_plan: negative margin");

  RiskAssessment out;
  std::vector<double> zone_heat(zones, 0.0);

  for (const auto& plan : plans) {
    require(plan.model != nullptr, "assess_plan: plan without a power model");
    require(plan.servers >= 1, "assess_plan: plan with no servers");
    require(plan.service_demand_s > 0.0 && plan.sla_target_s > 0.0,
            "assess_plan: invalid service parameters");
    require(plan.predicted_arrival_rate >= 0.0, "assess_plan: negative demand");
    require(zones == 0 || plan.zone_share.size() == zones,
            "assess_plan: zone_share must cover every zone");

    ServiceRisk risk;
    const double cap = plan.model->relative_capacity(plan.pstate);
    const double capacity_rps =
        static_cast<double>(plan.servers) * cap / plan.service_demand_s;
    risk.predicted_utilization = plan.predicted_arrival_rate / capacity_rps;
    if (risk.predicted_utilization >= 1.0) {
      risk.saturated = true;
      risk.sla_at_risk = true;
      risk.predicted_response_s = std::numeric_limits<double>::infinity();
      std::ostringstream os;
      os << plan.name << ": plan saturates (" << fmt(risk.predicted_utilization, 2)
         << "x capacity at P" << plan.pstate << " with " << plan.servers
         << " servers)";
      out.diagnostics.push_back(os.str());
    } else {
      risk.predicted_response_s = cluster::mg1ps_response_time_s(
          plan.service_demand_s / cap, risk.predicted_utilization);
      if (risk.predicted_response_s > plan.sla_target_s) {
        risk.sla_at_risk = true;
        std::ostringstream os;
        os << plan.name << ": predicted response " << fmt(risk.predicted_response_s, 3)
           << "s exceeds SLA " << fmt(plan.sla_target_s, 3) << "s";
        out.diagnostics.push_back(os.str());
      }
    }

    const double u = std::min(risk.predicted_utilization, 1.0);
    const double power =
        static_cast<double>(plan.servers) * plan.model->active_power_w(plan.pstate, u);
    out.predicted_it_power_w += power;
    for (std::size_t z = 0; z < zones; ++z) {
      zone_heat[z] += power * plan.zone_share[z];
    }
    out.services.push_back(risk);
  }

  if (envelope.power_budget_w > 0.0 &&
      out.predicted_it_power_w > envelope.power_budget_w) {
    out.power_at_risk = true;
    std::ostringstream os;
    os << "critical power " << fmt(out.predicted_it_power_w / 1e3, 1)
       << "kW exceeds budget " << fmt(envelope.power_budget_w / 1e3, 1) << "kW";
    out.diagnostics.push_back(os.str());
  }

  out.predicted_zone_temp_c.resize(zones);
  for (std::size_t z = 0; z < zones; ++z) {
    out.predicted_zone_temp_c[z] =
        envelope.zone_supply_c[z] + zone_heat[z] / envelope.zone_conductance_w_per_c[z];
    if (out.predicted_zone_temp_c[z] >
        envelope.zone_alarm_c[z] - envelope.zone_margin_c) {
      out.thermal_at_risk = true;
      std::ostringstream os;
      os << "zone " << z << ": predicted steady state "
         << fmt(out.predicted_zone_temp_c[z], 1) << "C within "
         << fmt(envelope.zone_margin_c, 1) << "C of the "
         << fmt(envelope.zone_alarm_c[z], 1) << "C alarm";
      out.diagnostics.push_back(os.str());
    }
  }
  return out;
}

}  // namespace epm::macro
