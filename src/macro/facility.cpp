#include "macro/facility.h"

#include <algorithm>
#include <cmath>

#include "core/require.h"
#include "sensing/invariants.h"

namespace epm::macro {

Facility::Facility(FacilityConfig config)
    : config_(std::move(config)),
      topology_(power::build_tier2_topology(config_.power)),
      room_(config_.room),
      plant_(config_.plant) {
  require(!config_.services.empty(), "Facility: no services");
  require(config_.epoch_s > 0.0, "Facility: epoch must be positive");
  clusters_.reserve(config_.services.size());
  for (const auto& spec : config_.services) {
    clusters_.emplace_back(spec.cluster);
    request_models_.emplace_back(spec.requests);
    std::vector<double> share = spec.zone_share;
    if (share.empty()) share.assign(room_.zone_count(), 1.0);
    require(share.size() == room_.zone_count(),
            "Facility: zone_share must cover every zone");
    double total = 0.0;
    for (double s : share) {
      require(s >= 0.0, "Facility: negative zone share");
      total += s;
    }
    require(total > 0.0, "Facility: zone shares all zero");
    for (double& s : share) s /= total;
    zone_shares_.push_back(std::move(share));
  }
}

cluster::ServiceCluster& Facility::service(std::size_t i) {
  require(i < clusters_.size(), "Facility: service index out of range");
  return clusters_[i];
}

const cluster::ServiceCluster& Facility::service(std::size_t i) const {
  require(i < clusters_.size(), "Facility: service index out of range");
  return clusters_[i];
}

const std::string& Facility::service_name(std::size_t i) const {
  require(i < config_.services.size(), "Facility: service index out of range");
  return config_.services[i].name;
}

workload::RequestModel& Facility::request_model(std::size_t i) {
  require(i < request_models_.size(), "Facility: service index out of range");
  return request_models_[i];
}

void Facility::set_zone_share(std::size_t service, std::vector<double> share) {
  require(service < zone_shares_.size(), "Facility: service index out of range");
  require(share.size() == room_.zone_count(),
          "Facility: zone_share must cover every zone");
  double total = 0.0;
  for (double s : share) {
    require(s >= 0.0, "Facility: negative zone share");
    total += s;
  }
  require(total > 0.0, "Facility: zone shares all zero");
  for (double& s : share) s /= total;
  zone_shares_[service] = std::move(share);
}

const std::vector<double>& Facility::zone_share(std::size_t service) const {
  require(service < zone_shares_.size(), "Facility: service index out of range");
  return zone_shares_[service];
}

FacilityStep Facility::step(const std::vector<double>& demand_per_service,
                            double outside_c) {
  require(demand_per_service.size() == clusters_.size(),
          "Facility: demand vector must cover every service");

  FacilityStep out;
  out.time_s = now_s_;

  // 1. Run every service cluster for one epoch.
  std::vector<double> zone_heat(room_.zone_count(), 0.0);
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    const auto load =
        request_models_[i].offered_load(demand_per_service[i], config_.epoch_s);
    const auto result = clusters_[i].run_epoch(config_.epoch_s, load);
    out.it_power_w += result.server_power_w;
    for (std::size_t z = 0; z < zone_heat.size(); ++z) {
      zone_heat[z] += result.server_power_w * zone_shares_[i][z];
    }
    out.services.push_back(result);
  }

  // 2. Advance the machine room; all server power becomes heat.
  const std::size_t alarms_before = room_.alarms().size();
  room_.run_until(now_s_ + config_.epoch_s, zone_heat);
  out.new_thermal_alarms = room_.alarms().size() - alarms_before;
  alarms_seen_ += out.new_thermal_alarms;
  for (std::size_t z = 0; z < room_.zone_count(); ++z) {
    out.max_zone_temp_c = std::max(out.max_zone_temp_c, room_.zone(z).temperature_c());
  }

  // 3. Cooling plant draw: remove the injected heat at the heat-weighted
  //    mean supply temperature of the active CRACs.
  double total_heat = 0.0;
  for (double h : zone_heat) total_heat += h;
  double supply_mix = 0.0;
  for (std::size_t k = 0; k < room_.crac_count(); ++k) {
    supply_mix += room_.crac(k).supply_temp_c();
  }
  supply_mix /= static_cast<double>(room_.crac_count());
  const auto cooling = plant_.power_draw(total_heat, supply_mix, outside_c);
  out.mechanical_power_w = cooling.total_w();

  // 4. Power tree: spread IT power uniformly over the racks, mechanical
  //    load on its feeder, and evaluate losses/overloads.
  auto& tree = topology_.tree;
  const double per_rack =
      out.it_power_w / static_cast<double>(topology_.rack_ids.size());
  for (power::NodeId rack : topology_.rack_ids) tree.set_direct_load(rack, per_rack);
  tree.set_direct_load(topology_.mechanical_id, out.mechanical_power_w);
  const auto report = tree.evaluate();
  out.utility_draw_w = report.utility_draw_w;
  out.pue = report.pue;
  out.power_overloaded = !report.overloaded.empty();
  if (out.power_overloaded) ++overload_epochs_;

  it_energy_j_ += out.it_power_w * config_.epoch_s;
  mech_energy_j_ += out.mechanical_power_w * config_.epoch_s;
  now_s_ += config_.epoch_s;
  ++epochs_run_;
  for (const auto& observer : observers_) {
    observer(out);
  }
  return out;
}

void Facility::add_step_observer(StepObserver observer) {
  require(static_cast<bool>(observer), "Facility: null step observer");
  observers_.push_back(std::move(observer));
}

void Facility::attach_invariant_monitor(sensing::InvariantMonitor* monitor) {
  require(monitor != nullptr, "Facility: null invariant monitor");
  add_step_observer([this, monitor](const FacilityStep& step) {
    sensing::InvariantInputs in;
    in.time_s = step.time_s;
    in.it_power_w = step.it_power_w;
    in.mechanical_power_w = step.mechanical_power_w;
    in.utility_draw_w = step.utility_draw_w;
    in.pue = step.pue;
    in.max_zone_temp_c = step.max_zone_temp_c;
    for (std::size_t z = 0; z < room_.zone_count(); ++z) {
      in.zone_temps_c.push_back(room_.zone(z).temperature_c());
    }
    for (const auto& r : step.services) {
      in.arrival_rate_per_s.push_back(r.arrival_rate_per_s);
      in.dropped_rate_per_s.push_back(r.dropped_rate_per_s);
    }
    monitor->check(in);
  });
}

std::size_t Facility::total_sla_violation_epochs() const {
  std::size_t n = 0;
  for (const auto& c : clusters_) n += c.sla_violation_epochs();
  return n;
}

FacilityConfig make_reference_facility(std::size_t servers_per_service) {
  FacilityConfig config;

  MacroServiceSpec web;
  web.name = "web";
  web.cluster.server_count = servers_per_service;
  web.cluster.initially_active = servers_per_service;
  web.requests.requests_per_demand_unit = 1.0;  // demand given in requests/s
  web.requests.stochastic_arrivals = false;
  web.zone_share = {0.7, 0.3};

  MacroServiceSpec batch = web;
  batch.name = "batch";
  batch.cluster.sla.target_mean_response_s = 2.0;  // latency-tolerant tier
  batch.zone_share = {0.3, 0.7};

  config.services = {web, batch};

  // Size the UPS for the fleet: 2 services x servers x 300 W peak, plus
  // margin for boot transients.
  const double peak_it =
      2.0 * static_cast<double>(servers_per_service) * 300.0;
  config.power.critical_capacity_w = peak_it * 1.15;
  config.power.pdu_count = 2;
  config.power.racks_per_pdu = 4;
  config.power.rack_capacity_w = peak_it / 4.0;

  config.room = thermal::make_sensitivity_scenario_room(0.6, 0.4);
  config.plant.has_economizer = false;
  return config;
}

}  // namespace epm::macro
