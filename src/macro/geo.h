// Geo-distributed coordination across federated data centers (paper §3.2):
//
//   "Where to migrate power consuming operations to best utilize cooling
//    and power conversion efficiency across data centers without
//    sacrificing user experience?"
//
// Sites differ in climate (economizer availability follows local outside
// air), electricity price, conversion overhead, and network distance from
// the user population. The coordinator splits a global request stream
// across sites to minimize operating cost subject to per-site capacity and
// an end-to-end latency SLA (network + queueing response).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "power/server_power.h"
#include "thermal/cooling_plant.h"

namespace epm::macro {

struct SiteConfig {
  std::string name;
  std::size_t servers = 1000;
  power::ServerPowerConfig server;
  thermal::CoolingPlantConfig plant;
  /// Electrical distribution overhead multiplier on IT power (UPS, PDU,
  /// transformer losses), ~1.10-1.18 for a tier-2 site.
  double distribution_overhead = 1.12;
  double electricity_price_per_kwh = 0.10;
  /// One-way network latency from the user population to this site.
  double network_latency_s = 0.02;
  /// Site coordinates, used to derive inter-site latency floors (and from
  /// them the federation's conservative lookahead — see network/interdc.h).
  double latitude_deg = 0.0;
  double longitude_deg = 0.0;
};

/// Reference fleet for multi-datacenter experiments: up to six real-world
/// site locations (Pacific Northwest, Virginia, Ireland, Singapore, São
/// Paulo, Tokyo) with climate/price/latency parameters in the same spirit
/// as the three-site geo-routing study. `count` in [2, 6].
std::vector<SiteConfig> make_reference_fleet_sites(std::size_t count);

struct GeoPolicyConfig {
  /// End-to-end mean latency objective: 2x network + queueing response.
  double sla_latency_s = 0.25;
  double target_utilization = 0.70;
  /// Mean CPU demand per request (reference frequency).
  double service_demand_s = 0.01;
};

/// What one site is asked to carry, and what it costs.
struct SiteAllocation {
  std::size_t site = 0;
  double arrival_rate_per_s = 0.0;
  std::size_t servers_on = 0;
  double it_power_w = 0.0;
  double cooling_power_w = 0.0;
  bool economizer_active = false;
  double cost_per_hour = 0.0;       ///< electricity cost of this allocation
  double end_to_end_latency_s = 0.0;
};

struct GeoDecision {
  std::vector<SiteAllocation> allocations;  ///< one per site (may be empty)
  double total_cost_per_hour = 0.0;
  double total_power_w = 0.0;
  double served_rate_per_s = 0.0;
  double dropped_rate_per_s = 0.0;  ///< demand no latency-feasible site could take
  /// Request-weighted mean end-to-end latency.
  double mean_latency_s = 0.0;
};

class GeoCoordinator {
 public:
  GeoCoordinator(std::vector<SiteConfig> sites, GeoPolicyConfig policy = {});

  std::size_t site_count() const { return sites_.size(); }
  const SiteConfig& site(std::size_t i) const;

  /// Marginal cost ($/h) per request/s at a site given its current outside
  /// conditions — the greedy routing key ("follow the moon": cold sites
  /// with free cooling and cheap power fill first).
  double unit_cost_per_rps(std::size_t site, double outside_c, double outside_rh) const;

  /// True when the site can meet the latency SLA at the target utilization.
  bool latency_feasible(std::size_t site) const;

  /// Splits `global_rate` across sites by ascending unit cost, respecting
  /// capacity (at the target utilization) and the latency SLA.
  GeoDecision route(double global_rate_per_s, const std::vector<double>& outside_c,
                    const std::vector<double>& outside_rh) const;

  /// Baseline: everything to one site (overflow to others by index).
  GeoDecision route_single_home(double global_rate_per_s, std::size_t home,
                                const std::vector<double>& outside_c,
                                const std::vector<double>& outside_rh) const;

 private:
  SiteAllocation load_site(std::size_t site, double rate, double outside_c,
                           double outside_rh) const;
  double site_capacity_rps(std::size_t site) const;

  std::vector<SiteConfig> sites_;
  std::vector<power::ServerPowerModel> models_;
  std::vector<thermal::CoolingPlant> plants_;
  GeoPolicyConfig policy_;
};

}  // namespace epm::macro
