// Coordinated joint DVFS x On/Off optimization (paper §5.1).
//
// The paper's instability example (ref [29]) arises because the DVFS policy
// and the On/Off policy each optimize alone: DVFS slows servers when
// utilization is low, the delay-threshold On/Off policy reads the resulting
// latency as overload and turns more servers on, and the cycle "may lead to
// poor energy performance, even despite the fact that both... have the same
// energy saving goal."
//
// The coordinated policy removes the cycle by choosing the pair (server
// count, P-state) in one optimization: minimize predicted cluster power
// subject to the predicted M/G/1-PS response time meeting the SLA.
#pragma once

#include <cstddef>

#include "cluster/service_cluster.h"
#include "power/server_power.h"

namespace epm::macro {

struct JointDecision {
  std::size_t servers = 0;
  std::size_t pstate = 0;
  double predicted_power_w = 0.0;
  double predicted_response_s = 0.0;
  double predicted_utilization = 0.0;
  bool feasible = false;  ///< false when even (max servers, P0) misses SLA
};

struct JointPolicyConfig {
  /// Keep predicted response below target * headroom (slack for prediction
  /// error and epoch-scale variation).
  double response_headroom = 0.8;
  double max_utilization = 0.90;
  std::size_t min_servers = 1;
  /// Penalty (in joules) charged per server-state change, making the
  /// optimizer reluctant to churn the fleet for marginal wins. Expressed as
  /// equivalent watt-epochs in the objective.
  double switching_penalty_w = 40.0;
};

/// Solves for minimum-power (servers, pstate) given a predicted arrival
/// rate. `current_servers` anchors the switching penalty.
JointDecision decide_joint(const power::ServerPowerModel& model,
                           std::size_t max_servers, std::size_t current_servers,
                           double predicted_arrival_rate, double service_demand_s,
                           double sla_target_s, const JointPolicyConfig& config = {});

/// Predicted cluster power for `servers` at `pstate` under the given load:
/// idle floor + utilization-proportional dynamic power per server.
double predicted_cluster_power_w(const power::ServerPowerModel& model,
                                 std::size_t servers, std::size_t pstate,
                                 double arrival_rate, double service_demand_s);

}  // namespace epm::macro
