#include "macro/joint_policy.h"

#include <algorithm>
#include <cmath>

#include "cluster/queueing.h"
#include "core/require.h"

namespace epm::macro {

double predicted_cluster_power_w(const power::ServerPowerModel& model,
                                 std::size_t servers, std::size_t pstate,
                                 double arrival_rate, double service_demand_s) {
  require(servers >= 1, "predicted_cluster_power_w: need at least one server");
  const double capacity_rps =
      static_cast<double>(servers) * model.relative_capacity(pstate) / service_demand_s;
  const double rho = std::min(arrival_rate / capacity_rps, 1.0);
  return static_cast<double>(servers) * model.active_power_w(pstate, rho);
}

JointDecision decide_joint(const power::ServerPowerModel& model,
                           std::size_t max_servers, std::size_t current_servers,
                           double predicted_arrival_rate, double service_demand_s,
                           double sla_target_s, const JointPolicyConfig& config) {
  require(max_servers >= 1, "decide_joint: need at least one server");
  require(predicted_arrival_rate >= 0.0, "decide_joint: negative arrival rate");
  require(service_demand_s > 0.0, "decide_joint: demand must be positive");
  require(sla_target_s > 0.0, "decide_joint: SLA target must be positive");
  require(config.response_headroom > 0.0 && config.response_headroom <= 1.0,
          "decide_joint: headroom outside (0,1]");
  require(config.max_utilization > 0.0 && config.max_utilization < 1.0,
          "decide_joint: max_utilization outside (0,1)");

  const double target_s = sla_target_s * config.response_headroom;
  JointDecision best;
  double best_cost = 0.0;

  // Iterate slowest-first so equal-cost ties resolve to the slower (cooler)
  // state — e.g. at zero load every P-state costs the same idle floor.
  for (std::size_t p = model.pstate_count(); p-- > 0;) {
    const double cap = model.relative_capacity(p);
    const double service_s = service_demand_s / cap;  // per-request at this state
    if (service_s >= target_s) continue;  // even an idle server is too slow
    // Response constraint: service_s / (1 - rho) <= target  =>
    //   rho <= 1 - service_s / target.
    const double rho_limit =
        std::min(config.max_utilization, 1.0 - service_s / target_s);
    if (rho_limit <= 0.0) continue;
    const double per_server_rate = cap / service_demand_s;
    std::size_t n =
        predicted_arrival_rate > 0.0
            ? static_cast<std::size_t>(
                  std::ceil(predicted_arrival_rate / (per_server_rate * rho_limit) - 1e-9))
            : config.min_servers;
    n = std::max(n, config.min_servers);
    if (n > max_servers) continue;

    const double power = predicted_cluster_power_w(model, n, p, predicted_arrival_rate,
                                                   service_demand_s);
    const double churn =
        static_cast<double>(n > current_servers ? n - current_servers
                                                : current_servers - n);
    const double cost = power + config.switching_penalty_w * churn;
    if (!best.feasible || cost < best_cost) {
      best.feasible = true;
      best_cost = cost;
      best.servers = n;
      best.pstate = p;
      best.predicted_power_w = power;
      const double rho = predicted_arrival_rate /
                         (static_cast<double>(n) * per_server_rate);
      best.predicted_utilization = rho;
      best.predicted_response_s =
          rho < 1.0 ? cluster::mg1ps_response_time_s(service_s, rho) : target_s;
    }
  }

  if (!best.feasible) {
    // SLA unreachable: run everything flat out (graceful degradation).
    best.servers = max_servers;
    best.pstate = 0;
    best.predicted_power_w = predicted_cluster_power_w(
        model, max_servers, 0, predicted_arrival_rate, service_demand_s);
    const double per_server_rate = model.relative_capacity(0) / service_demand_s;
    best.predicted_utilization = predicted_arrival_rate /
                                 (static_cast<double>(max_servers) * per_server_rate);
  }
  return best;
}

}  // namespace epm::macro
