// Graceful-degradation policy: the macro-resource manager's reaction to
// injected physical faults (paper §2.1/§2.2: the UPS window during utility
// outages, CRAC failures; §4: "performances can degrade gracefully when
// reaching resource limits").
//
// The policy subscribes to the fault injector and, each control epoch,
// converts the set of currently active faults plus the UPS ride-through
// margin into one DegradationAction: shed low-tier (batch) load, re-route a
// fraction of interactive traffic to a peer site, throttle P-states, move
// CRAC setpoints, and pause consolidation. Every posture change lands in
// the DecisionLog.
//
// The reaction is a pure function of the *active fault set* and the battery
// margin — no hysteresis, no internal schedule — which gives the
// monotonicity property the test suite leans on: adding fault events can
// only hold served load equal or push it down, never up.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "faults/types.h"
#include "macro/decision_log.h"

namespace epm::macro {

struct DegradationPolicyConfig {
  /// Index of the sheddable low-tier service (batch in the reference
  /// facility); interactive services are only ever re-routed, not shed.
  std::size_t low_tier_service = 1;
  /// Fraction of low-tier demand shed during a power emergency.
  double low_tier_shed_fraction = 0.85;
  /// Fraction of low-tier demand shed per unit of lost cooling capacity
  /// during a cooling emergency (0 relies on the surviving CRACs alone).
  double cooling_shed_fraction = 0.85;
  /// Fraction of interactive demand re-routed to a peer site during a power
  /// emergency (served remotely — not counted as locally served).
  double reroute_fraction = 0.5;
  /// Shed/re-route only when the UPS cannot carry the present draw this
  /// long (the paper's ride-through window).
  double required_ride_through_s = 1800.0;
  /// Return-setpoint raise applied to every CRAC during a power emergency
  /// (less cooling work, longer ride-through).
  double setpoint_raise_c = 3.0;
  /// Return-setpoint drop applied to *healthy* CRACs during a cooling
  /// emergency (surviving units cool harder).
  double setpoint_drop_c = 4.0;
  /// Throttle the fleet to the deepest P-state during a power emergency.
  bool throttle_on_power_emergency = true;
  /// Stop retiring servers while any fault is active.
  bool pause_consolidation = true;
  /// Fraction of low-tier demand shed while the overload defense reports
  /// congestion (breaker not closed, or shed rate above the threshold), so
  /// brownout shedding and admission control compose instead of fighting:
  /// batch capacity is handed to the interactive tier for retry-storm
  /// recovery. Only engages once observe_overload() has been called — the
  /// default figure paths never are, and are bit-identical.
  double overload_shed_fraction = 1.0;
  /// Shed rate (req/s refused by queue/bucket/breaker) above which the
  /// overload posture engages even with the breaker closed.
  double overload_min_shed_rate_per_s = 1.0;
  /// Fraction of interactive demand evacuated to peer sites while a
  /// kRegionLoss fault is active — the region-emergency tier. A regional
  /// grid loss means every nearby site is dark too, so the default
  /// evacuates everything to remote regions and fully sheds the batch tier.
  double region_loss_reroute_fraction = 1.0;
};

/// Feedback from the cluster admission stack (bounded queue + token bucket
/// + circuit breaker) into the macro layer, sampled once per control epoch.
struct OverloadSignal {
  /// True when the cluster breaker is open or probing (not closed).
  bool breaker_open = false;
  /// Requests per second refused by the admission stack this epoch.
  double shed_rate_per_s = 0.0;
  /// Re-offered (retry) attempts per second this epoch.
  double retry_rate_per_s = 0.0;
};

/// What the facility loop should do this epoch.
struct DegradationAction {
  /// Per-service fraction of offered demand to keep serving locally.
  std::vector<double> serve_scale;
  /// Per-service fraction of offered demand shed outright.
  std::vector<double> shed_scale;
  /// Per-service fraction of offered demand re-routed to a peer site.
  std::vector<double> reroute_scale;
  bool power_emergency = false;
  bool cooling_emergency = false;
  /// Active kRegionLoss fault: the severest tier — full interactive
  /// evacuation, batch fully shed, throttle, consolidation paused.
  bool region_emergency = false;
  bool consolidation_paused = false;
  bool throttle = false;
  /// Delta on every CRAC's return setpoint (positive during power
  /// emergencies).
  double setpoint_delta_c = 0.0;
  /// Additional delta on healthy (underated) CRACs (negative during cooling
  /// emergencies).
  double healthy_setpoint_delta_c = 0.0;
};

class DegradationPolicy {
 public:
  DegradationPolicy(DegradationPolicyConfig config, std::size_t service_count,
                    DecisionLog* log = nullptr);

  /// FaultInjector subscriber: tracks the active set, logs risk alerts.
  /// Returns true for fault types the policy reacts to.
  bool on_fault(const faults::FaultEvent& event, bool onset, double now_s);

  /// Computes this epoch's posture from the active fault set and the UPS
  /// ride-through at the present draw. Logs posture transitions.
  DegradationAction react(double now_s, double battery_ride_through_s);

  /// Admission-stack feedback: while the signal reports congestion, react()
  /// additionally sheds the low tier by overload_shed_fraction. Never
  /// calling this leaves the policy exactly as before (goldens unchanged).
  void observe_overload(const OverloadSignal& signal, double now_s);

  const DegradationPolicyConfig& config() const { return config_; }
  bool any_fault_active() const;
  /// True while the last observed overload signal reported congestion.
  bool overload_active() const { return overload_active_; }
  const OverloadSignal& last_overload() const { return last_overload_; }
  std::size_t active_count(faults::FaultType type) const {
    return active_[static_cast<std::size_t>(type)];
  }
  /// Sum of active cooling-fault severities (CRAC failure counts as 1.0).
  double cooling_loss() const { return cooling_loss_; }

 private:
  DegradationPolicyConfig config_;
  std::size_t service_count_;
  DecisionLog* log_;
  std::array<std::size_t, faults::kFaultTypeCount> active_{};
  double cooling_loss_ = 0.0;
  bool was_power_emergency_ = false;
  bool was_shedding_ = false;
  bool was_cooling_emergency_ = false;
  bool was_region_emergency_ = false;
  bool overload_active_ = false;
  bool was_overload_ = false;
  OverloadSignal last_overload_{};
};

}  // namespace epm::macro
