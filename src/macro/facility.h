// Shared cyber-physical facility plumbing used by both the coordinated
// macro-resource manager and the uncoordinated baseline stack: service
// clusters mapped onto thermal zones, the tier-2 power tree, the machine
// room, and the cooling plant, with unified energy/PUE/alarm accounting.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "cluster/service_cluster.h"
#include "power/distribution.h"
#include "thermal/cooling_plant.h"
#include "thermal/room.h"
#include "workload/request_model.h"

namespace epm::sensing {
class InvariantMonitor;
}

namespace epm::macro {

struct MacroServiceSpec {
  std::string name;
  cluster::ServiceClusterConfig cluster;
  workload::RequestModelConfig requests;
  /// zone_share[z]: fraction of this service's server heat landing in each
  /// thermal zone. Normalized internally; adjusting it is the "placement /
  /// migration" knob.
  std::vector<double> zone_share;
};

struct FacilityConfig {
  std::vector<MacroServiceSpec> services;
  power::Tier2TopologyConfig power;
  thermal::MachineRoomConfig room;
  thermal::CoolingPlantConfig plant;
  double epoch_s = 60.0;
};

/// Per-step outcome across services and the physical plant.
struct FacilityStep {
  double time_s = 0.0;
  std::vector<cluster::EpochResult> services;
  double it_power_w = 0.0;
  double mechanical_power_w = 0.0;
  double utility_draw_w = 0.0;
  double pue = 0.0;
  double max_zone_temp_c = 0.0;
  std::size_t new_thermal_alarms = 0;
  bool power_overloaded = false;
};

/// Owns the clusters and physical models and advances them together. The
/// managers mutate clusters/CRACs/zone shares between steps.
class Facility {
 public:
  explicit Facility(FacilityConfig config);

  std::size_t service_count() const { return clusters_.size(); }
  cluster::ServiceCluster& service(std::size_t i);
  const cluster::ServiceCluster& service(std::size_t i) const;
  const std::string& service_name(std::size_t i) const;
  workload::RequestModel& request_model(std::size_t i);
  thermal::MachineRoom& room() { return room_; }
  const thermal::MachineRoom& room() const { return room_; }
  const thermal::CoolingPlant& plant() const { return plant_; }
  const power::Tier2Topology& power_topology() const { return topology_; }
  double epoch_s() const { return config_.epoch_s; }
  double now_s() const { return now_s_; }

  /// Sets a service's zone heat distribution (normalized internally).
  void set_zone_share(std::size_t service, std::vector<double> share);
  const std::vector<double>& zone_share(std::size_t service) const;

  /// Advances one epoch: runs every cluster under its demand level, injects
  /// the resulting heat into zones, advances the room, evaluates the cooling
  /// plant and power tree.
  FacilityStep step(const std::vector<double>& demand_per_service, double outside_c);

  /// Called after every step with the completed step result.
  using StepObserver = std::function<void(const FacilityStep&)>;
  void add_step_observer(StepObserver observer);

  /// Registers a step observer that feeds every epoch's state (power tree,
  /// PUE, per-service request accounting, zone temperatures) into the
  /// runtime invariant monitor. The monitor must outlive the facility.
  void attach_invariant_monitor(sensing::InvariantMonitor* monitor);

  /// Cumulative totals.
  double total_it_energy_j() const { return it_energy_j_; }
  double total_mechanical_energy_j() const { return mech_energy_j_; }
  double total_energy_j() const { return it_energy_j_ + mech_energy_j_; }
  std::size_t total_sla_violation_epochs() const;
  std::size_t total_thermal_alarms() const { return alarms_seen_; }
  std::size_t total_overload_epochs() const { return overload_epochs_; }
  std::size_t epochs_run() const { return epochs_run_; }

 private:
  FacilityConfig config_;
  std::vector<cluster::ServiceCluster> clusters_;
  std::vector<workload::RequestModel> request_models_;
  std::vector<std::vector<double>> zone_shares_;
  power::Tier2Topology topology_;
  thermal::MachineRoom room_;
  thermal::CoolingPlant plant_;
  std::vector<StepObserver> observers_;
  double now_s_ = 0.0;
  double it_energy_j_ = 0.0;
  double mech_energy_j_ = 0.0;
  std::size_t alarms_seen_ = 0;
  std::size_t overload_epochs_ = 0;
  std::size_t epochs_run_ = 0;
};

/// A ready-made two-service / two-zone / one-CRAC facility used by the
/// Fig. 4 bench, the examples, and the integration tests.
FacilityConfig make_reference_facility(std::size_t servers_per_service = 120);

}  // namespace epm::macro
