#include "macro/coordinator.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/require.h"
#include "core/table.h"
#include "macro/risk.h"
#include "power/capping.h"

namespace epm::macro {

MacroResourceManager::MacroResourceManager(Facility& facility, MacroManagerConfig config)
    : facility_(facility), config_(config) {
  require(config_.coordinate_every_epochs >= 1,
          "MacroResourceManager: coordination cadence must be >= 1 epoch");
  require(config_.zone_margin_c >= 0.0, "MacroResourceManager: negative zone margin");
  require(config_.placement_trigger_margin_c >= 0.0 &&
              config_.placement_trigger_margin_c <= config_.zone_margin_c,
          "MacroResourceManager: placement trigger must be within the zone margin");
  for (std::size_t i = 0; i < facility_.service_count(); ++i) {
    predictors_.emplace_back(config_.predictor);
    last_arrival_rate_.push_back(0.0);
    // Until the first epoch reports a real service demand, assume the
    // RequestModel default (10 ms per request).
    last_service_demand_s_.push_back(0.01);
    chosen_pstate_.push_back(0);
  }
}

FacilityStep MacroResourceManager::step(const std::vector<double>& demand_per_service,
                                        double outside_c) {
  if (epoch_count_ % config_.coordinate_every_epochs == 0) coordinate();
  ++epoch_count_;

  FacilityStep result = facility_.step(demand_per_service, outside_c);
  for (std::size_t i = 0; i < result.services.size(); ++i) {
    const auto& r = result.services[i];
    predictors_[i].observe(r.time_s, r.arrival_rate_per_s);
    last_arrival_rate_[i] = r.arrival_rate_per_s;
    last_service_demand_s_[i] = r.service_demand_s;
  }
  return result;
}

void MacroResourceManager::coordinate() {
  const double now = facility_.now_s();

  // --- 1+2: joint fleet sizing + DVFS per service, from predicted demand.
  double predicted_it_power = 0.0;
  std::vector<double> per_service_power(facility_.service_count(), 0.0);
  for (std::size_t i = 0; i < facility_.service_count(); ++i) {
    auto& svc = facility_.service(i);
    const auto& model = svc.power_model();
    if (predictors_[i].observations() == 0) {
      // Cold start: no demand seen yet. Keep the operator-provisioned fleet
      // rather than shrinking to the minimum on a zero prediction.
      const double current = svc.power_model().idle_power_w() *
                             static_cast<double>(svc.committed_count());
      per_service_power[i] = current;
      predicted_it_power += current;
      continue;
    }
    const double lead_s = model.config().boot_time_s + facility_.epoch_s();
    double predicted = predictors_[i].predict(now + lead_s) +
                       config_.demand_margin_sigmas * predictors_[i].residual_stddev();
    predicted = std::max(predicted, 0.0);

    const auto decision = decide_joint(
        model, svc.server_count(), svc.committed_count(), predicted,
        last_service_demand_s_[i], svc.config().sla.target_mean_response_s,
        config_.joint);
    svc.set_target_committed(decision.servers, config_.use_sleep_states);
    svc.set_uniform_pstate(decision.pstate);
    chosen_pstate_[i] = decision.pstate;
    per_service_power[i] = decision.predicted_power_w;
    predicted_it_power += decision.predicted_power_w;

    std::ostringstream detail;
    detail << "servers=" << decision.servers << " pstate=P" << decision.pstate
           << " predicted_lambda=" << fmt(predicted, 1)
           << "/s predicted_power=" << fmt(decision.predicted_power_w / 1e3, 1) << "kW";
    log_.record({now, DecisionKind::kServerAllocation, facility_.service_name(i),
                 detail.str()});
    log_.record({now, DecisionKind::kDvfs, facility_.service_name(i),
                 "P" + std::to_string(decision.pstate)});
    if (!decision.feasible) {
      log_.record({now, DecisionKind::kRiskAlert, facility_.service_name(i),
                   "SLA unreachable even at full fleet/P0"});
    }
  }

  // --- 3: power provisioning: enforce the critical (UPS) budget.
  const double budget =
      config_.power_budget_w > 0.0
          ? config_.power_budget_w
          : facility_.power_topology().tree.spec(facility_.power_topology().ups_id)
                .capacity_w;
  if (predicted_it_power > budget) {
    ++capping_epochs_;
    // Scale every service's dynamic power down uniformly by stepping its
    // P-state until the prediction fits (coarse-grained facility cap).
    for (std::size_t i = 0; i < facility_.service_count(); ++i) {
      auto& svc = facility_.service(i);
      const auto& model = svc.power_model();
      std::size_t p = chosen_pstate_[i];
      while (p + 1 < model.pstate_count() && predicted_it_power > budget) {
        const double before = per_service_power[i];
        ++p;
        const double after = before * model.busy_power_w(p) / model.busy_power_w(p - 1);
        predicted_it_power -= before - after;
        per_service_power[i] = after;
      }
      svc.set_uniform_pstate(p);
      chosen_pstate_[i] = p;
    }
    std::ostringstream detail;
    detail << "budget=" << fmt(budget / 1e3, 0)
           << "kW capped_to=" << fmt(predicted_it_power / 1e3, 0) << "kW";
    log_.record({now, DecisionKind::kPowerCapping, "", detail.str()});
  }

  // --- 4: cooling control from server-side heat knowledge.
  auto& room = facility_.room();
  std::vector<double> zone_heat(room.zone_count(), 0.0);
  for (std::size_t i = 0; i < facility_.service_count(); ++i) {
    const auto& share = facility_.zone_share(i);
    for (std::size_t z = 0; z < zone_heat.size(); ++z) {
      zone_heat[z] += per_service_power[i] * share[z];
    }
  }
  for (std::size_t k = 0; k < room.crac_count(); ++k) {
    auto& crac = room.crac(k);
    // Supply temperature that keeps every zone's *steady state* below the
    // alarm threshold minus the margin — using real per-zone heat, not the
    // CRAC's biased return sensor.
    double required_supply = crac.config().max_supply_c;
    for (std::size_t z = 0; z < room.zone_count(); ++z) {
      const auto& zone = room.zone(z);
      const double limit_c = zone.config().alarm_temp_c - config_.zone_margin_c;
      const double supply_c = limit_c - zone_heat[z] / zone.config().conductance_w_per_c;
      required_supply = std::min(required_supply, supply_c);
    }
    required_supply =
        std::clamp(required_supply, crac.config().min_supply_c, crac.config().max_supply_c);
    room.set_crac_auto(k, false);
    crac.set_supply_temp_c(required_supply);
    log_.record({now, DecisionKind::kCoolingControl, crac.config().name,
                 "supply=" + fmt(required_supply, 1) + "C"});
  }

  // --- 4b: what-if risk assessment of the committed plan (Fig. 4: "predict
  // performance impacts and risks on resource allocation decisions").
  {
    std::vector<ServicePlan> plans;
    for (std::size_t i = 0; i < facility_.service_count(); ++i) {
      auto& svc = facility_.service(i);
      ServicePlan plan;
      plan.name = facility_.service_name(i);
      plan.model = &svc.power_model();
      plan.servers = std::max<std::size_t>(svc.committed_count(), 1);
      plan.pstate = chosen_pstate_[i];
      plan.predicted_arrival_rate = last_arrival_rate_[i];
      plan.service_demand_s = last_service_demand_s_[i];
      plan.sla_target_s = svc.config().sla.target_mean_response_s;
      plan.zone_share = facility_.zone_share(i);
      plans.push_back(std::move(plan));
    }
    FacilityEnvelope envelope;
    envelope.power_budget_w = budget;
    envelope.zone_margin_c = 0.0;  // alert only on actual alarm exposure
    for (std::size_t z = 0; z < room.zone_count(); ++z) {
      const auto& zone = room.zone(z);
      envelope.zone_conductance_w_per_c.push_back(zone.config().conductance_w_per_c);
      envelope.zone_alarm_c.push_back(zone.config().alarm_temp_c);
      envelope.zone_supply_c.push_back(room.zone_supply_c(z));
    }
    const auto assessment = assess_plan(plans, envelope);
    for (const auto& finding : assessment.diagnostics) {
      log_.record({now, DecisionKind::kRiskAlert, "", finding});
    }
  }

  // --- 5: placement: shift heat away from zones already near their limit.
  for (std::size_t z = 0; z < room.zone_count(); ++z) {
    const auto& zone = room.zone(z);
    if (zone.temperature_c() <=
        zone.config().alarm_temp_c - config_.placement_trigger_margin_c) {
      continue;
    }
    // Move 20% of every service's share out of the hot zone, spread evenly.
    for (std::size_t i = 0; i < facility_.service_count(); ++i) {
      auto share = facility_.zone_share(i);
      if (share[z] <= 0.0 || share.size() < 2) continue;
      const double moved = share[z] * 0.2;
      share[z] -= moved;
      const double per_other = moved / static_cast<double>(share.size() - 1);
      for (std::size_t other = 0; other < share.size(); ++other) {
        if (other != z) share[other] += per_other;
      }
      facility_.set_zone_share(i, share);
      log_.record({now, DecisionKind::kPlacement, facility_.service_name(i),
                   "shifted 20% of heat out of hot zone " + std::to_string(z)});
    }
  }
}

}  // namespace epm::macro
