#include "macro/coordinator.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/require.h"
#include "core/table.h"
#include "macro/risk.h"
#include "power/capping.h"

namespace epm::macro {

MacroResourceManager::MacroResourceManager(Facility& facility,
                                           MacroManagerConfig config,
                                           sensing::SensorPlane* sensors,
                                           sensing::ActuatorPlane* actuators)
    : facility_(facility), config_(config), estimator_(config.estimator) {
  require(config_.coordinate_every_epochs >= 1,
          "MacroResourceManager: coordination cadence must be >= 1 epoch");
  require(config_.zone_margin_c >= 0.0, "MacroResourceManager: negative zone margin");
  require(config_.placement_trigger_margin_c >= 0.0 &&
              config_.placement_trigger_margin_c <= config_.zone_margin_c,
          "MacroResourceManager: placement trigger must be within the zone margin");
  if (sensors == nullptr) {
    // Exact plane: one sensor per channel, no noise, no quantization.
    sensing::SensorPlaneConfig exact;
    exact.fault_domains =
        static_cast<std::uint32_t>(facility_.service_count()) + 1;
    owned_sensors_ = std::make_unique<sensing::SensorPlane>(exact);
    sensors = owned_sensors_.get();
  }
  if (actuators == nullptr) {
    owned_actuators_ =
        std::make_unique<sensing::ActuatorPlane>(sensing::ActuatorPlaneConfig{});
    actuators = owned_actuators_.get();
  }
  sensors_ = sensors;
  actuators_ = actuators;
  actuators_->set_applier([this](const sensing::ActuatorCommand& command) {
    return apply_command(command);
  });
  actuators_->set_logger([this](double now_s, const std::string& text) {
    log_.record({now_s, DecisionKind::kActuation, "", text});
  });
  for (std::size_t i = 0; i < facility_.service_count(); ++i) {
    predictors_.emplace_back(config_.predictor);
    last_arrival_rate_.push_back(0.0);
    // Until the first epoch reports a real service demand, assume the
    // RequestModel default (10 ms per request).
    last_service_demand_s_.push_back(0.01);
    chosen_pstate_.push_back(0);
  }
}

sensing::Estimate MacroResourceManager::estimate(sensing::ChannelKind kind,
                                                 std::uint32_t index,
                                                 double truth, double now_s) {
  const sensing::ChannelKey key = sensing::make_channel(kind, index);
  return estimator_.update(key, sensors_->sample(key, truth, now_s), now_s);
}

bool MacroResourceManager::apply_command(const sensing::ActuatorCommand& command) {
  switch (command.kind) {
    case sensing::CommandKind::kFleetSize:
      facility_.service(command.target)
          .set_target_committed(
              static_cast<std::size_t>(std::llround(command.value)),
              config_.use_sleep_states);
      return true;
    case sensing::CommandKind::kPstate:
    case sensing::CommandKind::kPowerCap:
      facility_.service(command.target)
          .set_uniform_pstate(
              static_cast<std::size_t>(std::llround(command.value)));
      return true;
    case sensing::CommandKind::kCracSupply:
      facility_.room().set_crac_auto(command.target, false);
      facility_.room().crac(command.target).set_supply_temp_c(command.value);
      return true;
    case sensing::CommandKind::kCracReturnSetpoint:
      facility_.room().crac(command.target).set_return_setpoint_c(command.value);
      return true;
    case sensing::CommandKind::kZoneShare:
      facility_.set_zone_share(command.target, command.values);
      return true;
    case sensing::CommandKind::kConsolidation:
      // Consolidation pausing is a control-plane concern; the storm facility
      // has no migration machinery to pause, so acknowledge and move on.
      return true;
  }
  return false;
}

void MacroResourceManager::issue(sensing::CommandKind kind, std::size_t target,
                                 double value, std::vector<double> values) {
  sensing::ActuatorCommand command;
  command.kind = kind;
  command.target = target;
  command.value = value;
  command.values = std::move(values);
  actuators_->issue(command, facility_.now_s());
}

FacilityStep MacroResourceManager::step(const std::vector<double>& demand_per_service,
                                        double outside_c) {
  actuators_->tick(facility_.now_s());
  if (epoch_count_ % config_.coordinate_every_epochs == 0) coordinate();
  ++epoch_count_;

  FacilityStep result = facility_.step(demand_per_service, outside_c);
  max_estimate_age_s_ = 0.0;
  for (std::size_t i = 0; i < result.services.size(); ++i) {
    const auto& r = result.services[i];
    const auto index = static_cast<std::uint32_t>(i);
    const sensing::Estimate arrival = estimate(
        sensing::ChannelKind::kServiceArrival, index, r.arrival_rate_per_s,
        r.time_s);
    const sensing::Estimate demand = estimate(
        sensing::ChannelKind::kServiceDemand, index, r.service_demand_s,
        r.time_s);
    predictors_[i].observe(r.time_s, arrival.value);
    last_arrival_rate_[i] = arrival.value;
    last_service_demand_s_[i] = demand.value;
    max_estimate_age_s_ =
        std::max({max_estimate_age_s_, arrival.age_s, demand.age_s});
  }
  return result;
}

void MacroResourceManager::observe_overload(const OverloadSignal& signal,
                                            double now_s) {
  overload_signal_ = signal;
  overload_active_ = signal.breaker_open || signal.shed_rate_per_s > 0.0;
  if (overload_active_ && !was_overload_) {
    std::ostringstream detail;
    detail << "admission stack congested: breaker "
           << (signal.breaker_open ? "open" : "closed") << ", shed "
           << fmt(signal.shed_rate_per_s, 1) << "/s, retries "
           << fmt(signal.retry_rate_per_s, 1) << "/s";
    log_.record({now_s, DecisionKind::kRiskAlert, "", detail.str()});
    log_.record({now_s, DecisionKind::kServerAllocation, "",
                 "hold fleets at committed size during overload"});
  } else if (!overload_active_ && was_overload_) {
    log_.record({now_s, DecisionKind::kRiskAlert, "",
                 "admission stack healthy: resume consolidation"});
  }
  was_overload_ = overload_active_;
}

void MacroResourceManager::coordinate() {
  const double now = facility_.now_s();

  // Stale sensing buys wider safety margins: the multiplier is exactly 1
  // at age 0, so fresh data reproduces the unwidened decisions bit-for-bit.
  const double demand_margin_sigmas =
      config_.demand_margin_sigmas *
      estimator_.margin_multiplier(max_estimate_age_s_);

  // --- 1+2: joint fleet sizing + DVFS per service, from predicted demand.
  double predicted_it_power = 0.0;
  std::vector<double> per_service_power(facility_.service_count(), 0.0);
  for (std::size_t i = 0; i < facility_.service_count(); ++i) {
    auto& svc = facility_.service(i);
    const auto& model = svc.power_model();
    if (predictors_[i].observations() == 0) {
      // Cold start: no demand seen yet. Keep the operator-provisioned fleet
      // rather than shrinking to the minimum on a zero prediction.
      const double current = svc.power_model().idle_power_w() *
                             static_cast<double>(svc.committed_count());
      per_service_power[i] = current;
      predicted_it_power += current;
      continue;
    }
    const double lead_s = model.config().boot_time_s + facility_.epoch_s();
    double predicted = predictors_[i].predict(now + lead_s) +
                       demand_margin_sigmas * predictors_[i].residual_stddev();
    predicted = std::max(predicted, 0.0);

    const auto decision = decide_joint(
        model, svc.server_count(), svc.committed_count(), predicted,
        last_service_demand_s_[i], svc.config().sla.target_mean_response_s,
        config_.joint);
    // During admission-stack congestion the demand estimate is poisoned by
    // shed/retried load; consolidating on it would shrink the fleet into a
    // retry storm. Hold what is already committed until the stack is healthy.
    std::size_t servers_target = decision.servers;
    if (overload_active_) {
      servers_target = std::max(servers_target, svc.committed_count());
    }
    issue(sensing::CommandKind::kFleetSize, i,
          static_cast<double>(servers_target));
    issue(sensing::CommandKind::kPstate, i,
          static_cast<double>(decision.pstate));
    chosen_pstate_[i] = decision.pstate;
    per_service_power[i] = decision.predicted_power_w;
    predicted_it_power += decision.predicted_power_w;

    std::ostringstream detail;
    detail << "servers=" << servers_target << " pstate=P" << decision.pstate
           << " predicted_lambda=" << fmt(predicted, 1)
           << "/s predicted_power=" << fmt(decision.predicted_power_w / 1e3, 1) << "kW";
    log_.record({now, DecisionKind::kServerAllocation, facility_.service_name(i),
                 detail.str()});
    log_.record({now, DecisionKind::kDvfs, facility_.service_name(i),
                 "P" + std::to_string(decision.pstate)});
    if (!decision.feasible) {
      log_.record({now, DecisionKind::kRiskAlert, facility_.service_name(i),
                   "SLA unreachable even at full fleet/P0"});
    }
  }

  // --- 3: power provisioning: enforce the critical (UPS) budget.
  const double budget =
      config_.power_budget_w > 0.0
          ? config_.power_budget_w
          : facility_.power_topology().tree.spec(facility_.power_topology().ups_id)
                .capacity_w;
  if (predicted_it_power > budget) {
    ++capping_epochs_;
    // Scale every service's dynamic power down uniformly by stepping its
    // P-state until the prediction fits (coarse-grained facility cap).
    for (std::size_t i = 0; i < facility_.service_count(); ++i) {
      auto& svc = facility_.service(i);
      const auto& model = svc.power_model();
      std::size_t p = chosen_pstate_[i];
      while (p + 1 < model.pstate_count() && predicted_it_power > budget) {
        const double before = per_service_power[i];
        ++p;
        const double after = before * model.busy_power_w(p) / model.busy_power_w(p - 1);
        predicted_it_power -= before - after;
        per_service_power[i] = after;
      }
      issue(sensing::CommandKind::kPowerCap, i, static_cast<double>(p));
      chosen_pstate_[i] = p;
    }
    std::ostringstream detail;
    detail << "budget=" << fmt(budget / 1e3, 0)
           << "kW capped_to=" << fmt(predicted_it_power / 1e3, 0) << "kW";
    log_.record({now, DecisionKind::kPowerCapping, "", detail.str()});
  }

  // --- 4: cooling control from server-side heat knowledge. Zone
  // temperatures are sensed, not read: a stale estimate widens the margin.
  auto& room = facility_.room();
  std::vector<double> zone_temp_est(room.zone_count(), 0.0);
  double zone_age_s = 0.0;
  for (std::size_t z = 0; z < room.zone_count(); ++z) {
    const sensing::Estimate est =
        estimate(sensing::ChannelKind::kZoneTemp, static_cast<std::uint32_t>(z),
                 room.zone(z).temperature_c(), now);
    zone_temp_est[z] = est.value;
    zone_age_s = std::max(zone_age_s, est.age_s);
  }
  const double zone_margin_c =
      config_.zone_margin_c * estimator_.margin_multiplier(zone_age_s);
  std::vector<double> zone_heat(room.zone_count(), 0.0);
  for (std::size_t i = 0; i < facility_.service_count(); ++i) {
    const auto& share = facility_.zone_share(i);
    for (std::size_t z = 0; z < zone_heat.size(); ++z) {
      zone_heat[z] += per_service_power[i] * share[z];
    }
  }
  for (std::size_t k = 0; k < room.crac_count(); ++k) {
    auto& crac = room.crac(k);
    // Supply temperature that keeps every zone's *steady state* below the
    // alarm threshold minus the margin — using real per-zone heat, not the
    // CRAC's biased return sensor.
    double required_supply = crac.config().max_supply_c;
    for (std::size_t z = 0; z < room.zone_count(); ++z) {
      const auto& zone = room.zone(z);
      const double limit_c = zone.config().alarm_temp_c - zone_margin_c;
      const double supply_c = limit_c - zone_heat[z] / zone.config().conductance_w_per_c;
      required_supply = std::min(required_supply, supply_c);
    }
    required_supply =
        std::clamp(required_supply, crac.config().min_supply_c, crac.config().max_supply_c);
    issue(sensing::CommandKind::kCracSupply, k, required_supply);
    log_.record({now, DecisionKind::kCoolingControl, crac.config().name,
                 "supply=" + fmt(required_supply, 1) + "C"});
  }

  // --- 4b: what-if risk assessment of the committed plan (Fig. 4: "predict
  // performance impacts and risks on resource allocation decisions").
  {
    std::vector<ServicePlan> plans;
    for (std::size_t i = 0; i < facility_.service_count(); ++i) {
      auto& svc = facility_.service(i);
      ServicePlan plan;
      plan.name = facility_.service_name(i);
      plan.model = &svc.power_model();
      plan.servers = std::max<std::size_t>(svc.committed_count(), 1);
      plan.pstate = chosen_pstate_[i];
      plan.predicted_arrival_rate = last_arrival_rate_[i];
      plan.service_demand_s = last_service_demand_s_[i];
      plan.sla_target_s = svc.config().sla.target_mean_response_s;
      plan.zone_share = facility_.zone_share(i);
      plans.push_back(std::move(plan));
    }
    FacilityEnvelope envelope;
    envelope.power_budget_w = budget;
    envelope.zone_margin_c = 0.0;  // alert only on actual alarm exposure
    for (std::size_t z = 0; z < room.zone_count(); ++z) {
      const auto& zone = room.zone(z);
      envelope.zone_conductance_w_per_c.push_back(zone.config().conductance_w_per_c);
      envelope.zone_alarm_c.push_back(zone.config().alarm_temp_c);
      envelope.zone_supply_c.push_back(room.zone_supply_c(z));
    }
    const auto assessment = assess_plan(plans, envelope);
    for (const auto& finding : assessment.diagnostics) {
      log_.record({now, DecisionKind::kRiskAlert, "", finding});
    }
  }

  // --- 5: placement: shift heat away from zones already near their limit,
  // judged from the sensed temperature estimates.
  for (std::size_t z = 0; z < room.zone_count(); ++z) {
    const auto& zone = room.zone(z);
    if (zone_temp_est[z] <=
        zone.config().alarm_temp_c - config_.placement_trigger_margin_c) {
      continue;
    }
    // Move 20% of every service's share out of the hot zone, spread evenly.
    for (std::size_t i = 0; i < facility_.service_count(); ++i) {
      auto share = facility_.zone_share(i);
      if (share[z] <= 0.0 || share.size() < 2) continue;
      const double moved = share[z] * 0.2;
      share[z] -= moved;
      const double per_other = moved / static_cast<double>(share.size() - 1);
      for (std::size_t other = 0; other < share.size(); ++other) {
        if (other != z) share[other] += per_other;
      }
      issue(sensing::CommandKind::kZoneShare, i, 0.0, share);
      log_.record({now, DecisionKind::kPlacement, facility_.service_name(i),
                   "shifted 20% of heat out of hot zone " + std::to_string(z)});
    }
  }
}

}  // namespace epm::macro
