// epmctl — command-line front end to the EPM library.
//
//   epmctl messenger    --days 7 --seed 42 --csv trace.csv
//   epmctl simulate     --servers 120 --policy joint --days 7 --peak-rps 8000
//   epmctl facility     --days 2 --servers 60
//   epmctl tiers        --rate 2000 --sla-ms 60
//   epmctl availability --tier 2
//
// Every subcommand prints a compact report; `epmctl help` lists them.
#include <cmath>
#include <iostream>
#include <string>

#include "bench/kernel_bench.h"
#include "bench/telemetry_bench.h"
#include "cluster/request_des.h"
#include "faults/chaos_fleet.h"
#include "faults/control_chaos.h"
#include "faults/fleet_storm.h"
#include "cluster/service_cluster.h"
#include "core/cli_args.h"
#include "core/table.h"
#include "core/units.h"
#include "faults/fault_plan.h"
#include "faults/retry_storm.h"
#include "faults/storm.h"
#include "sensing/scenario.h"
#include "macro/coordinator.h"
#include "macro/joint_policy.h"
#include "macro/tiers.h"
#include "onoff/provisioners.h"
#include "reliability/availability.h"
#include "reliability/monte_carlo.h"
#include "workload/messenger.h"
#include "workload/trace_io.h"

using namespace epm;

namespace {

int cmd_help() {
  std::cout <<
      R"(epmctl — elastic power management toolkit

  epmctl messenger    --days N --seed S [--csv PATH]    synthetic Fig.3 workload
  epmctl simulate     --servers N --policy P --days D   cluster under a policy
                      --peak-rps R [--seed S]           (static|reactive|predictive|joint)
  epmctl facility     --days D --servers N              macro-managed facility week
  epmctl tiers        --rate R --sla-ms MS              multi-tier joint sizing
  epmctl availability --tier K [--years Y]              tier availability model
                      [--replicas N] [--threads T]      (Monte Carlo fan-out)
  epmctl replications --rate R --service-ms MS          N independent request-level
                      --servers N [--reps K]            DES replications, pooled
                      [--seed S] [--threads T]          stats + confidence interval
  epmctl faults       [--intensity X] [--hours H]       fault storm vs. graceful
                      [--plan SPEC] [--seed S]          degradation (SPEC:
                      [--servers N] [--no-policy]       "outage@3600+1200;crac:0@...")
  epmctl sensing      [--intensity X] [--hours H]       degraded sensing/actuation:
                      [--plan SPEC] [--seed S]          naive vs. hardened controller
                      [--servers N]                     (validation + retry/backoff)
  epmctl retrystorm   [--outage S] [--policy P]         closed-loop retry storm:
                      [--clients N] [--seed S]          naive vs. defended admission
                                                        (P: immediate|fixed|exponential)
  epmctl kernelbench  [--threads T] [--seed S] [--smoke] DES-kernel + epoch-engine
                                                        throughput bench; exits non-
                                                        zero on any missed perf gate.
                                                        --smoke = reduced 100k-client
                                                        CI configuration (skips the
                                                        1M A/B and 10M sections)
  epmctl federation   [--dcs N] [--clients N]           multi-datacenter retry-storm
                      [--shards S] [--threads T]        fleet on the sharded federation,
                      [--seed S] [--smoke]              conformance-checked bit-for-bit
                                                        against the single-kernel run;
                                                        exits non-zero on divergence.
                                                        --smoke = reduced CI population
  epmctl chaos        [--dcs N] [--clients N]           chaos drills: correlated regional
                      [--threads T] [--seed S]          outage recovery gate, kill-and-
                      [--script SPEC] [--smoke]         restore bit-identical continuation,
                                                        partition/heal zero-loss drill
                                                        (SPEC: "outage:region/americas@
                                                        32+16;brownout:feed/grid-eu@...")
  epmctl telemetry    [--threads T] [--seed S] [--smoke] columnar telemetry firehose
                                                        bench: ring-pipeline ingest,
                                                        sealed-block compression,
                                                        legacy bit-identity at 1/2/8
                                                        threads, in-stream anomaly
                                                        recall; exits non-zero on any
                                                        missed gate. --smoke = reduced
                                                        CI mix with a loose absolute
                                                        throughput floor
  epmctl controlplane [--dcs N] [--seed S]              survivable-control-plane drills:
                      [--threads T] [--smoke]           kill-the-leader (defended vs
                                                        naive, with WAN partition),
                                                        split-brain fencing, shard/thread
                                                        conformance sweep, mid-failover
                                                        restore. --smoke = reduced sweep,
                                                        no partition variant

  --threads T applies to the commands with parallel backends (availability,
  replications); it defaults to the EPM_THREADS environment variable, else
  the machine's hardware concurrency. Results never depend on T.

  Exit codes: 0 success; 1 scenario verdict failed (e.g. the defended arm
  did not recover); 2 usage error; 3 conformance/gate failure (federation
  divergence, chaos gate, ledger violation — the failing seed/shards/threads
  are printed); 4 runtime error (exception).
)";
  return 0;
}

int fail(const std::string& message) {
  std::cerr << "epmctl: " << message << "\n";
  return 2;
}

/// Conformance or gate failure (exit 3): a scenario ran but its determinism
/// or resilience contract was violated. Prints the reproduction coordinates.
int conformance_fail(const std::string& message, std::uint64_t seed,
                     std::size_t shards, std::size_t threads) {
  std::cerr << "epmctl: " << message << " (seed " << seed << ", shards "
            << shards << ", threads " << threads << ")\n";
  return 3;
}

int check_unused(const CliArgs& args) {
  const auto unused = args.unused();
  if (!unused.empty()) {
    return fail("unknown flag --" + unused.front() + " (see 'epmctl help')");
  }
  return 0;
}

int cmd_messenger(const CliArgs& args) {
  workload::MessengerConfig config;
  config.seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{42}));
  config.step_s = args.get("step-s", 60.0);
  const double horizon = days(static_cast<double>(args.get("days", std::int64_t{7})));
  const std::string csv = args.get("csv", std::string{});
  if (const int rc = check_unused(args)) return rc;
  if (horizon <= 0.0) return fail("--days must be > 0");
  if (config.step_s <= 0.0) return fail("--step-s must be > 0");

  const auto trace = workload::generate_messenger_trace(config, horizon);
  const auto shape =
      summarize_messenger_trace(trace, workload::DiurnalModel(config.diurnal));
  std::cout << "Generated " << trace.connections.size() << " samples over "
            << fmt(to_days(horizon), 0) << " days\n"
            << "  afternoon/midnight ratio: " << fmt(shape.afternoon_to_midnight_ratio, 2)
            << "x\n  weekday/weekend ratio:    "
            << (shape.weekday_to_weekend_ratio > 0.0
                    ? fmt(shape.weekday_to_weekend_ratio, 2) + "x"
                    : std::string{"n/a (no weekend in range)"})
            << "\n  flash crowds:             " << shape.flash_crowd_count << "\n";
  if (!csv.empty()) {
    workload::write_csv_file(csv, {{"connections", trace.connections},
                                   {"login_rate_per_s", trace.login_rate_per_s}});
    std::cout << "Wrote " << csv << "\n";
  }
  // Exit-code contract: the generator must emit exactly one sample per step
  // over the horizon — anything else is a conformance failure (3).
  const auto expected = static_cast<std::size_t>(horizon / config.step_s);
  if (trace.connections.size() != expected ||
      trace.login_rate_per_s.size() != expected) {
    return conformance_fail(
        "messenger trace ledger mismatch (" +
            std::to_string(trace.connections.size()) + " samples, expected " +
            std::to_string(expected) + ")",
        config.seed, 1, 1);
  }
  return 0;
}

int cmd_simulate(const CliArgs& args) {
  const auto servers = static_cast<std::size_t>(args.get("servers", std::int64_t{120}));
  const auto sim_days = static_cast<double>(args.get("days", std::int64_t{7}));
  const double peak_rps = args.get("peak-rps", 8000.0);
  const std::string policy = args.get("policy", std::string{"joint"});
  const auto seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{18}));
  if (const int rc = check_unused(args)) return rc;
  if (servers == 0) return fail("--servers must be > 0");
  if (sim_days <= 0.0) return fail("--days must be > 0");
  if (peak_rps <= 0.0) return fail("--peak-rps must be > 0");

  workload::MessengerConfig wl;
  wl.step_s = 60.0;
  wl.seed = seed;
  const auto trace = workload::generate_messenger_trace(wl, days(sim_days));
  const auto rate = trace.connections.scaled(peak_rps / trace.connections.stats().max());

  cluster::ServiceClusterConfig config;
  config.server_count = servers;
  config.initially_active = servers;
  config.sla.target_mean_response_s = 0.1;
  cluster::ServiceCluster cluster(config);

  onoff::UtilizationBandProvisioner reactive;
  onoff::PredictiveConfig predictive_config;
  predictive_config.hysteresis_servers = 4;
  onoff::PredictiveProvisioner predictive(predictive_config);

  for (std::size_t i = 0; i < rate.size(); ++i) {
    workload::OfferedLoad load;
    load.arrival_rate_per_s = rate[i];
    load.service_demand_s = 0.01;
    const auto r = cluster.run_epoch(60.0, load);
    if (policy == "static") {
      // leave the fleet alone
    } else if (policy == "reactive") {
      cluster.set_target_committed(reactive.decide(cluster, r), true);
    } else if (policy == "predictive") {
      cluster.set_target_committed(predictive.decide(cluster, r), true);
    } else if (policy == "joint") {
      const auto d = macro::decide_joint(cluster.power_model(), servers,
                                         cluster.committed_count(),
                                         r.arrival_rate_per_s, r.service_demand_s,
                                         config.sla.target_mean_response_s);
      cluster.set_uniform_pstate(d.pstate);
      cluster.set_target_committed(d.servers, true);
    } else {
      return fail("unknown --policy '" + policy +
                  "' (static|reactive|predictive|joint)");
    }
  }

  std::cout << "Policy '" << policy << "' over " << fmt(sim_days, 0) << " days, "
            << servers << " servers, peak " << fmt(peak_rps, 0) << " rps:\n"
            << "  energy:          " << fmt(to_kwh(cluster.total_energy_j()), 1)
            << " kWh\n"
            << "  SLA violations:  " << cluster.sla_violation_epochs() << " / "
            << cluster.epochs_run() << " epochs\n"
            << "  dropped:         " << fmt(cluster.total_dropped_requests(), 0)
            << " requests\n";
  // Exit-code contract: the cluster must have run exactly one epoch per
  // trace step with finite energy — otherwise the run is nonconformant (3).
  if (cluster.epochs_run() != rate.size() ||
      !std::isfinite(cluster.total_energy_j()) ||
      cluster.total_energy_j() <= 0.0) {
    return conformance_fail("simulate epoch ledger mismatch (ran " +
                                std::to_string(cluster.epochs_run()) +
                                ", expected " + std::to_string(rate.size()) + ")",
                            seed, 1, 1);
  }
  return 0;
}

int cmd_facility(const CliArgs& args) {
  const auto sim_days = static_cast<double>(args.get("days", std::int64_t{2}));
  const auto servers = static_cast<std::size_t>(args.get("servers", std::int64_t{60}));
  const auto seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{4}));
  if (const int rc = check_unused(args)) return rc;
  if (sim_days <= 0.0) return fail("--days must be > 0");
  if (servers == 0) return fail("--servers must be > 0");

  workload::MessengerConfig wl;
  wl.step_s = 60.0;
  wl.seed = seed;
  const auto trace = workload::generate_messenger_trace(wl, days(sim_days));
  const double peak = trace.connections.stats().max();

  macro::Facility facility(macro::make_reference_facility(servers));
  macro::MacroResourceManager manager(facility);
  double pue_sum = 0.0;
  for (std::size_t i = 0; i < trace.connections.size(); ++i) {
    const double level = trace.connections[i] / peak;
    pue_sum += manager.step({level * 4000.0, level * 2500.0}, 18.0).pue;
  }
  const double mean_pue =
      facility.epochs_run() > 0
          ? pue_sum / static_cast<double>(facility.epochs_run())
          : 0.0;
  std::cout << "Macro-managed reference facility, " << fmt(sim_days, 0) << " days:\n"
            << "  IT energy:       " << fmt(to_kwh(facility.total_it_energy_j()), 0)
            << " kWh\n  cooling energy:  "
            << fmt(to_kwh(facility.total_mechanical_energy_j()), 0) << " kWh\n"
            << "  mean PUE:        " << fmt(mean_pue, 2) << "\n"
            << "  SLA violations:  " << facility.total_sla_violation_epochs()
            << " service-epochs\n  thermal alarms:  "
            << facility.total_thermal_alarms() << "\n  decisions logged: "
            << manager.log().size() << "\n";
  // Exit-code contract: a facility that ran zero epochs or produced a PUE
  // below the physical floor of 1.0 is a conformance failure (3).
  if (facility.epochs_run() == 0 || !std::isfinite(mean_pue) || mean_pue < 1.0) {
    return conformance_fail("facility PUE ledger violated (mean PUE " +
                                fmt(mean_pue, 3) + ")",
                            seed, 1, 1);
  }
  return 0;
}

int cmd_tiers(const CliArgs& args) {
  const double rate = args.get("rate", 1000.0);
  const double sla_ms = args.get("sla-ms", 60.0);
  if (const int rc = check_unused(args)) return rc;
  if (rate <= 0.0) return fail("--rate must be > 0");
  if (sla_ms <= 0.0) return fail("--sla-ms must be > 0");

  macro::TieredServiceSpec spec;
  macro::TierSpec web;
  web.name = "web";
  web.fanout = 1.0;
  web.service_demand_s = 0.002;
  macro::TierSpec app;
  app.name = "app";
  app.fanout = 2.0;
  app.service_demand_s = 0.005;
  macro::TierSpec db;
  db.name = "db";
  db.fanout = 4.0;
  db.service_demand_s = 0.001;
  spec.tiers = {web, app, db};
  spec.end_to_end_sla_s = sla_ms / 1e3;

  const auto decision = macro::size_tiers(spec, rate);
  // Exit-code contract: an infeasible SLA is a scenario verdict (1), not a
  // usage error — the arguments were well-formed, the sizing just cannot
  // meet them.
  if (!decision.feasible) {
    std::cout << "Sizing for " << fmt(rate, 0) << " external rps under "
              << fmt(sla_ms, 0) << " ms end-to-end:\n"
              << "  VERDICT: SLA infeasible for this demand at any P-state\n";
    return 1;
  }
  Table table({"tier", "servers", "P-state", "budget (ms)", "response (ms)",
               "power (kW)"});
  for (std::size_t i = 0; i < decision.tiers.size(); ++i) {
    const auto& t = decision.tiers[i];
    table.add_row({spec.tiers[i].name, std::to_string(t.servers),
                   "P" + std::to_string(t.pstate), fmt(t.latency_budget_s * 1e3, 1),
                   fmt(t.predicted_response_s * 1e3, 1),
                   fmt(t.predicted_power_w / 1e3, 2)});
  }
  std::cout << "Sizing for " << fmt(rate, 0) << " external rps under "
            << fmt(sla_ms, 0) << " ms end-to-end:\n"
            << table.render() << "  total: " << fmt(decision.total_power_w / 1e3, 2)
            << " kW, end-to-end " << fmt(decision.end_to_end_response_s * 1e3, 1)
            << " ms\n";
  return 0;
}

int cmd_availability(const CliArgs& args) {
  const auto tier = static_cast<int>(args.get("tier", std::int64_t{2}));
  const auto years = args.get("years", 50.0);
  const auto replicas = static_cast<std::size_t>(args.get("replicas", std::int64_t{8}));
  const std::size_t threads = args.threads();
  if (const int rc = check_unused(args)) return rc;
  if (tier < 1 || tier > 4) return fail("--tier must be 1..4");
  if (years <= 0.0) return fail("--years must be > 0");
  if (replicas == 0) return fail("--replicas must be > 0");

  const auto topology = reliability::make_tier_topology(tier);
  const double analytic = topology.availability(true);
  reliability::MonteCarloConfig mc;
  mc.years = years;
  mc.replicas = replicas;
  mc.threads = threads;
  const auto simulated = reliability::simulate_availability(topology, mc);
  std::cout << "Tier " << tier << ":\n"
            << "  Uptime Institute reference: "
            << fmt_percent(reliability::uptime_institute_reference(tier), 3) << "\n"
            << "  analytic:                   " << fmt_percent(analytic, 3) << "\n"
            << "  Monte Carlo (" << fmt(years, 0) << " yr x " << mc.replicas
            << "): " << fmt_percent(simulated.availability, 3) << "\n"
            << "  95% CI:                     ["
            << fmt_percent(simulated.ci_lo, 4) << ", "
            << fmt_percent(simulated.ci_hi, 4) << "]\n"
            << "  downtime:                   "
            << fmt(reliability::downtime_hours_per_year(analytic), 1) << " h/yr\n";
  // Exit-code contract: the Monte Carlo estimate must be a probability with
  // an ordered confidence interval around it — otherwise the fan-out is
  // nonconformant (3). Results never depend on the thread count.
  if (!std::isfinite(simulated.availability) || simulated.availability < 0.0 ||
      simulated.availability > 1.0 || simulated.ci_lo > simulated.availability ||
      simulated.availability > simulated.ci_hi) {
    return conformance_fail("availability Monte Carlo estimate out of range",
                            static_cast<std::uint64_t>(tier), replicas, threads);
  }
  return 0;
}

int cmd_replications(const CliArgs& args) {
  cluster::ReplicationConfig config;
  config.base.arrival_rate_per_s = args.get("rate", 70.0);
  config.base.mean_service_s = args.get("service-ms", 10.0) / 1e3;
  config.base.servers = static_cast<std::size_t>(args.get("servers", std::int64_t{1}));
  config.base.measured_requests =
      static_cast<std::size_t>(args.get("requests", std::int64_t{40000}));
  config.replications = static_cast<std::size_t>(args.get("reps", std::int64_t{8}));
  config.seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{2027}));
  config.threads = args.threads();
  if (const int rc = check_unused(args)) return rc;
  if (config.base.arrival_rate_per_s <= 0.0) return fail("--rate must be > 0");
  if (config.base.mean_service_s <= 0.0) return fail("--service-ms must be > 0");
  if (config.base.servers == 0) return fail("--servers must be > 0");
  if (config.base.measured_requests == 0) return fail("--requests must be > 0");
  if (config.replications == 0) return fail("--reps must be > 0");

  const auto result = cluster::simulate_replications(config);
  // 95% CI from the independent replication means (t ~ 2 for small K).
  const double half_width =
      2.0 * result.replication_mean_response_s.stddev() /
      std::sqrt(static_cast<double>(config.replications));
  std::cout << config.replications << " replications x "
            << config.base.measured_requests << " requests ("
            << config.threads << " thread" << (config.threads == 1 ? "" : "s")
            << "):\n"
            << "  mean response:   " << fmt(result.response_s.mean() * 1e3, 2)
            << " ms  (95% CI +/- " << fmt(half_width * 1e3, 2) << " ms)\n"
            << "  p~worst sojourn: " << fmt(result.response_s.max() * 1e3, 1)
            << " ms\n"
            << "  queue depth:     " << fmt(result.queue_depth.mean(), 2) << "\n"
            << "  utilization:     " << fmt_percent(result.utilization.mean(), 1)
            << "\n  completed:       " << result.completed << " requests\n";
  // Exit-code contract: the pooled ledger must account for every measured
  // request of every replication, with finite statistics — anything else is
  // a conformance failure (3).
  const std::size_t expected =
      config.replications * config.base.measured_requests;
  if (result.completed != expected ||
      !std::isfinite(result.response_s.mean()) ||
      result.response_s.mean() <= 0.0) {
    return conformance_fail(
        "replication ledger mismatch (completed " +
            std::to_string(result.completed) + ", expected " +
            std::to_string(expected) + ")",
        config.seed, config.replications, config.threads);
  }
  return 0;
}

int cmd_faults(const CliArgs& args) {
  const double intensity = args.get("intensity", 1.0);
  const double hours = args.get("hours", 6.0);
  const auto seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{2009}));
  const auto servers = static_cast<std::size_t>(args.get("servers", std::int64_t{60}));
  const std::string plan_spec = args.get("plan", std::string{});
  const bool no_policy = args.get_switch("no-policy");
  if (const int rc = check_unused(args)) return rc;
  if (hours <= 0.0) return fail("--hours must be > 0");

  faults::StormConfig config = faults::make_reference_storm_config(servers);
  config.horizon_s = hours * 3600.0;
  const faults::FaultPlan plan =
      plan_spec.empty()
          ? faults::make_storm_plan(intensity, config.horizon_s, seed,
                                    config.demand_rps.size(), 1)
          : faults::FaultPlan::parse(plan_spec);

  std::cout << "Fault plan (" << plan.size() << " events";
  if (plan_spec.empty()) std::cout << ", intensity " << fmt(intensity, 1);
  std::cout << "):\n";
  for (std::size_t i = 0; i < faults::kFaultTypeCount; ++i) {
    const auto type = static_cast<faults::FaultType>(i);
    if (const std::size_t n = plan.count(type)) {
      std::cout << "  " << faults::to_string(type) << ": " << n << "\n";
    }
  }

  Table table({"arm", "served", "shed", "re-routed", "dropped", "brownout",
               "trip", "max zone", "min SoC"});
  auto add_arm = [&](const char* name, const faults::StormOutcome& out) {
    table.add_row(
        {name,
         fmt_percent((out.served_requests + out.rerouted_requests) /
                         out.offered_requests, 1),
         fmt_percent(out.shed_requests / out.offered_requests, 1),
         fmt_percent(out.rerouted_requests / out.offered_requests, 1),
         fmt_percent(out.dropped_requests / out.offered_requests, 1),
         std::to_string(out.brownout_epochs), std::to_string(out.trip_epochs),
         fmt(out.max_zone_temp_c, 1) + " C",
         fmt_percent(out.min_state_of_charge, 0)});
  };

  config.policy_enabled = false;
  const auto baseline = faults::run_fault_storm(config, plan);
  add_arm("uncoordinated", baseline);
  if (no_policy) {
    std::cout << table.render();
    if (!baseline.faults_conserved) {
      return conformance_fail("fault storm conservation ledger violated", seed,
                              1, 1);
    }
    return 0;
  }
  config.policy_enabled = true;
  const auto managed = faults::run_fault_storm(config, plan);
  add_arm("degradation policy", managed);
  std::cout << table.render();
  const double gain = (managed.served_requests + managed.rerouted_requests) -
                      (baseline.served_requests + baseline.rerouted_requests);
  const bool conserved = managed.faults_conserved && baseline.faults_conserved;
  std::cout << "  policy saved " << fmt(gain, 0)
            << " requests over the storm ("
            << (conserved ? "all faults conserved" : "CONSERVATION VIOLATED")
            << ")\n";
  if (!managed.decision_counts.empty()) {
    std::cout << "  decisions:";
    for (const auto& [kind, count] : managed.decision_counts) {
      std::cout << " " << kind << "=" << count;
    }
    std::cout << "\n";
  }
  // Exit-code contract: a broken conservation ledger is a conformance
  // failure (3); the degradation policy losing to the uncoordinated arm is
  // a scenario verdict failure (1).
  if (!conserved) {
    return conformance_fail("fault storm conservation ledger violated", seed,
                            1, 1);
  }
  if (gain < 0.0) {
    std::cout << "  VERDICT: degradation policy served fewer requests than "
                 "the uncoordinated arm\n";
    return 1;
  }
  return 0;
}

int cmd_sensing(const CliArgs& args) {
  const double intensity = args.get("intensity", 1.0);
  const double hours = args.get("hours", 4.0);
  const auto seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{2009}));
  const auto servers = static_cast<std::size_t>(args.get("servers", std::int64_t{64}));
  const std::string plan_spec = args.get("plan", std::string{});
  if (const int rc = check_unused(args)) return rc;
  if (hours <= 0.0) return fail("--hours must be > 0");

  sensing::DegradedScenarioConfig config;
  config.servers_per_service = servers;
  config.horizon_s = hours * 3600.0;
  config.seed = seed;
  const faults::FaultPlan plan =
      plan_spec.empty()
          ? sensing::make_sensing_fault_plan(intensity, config.horizon_s,
                                             seed + 17, /*service_count=*/2)
          : faults::FaultPlan::parse(plan_spec);

  std::cout << "Sensing/actuation fault plan (" << plan.size() << " events";
  if (plan_spec.empty()) std::cout << ", intensity " << fmt(intensity, 1);
  std::cout << "):\n";
  for (std::size_t i = 0; i < faults::kFaultTypeCount; ++i) {
    const auto type = static_cast<faults::FaultType>(i);
    if (const std::size_t n = plan.count(type)) {
      std::cout << "  " << faults::to_string(type) << ": " << n << "\n";
    }
  }

  Table table({"arm", "served", "SLA viol", "alarms", "max zone", "stale max",
               "fallbacks", "retries", "failed"});
  auto add_arm = [&](const char* name,
                     const sensing::DegradedScenarioOutcome& out) {
    table.add_row({name, fmt_percent(out.served_fraction(), 2),
                   std::to_string(out.sla_violation_epochs),
                   std::to_string(out.thermal_alarms),
                   fmt(out.max_zone_temp_c, 1) + " C",
                   fmt(out.max_estimate_age_s, 0) + " s",
                   std::to_string(out.estimator_fallbacks),
                   std::to_string(out.command_retries),
                   std::to_string(out.commands_failed)});
  };

  config.hardened = false;
  const auto naive = sensing::run_degraded_scenario(config, plan);
  add_arm("naive", naive);
  config.hardened = true;
  const auto hardened = sensing::run_degraded_scenario(config, plan);
  add_arm("hardened", hardened);
  std::cout << table.render();

  std::cout << "  invariants: naive "
            << (naive.invariants_ok ? "clean" : "VIOLATED") << ", hardened "
            << (hardened.invariants_ok ? "clean" : "VIOLATED") << " ("
            << (naive.faults_conserved && hardened.faults_conserved
                    ? "all faults conserved"
                    : "CONSERVATION VIOLATED")
            << ")\n";
  if (!naive.invariants_ok) std::cout << naive.invariant_report;
  if (!hardened.invariants_ok) std::cout << hardened.invariant_report;
  // Exit-code contract: the hardened arm's invariants or either arm's
  // conservation ledger breaking is a conformance failure (3); the hardened
  // controller failing to dominate the naive one is a verdict failure (1).
  if (!hardened.invariants_ok || !naive.faults_conserved ||
      !hardened.faults_conserved) {
    return conformance_fail("sensing invariants/conservation violated", seed,
                            1, 1);
  }
  if (hardened.served_fraction() < naive.served_fraction()) {
    std::cout << "  VERDICT: hardened controller served less than the naive "
                 "one ("
              << fmt_percent(hardened.served_fraction(), 2) << " vs "
              << fmt_percent(naive.served_fraction(), 2) << ")\n";
    return 1;
  }
  return 0;
}

int cmd_retrystorm(const CliArgs& args) {
  const double outage_s = args.get("outage", 120.0);
  const std::string policy = args.get("policy", std::string{"immediate"});
  const auto clients = static_cast<std::size_t>(
      args.get("clients", std::int64_t{20000}));
  const auto seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{7}));
  if (const int rc = check_unused(args)) return rc;
  if (outage_s <= 0.0) return fail("--outage must be > 0 seconds");
  if (clients == 0) return fail("--clients must be > 0");
  workload::RetryBackoff backoff;
  try {
    backoff = workload::retry_backoff_from_string(policy);
  } catch (const std::exception&) {
    return fail("unknown --policy '" + policy +
                "' (immediate|fixed|exponential)");
  }

  Table table({"arm", "prefault", "end offered", "end goodput", "recovery",
               "metastable", "trips", "shed", "stale"});
  auto run_arm = [&](bool defended) {
    faults::RetryStormConfig config =
        faults::make_reference_retry_storm_config(backoff, outage_s, defended);
    config.clients.clients = clients;
    config.clients.seed = seed;
    const auto out = faults::run_retry_storm(config);
    table.add_row(
        {defended ? "defended" : "naive", fmt(out.prefault_goodput_rps, 0) + "/s",
         fmt(out.end_offered_rps, 0) + "/s", fmt(out.end_goodput_rps, 0) + "/s",
         out.recovered ? fmt(out.recovery_s, 0) + " s" : "never",
         out.metastable ? "YES" : "no", std::to_string(out.breaker_trips),
         std::to_string(out.shed_breaker + out.shed_bucket + out.shed_queue),
         std::to_string(out.served_stale)});
    return out;
  };

  std::cout << "Retry storm: " << clients << " clients, " << policy
            << " backoff, " << fmt(outage_s, 0) << " s outage:\n";
  const auto naive = run_arm(false);
  const auto defended = run_arm(true);
  std::cout << table.render();

  const bool ledgers_clean = naive.conservation_ok && naive.invariants_ok &&
                             defended.conservation_ok && defended.invariants_ok;
  std::cout << "  defense "
            << (defended.recovered
                    ? "recovered " + fmt(defended.recovery_s, 0) +
                          " s after the outage cleared"
                    : "FAILED TO RECOVER")
            << "; naive arm "
            << (naive.metastable ? "metastable (offered " +
                                       fmt(naive.end_offered_rps, 0) +
                                       "/s still above capacity)"
                                 : naive.recovered ? "recovered" : "degraded")
            << "; ledgers "
            << (ledgers_clean ? "clean" : "VIOLATED") << "\n";
  if (!naive.conservation_ok) std::cout << "  naive: " << naive.conservation_report << "\n";
  if (!defended.conservation_ok) {
    std::cout << "  defended: " << defended.conservation_report << "\n";
  }
  if (!naive.invariants_ok) std::cout << naive.invariant_report;
  if (!defended.invariants_ok) std::cout << defended.invariant_report;
  if (!ledgers_clean) {
    return conformance_fail("retrystorm conservation/invariant ledgers violated",
                            seed, 1, 1);
  }
  return defended.recovered ? 0 : 1;
}

int cmd_kernelbench(const CliArgs& args) {
  bench::KernelBenchConfig config;
  config.threads = args.threads();
  config.seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{42}));
  if (args.get_switch("smoke")) {
    config.storm_clients = 100'000;
    config.storm_reps = 1;
    config.min_storm_speedup = 0.0;
    config.max_storm_wall_s = 5.0;
    config.sweep_clients = 100'000;
    config.storm_10m_clients = 0;
  }
  if (const int rc = check_unused(args)) return rc;

  std::cout << "DES kernel throughput (seed " << config.seed << "):\n";
  const auto outcome = bench::run_kernel_bench(config);
  if (!outcome.gate_ok) {
    // A missed perf gate is a conformance failure (3), not a usage error.
    return conformance_fail("kernel bench missed a perf gate (hold " +
                                fmt(outcome.hold_speedup, 2) + "x, storm " +
                                fmt(outcome.storm_speedup, 2) +
                                "x; see PASS/FAIL lines)",
                            config.seed, 1, config.threads);
  }
  return 0;
}

int cmd_telemetry(const CliArgs& args) {
  bench::TelemetryBenchConfig config;
  config.threads = args.threads();
  config.seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{42}));
  if (args.get_switch("smoke")) {
    // Mirror bench/exp_telemetry_scale --smoke: ~5% of the full mix under a
    // loose absolute throughput floor.
    config.servers = 200;
    config.counters_per_server = 25;
    config.ticks = 100;
    config.equiv_servers = 60;
    config.equiv_counters = 10;
    config.equiv_ticks = 100;
    config.min_points_per_min = 10e6;
  }
  if (const int rc = check_unused(args)) return rc;

  std::cout << "Columnar telemetry firehose (seed " << config.seed << "):\n";
  const auto outcome = bench::run_telemetry_bench(config);
  // Exit-code contract: a missed perf gate or a broken bit-identity /
  // anomaly contract is a conformance failure (3), not a usage error.
  if (!outcome.gate_ok) {
    return conformance_fail(
        "telemetry bench missed a gate (ingest " +
            fmt(outcome.points_per_min / 1e6, 1) + "M/min, compression " +
            fmt(outcome.compression_ratio, 1) + "x, equivalence " +
            (outcome.legacy_identical ? "ok" : "FAIL") + ", anomalies " +
            (outcome.anomalies_recalled && outcome.anomalies_deterministic
                 ? "ok"
                 : "FAIL") +
            ")",
        config.seed, 1, config.threads);
  }
  return 0;
}

int cmd_federation(const CliArgs& args) {
  const bool smoke = args.get_switch("smoke");
  const auto dcs = static_cast<std::size_t>(args.get("dcs", std::int64_t{4}));
  const auto clients = static_cast<std::size_t>(
      args.get("clients", std::int64_t{smoke ? 2'000 : 20'000}));
  auto shards = static_cast<std::size_t>(args.get("shards", std::int64_t{0}));
  const auto seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{2009}));
  const std::size_t threads = args.threads();
  if (const int rc = check_unused(args)) return rc;
  if (shards == 0) shards = dcs;
  if (dcs < 2 || dcs > 6) return fail("--dcs must be 2..6");
  if (clients == 0) return fail("--clients must be > 0");
  if (shards > dcs || dcs % shards != 0) {
    return fail("--shards must divide --dcs");
  }

  const faults::FleetStormConfig config =
      faults::make_reference_fleet_storm_config(dcs, clients, seed);
  const network::InterDcNetwork net = faults::make_fleet_network(config);

  sim::ShardedSimulator fed(
      faults::make_fleet_sharded_config(net, shards, threads));
  sim::ShardedFabric fabric(fed);
  const auto outcome = faults::run_fleet_storm(config, fabric);

  // Conformance: the identical world on one kernel must agree bit-for-bit.
  sim::SingleKernelFabric single(config.sites.size());
  const auto truth = faults::run_fleet_storm(config, single);
  const bool match = faults::fleet_storm_outcomes_equal(outcome, truth);

  std::cout << "Federated fleet storm: " << dcs << " datacenters x " << clients
            << " clients on " << shards << " shard" << (shards == 1 ? "" : "s")
            << " (" << threads << " thread" << (threads == 1 ? "" : "s")
            << "), outage at '" << config.sites[config.outage_dc].name
            << "':\n";
  Table table({"datacenter", "intents", "fresh", "stale", "timed out",
               "forwarded", "remote served", "recovery"});
  for (const auto& dc : outcome.dcs) {
    table.add_row({dc.site, std::to_string(dc.intents),
                   std::to_string(dc.served_fresh),
                   std::to_string(dc.served_stale),
                   std::to_string(dc.timed_out), std::to_string(dc.forwarded),
                   std::to_string(dc.remote_served),
                   dc.recovered ? fmt(dc.recovery_s, 0) + " s" : "never"});
  }
  std::cout << table.render();

  std::cout << "  fleet goodput:   "
            << fmt_percent(outcome.fleet_goodput_fraction, 1) << " ("
            << outcome.forwarded << " forwards, " << outcome.remote_served
            << " served remotely, " << outcome.remote_shed << " shed)\n"
            << "  federation:      " << fed.windows_run() << " windows, "
            << fed.messages_sent() << " cross-shard messages, lookahead "
            << fmt(net.min_latency_floor_s() * 1e3, 1) << " ms\n"
            << "  conformance:     "
            << (match ? "bit-identical to the single-kernel run"
                      : "DIVERGED FROM THE SINGLE-KERNEL RUN")
            << "\n  ledgers:         "
            << (outcome.conservation_ok ? "clean" : "VIOLATED") << "\n";
  if (!outcome.conservation_ok) std::cout << outcome.conservation_report;
  if (!match || !outcome.conservation_ok) {
    return conformance_fail(
        match ? "federation conservation ledgers violated"
              : "federation diverged from the single-kernel run",
        seed, shards, threads);
  }
  return 0;
}

int cmd_chaos(const CliArgs& args) {
  const bool smoke = args.get_switch("smoke");
  const auto dcs = static_cast<std::size_t>(args.get("dcs", std::int64_t{4}));
  const auto clients = static_cast<std::size_t>(
      args.get("clients", std::int64_t{smoke ? 2'000 : 20'000}));
  const auto seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{42}));
  const std::size_t threads = args.threads();
  const std::string script =
      args.get("script", faults::make_reference_grid_script());
  if (const int rc = check_unused(args)) return rc;
  if (dcs < 2 || dcs > 6) return fail("--dcs must be 2..6");
  if (clients == 0) return fail("--clients must be > 0");

  std::cout << "Chaos drills: " << dcs << " datacenters x " << clients
            << " clients, grid script \"" << script << "\":\n";

  // Drill 1: correlated regional grid event, defended vs naive recovery.
  const auto rec = faults::run_chaos_recovery(dcs, clients, seed, script, 0.99);
  Table recovery({"arm", "prefault", "end", "ratio", "signals", "recovered"});
  for (const bool defended : {true, false}) {
    const auto& arm = defended ? rec.defended : rec.naive;
    recovery.add_row({defended ? "defended" : "naive",
                      fmt(arm.fleet_prefault_goodput_rps, 1) + "/s",
                      fmt(arm.fleet_end_goodput_rps, 1) + "/s",
                      fmt(arm.ratio, 4), std::to_string(arm.grid_signals),
                      arm.recovered ? "yes" : "NO"});
  }
  std::cout << recovery.render();

  // Drill 2: kill-and-restore at this thread count.
  faults::ChaosFleetConfig chaos;
  chaos.dcs = dcs;
  chaos.threads = threads;
  const auto restore = faults::run_chaos_fleet_with_restore(chaos, 20.0, 35.0);
  std::cout << "  kill-and-restore: snapshot " << restore.snapshot_bytes
            << " bytes, continuation "
            << (restore.identical ? "bit-identical" : "DIVERGED") << "\n";

  // Drill 3: partition, park, heal, drain.
  const auto part = faults::run_chaos_partition_drill(chaos, 15.0, 30.0, 32.0);
  std::cout << "  partition drill:  " << part.parked_at_check
            << " parked at check, " << part.redelivered << " redelivered, "
            << (part.drained ? "drained" : "NOT DRAINED") << ", "
            << (part.zero_loss ? "zero loss" : "LOST MESSAGES") << ", FIFO "
            << (part.fifo_ok ? "intact" : "BROKEN") << "\n";

  const bool ledgers = rec.defended.conservation_ok && rec.naive.conservation_ok;
  std::cout << "  recovery gate:    defended "
            << (rec.defended.recovered ? "recovers" : "FAILS") << " at "
            << fmt_percent(rec.defended.ratio, 1) << ", naive "
            << (rec.naive.recovered ? "RECOVERS TOO" : "fails") << " at "
            << fmt_percent(rec.naive.ratio, 1) << " (threshold "
            << fmt_percent(rec.threshold, 0) << ")\n  ledgers:          "
            << (ledgers ? "clean" : "VIOLATED") << "\n";

  if (!rec.gate_ok || !ledgers) {
    return conformance_fail("chaos recovery gate failed", seed, dcs, threads);
  }
  if (!restore.identical) {
    return conformance_fail("chaos restore continuation diverged", chaos.seed,
                            dcs, threads);
  }
  if (!part.passed) {
    return conformance_fail("chaos partition drill lost or reordered messages",
                            chaos.seed, dcs, threads);
  }
  return 0;
}

int cmd_controlplane(const CliArgs& args) {
  const bool smoke = args.get_switch("smoke");
  const auto dcs = static_cast<std::size_t>(args.get("dcs", std::int64_t{4}));
  const auto seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{7}));
  const std::size_t threads = args.threads();
  if (const int rc = check_unused(args)) return rc;
  if (dcs < 3 || dcs > 6) {
    return fail("--dcs must be 3..6 (leader failover needs >= 3 replicas)");
  }

  std::cout << "Survivable control plane: " << dcs << " datacenters, seed "
            << seed << ", " << threads << " thread" << (threads == 1 ? "" : "s")
            << (smoke ? " (smoke)" : "") << ":\n";

  const auto add_arm = [](Table& table, const char* name,
                          const faults::ControlChaosOutcome& out) {
    std::uint64_t fenced = 0;
    std::uint64_t doubles = 0;
    std::uint64_t safe_trips = 0;
    for (const faults::ControlDcOutcome& dc : out.dcs) {
      fenced += dc.fencing_rejections;
      doubles += dc.double_actuations;
      safe_trips += dc.safe_state_trips;
    }
    table.add_row({name, fmt_percent(out.fleet_prefault_frac, 1),
                   fmt_percent(out.fleet_end_frac, 1),
                   std::to_string(out.total_sla_violations),
                   std::to_string(out.total_alarms), std::to_string(fenced),
                   std::to_string(doubles), std::to_string(safe_trips)});
  };

  // Drill 1: kill-the-leader mid-transition, defended vs naive, then the
  // variant that additionally partitions DC 0 through the failover window.
  Table drill({"drill", "prefault", "end", "SLA viol", "alarms", "fenced",
               "doubles", "safe trips"});
  const auto kill =
      faults::run_leader_kill_drill(dcs, threads, seed, /*with_partition=*/false);
  add_arm(drill, "leader-kill defended", kill.defended);
  add_arm(drill, "leader-kill naive", kill.naive);
  bool partition_gate_ok = true;
  bool partition_deadman_ok = true;
  if (!smoke) {
    const auto part =
        faults::run_leader_kill_drill(dcs, threads, seed, /*with_partition=*/true);
    add_arm(drill, "kill+partition defended", part.defended);
    add_arm(drill, "kill+partition naive", part.naive);
    partition_gate_ok = part.gate_ok;
    partition_deadman_ok = part.defended.dcs[0].safe_state_trips >= 1;
  }
  std::cout << drill.render();

  // Drill 2: split-brain — the hung leader wakes with a stale lease.
  const auto sb = faults::run_split_brain_drill(dcs, threads, seed);
  std::cout << "  split-brain:      " << sb.stale_fenced
            << " stale actuations fenced, " << sb.double_actuations
            << " double actuations, imposter "
            << (sb.stale_leader_deposed ? "deposed" : "STILL LEADING") << "\n";

  // Drill 3: conformance sweep — the leader-kill world must be bit-identical
  // at every shard/thread count.
  std::vector<std::size_t> shard_counts{1};
  if (!smoke && dcs % 2 == 0 && dcs > 2) shard_counts.push_back(2);
  shard_counts.push_back(dcs);
  const std::vector<std::size_t> thread_counts =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 8};
  faults::ControlChaosConfig base;
  base.dcs = dcs;
  base.seed = seed;
  base.controller_faults = faults::make_leader_kill_plan();
  faults::ControlChaosConfig serial = base;
  serial.shards = 1;
  const auto reference = faults::run_control_plane(serial);
  bool sweep_ok = reference.lease_unique_ok && reference.fencing_clean &&
                  reference.conservation_ok;
  std::size_t sweep_runs = 1;
  std::size_t bad_shards = 0;
  std::size_t bad_threads = 0;
  for (const std::size_t shards : shard_counts) {
    for (const std::size_t sweep_threads : thread_counts) {
      if (shards == 1 && sweep_threads == 1) continue;
      faults::ControlChaosConfig c = base;
      c.shards = shards;
      c.threads = sweep_threads;
      const auto out = faults::run_control_plane(c);
      ++sweep_runs;
      if (!faults::control_outcomes_equal(reference, out) ||
          !out.lease_unique_ok || !out.fencing_clean || !out.conservation_ok) {
        sweep_ok = false;
        bad_shards = shards;
        bad_threads = sweep_threads;
      }
    }
  }
  std::cout << "  conformance:      " << sweep_runs << " runs across shards {";
  for (std::size_t i = 0; i < shard_counts.size(); ++i) {
    std::cout << (i ? "," : "") << shard_counts[i];
  }
  std::cout << "} x threads {";
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    std::cout << (i ? "," : "") << thread_counts[i];
  }
  std::cout << "}, "
            << (sweep_ok ? "all bit-identical" : "DIVERGED") << "\n";

  // Drill 4: snapshot mid-failover (after the kill, before the successor's
  // claim), restore, finish — must equal the uninterrupted run exactly.
  const auto restore =
      faults::run_control_plane_with_restore(base, /*snapshot_at_s=*/14.0,
                                             /*kill_at_s=*/16.5);
  std::cout << "  restore:          snapshot " << restore.snapshot_bytes
            << " bytes mid-failover, continuation "
            << (restore.identical ? "bit-identical" : "DIVERGED") << "\n";

  const bool verdict_ok = kill.gate_ok && partition_gate_ok && sb.passed;
  std::cout << "  gates:            leader-kill "
            << (kill.gate_ok ? "pass" : "FAILED") << ", partition "
            << (smoke ? "skipped"
                      : (partition_gate_ok && partition_deadman_ok ? "pass"
                                                                   : "FAILED"))
            << ", split-brain " << (sb.passed ? "pass" : "FAILED") << "\n";

  if (!sweep_ok) {
    return conformance_fail("control plane diverged across shard/thread counts",
                            seed, bad_shards, bad_threads);
  }
  if (!restore.identical) {
    return conformance_fail("control plane restore continuation diverged", seed,
                            dcs, threads);
  }
  if (!partition_deadman_ok) {
    return conformance_fail(
        "partitioned DC 0 never tripped its dead-man safe state", seed, dcs,
        threads);
  }
  if (!verdict_ok) {
    std::cout << "  VERDICT: a control-plane drill gate failed (see above)\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv);
    const std::string& cmd = args.command();
    if (cmd.empty() || cmd == "help" || args.get_switch("help")) return cmd_help();
    if (cmd == "messenger") return cmd_messenger(args);
    if (cmd == "simulate") return cmd_simulate(args);
    if (cmd == "facility") return cmd_facility(args);
    if (cmd == "tiers") return cmd_tiers(args);
    if (cmd == "availability") return cmd_availability(args);
    if (cmd == "replications") return cmd_replications(args);
    if (cmd == "faults") return cmd_faults(args);
    if (cmd == "sensing") return cmd_sensing(args);
    if (cmd == "retrystorm") return cmd_retrystorm(args);
    if (cmd == "kernelbench") return cmd_kernelbench(args);
    if (cmd == "telemetry") return cmd_telemetry(args);
    if (cmd == "federation") return cmd_federation(args);
    if (cmd == "chaos") return cmd_chaos(args);
    if (cmd == "controlplane") return cmd_controlplane(args);
    return fail("unknown command '" + cmd + "' (see 'epmctl help')");
  } catch (const std::exception& e) {
    std::cerr << "epmctl: runtime error: " << e.what() << "\n";
    return 4;
  } catch (...) {
    std::cerr << "epmctl: runtime error: unexpected non-standard exception\n";
    return 4;
  }
}
